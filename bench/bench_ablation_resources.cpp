/**
 * @file
 * Sec. V ablation: SATORI's advantage is not merely from managing
 * more resources. When SATORI partitions only the LLC ways it still
 * beats dCAT (paper: +4 %-points throughput, +5 fairness); when it
 * partitions only LLC + memory bandwidth it still beats CoPart
 * (paper: +7/+4). Unmanaged resources stay at the equal partition
 * for both sides.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "satori/policies/restricted_policy.hpp"

using namespace satori;

namespace {

std::pair<double, double>
meanScores(const PlatformSpec& platform,
           const std::vector<workloads::JobMix>& mixes,
           const std::function<std::unique_ptr<
               policies::PartitioningPolicy>(sim::SimulatedServer&)>&
               make_policy,
           Seconds duration, std::size_t stride)
{
    harness::ExperimentOptions eopt;
    eopt.duration = duration;
    const harness::ExperimentRunner runner(eopt);
    OnlineStats t_acc, f_acc;
    for (std::size_t m = 0; m < mixes.size(); m += stride) {
        // Oracle reference.
        sim::SimulatedServer s_oracle =
            harness::makeServer(platform, mixes[m], 42 + m);
        auto oracle = harness::makePolicy("Balanced-Oracle", s_oracle);
        const auto oracle_r = runner.run(s_oracle, *oracle, "");

        sim::SimulatedServer server =
            harness::makeServer(platform, mixes[m], 42 + m);
        auto policy = make_policy(server);
        const auto r = runner.run(server, *policy, "");
        t_acc.add(r.mean_throughput / oracle_r.mean_throughput);
        f_acc.add(r.mean_fairness / oracle_r.mean_fairness);
    }
    return {t_acc.mean(), f_acc.mean()};
}

std::unique_ptr<policies::PartitioningPolicy>
restrictedSatori(const sim::SimulatedServer& server,
                 const std::vector<ResourceKind>& managed)
{
    return std::make_unique<policies::RestrictedPolicy>(
        server.platform(), server.numJobs(), managed,
        [](const PlatformSpec& restricted, std::size_t jobs) {
            return std::make_unique<core::SatoriController>(restricted,
                                                            jobs);
        });
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Sec. V ablation: SATORI restricted to fewer resources",
        "Paper: SATORI-LLC-only beats dCAT by +4/+5; SATORI-LLC+MB "
        "beats CoPart by +7/+4 (%-points of oracle T/F).",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 2 : 4;

    TablePrinter table({"technique", "resources",
                        "throughput (% of oracle)",
                        "fairness (% of oracle)"});

    // --- LLC-only pair -----------------------------------------------
    const auto [dcat_t, dcat_f] = meanScores(
        platform, mixes,
        [&](sim::SimulatedServer& server) {
            return harness::makePolicy("dCAT", server);
        },
        duration, stride);
    const auto [sat1_t, sat1_f] = meanScores(
        platform, mixes,
        [&](sim::SimulatedServer& server) {
            return restrictedSatori(server, {ResourceKind::LlcWays});
        },
        duration, stride);
    table.addRow({"dCAT", "LLC", bench::pct(dcat_t),
                  bench::pct(dcat_f)});
    table.addRow({"SATORI[llc]", "LLC", bench::pct(sat1_t),
                  bench::pct(sat1_f)});

    // --- LLC+MB pair ---------------------------------------------------
    const auto [copart_t, copart_f] = meanScores(
        platform, mixes,
        [&](sim::SimulatedServer& server) {
            return harness::makePolicy("CoPart", server);
        },
        duration, stride);
    const auto [sat2_t, sat2_f] = meanScores(
        platform, mixes,
        [&](sim::SimulatedServer& server) {
            return restrictedSatori(server,
                                    {ResourceKind::LlcWays,
                                     ResourceKind::MemBandwidth});
        },
        duration, stride);
    table.addRow({"CoPart", "LLC+MB", bench::pct(copart_t),
                  bench::pct(copart_f)});
    table.addRow({"SATORI[llc+mb]", "LLC+MB", bench::pct(sat2_t),
                  bench::pct(sat2_f)});

    // --- Full SATORI for reference ------------------------------------
    const auto [full_t, full_f] = meanScores(
        platform, mixes,
        [&](sim::SimulatedServer& server) {
            return harness::makePolicy("SATORI", server);
        },
        duration, stride);
    table.addRow({"SATORI (full)", "cores+LLC+MB", bench::pct(full_t),
                  bench::pct(full_f)});
    table.print();

    std::printf("\nSATORI[llc] - dCAT:   %+.1f / %+.1f %%-points "
                "(paper: +4/+5)\n",
                (sat1_t - dcat_t) * 100.0, (sat1_f - dcat_f) * 100.0);
    std::printf("SATORI[llc+mb] - CoPart: %+.1f / %+.1f %%-points "
                "(paper: +7/+4)\n",
                (sat2_t - copart_t) * 100.0,
                (sat2_f - copart_f) * 100.0);
    return 0;
}
