/**
 * @file
 * Sec. V scalability: SATORI's advantage over PARTIES grows with the
 * co-location degree (paper: the %-point gap rises monotonically -
 * 8/11/13/13/15 for 3/4/5/6/7 co-located applications) because
 * larger spaces have more local maxima that trap gradient descent.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Sec. V scalability: co-location degree 3..7",
        "Paper: SATORI-PARTIES gap grows 8 -> 15 %-points from 3 to 7 "
        "co-located applications.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto suite = workloads::parsecSuite();
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t mixes_per_degree = opt.full ? 6 : 3;

    TablePrinter table({"co-located jobs", "SATORI T/F",
                        "PARTIES T/F", "gap (T+F)/2 %-points"});
    for (std::size_t k = 3; k <= 7; ++k) {
        auto mixes = workloads::allMixes(suite, k);
        const std::size_t stride =
            std::max<std::size_t>(1, mixes.size() / mixes_per_degree);
        const auto comps = bench::sweepComparisons(
            platform, mixes, {"SATORI", "PARTIES"}, duration,
            42 + k * 100, stride);
        const double st = harness::meanThroughputPct(comps, "SATORI");
        const double sf = harness::meanFairnessPct(comps, "SATORI");
        const double pt = harness::meanThroughputPct(comps, "PARTIES");
        const double pf = harness::meanFairnessPct(comps, "PARTIES");
        const double gap =
            ((st + sf) - (pt + pf)) / 2.0 * 100.0;
        table.addRow({std::to_string(k),
                      bench::pct(st) + "/" + bench::pct(sf),
                      bench::pct(pt) + "/" + bench::pct(pf),
                      TablePrinter::num(gap, 1)});
    }
    table.print();
    std::printf("\nExpected shape: the gap column grows with the "
                "co-location degree (paper: 8, 11, 13, 13, 15).\n");
    return 0;
}
