/**
 * @file
 * Fig. 18: the variation in observed throughput/fairness is similar
 * for SATORI and SATORI-without-prioritization (the dynamic objective
 * raises the mean without raising the variance), with the oracle
 * above both.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 18: observed-performance variation",
        "Paper: SATORI's curve sits above the no-prioritization "
        "variant with a similar variation envelope.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();
    harness::ExperimentOptions eopt;
    eopt.duration = opt.full ? 90.0 : 40.0;

    TablePrinter table({"variant", "mean T", "std T", "mean F",
                        "std F"});
    const harness::ExperimentRunner runner(eopt);
    for (const auto* name :
         {"SATORI", "SATORI-static", "Balanced-Oracle"}) {
        sim::SimulatedServer server =
            harness::makeServer(platform, mix);
        auto policy = harness::makePolicy(name, server);
        const auto r = runner.run(server, *policy, mix.label);
        table.addRow({name,
                      TablePrinter::num(r.mean_throughput, 3),
                      TablePrinter::num(r.throughput_stats.stddev(), 3),
                      TablePrinter::num(r.mean_fairness, 3),
                      TablePrinter::num(r.fairness_stats.stddev(), 3)});
    }
    table.print();
    std::printf("\nExpected shape: SATORI mean >= static mean, with "
                "standard deviations of the same magnitude.\n");
    return 0;
}
