/**
 * @file
 * Figs. 10 + 12: CloudSuite evaluation - per-mix results for all 10
 * three-job mixes plus suite averages (paper: SATORI beats PARTIES
 * by 9% throughput / 5% fairness on average and wins every mix).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Figs. 10+12: CloudSuite mixes (3 of 5 co-located)",
        "Paper: SATORI outperforms PARTIES by ~9% throughput and ~5% "
        "fairness on CloudSuite.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes = workloads::allMixes(workloads::cloudSuite(), 3);
    const Seconds duration = opt.full ? 60.0 : 24.0;

    const auto policies = harness::comparisonPolicyNames();
    const auto comps = bench::sweepComparisons(platform, mixes,
                                               policies, duration, 142);

    TablePrinter table({"mix", "SATORI T/F", "PARTIES T/F", "dCAT T/F",
                        "CoPart T/F", "Random T/F"});
    auto cell = [](const harness::PolicyScore& s) {
        return bench::pct(s.throughput_pct) + "/" +
               bench::pct(s.fairness_pct);
    };
    for (const auto& comp : comps) {
        table.addRow({comp.mix_label, cell(comp.score("SATORI")),
                      cell(comp.score("PARTIES")),
                      cell(comp.score("dCAT")),
                      cell(comp.score("CoPart")),
                      cell(comp.score("Random"))});
    }
    table.print();

    std::printf("\nSuite averages (Fig. 12):\n");
    TablePrinter avg({"technique", "throughput (% of oracle)",
                      "fairness (% of oracle)"});
    for (const auto& name : policies) {
        avg.addRow({name,
                    bench::pct(harness::meanThroughputPct(comps, name)),
                    bench::pct(harness::meanFairnessPct(comps, name))});
    }
    avg.print();
    std::printf("\nSATORI - PARTIES: %+.1f %%-points throughput, "
                "%+.1f %%-points fairness (paper: +9/+5)\n",
                (harness::meanThroughputPct(comps, "SATORI") -
                 harness::meanThroughputPct(comps, "PARTIES")) *
                    100.0,
                (harness::meanFairnessPct(comps, "SATORI") -
                 harness::meanFairnessPct(comps, "PARTIES")) *
                    100.0);
    return 0;
}
