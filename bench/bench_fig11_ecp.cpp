/**
 * @file
 * Figs. 11 + 13: ECP proxy-app evaluation - per-mix results for all
 * 10 two-job mixes plus suite averages (paper: SATORI beats PARTIES
 * by ~15% on both goals; the miniFE+SWFFT mix is hardest because
 * both are LLC-hungry; AMG+Hypre is easiest because their demands
 * are near-identical).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Figs. 11+13: ECP mixes (2 of 5 co-located)",
        "Paper: SATORI outperforms PARTIES by ~15% on both goals; "
        "miniFE+SWFFT worst, AMG+Hypre best.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes = workloads::allMixes(workloads::ecpSuite(), 2);
    const Seconds duration = opt.full ? 60.0 : 24.0;

    const auto policies = harness::comparisonPolicyNames();
    const auto comps = bench::sweepComparisons(platform, mixes,
                                               policies, duration, 242);

    TablePrinter table({"mix", "SATORI T/F", "PARTIES T/F", "dCAT T/F",
                        "CoPart T/F", "Random T/F"});
    auto cell = [](const harness::PolicyScore& s) {
        return bench::pct(s.throughput_pct) + "/" +
               bench::pct(s.fairness_pct);
    };
    for (const auto& comp : comps) {
        table.addRow({comp.mix_label, cell(comp.score("SATORI")),
                      cell(comp.score("PARTIES")),
                      cell(comp.score("dCAT")),
                      cell(comp.score("CoPart")),
                      cell(comp.score("Random"))});
    }
    table.print();

    std::printf("\nSuite averages (Fig. 13):\n");
    TablePrinter avg({"technique", "throughput (% of oracle)",
                      "fairness (% of oracle)"});
    for (const auto& name : policies) {
        avg.addRow({name,
                    bench::pct(harness::meanThroughputPct(comps, name)),
                    bench::pct(harness::meanFairnessPct(comps, name))});
    }
    avg.print();

    // The paper's hardest/easiest mixes.
    auto combined = [&](const harness::MixComparison& c) {
        const auto& s = c.score("SATORI");
        return s.throughput_pct + s.fairness_pct;
    };
    const auto hardest = std::min_element(
        comps.begin(), comps.end(),
        [&](const auto& a, const auto& b) {
            return combined(a) < combined(b);
        });
    const auto easiest = std::max_element(
        comps.begin(), comps.end(),
        [&](const auto& a, const auto& b) {
            return combined(a) < combined(b);
        });
    std::printf("\nHardest mix for SATORI: %s (paper: minife+swfft)\n",
                hardest->mix_label.c_str());
    std::printf("Easiest mix for SATORI: %s (paper: amg+hypre)\n",
                easiest->mix_label.c_str());
    return 0;
}
