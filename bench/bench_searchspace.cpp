/**
 * @file
 * Reproduces the Sec. II search-space-growth numbers: the size of the
 * configuration space for the paper's examples (1,296 / 7,056 /
 * 592,704) plus the full testbed, demonstrating why exhaustive online
 * search is infeasible.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Sec. II search-space growth (text table)",
                  "Configuration count explodes with jobs and resources; "
                  "paper cites 1,296 / 7,056 / 592,704.",
                  opt);

    TablePrinter table({"resources", "units each", "jobs",
                        "configurations", "paper value"});

    PlatformSpec two;
    two.addResource(ResourceKind::Cores, 10);
    two.addResource(ResourceKind::MemBandwidth, 10);
    table.addRow({"2", "10", "3",
                  std::to_string(ConfigurationSpace::sizeOf(two, 3)),
                  "1,296"});
    table.addRow({"2", "10", "4",
                  std::to_string(ConfigurationSpace::sizeOf(two, 4)),
                  "7,056"});

    PlatformSpec three = two;
    three.addResource(ResourceKind::LlcWays, 10);
    table.addRow({"3", "10", "4",
                  std::to_string(ConfigurationSpace::sizeOf(three, 4)),
                  "592,704"});

    const PlatformSpec paper = PlatformSpec::paperTestbed();
    for (std::size_t jobs = 3; jobs <= 7; ++jobs) {
        table.addRow({"3", "10/11/10", std::to_string(jobs),
                      std::to_string(
                          ConfigurationSpace::sizeOf(paper, jobs)),
                      "-"});
    }
    table.print();

    if (opt.csv) {
        CsvWriter csv("bench_searchspace.csv",
                      {"resources", "jobs", "configurations"});
        csv.addRow({"2", "3",
                    std::to_string(ConfigurationSpace::sizeOf(two, 3))});
        csv.addRow({"2", "4",
                    std::to_string(ConfigurationSpace::sizeOf(two, 4))});
        csv.addRow({"3", "4", std::to_string(ConfigurationSpace::sizeOf(
                                  three, 4))});
        for (std::size_t jobs = 3; jobs <= 7; ++jobs)
            csv.addRow({"3(testbed)", std::to_string(jobs),
                        std::to_string(
                            ConfigurationSpace::sizeOf(paper, jobs))});
    }
    return 0;
}
