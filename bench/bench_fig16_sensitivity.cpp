/**
 * @file
 * Fig. 16: sensitivity to the prioritization period (T_P) and the
 * equalization period (T_E). Paper: performance is insensitive over
 * a wide range, degrading only for very long periods (T_P > 5 s,
 * T_E > 30 s).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

namespace {

std::pair<double, double>
evaluate(const PlatformSpec& platform,
         const std::vector<workloads::JobMix>& mixes, Seconds t_p,
         Seconds t_e, Seconds duration, std::size_t stride)
{
    core::SatoriOptions sopt;
    sopt.weights.prioritization_period = t_p;
    sopt.weights.equalization_period = t_e;
    harness::ExperimentOptions eopt;
    eopt.duration = duration;
    OnlineStats t_acc, f_acc;
    for (std::size_t m = 0; m < mixes.size(); m += stride) {
        const auto comp = harness::comparePolicies(
            platform, mixes[m], {"SATORI"}, eopt, 42 + m, sopt);
        t_acc.add(comp.score("SATORI").throughput_pct);
        f_acc.add(comp.score("SATORI").fairness_pct);
    }
    return {t_acc.mean(), f_acc.mean()};
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 16: sensitivity to T_P and T_E",
        "Paper: low sensitivity; degradation only for T_P > 5 s or "
        "T_E > 30 s.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 3 : 7;

    // Sweep T_P with T_E fixed at its default (10 s).
    TablePrinter tp_table({"T_P (s)", "throughput (% of oracle)",
                           "fairness (% of oracle)"});
    for (double t_p : {0.5, 1.0, 2.0, 5.0, 10.0}) {
        const auto [t, f] =
            evaluate(platform, mixes, t_p, std::max(10.0, t_p), duration,
                     stride);
        tp_table.addRow({TablePrinter::num(t_p, 1), bench::pct(t),
                         bench::pct(f)});
    }
    std::printf("Prioritization-period sweep (T_E = 10 s):\n");
    tp_table.print();

    // Sweep T_E with T_P fixed at its default (1 s).
    TablePrinter te_table({"T_E (s)", "throughput (% of oracle)",
                           "fairness (% of oracle)"});
    for (double t_e : {5.0, 10.0, 20.0, 30.0, 60.0}) {
        const auto [t, f] =
            evaluate(platform, mixes, 1.0, t_e, duration, stride);
        te_table.addRow({TablePrinter::num(t_e, 0), bench::pct(t),
                         bench::pct(f)});
    }
    std::printf("\nEqualization-period sweep (T_P = 1 s):\n");
    te_table.print();
    return 0;
}
