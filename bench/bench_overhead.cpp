/**
 * @file
 * Sec. V overhead characterization (google-benchmark): the paper
 * measures all BO-related tasks at ~1.2 ms per 100 ms interval. We
 * benchmark the GP refit, acquisition maximization over a realistic
 * candidate set, one full SATORI decide() iteration, and the
 * memoized/unmemoized oracle search.
 */

#include <benchmark/benchmark.h>

#include "satori/satori.hpp"

using namespace satori;

namespace {

/** Realistic training set: n share-normalized configs + objectives. */
std::pair<std::vector<RealVec>, std::vector<double>>
trainingSet(std::size_t n)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    ConfigurationSpace space(platform, 5);
    Rng rng(1);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(space.sample(rng).normalizedVector());
        ys.push_back(rng.uniform(0.4, 0.8));
    }
    return {xs, ys};
}

void
BM_GpRefit(benchmark::State& state)
{
    const auto [xs, ys] =
        trainingSet(static_cast<std::size_t>(state.range(0)));
    bo::EngineOptions opt;
    opt.grid_refit_period = 0; // measure the plain refit
    bo::BoEngine engine(opt);
    for (auto _ : state) {
        engine.setSamples(xs, ys);
        benchmark::DoNotOptimize(engine.bestObserved());
    }
}
BENCHMARK(BM_GpRefit)->Arg(40)->Arg(80)->Arg(120);

void
BM_AcquisitionOverCandidates(benchmark::State& state)
{
    const auto [xs, ys] = trainingSet(120);
    bo::BoEngine engine;
    engine.setSamples(xs, ys);
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    ConfigurationSpace space(platform, 5);
    Rng rng(2);
    std::vector<RealVec> candidates;
    for (int i = 0; i < state.range(0); ++i)
        candidates.push_back(space.sample(rng).normalizedVector());
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.suggestIndex(candidates));
}
BENCHMARK(BM_AcquisitionOverCandidates)->Arg(128)->Arg(256);

void
BM_SatoriDecideIteration(benchmark::State& state)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix =
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"});
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    core::SatoriOptions opt;
    opt.stall_intervals = 0; // keep exploring: worst-case iteration
    core::SatoriController satori(platform, server.numJobs(), opt);
    sim::PerfMonitor monitor(server);
    for (auto _ : state) {
        const auto obs = monitor.observe(0.1);
        server.setConfiguration(satori.decide(obs));
    }
    state.counters["budget_pct_of_100ms_interval"] = benchmark::Counter(
        1e-4, benchmark::Counter::kIsIterationInvariantRate |
                  benchmark::Counter::kInvert);
}
BENCHMARK(BM_SatoriDecideIteration)->Unit(benchmark::kMillisecond);

void
BM_OracleSearchCold(benchmark::State& state)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix =
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"});
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    std::vector<std::size_t> sig(server.numJobs(), 0);
    std::uint64_t salt = 0;
    for (auto _ : state) {
        // Fresh evaluator each time: the full ~3.3M-config sweep.
        harness::OfflineEvaluator eval(server);
        const double w = 0.5 + 1e-9 * static_cast<double>(++salt);
        benchmark::DoNotOptimize(eval.bestFor(sig, w, 1.0 - w));
    }
}
BENCHMARK(BM_OracleSearchCold)->Unit(benchmark::kMillisecond);

void
BM_OracleSearchMemoized(benchmark::State& state)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix =
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"});
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    harness::OfflineEvaluator eval(server);
    std::vector<std::size_t> sig(server.numJobs(), 0);
    eval.bestFor(sig, 0.5, 0.5); // warm the memo
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.bestFor(sig, 0.5, 0.5));
}
BENCHMARK(BM_OracleSearchMemoized);

void
BM_PerfModelEvaluation(benchmark::State& state)
{
    const auto phase = workloads::workloadByName("canneal").phases[0];
    const perfmodel::MachineParams m =
        perfmodel::MachineParams::paperLike();
    perfmodel::AllocationView a{3, 4, 0.3, 1.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(perfmodel::evaluatePhase(phase, m, a));
}
BENCHMARK(BM_PerfModelEvaluation);

} // namespace
