#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace satori {
namespace bench {

BenchOptions
parseArgs(int argc, char** argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opt.full = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csv = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opt.threads =
                static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--csv] [--threads N]\n"
                         "  --full       paper-scale durations and mix counts\n"
                         "  --csv        export the data as CSV\n"
                         "  --threads N  parallel scenario workers (0 = all\n"
                         "               hardware threads); results are\n"
                         "               identical at every thread count\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

void
banner(const std::string& experiment, const std::string& claim,
       const BenchOptions& options)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("%s\n", claim.c_str());
    std::printf("mode: %s\n",
                options.full ? "--full (paper scale)"
                             : "quick (pass --full for paper scale)");
    std::printf("==============================================================\n");
}

workloads::JobMix
canonicalParsecMix()
{
    return workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                             "freqmine", "streamcluster"});
}

std::vector<harness::MixComparison>
sweepComparisons(const PlatformSpec& platform,
                 const std::vector<workloads::JobMix>& mixes,
                 const std::vector<std::string>& policies,
                 Seconds duration, std::uint64_t seed_base,
                 std::size_t stride, std::size_t threads)
{
    harness::ExperimentOptions opt;
    opt.duration = duration;
    // Pre-compute the strided mix indices so each worker derives its
    // scenario (mix + seed) and output slot purely from its index.
    std::vector<std::size_t> selected;
    for (std::size_t m = 0; m < mixes.size(); m += stride)
        selected.push_back(m);
    std::vector<harness::MixComparison> out(selected.size());
    harness::parallelFor(selected.size(), threads, [&](std::size_t i) {
        const std::size_t m = selected[i];
        out[i] = harness::comparePolicies(
            platform, mixes[m], policies, opt,
            seed_base + static_cast<std::uint64_t>(m));
    });
    return out;
}

std::string
pct(double fraction)
{
    return TablePrinter::pct(fraction, 1);
}

} // namespace bench
} // namespace satori
