/**
 * @file
 * Observability overhead: the Fig. 7-style SATORI run timed with the
 * obs layer off, with metrics only, with full span tracing plus the
 * decision-audit channel, and with the whole live telemetry plane up
 * (stats history + SLO watchdog + HTTP exporter being scraped at
 * 1 Hz). The controller's 100 ms decision loop must not notice its
 * own instrumentation: the run fails (non-zero exit) if
 *
 *   - full observability costs more than 5% wall-clock over the
 *     uninstrumented run, or
 *   - the live plane under 1 Hz scraping costs more than 5% of one
 *     100 ms control interval (5 ms) per interval.
 *
 * Timing uses obs::steadyNowNs() - the steady-clock read lives in the
 * allowlisted obs layer, not here.
 */

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "satori/obs/http_exporter.hpp"

using namespace satori;

namespace {

enum class ObsMode
{
    Off,
    MetricsOnly,
    Full,
    Live,
};

const char*
modeName(ObsMode mode)
{
    switch (mode) {
      case ObsMode::Off:
        return "obs off";
      case ObsMode::MetricsOnly:
        return "metrics only";
      case ObsMode::Full:
        return "full (spans+metrics+audit)";
      case ObsMode::Live:
        return "live (full+history+slo+http @1Hz)";
    }
    return "?";
}

/** One timed SATORI run over the canonical mix; returns seconds. */
double
runOnce(ObsMode mode, Seconds duration)
{
    obs::Observability& o = obs::observability();
    o.resetAll();
    if (mode != ObsMode::Off)
        o.setMetricsEnabled(true);
    if (mode == ObsMode::Full || mode == ObsMode::Live) {
        o.tracer().setEnabled(true);
        o.audit().setEnabled(true);
    }
    std::optional<obs::HttpExporter> exporter;
    if (mode == ObsMode::Live) {
        o.setLiveEnabled(true);
        o.history().setEnabled(true);
        // A rule that never breaches, so the watchdog pays its full
        // evaluation cost every interval without aborting anything.
        o.watchdog().configure(
            obs::SloSpec::parse("facts.throughput < 0.0 for 5\n"));
        exporter.emplace(o);
        exporter->start(obs::HttpExporterOptions{});
    }

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const workloads::JobMix mix = bench::canonicalParsecMix();
    sim::SimulatedServer server = harness::makeServer(platform, mix, 42);
    auto policy = harness::makePolicy("SATORI", server);
    harness::ExperimentOptions opt;
    opt.duration = duration;

    const std::uint64_t t0 = obs::steadyNowNs();
    {
        std::optional<obs::PeriodicScraper> scraper;
        if (mode == ObsMode::Live)
            scraper.emplace(exporter->port(), "/metrics", 1000);
        (void)harness::ExperimentRunner(opt).run(server, *policy,
                                                 mix.label);
    }
    const std::uint64_t t1 = obs::steadyNowNs();
    if (exporter)
        exporter->stop();
    o.resetAll();
    return static_cast<double>(t1 - t0) / 1e9;
}

/** Best-of-N wall time, the usual noise-robust estimator. */
double
bestOf(ObsMode mode, Seconds duration, int repeats)
{
    double best = runOnce(mode, duration);
    for (int r = 1; r < repeats; ++r)
        best = std::min(best, runOnce(mode, duration));
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Observability overhead: SATORI run, obs off vs on vs live",
        "Gates: full obs < 5% wall-clock; live plane < 5ms/interval.",
        opt);

    const Seconds duration = opt.full ? 60.0 : 20.0;
    const int repeats = opt.full ? 5 : 3;
    // The harness decides every 100 ms of simulated time.
    const double intervals = duration / 0.1;

    const double t_off = bestOf(ObsMode::Off, duration, repeats);
    const double t_metrics =
        bestOf(ObsMode::MetricsOnly, duration, repeats);
    const double t_full = bestOf(ObsMode::Full, duration, repeats);
    const double t_live = bestOf(ObsMode::Live, duration, repeats);

    auto pct_over = [&](double t) {
        return 100.0 * (t - t_off) / t_off;
    };
    auto ms_per_interval = [&](double t) {
        return 1e3 * (t - t_off) / intervals;
    };

    TablePrinter table(
        {"mode", "best wall s", "overhead %", "ms/interval"});
    table.addRow({modeName(ObsMode::Off),
                  TablePrinter::num(t_off, 4), "-", "-"});
    table.addRow({modeName(ObsMode::MetricsOnly),
                  TablePrinter::num(t_metrics, 4),
                  TablePrinter::num(pct_over(t_metrics), 2),
                  TablePrinter::num(ms_per_interval(t_metrics), 4)});
    table.addRow({modeName(ObsMode::Full),
                  TablePrinter::num(t_full, 4),
                  TablePrinter::num(pct_over(t_full), 2),
                  TablePrinter::num(ms_per_interval(t_full), 4)});
    table.addRow({modeName(ObsMode::Live),
                  TablePrinter::num(t_live, 4),
                  TablePrinter::num(pct_over(t_live), 2),
                  TablePrinter::num(ms_per_interval(t_live), 4)});
    table.print();

    bool failed = false;
    const double overhead_pct = pct_over(t_full);
    if (overhead_pct >= 5.0) {
        std::printf("\nFAIL: full observability overhead %.2f%% >= "
                    "5%% budget\n",
                    overhead_pct);
        failed = true;
    } else {
        std::printf("\nOK: full observability overhead %.2f%% < 5%% "
                    "budget\n",
                    overhead_pct);
    }

    // The live-plane gate is absolute: the added cost per 100 ms
    // control interval must stay under 5% of the interval (5 ms),
    // scraper included.
    const double live_ms = ms_per_interval(t_live);
    if (live_ms >= 5.0) {
        std::printf("FAIL: live telemetry plane costs %.4f ms per "
                    "100 ms interval >= 5 ms budget\n",
                    live_ms);
        failed = true;
    } else {
        std::printf("OK: live telemetry plane costs %.4f ms per "
                    "100 ms interval < 5 ms budget\n",
                    live_ms);
    }
    return failed ? 1 : 0;
}
