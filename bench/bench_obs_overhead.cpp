/**
 * @file
 * Observability overhead: the Fig. 7-style SATORI run timed with the
 * obs layer off, with metrics only, and with full span tracing plus
 * the decision-audit channel. The controller's 100 ms decision loop
 * must not notice its own instrumentation: the run fails (non-zero
 * exit) if full observability costs more than 5% wall-clock over the
 * uninstrumented run.
 *
 * Timing uses obs::steadyNowNs() - the steady-clock read lives in the
 * allowlisted obs layer, not here.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace satori;

namespace {

enum class ObsMode
{
    Off,
    MetricsOnly,
    Full,
};

const char*
modeName(ObsMode mode)
{
    switch (mode) {
      case ObsMode::Off:
        return "obs off";
      case ObsMode::MetricsOnly:
        return "metrics only";
      case ObsMode::Full:
        return "full (spans+metrics+audit)";
    }
    return "?";
}

/** One timed SATORI run over the canonical mix; returns seconds. */
double
runOnce(ObsMode mode, Seconds duration)
{
    obs::Observability& o = obs::observability();
    o.resetAll();
    if (mode == ObsMode::MetricsOnly || mode == ObsMode::Full)
        o.setMetricsEnabled(true);
    if (mode == ObsMode::Full) {
        o.tracer().setEnabled(true);
        o.audit().setEnabled(true);
    }

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const workloads::JobMix mix = bench::canonicalParsecMix();
    sim::SimulatedServer server = harness::makeServer(platform, mix, 42);
    auto policy = harness::makePolicy("SATORI", server);
    harness::ExperimentOptions opt;
    opt.duration = duration;

    const std::uint64_t t0 = obs::steadyNowNs();
    (void)harness::ExperimentRunner(opt).run(server, *policy, mix.label);
    const std::uint64_t t1 = obs::steadyNowNs();
    o.resetAll();
    return static_cast<double>(t1 - t0) / 1e9;
}

/** Best-of-N wall time, the usual noise-robust estimator. */
double
bestOf(ObsMode mode, Seconds duration, int repeats)
{
    double best = runOnce(mode, duration);
    for (int r = 1; r < repeats; ++r)
        best = std::min(best, runOnce(mode, duration));
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Observability overhead: SATORI run, obs off vs on",
        "Gate: full spans+metrics+audit must cost < 5% wall-clock.",
        opt);

    const Seconds duration = opt.full ? 60.0 : 20.0;
    const int repeats = opt.full ? 5 : 3;

    const double t_off = bestOf(ObsMode::Off, duration, repeats);
    const double t_metrics =
        bestOf(ObsMode::MetricsOnly, duration, repeats);
    const double t_full = bestOf(ObsMode::Full, duration, repeats);

    auto pct_over = [&](double t) {
        return 100.0 * (t - t_off) / t_off;
    };

    TablePrinter table({"mode", "best wall s", "overhead %"});
    table.addRow({modeName(ObsMode::Off),
                  TablePrinter::num(t_off, 4), "-"});
    table.addRow({modeName(ObsMode::MetricsOnly),
                  TablePrinter::num(t_metrics, 4),
                  TablePrinter::num(pct_over(t_metrics), 2)});
    table.addRow({modeName(ObsMode::Full),
                  TablePrinter::num(t_full, 4),
                  TablePrinter::num(pct_over(t_full), 2)});
    table.print();

    const double overhead_pct = pct_over(t_full);
    if (overhead_pct >= 5.0) {
        std::printf("\nFAIL: full observability overhead %.2f%% >= "
                    "5%% budget\n",
                    overhead_pct);
        return 1;
    }
    std::printf("\nOK: full observability overhead %.2f%% < 5%% "
                "budget\n",
                overhead_pct);
    return 0;
}
