/**
 * @file
 * Fig. 2 + the Sec. II "average config" / "time split" experiments:
 * throughput-optimal and fairness-optimal configurations differ
 * substantially (paper: throughput-opt achieves only 67% of optimal
 * fairness; fairness-opt only 59% of optimal throughput), and neither
 * averaging the two optima nor alternating between them recovers the
 * balanced optimum (59%/72% and 72%/81% of oracle respectively).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

namespace {

/** Average two configurations unit-wise and repair validity. */
Configuration
averageConfigs(const PlatformSpec& platform, const Configuration& a,
               const Configuration& b)
{
    const std::size_t jobs = a.numJobs();
    std::vector<std::vector<int>> alloc(platform.numResources());
    for (std::size_t r = 0; r < platform.numResources(); ++r) {
        alloc[r].resize(jobs);
        int assigned = 0;
        for (std::size_t j = 0; j < jobs; ++j) {
            alloc[r][j] =
                std::max(1, (a.units(r, j) + b.units(r, j)) / 2);
            assigned += alloc[r][j];
        }
        // Repair rounding: hand leftovers to (or take overdraft from)
        // jobs round-robin, respecting the >=1 floor.
        int excess = platform.units(r) - assigned;
        std::size_t k = 0;
        while (excess != 0) {
            if (excess > 0) {
                alloc[r][k] += 1;
                --excess;
            } else if (alloc[r][k] > 1) {
                alloc[r][k] -= 1;
                ++excess;
            }
            k = (k + 1) % jobs;
        }
    }
    return Configuration(alloc);
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 2 + Sec. II: conflicting optimal configurations",
        "Paper: T-opt gets 67% of optimal fairness; F-opt gets 59% of "
        "optimal throughput; average config 59%/72%; 50-50 time split "
        "72%/81% of oracle.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();

    // --- Instantaneous conflict at several phase signatures ---------
    sim::SimulatedServer probe = harness::makeServer(platform, mix);
    harness::OfflineEvaluator eval(probe);

    TablePrinter conflict({"phase sig", "T-opt: T", "T-opt: F/F*",
                           "F-opt: F", "F-opt: T/T*", "config dist"});
    const int snapshots = opt.full ? 6 : 3;
    for (int s = 0; s < snapshots; ++s) {
        const auto sig = probe.phaseSignature();
        const auto& t_opt = eval.bestFor(sig, 1.0, 0.0);
        const auto& f_opt = eval.bestFor(sig, 0.0, 1.0);
        std::string sig_str;
        for (std::size_t v : sig)
            sig_str += std::to_string(v);
        conflict.addRow(
            {sig_str, TablePrinter::num(t_opt.throughput, 3),
             bench::pct(t_opt.fairness / f_opt.fairness),
             TablePrinter::num(f_opt.fairness, 3),
             bench::pct(f_opt.throughput / t_opt.throughput),
             TablePrinter::num(
                 Configuration::distance(t_opt.config, f_opt.config),
                 1)});
        // Advance until the phase signature actually changes (or a
        // generous timeout), so successive snapshots show different
        // program-phase combinations.
        const auto start_sig = probe.phaseSignature();
        for (int i = 0; i < 600 && probe.phaseSignature() == start_sig;
             ++i)
            probe.step(0.1);
    }
    conflict.print();

    // --- "Average of optima" and "50-50 time split" strategies ------
    const Seconds duration = opt.full ? 60.0 : 30.0;
    harness::ExperimentOptions eopt;
    eopt.duration = duration;
    const harness::ExperimentRunner runner(eopt);

    // Reference: the Balanced Oracle.
    sim::SimulatedServer s_oracle = harness::makeServer(platform, mix);
    auto oracle = harness::makePolicy("Balanced-Oracle", s_oracle);
    const auto oracle_result = runner.run(s_oracle, *oracle, mix.label);

    // Strategy A: run the (oracle-derived) average configuration.
    class AverageOptima final : public policies::PartitioningPolicy
    {
      public:
        AverageOptima(const sim::SimulatedServer& server,
                      const PlatformSpec& platform)
            : server_(server), platform_(platform), eval_(server)
        {
        }
        std::string name() const override { return "Average-Optima"; }
        Configuration decide(const sim::IntervalObservation&) override
        {
            const auto sig = server_.phaseSignature();
            return averageConfigs(platform_,
                                  eval_.bestFor(sig, 1.0, 0.0).config,
                                  eval_.bestFor(sig, 0.0, 1.0).config);
        }

      private:
        const sim::SimulatedServer& server_;
        const PlatformSpec& platform_;
        harness::OfflineEvaluator eval_;
    };

    sim::SimulatedServer s_avg = harness::makeServer(platform, mix);
    AverageOptima avg_policy(s_avg, platform);
    const auto avg_result = runner.run(s_avg, avg_policy, mix.label);

    // Strategy B: alternate the two optima every second.
    class TimeSplit final : public policies::PartitioningPolicy
    {
      public:
        explicit TimeSplit(const sim::SimulatedServer& server)
            : server_(server), eval_(server)
        {
        }
        std::string name() const override { return "Time-Split"; }
        Configuration decide(const sim::IntervalObservation&) override
        {
            const auto sig = server_.phaseSignature();
            const bool throughput_turn = (step_++ / 10) % 2 == 0;
            return throughput_turn
                       ? eval_.bestFor(sig, 1.0, 0.0).config
                       : eval_.bestFor(sig, 0.0, 1.0).config;
        }

      private:
        const sim::SimulatedServer& server_;
        harness::OfflineEvaluator eval_;
        std::size_t step_ = 0;
    };

    sim::SimulatedServer s_split = harness::makeServer(platform, mix);
    TimeSplit split_policy(s_split);
    const auto split_result = runner.run(s_split, split_policy, mix.label);

    TablePrinter table({"strategy", "throughput (% of oracle)",
                        "fairness (% of oracle)", "paper"});
    table.addRow({"Balanced Oracle", "100.0%", "100.0%", "100/100"});
    table.addRow({"Average of optima",
                  bench::pct(avg_result.mean_throughput /
                             oracle_result.mean_throughput),
                  bench::pct(avg_result.mean_fairness /
                             oracle_result.mean_fairness),
                  "59/72"});
    table.addRow({"50-50 time split",
                  bench::pct(split_result.mean_throughput /
                             oracle_result.mean_throughput),
                  bench::pct(split_result.mean_fairness /
                             oracle_result.mean_fairness),
                  "72/81"});
    std::printf("\n");
    table.print();
    return 0;
}
