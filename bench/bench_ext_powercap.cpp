/**
 * @file
 * Extension (paper conclusion): SATORI "can effectively handle
 * computing cores, LLC ways, memory bandwidth, and power-cap
 * resources". This experiment adds an 8-unit RAPL-style power budget
 * as a fourth partitionable resource and compares SATORI against
 * PARTIES and Random on the 4-dimensional space; the oracle search
 * uses strided sampling (the 4-resource space is ~10^8 configs).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Extension: four-resource partitioning (cores+LLC+MB+power)",
        "Paper conclusion: SATORI extends to the power-cap knob; "
        "competing gradient-descent scales worse with dimensionality.",
        opt);

    const PlatformSpec platform = PlatformSpec::extendedTestbed();
    std::printf("configuration space: %llu configurations for 5 jobs\n\n",
                static_cast<unsigned long long>(
                    ConfigurationSpace::sizeOf(platform, 5)));

    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 4 : 7;

    const auto comps = bench::sweepComparisons(
        platform, mixes, {"Random", "PARTIES", "SATORI"}, duration,
        342, stride);

    TablePrinter table({"technique", "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    for (const auto* name : {"Random", "PARTIES", "SATORI"}) {
        table.addRow({name,
                      bench::pct(harness::meanThroughputPct(comps, name)),
                      bench::pct(harness::meanFairnessPct(comps, name))});
    }
    table.print();
    std::printf("\nNote: the Balanced Oracle samples the 4-D space with "
                "a stride when it exceeds its evaluation budget, so "
                "oracle values are slightly conservative here.\n");
    return 0;
}
