/**
 * @file
 * Fig. 7: throughput and fairness of every technique, averaged across
 * the 21 five-job PARSEC mixes, as % of the Balanced Oracle.
 *
 * Paper headline: SATORI achieves 92% of the Balanced Oracle on both
 * goals, outperforming dCAT/CoPart/PARTIES by 19/17/14 %-points on
 * throughput and 25/17/14 on fairness; Throughput-SATORI approaches
 * the Throughput Oracle and Fairness-SATORI the Fairness Oracle.
 */

#include <cstdio>
#include <optional>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 7: PARSEC averages, % of Balanced Oracle",
        "Paper: SATORI ~92%/92%; next-best PARTIES trails by ~14 "
        "points on both goals.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 24.0;
    const std::size_t stride = opt.full ? 1 : 1;

    const std::vector<std::string> policies{
        "Random",           "dCAT",
        "CoPart",           "PARTIES",
        "SATORI",           "Throughput-SATORI",
        "Fairness-SATORI",  "Throughput-Oracle",
        "Fairness-Oracle"};

    const auto comps = bench::sweepComparisons(platform, mixes,
                                               policies, duration, 42,
                                               stride);

    TablePrinter table({"technique", "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    std::optional<CsvWriter> csv_opt;
    if (opt.csv)
        csv_opt.emplace("bench_fig07_parsec_avg.csv",
                        std::vector<std::string>{"technique", "throughput_pct", "fairness_pct"});
    CsvWriter* csv = opt.csv ? &*csv_opt : nullptr;
    for (const auto& name : policies) {
        const double t = harness::meanThroughputPct(comps, name);
        const double f = harness::meanFairnessPct(comps, name);
        table.addRow({name, bench::pct(t), bench::pct(f)});
        if (opt.csv)
            csv->addRow({name, TablePrinter::num(t * 100, 2),
                        TablePrinter::num(f * 100, 2)});
    }
    table.addRow({"Balanced-Oracle", "100.0%", "100.0%"});
    table.print();

    const double satori_t = harness::meanThroughputPct(comps, "SATORI");
    const double parties_t =
        harness::meanThroughputPct(comps, "PARTIES");
    const double satori_f = harness::meanFairnessPct(comps, "SATORI");
    const double parties_f = harness::meanFairnessPct(comps, "PARTIES");
    std::printf("\nSATORI vs next-best (PARTIES): %+.1f %%-points "
                "throughput, %+.1f %%-points fairness "
                "(paper: +14/+14)\n",
                (satori_t - parties_t) * 100.0,
                (satori_f - parties_f) * 100.0);
    std::printf("Mixes evaluated: %zu of %zu, %.0f s each\n",
                comps.size(), mixes.size(), duration);
    return 0;
}
