/**
 * @file
 * Fault resilience: hardened SATORI vs the paper's vanilla controller
 * under the default escalating fault plan (telemetry corruption, then
 * actuation failures, then churn - see faults::FaultPlan::escalating).
 *
 * Both controllers run the same mixes clean and faulted with identical
 * seeds; the scoreboard is the retained fraction of each controller's
 * OWN fault-free balanced objective 0.5 * (throughput + fairness), so
 * the capacity genuinely removed by real faults (core offlining,
 * crashes) penalizes both sides equally. The claim: the resilience
 * layer (telemetry guard + actuation retry + degraded fallback) keeps
 * >= 85% of the clean objective while vanilla measurably degrades.
 */

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace satori;

namespace {

struct RunScore
{
    double throughput = 0.0;
    double fairness = 0.0;

    double balanced() const
    {
        return 0.5 * (throughput + fairness);
    }
};

RunScore
runOne(const PlatformSpec& platform, const workloads::JobMix& mix,
       const std::string& policy_name, Seconds duration,
       const faults::FaultPlan* plan, std::uint64_t fault_seed,
       faults::FaultStats* stats_out = nullptr)
{
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    auto policy = harness::makePolicy(policy_name, server);

    harness::ExperimentOptions opt;
    opt.duration = duration;

    std::optional<faults::FaultInjector> injector;
    if (plan != nullptr) {
        injector.emplace(*plan, fault_seed);
        opt.faults = &*injector;
    }

    const harness::ExperimentRunner runner(opt);
    const auto result = runner.run(server, *policy, mix.label);
    if (injector && stats_out != nullptr)
        *stats_out = injector->stats();
    return RunScore{result.mean_throughput, result.mean_fairness};
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fault resilience: hardened vs vanilla SATORI under faults",
        "Hardened SATORI retains >= 85% of its fault-free balanced "
        "objective under the escalating fault plan; the paper's "
        "vanilla controller measurably degrades.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const Seconds duration = opt.full ? 60.0 : 30.0;
    const double dt = 0.1;
    const auto horizon =
        static_cast<std::size_t>(duration / dt);
    const std::uint64_t fault_seed = 0xFA17;

    std::vector<workloads::JobMix> mixes;
    mixes.push_back(workloads::mixOf(
        {"canneal", "streamcluster", "vips"}));
    mixes.push_back(bench::canonicalParsecMix());
    if (opt.full)
        mixes.push_back(workloads::mixOf(
            {"blackscholes", "fluidanimate", "web_search",
             "swaptions"}));

    TablePrinter table({"mix", "policy", "clean", "faulted",
                        "retained"});
    std::optional<CsvWriter> csv_file;
    if (opt.csv)
        csv_file.emplace(
            "bench_fault_resilience.csv",
            std::vector<std::string>{"mix", "policy", "clean_balanced",
                                     "faulted_balanced",
                                     "retained_pct"});

    double worst_hardened = 1.0;
    double sum_hardened = 0.0;
    double sum_vanilla = 0.0;

    struct Row
    {
        const char* label;
        const char* policy;
    };
    const Row rows[] = {{"SATORI (hardened)", "SATORI"},
                        {"SATORI (vanilla)", "SATORI-vanilla"},
                        {"Equal", "Equal"}};

    // Each mix's runs are independent: compute them on the worker
    // pool into per-mix slots, then fold and print in mix order so
    // the report matches the serial loop exactly.
    struct MixOutcome
    {
        RunScore clean[3];
        RunScore faulted[3];
        faults::FaultStats stats;
    };
    std::vector<MixOutcome> outcomes(mixes.size());
    harness::parallelFor(mixes.size(), opt.threads, [&](std::size_t m) {
        const auto& mix = mixes[m];
        const auto plan =
            faults::FaultPlan::escalating(mix.jobs.size(), horizon);
        for (std::size_t r = 0; r < 3; ++r) {
            outcomes[m].clean[r] = runOne(platform, mix, rows[r].policy,
                                          duration, nullptr, fault_seed);
            outcomes[m].faulted[r] =
                runOne(platform, mix, rows[r].policy, duration, &plan,
                       fault_seed, &outcomes[m].stats);
        }
    });

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto& mix = mixes[m];
        for (std::size_t r = 0; r < 3; ++r) {
            const Row& row = rows[r];
            const RunScore& clean = outcomes[m].clean[r];
            const RunScore& faulted = outcomes[m].faulted[r];
            const double retained =
                faulted.balanced() / clean.balanced();
            table.addRow({mix.label, row.label,
                          TablePrinter::num(clean.balanced(), 4),
                          TablePrinter::num(faulted.balanced(), 4),
                          bench::pct(retained)});
            if (csv_file)
                csv_file->addRow(
                    {mix.label, row.label,
                     TablePrinter::num(clean.balanced(), 4),
                     TablePrinter::num(faulted.balanced(), 4),
                     TablePrinter::num(retained * 100.0, 2)});
            if (std::string(row.policy) == "SATORI") {
                worst_hardened = std::min(worst_hardened, retained);
                sum_hardened += retained;
            } else if (std::string(row.policy) == "SATORI-vanilla") {
                sum_vanilla += retained;
            }
        }
        std::printf("  %s faults: %s\n", mix.label.c_str(),
                    outcomes[m].stats.toString().c_str());
    }
    table.print();

    const auto n = static_cast<double>(mixes.size());
    std::printf("\nHardened retention: mean %s, worst %s "
                "(target >= 85%%)\n",
                bench::pct(sum_hardened / n).c_str(),
                bench::pct(worst_hardened).c_str());
    std::printf("Vanilla retention:  mean %s\n",
                bench::pct(sum_vanilla / n).c_str());
    std::printf("Hardening advantage: %+.1f points of retained "
                "balanced objective\n",
                100.0 * (sum_hardened - sum_vanilla) / n);

    const bool pass = worst_hardened >= 0.85 &&
                      sum_hardened > sum_vanilla;
    std::printf("\n%s\n", pass ? "PASS: hardened SATORI meets the "
                                 "85% retention target and beats "
                                 "vanilla under faults."
                               : "FAIL: resilience target missed.");
    return pass ? 0 : 1;
}
