/**
 * @file
 * Fig. 1: the throughput-optimal configuration changes significantly
 * and frequently over time for all shared resources (the paper
 * observes >20% drift for a five-job PARSEC mix).
 *
 * We track the exhaustive throughput-optimal configuration of the
 * canonical five-job mix at one-second granularity and report the
 * per-resource allocation trajectory plus the maximum drift.
 */

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 1: optimal-throughput configuration drift over time",
        "Paper: the optimal configuration changes by more than 20% "
        "during the run, for every resource.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();
    const Seconds duration = opt.full ? 120.0 : 60.0;

    sim::SimulatedServer server = harness::makeServer(platform, mix);
    harness::OfflineEvaluator eval(server);

    TablePrinter table({"t (s)", "cores (per job)", "llc ways",
                        "mem bw", "drift vs t=0"});
    std::vector<std::string> csv_rows;

    Configuration first;
    double max_drift = 0.0;
    const int total_units = 10 + 11 + 10;

    auto row_of = [](const Configuration& c, ResourceIndex r) {
        std::string s;
        for (std::size_t j = 0; j < c.numJobs(); ++j) {
            if (j)
                s += ",";
            s += std::to_string(c.units(r, j));
        }
        return s;
    };

    std::optional<CsvWriter> csv_file;
    CsvWriter* csv = nullptr;
    if (opt.csv) {
        csv_file.emplace("bench_fig01_drift.csv",
                         std::vector<std::string>{"t", "cores", "ways",
                                                  "bw", "drift_pct"});
        csv = &*csv_file;
    }

    for (Seconds t = 0.0; t < duration; t += 1.0) {
        const auto& best =
            eval.bestFor(server.phaseSignature(), 1.0, 0.0);
        // t is loop-carried from exactly 0.0; first-iteration test.
        // satori-analyzer: allow(num-float-eq)
        if (t == 0.0)
            first = best.config;
        // Drift: fraction of all units allocated differently vs t=0.
        const double drift =
            static_cast<double>(
                Configuration::l1Distance(first, best.config)) /
            (2.0 * total_units);
        max_drift = std::max(max_drift, drift);
        if (static_cast<int>(t) % 5 == 0) {
            table.addRow({TablePrinter::num(t, 0),
                          row_of(best.config, 0), row_of(best.config, 1),
                          row_of(best.config, 2), bench::pct(drift)});
        }
        if (csv) {
            csv->addRow({TablePrinter::num(t, 1), row_of(best.config, 0),
                         row_of(best.config, 1), row_of(best.config, 2),
                         TablePrinter::num(drift * 100.0, 2)});
        }
        // Advance one second of co-located execution under the
        // throughput-optimal configuration (as the paper's offline
        // trace does).
        server.setConfiguration(best.config);
        for (int i = 0; i < 10; ++i)
            server.step(0.1);
    }
    table.print();
    std::printf("\nMax configuration drift vs t=0: %s "
                "(paper: >20%%)\n",
                bench::pct(max_drift).c_str());
    std::printf("Distinct optimal configurations searched: %zu\n",
                eval.searchesPerformed());
    return 0;
}
