/**
 * @file
 * Fig. 3: the re-balancing opportunity. At different times, the same
 * throughput difference between two configurations comes with
 * fairness differences in *opposite* directions - so temporarily
 * prioritizing one goal and later the other nets a gain in one goal
 * without sacrificing the other.
 *
 * We scan the canonical mix's phase signatures for two snapshots and
 * two configuration pairs exhibiting the paper's pattern and print
 * them.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 3: temporal re-balancing opportunity",
        "Paper: equal throughput deltas pair with opposite-direction "
        "fairness deltas at different times (and vice versa).",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    harness::OfflineEvaluator eval(server);
    Rng rng(17);
    ConfigurationSpace space(platform, mix.jobs.size());

    // Collect distinct phase signatures over a run.
    std::vector<std::vector<std::size_t>> sigs;
    const int horizon = opt.full ? 1200 : 600;
    for (int i = 0; i < horizon; ++i) {
        const auto sig = server.phaseSignature();
        if (sigs.empty() || sigs.back() != sig)
            sigs.push_back(sig);
        server.step(0.1);
    }
    std::printf("observed %zu distinct phase signatures\n\n",
                sigs.size());
    if (sigs.size() < 2) {
        std::printf("run too short to observe a phase change; rerun "
                    "with --full\n");
        return 0;
    }

    // Search random configuration pairs for the Fig. 3 pattern:
    // similar dT at two different signatures, with dF of opposite
    // sign. (The paper picks illustrative pairs the same way.)
    struct Sample
    {
        Configuration a, b;
        double dt, df;
        std::size_t sig_index;
    };
    std::vector<Sample> samples;
    for (std::size_t s = 0; s < sigs.size(); ++s) {
        for (int trial = 0; trial < 400; ++trial) {
            Sample smp;
            smp.a = space.sample(rng);
            smp.b = space.sample(rng);
            const auto [ta, fa] = eval.metricsFor(smp.a, sigs[s]);
            const auto [tb, fb] = eval.metricsFor(smp.b, sigs[s]);
            smp.dt = tb - ta;
            smp.df = fb - fa;
            smp.sig_index = s;
            if (std::abs(smp.dt) > 0.01)
                samples.push_back(std::move(smp));
        }
    }

    // Find a pair of samples from different signatures with matching
    // dT but opposite dF.
    bool found = false;
    for (std::size_t i = 0; i < samples.size() && !found; ++i) {
        for (std::size_t j = i + 1; j < samples.size(); ++j) {
            const auto& x = samples[i];
            const auto& y = samples[j];
            if (x.sig_index == y.sig_index)
                continue;
            if (std::abs(x.dt - y.dt) < 0.005 && x.df * y.df < 0.0 &&
                std::abs(x.df) > 0.01 && std::abs(y.df) > 0.01) {
                TablePrinter table({"snapshot", "config pair",
                                    "d throughput", "d fairness"});
                table.addRow({"dt1 (sig " +
                                  std::to_string(x.sig_index) + ")",
                              "Ca->Cb", TablePrinter::num(x.dt, 3),
                              TablePrinter::num(x.df, 3)});
                table.addRow({"dt2 (sig " +
                                  std::to_string(y.sig_index) + ")",
                              "Cc->Cd", TablePrinter::num(y.dt, 3),
                              TablePrinter::num(y.df, 3)});
                table.print();
                std::printf(
                    "\nSame throughput delta (%.3f vs %.3f) but "
                    "opposite fairness deltas (%+.3f vs %+.3f):\n"
                    "prioritizing throughput at dt1 and fairness at "
                    "dt2 nets %+0.3f fairness at zero throughput "
                    "cost - the opportunity SATORI exploits "
                    "(Observation 3).\n",
                    x.dt, y.dt, x.df, y.df,
                    std::abs(x.df) + std::abs(y.df) -
                        std::abs(x.df + y.df));
                found = true;
                break;
            }
        }
    }
    if (!found)
        std::printf("no matching pair found at this scan budget; "
                    "rerun with --full\n");
    return found ? 0 : 0;
}
