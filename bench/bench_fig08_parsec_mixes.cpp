/**
 * @file
 * Fig. 8: per-mix throughput and fairness for all 21 five-job PARSEC
 * mixes (paper: SATORI is consistently best, by up to 20 %-points
 * throughput / 10 fairness over PARTIES, never worse overall).
 * Results are sorted by SATORI's throughput, matching the figure.
 */

#include <algorithm>
#include <cstdio>
#include <optional>
#include <numeric>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 8: per-mix PARSEC results, % of Balanced Oracle",
        "Paper: SATORI consistently outperforms across all 21 mixes.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;

    const auto policies = harness::comparisonPolicyNames();
    const auto comps = bench::sweepComparisons(
        platform, mixes, policies, duration, 42, 1, opt.threads);

    // Sort mixes by SATORI throughput (ascending), as in the figure.
    std::vector<std::size_t> order(comps.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return comps[a].score("SATORI").throughput_pct <
                         comps[b].score("SATORI").throughput_pct;
              });

    TablePrinter table({"mix", "workloads", "SATORI T/F",
                        "PARTIES T/F", "dCAT T/F", "CoPart T/F",
                        "Random T/F"});
    std::optional<CsvWriter> csv_opt;
    if (opt.csv)
        csv_opt.emplace("bench_fig08_parsec_mixes.csv",
                        std::vector<std::string>{"mix", "policy", "throughput_pct", "fairness_pct"});
    CsvWriter* csv = opt.csv ? &*csv_opt : nullptr;
    auto cell = [](const harness::PolicyScore& s) {
        return bench::pct(s.throughput_pct) + "/" +
               bench::pct(s.fairness_pct);
    };
    int wins = 0;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const auto& comp = comps[order[rank]];
        table.addRow({std::to_string(rank), comp.mix_label,
                      cell(comp.score("SATORI")),
                      cell(comp.score("PARTIES")),
                      cell(comp.score("dCAT")),
                      cell(comp.score("CoPart")),
                      cell(comp.score("Random"))});
        const auto& s = comp.score("SATORI");
        const auto& p = comp.score("PARTIES");
        wins += (s.throughput_pct + s.fairness_pct >=
                 p.throughput_pct + p.fairness_pct);
        if (opt.csv) {
            for (const auto& name : policies) {
                const auto& sc = comp.score(name);
                csv->addRow({comp.mix_label, name,
                            TablePrinter::num(sc.throughput_pct * 100, 2),
                            TablePrinter::num(sc.fairness_pct * 100, 2)});
            }
        }
    }
    table.print();
    std::printf("\nSATORI beats PARTIES on combined T+F in %d of %zu "
                "mixes (paper: all)\n",
                wins, comps.size());
    return 0;
}
