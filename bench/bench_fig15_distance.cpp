/**
 * @file
 * Fig. 15: (a) the configurations SATORI sets are the closest to the
 * Balanced Oracle's (competitors at >= 1.3x SATORI's distance);
 * (b) SATORI tracks the oracle through phase changes better than
 * PARTIES.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

namespace {

/** Mean Euclidean distance of a policy's configs from the oracle's. */
double
meanOracleDistance(const PlatformSpec& platform,
                   const workloads::JobMix& mix,
                   const std::string& policy_name, Seconds duration,
                   std::uint64_t seed, TimeSeries* series = nullptr)
{
    sim::SimulatedServer server =
        harness::makeServer(platform, mix, seed);
    harness::OfflineEvaluator eval(server);
    auto policy = harness::makePolicy(policy_name, server);
    sim::PerfMonitor monitor(server);
    OnlineStats dist;
    const auto steps = static_cast<int>(duration / 0.1);
    for (int i = 0; i < steps; ++i) {
        const auto obs = monitor.observe(0.1);
        const auto& best =
            eval.bestFor(server.phaseSignature(), 0.5, 0.5);
        const double d =
            Configuration::distance(obs.config, best.config);
        dist.add(d);
        if (series)
            series->add(obs.time, d);
        server.setConfiguration(policy->decide(obs));
        if (i % 100 == 99)
            monitor.resetBaseline();
    }
    return dist.mean();
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 15: configuration distance from the Balanced Oracle",
        "Paper: SATORI is closest; every other technique is at least "
        "1.3x SATORI's distance (max possible distance ~13).",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 40.0 : 20.0;
    const std::size_t stride = opt.full ? 3 : 7;

    // --- (a) Mean distance per technique, averaged over mixes --------
    const std::vector<std::string> policies{"SATORI", "PARTIES",
                                            "CoPart", "dCAT", "Random"};
    TablePrinter table({"technique", "mean distance", "x SATORI"});
    std::vector<double> means;
    for (const auto& name : policies) {
        OnlineStats acc;
        for (std::size_t m = 0; m < mixes.size(); m += stride) {
            acc.add(meanOracleDistance(platform, mixes[m], name,
                                       duration, 42 + m));
        }
        means.push_back(acc.mean());
    }
    for (std::size_t i = 0; i < policies.size(); ++i) {
        table.addRow({policies[i], TablePrinter::num(means[i], 2),
                      TablePrinter::num(means[i] / means[0], 2)});
    }
    table.print();

    // --- (b) Distance over time through phase changes ----------------
    std::printf("\nDistance trajectory on %s (SATORI vs PARTIES):\n",
                bench::canonicalParsecMix().label.c_str());
    TimeSeries satori_series, parties_series;
    meanOracleDistance(platform, bench::canonicalParsecMix(), "SATORI",
                       opt.full ? 60.0 : 30.0, 42, &satori_series);
    meanOracleDistance(platform, bench::canonicalParsecMix(), "PARTIES",
                       opt.full ? 60.0 : 30.0, 42, &parties_series);
    TablePrinter traj({"t (s)", "SATORI dist", "PARTIES dist"});
    for (std::size_t i = 0; i < satori_series.size(); i += 25) {
        traj.addRow(
            {TablePrinter::num(satori_series.times()[i], 1),
             TablePrinter::num(satori_series.values()[i], 2),
             TablePrinter::num(parties_series.values()[i], 2)});
    }
    traj.print();
    std::printf("\nTime-averaged: SATORI %.2f vs PARTIES %.2f\n",
                satori_series.mean(), parties_series.mean());
    return 0;
}
