/**
 * @file
 * Sec. IV claim: "SATORI provides similar improvements over competing
 * techniques for other commonly-used objective metrics" because its
 * design is metric-independent. This experiment re-runs the SATORI
 * vs PARTIES vs Random comparison under geometric-mean-speedup
 * throughput and 1-CoV fairness instead of the defaults.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

namespace {

void
runWithMetrics(const char* label, ThroughputMetric tmetric,
               FairnessMetric fmetric, Seconds duration,
               std::size_t stride)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);

    harness::ExperimentOptions eopt;
    eopt.duration = duration;
    eopt.tmetric = tmetric;
    eopt.fmetric = fmetric;

    core::SatoriOptions sopt;
    sopt.objective = core::ObjectiveSpec(tmetric, fmetric);

    std::vector<harness::MixComparison> comps;
    for (std::size_t m = 0; m < mixes.size(); m += stride) {
        comps.push_back(harness::comparePolicies(
            platform, mixes[m], {"Random", "PARTIES", "SATORI"}, eopt,
            42 + m, sopt));
    }

    std::printf("%s:\n", label);
    TablePrinter table({"technique", "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    for (const auto* name : {"Random", "PARTIES", "SATORI"}) {
        table.addRow({name,
                      bench::pct(harness::meanThroughputPct(comps, name)),
                      bench::pct(harness::meanFairnessPct(comps, name))});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Sec. IV: objective metrics do not change the conclusions",
        "Paper: SATORI's core ideas are not metric-dependent; similar "
        "improvements hold for other commonly-used metrics.",
        opt);

    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 2 : 5;

    runWithMetrics("Default metrics (sum-IPS + Jain)",
                   ThroughputMetric::SumIps, FairnessMetric::JainIndex,
                   duration, stride);
    runWithMetrics("Geomean-speedup throughput + Jain fairness",
                   ThroughputMetric::GeomeanSpeedup,
                   FairnessMetric::JainIndex, duration, stride);
    runWithMetrics("Sum-IPS throughput + (1 - CoV) fairness",
                   ThroughputMetric::SumIps,
                   FairnessMetric::OneMinusCov, duration, stride);
    std::printf("Expected shape: SATORI > PARTIES > Random under every "
                "metric combination.\n");
    return 0;
}
