/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries:
 * argument parsing (--full for paper-scale runs, --csv for data
 * export), canonical scenarios, and comparison sweeps.
 */

#ifndef SATORI_BENCH_BENCH_UTIL_HPP
#define SATORI_BENCH_BENCH_UTIL_HPP

#include <string>
#include <vector>

#include "satori/satori.hpp"

namespace satori {
namespace bench {

/** Command-line options common to all experiment binaries. */
struct BenchOptions
{
    bool full = false; ///< Paper-scale durations/mix counts.
    bool csv = false;  ///< Also write <bench>.csv next to the binary.

    /**
     * Worker threads for the scenario sweeps (0 = one per hardware
     * thread). Parallelism only reorders wall-clock work; each run's
     * seed and output slot derive from its scenario index, so the
     * printed numbers are identical at every thread count.
     */
    std::size_t threads = 1;
};

/** Parse --full / --csv / --threads N; else print usage and exit. */
[[nodiscard]] BenchOptions parseArgs(int argc, char** argv);

/** Print the standard experiment banner. */
void banner(const std::string& experiment, const std::string& claim,
            const BenchOptions& options);

/**
 * The five-job PARSEC mix used by the paper's characterization
 * figures (Figs. 1-3, 17-19).
 */
[[nodiscard]] workloads::JobMix canonicalParsecMix();

/**
 * Run the given policies plus the Balanced Oracle on every mix
 * (optionally strided) and return the normalized comparisons.
 *
 * @param duration Simulated seconds per run.
 * @param stride Evaluate every stride-th mix (1 = all).
 * @param threads Worker threads over the mixes (0 = hardware count);
 *   results are slot-indexed so the output order and values match the
 *   serial sweep exactly.
 */
[[nodiscard]] std::vector<harness::MixComparison> sweepComparisons(
    const PlatformSpec& platform,
    const std::vector<workloads::JobMix>& mixes,
    const std::vector<std::string>& policies, Seconds duration,
    std::uint64_t seed_base = 42, std::size_t stride = 1,
    std::size_t threads = 1);

/** "x.y%" formatting shorthand. */
[[nodiscard]] std::string pct(double fraction);

} // namespace bench
} // namespace satori

#endif // SATORI_BENCH_BENCH_UTIL_HPP
