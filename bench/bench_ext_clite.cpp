/**
 * @file
 * Sec. VI comparison with CLITE (the authors' HPCA'20 BO system for
 * latency-critical co-location): applied to throughput-oriented
 * workloads with two competing objectives, CLITE "performs similar
 * to PARTIES and underperforms SATORI by a similar margin" because
 * it neither separates per-goal records nor dynamically
 * re-prioritizes goals.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Sec. VI: CLITE in SATORI's problem context",
        "Paper: CLITE lands near PARTIES and below SATORI when used "
        "for throughput+fairness co-location.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 1 : 3;

    const auto comps = bench::sweepComparisons(
        platform, mixes, {"CLITE", "PARTIES", "SATORI"}, duration, 42,
        stride);

    TablePrinter table({"technique", "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    for (const auto* name : {"CLITE", "PARTIES", "SATORI"}) {
        table.addRow({name,
                      bench::pct(harness::meanThroughputPct(comps, name)),
                      bench::pct(harness::meanFairnessPct(comps, name))});
    }
    table.print();

    const double gap_t = harness::meanThroughputPct(comps, "SATORI") -
                         harness::meanThroughputPct(comps, "CLITE");
    const double gap_f = harness::meanFairnessPct(comps, "SATORI") -
                         harness::meanFairnessPct(comps, "CLITE");
    std::printf("\nSATORI - CLITE: %+.1f / %+.1f %%-points (paper: a "
                "PARTIES-like margin)\n",
                gap_t * 100.0, gap_f * 100.0);
    return 0;
}
