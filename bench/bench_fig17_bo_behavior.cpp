/**
 * @file
 * Fig. 17: the dynamically re-weighted objective (a) reaches higher
 * objective values than the static variant, (b) without making the
 * underlying proxy model change more erratically - the % change of
 * the GP's estimates stays in the same range for SATORI and
 * SATORI-without-prioritization.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

namespace {

struct Trace
{
    TimeSeries objective;
    TimeSeries proxy_change;
};

Trace
traceController(const PlatformSpec& platform,
                const workloads::JobMix& mix, core::GoalMode mode,
                int steps)
{
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    core::SatoriOptions opt;
    opt.mode = mode;
    core::SatoriController satori(platform, server.numJobs(), opt);
    sim::PerfMonitor monitor(server);
    Trace trace;
    for (int i = 0; i < steps; ++i) {
        const auto obs = monitor.observe(0.1);
        server.setConfiguration(satori.decide(obs));
        const auto& d = satori.diagnostics();
        trace.objective.add(obs.time, d.objective_value);
        if (!d.settled && d.proxy_change_pct > 0.0)
            trace.proxy_change.add(obs.time, d.proxy_change_pct);
        if (i % 100 == 99)
            monitor.resetBaseline();
    }
    return trace;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 17: objective value and proxy-model behaviour",
        "Paper: SATORI's objective trajectory is higher than the "
        "static variant's; proxy-model % change stays in the same "
        "range for both.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();
    const int steps = opt.full ? 600 : 300;

    const Trace dynamic = traceController(platform, mix,
                                          core::GoalMode::Balanced,
                                          steps);
    const Trace static_w = traceController(platform, mix,
                                           core::GoalMode::StaticEqual,
                                           steps);

    TablePrinter table({"t (s)", "objective (SATORI)",
                        "objective (static)"});
    for (std::size_t i = 0; i < dynamic.objective.size(); i += 25) {
        table.addRow(
            {TablePrinter::num(dynamic.objective.times()[i], 1),
             TablePrinter::num(dynamic.objective.values()[i], 3),
             TablePrinter::num(static_w.objective.values()[i], 3)});
    }
    table.print();
    std::printf("\n(a) mean objective: SATORI %.3f vs static %.3f\n",
                dynamic.objective.mean(), static_w.objective.mean());

    std::printf("\n(b) proxy-model mean-estimate change per iteration "
                "(exploration intervals only):\n");
    auto summarize = [](const TimeSeries& s) {
        OnlineStats stats;
        for (double v : s.values())
            stats.add(v);
        return stats;
    };
    const auto d_stats = summarize(dynamic.proxy_change);
    const auto s_stats = summarize(static_w.proxy_change);
    TablePrinter proxy({"variant", "mean %", "max %", "samples"});
    proxy.addRow({"SATORI (dynamic)", TablePrinter::num(d_stats.mean(), 2),
                  TablePrinter::num(d_stats.count() ? d_stats.max() : 0.0,
                                    2),
                  std::to_string(d_stats.count())});
    proxy.addRow({"SATORI w/o prioritization",
                  TablePrinter::num(s_stats.mean(), 2),
                  TablePrinter::num(s_stats.count() ? s_stats.max() : 0.0,
                                    2),
                  std::to_string(s_stats.count())});
    proxy.print();
    std::printf("\nSame range of proxy change => the moving goal post "
                "keeps the BO process controlled (Sec. III-C).\n");
    return 0;
}
