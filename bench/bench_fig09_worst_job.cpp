/**
 * @file
 * Fig. 9: the worst-performing job in a mix does much better under
 * SATORI than under the other techniques, for every mix and on
 * average (paper: SATORI's worst job reaches ~87% of the Balanced
 * Oracle's worst-job performance).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 9: worst-performing job, % of Balanced Oracle",
        "Paper: SATORI's worst job averages 87% of the oracle's, the "
        "best among all techniques.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 1 : 2;

    const auto policies = harness::comparisonPolicyNames();
    const auto comps = bench::sweepComparisons(platform, mixes,
                                               policies, duration, 42,
                                               stride);

    TablePrinter table({"mix", "SATORI", "PARTIES", "dCAT", "CoPart",
                        "Random"});
    for (const auto& comp : comps) {
        table.addRow({comp.mix_label,
                      bench::pct(comp.score("SATORI").worst_job_pct),
                      bench::pct(comp.score("PARTIES").worst_job_pct),
                      bench::pct(comp.score("dCAT").worst_job_pct),
                      bench::pct(comp.score("CoPart").worst_job_pct),
                      bench::pct(comp.score("Random").worst_job_pct)});
    }
    table.print();

    std::printf("\nAverage worst-job performance (%% of oracle):\n");
    TablePrinter avg({"technique", "worst job (% of oracle)", "paper"});
    const std::vector<std::pair<std::string, std::string>> expected{
        {"SATORI", "~87%"},   {"PARTIES", "lower"},
        {"dCAT", "lower"},    {"CoPart", "lower"},
        {"Random", "lowest"}};
    for (const auto& [name, note] : expected) {
        avg.addRow({name,
                    bench::pct(harness::meanWorstJobPct(comps, name)),
                    note});
    }
    avg.print();
    return 0;
}
