/**
 * @file
 * Fig. 14: (a) the equalization and prioritization weight components
 * re-balance dynamically over time while averaging 0.5 per
 * equalization period; (b) dynamic weight prioritization vs the
 * static 0.5/0.5 variant across mixes (paper: up to 10% benefit).
 */

#include <cstdio>
#include <optional>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 14: dynamic weight re-balancing",
        "Paper: weights deviate up to 50% short-term, average 0.5 per "
        "T_E; dynamic beats static weights by up to 10%.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mix = bench::canonicalParsecMix();

    // --- (a) Weight-component timeline -------------------------------
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    core::SatoriController satori(platform, server.numJobs());
    sim::PerfMonitor monitor(server);

    TablePrinter timeline({"t (s)", "W_T", "W_F", "W_TE", "W_TP",
                           "blend (t_e/T_E)"});
    std::optional<CsvWriter> csv_opt;
    if (opt.csv)
        csv_opt.emplace("bench_fig14_weights.csv",
                        std::vector<std::string>{"t", "w_t", "w_f", "w_te", "w_tp", "blend"});
    CsvWriter* csv = opt.csv ? &*csv_opt : nullptr;
    OnlineStats wt_stats;
    const int steps = opt.full ? 600 : 300;
    for (int i = 0; i < steps; ++i) {
        const auto obs = monitor.observe(0.1);
        server.setConfiguration(satori.decide(obs));
        const auto& w = satori.diagnostics().weights;
        wt_stats.add(w.w_t);
        if (i % 20 == 0) {
            timeline.addRow({TablePrinter::num(obs.time, 1),
                             TablePrinter::num(w.w_t, 3),
                             TablePrinter::num(w.w_f, 3),
                             TablePrinter::num(w.w_te, 3),
                             TablePrinter::num(w.w_tp, 3),
                             TablePrinter::num(w.blend, 2)});
        }
        if (opt.csv)
            csv->addRow({TablePrinter::num(obs.time, 1),
                        TablePrinter::num(w.w_t, 4),
                        TablePrinter::num(w.w_f, 4),
                        TablePrinter::num(w.w_te, 4),
                        TablePrinter::num(w.w_tp, 4),
                        TablePrinter::num(w.blend, 3)});
        if (i % 100 == 99)
            monitor.resetBaseline();
    }
    timeline.print();
    std::printf("\nLong-run mean W_T = %.3f (paper: 0.5 by design), "
                "range [%.2f, %.2f] (bounds 0.25/0.75)\n\n",
                wt_stats.mean(), wt_stats.min(), wt_stats.max());

    // --- (b) Dynamic vs static weights across mixes -------------------
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 1 : 3;
    const auto comps = bench::sweepComparisons(
        platform, mixes, {"SATORI", "SATORI-static"}, duration, 42,
        stride);

    TablePrinter table({"variant", "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    for (const auto* name : {"SATORI", "SATORI-static"}) {
        table.addRow({name,
                      bench::pct(harness::meanThroughputPct(comps, name)),
                      bench::pct(harness::meanFairnessPct(comps, name))});
    }
    table.print();
    std::printf("\nDynamic - static: %+.1f %%-points throughput, "
                "%+.1f %%-points fairness (paper: up to +10 on both)\n",
                (harness::meanThroughputPct(comps, "SATORI") -
                 harness::meanThroughputPct(comps, "SATORI-static")) *
                    100.0,
                (harness::meanFairnessPct(comps, "SATORI") -
                 harness::meanFairnessPct(comps, "SATORI-static")) *
                    100.0);
    return 0;
}
