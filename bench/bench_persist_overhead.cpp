/**
 * @file
 * Durability overhead (EXPERIMENTS.md sec. R3): the Fig. 7-style
 * SATORI run timed without checkpointing, with the interval WAL only,
 * and with WAL plus snapshots on the default 50-interval cadence.
 *
 * The gate is against the control loop's real-time budget: SATORI
 * decides every 100 ms, so durability must add < 5% of that interval
 * (5 ms) per interval. The simulator compresses a 100 ms interval
 * into tens of microseconds of wall time, which makes raw wall-clock
 * percentages on the compressed run meaningless as a deployment
 * metric - a 10 us WAL append is 14% of a 70 us simulated interval
 * but 0.01% of the real one. Both views are reported; the per-
 * interval absolute cost is what fails the run (non-zero exit).
 *
 * Timing uses obs::steadyNowNs() - the steady-clock read lives in the
 * allowlisted obs layer, not here.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "satori/persist/checkpoint.hpp"

using namespace satori;

namespace {

enum class PersistMode
{
    Off,
    WalOnly,
    Full, ///< WAL + snapshots every 50 intervals.
};

const char*
modeName(PersistMode mode)
{
    switch (mode) {
      case PersistMode::Off:
        return "no checkpointing";
      case PersistMode::WalOnly:
        return "WAL only";
      case PersistMode::Full:
        return "WAL + snapshots (every 50)";
    }
    return "?";
}

/** One timed SATORI run over the canonical mix; returns seconds. */
double
runOnce(PersistMode mode, Seconds duration, const std::string& dir)
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const workloads::JobMix mix = bench::canonicalParsecMix();
    sim::SimulatedServer server = harness::makeServer(platform, mix, 42);
    auto policy = harness::makePolicy("SATORI", server);
    harness::ExperimentOptions opt;
    opt.duration = duration;

    std::optional<persist::Checkpointer> ckpt;
    if (mode != PersistMode::Off) {
        persist::CheckpointOptions copt;
        copt.dir = dir;
        copt.every = mode == PersistMode::WalOnly ? 0 : 50;
        ckpt.emplace(copt, "bench-persist-overhead");
        opt.checkpoint = &*ckpt;
    }

    const std::uint64_t t0 = obs::steadyNowNs();
    (void)harness::ExperimentRunner(opt).run(server, *policy, mix.label);
    const std::uint64_t t1 = obs::steadyNowNs();
    return static_cast<double>(t1 - t0) / 1e9;
}

/** Best-of-N wall time, the usual noise-robust estimator. */
double
bestOf(PersistMode mode, Seconds duration, int repeats,
       const std::string& dir)
{
    double best = runOnce(mode, duration, dir);
    for (int r = 1; r < repeats; ++r)
        best = std::min(best, runOnce(mode, duration, dir));
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Durability overhead: SATORI run, checkpointing off vs on",
        "Gate: WAL + snapshots must add < 5% of the 100 ms interval.",
        opt);

    const Seconds duration = opt.full ? 60.0 : 20.0;
    const int repeats = opt.full ? 5 : 3;
    const std::string dir = "/tmp/satori_bench_persist_overhead";
    const double intervals = duration / kDefaultIntervalSeconds;

    const double t_off = bestOf(PersistMode::Off, duration, repeats, dir);
    const double t_wal =
        bestOf(PersistMode::WalOnly, duration, repeats, dir);
    const double t_full =
        bestOf(PersistMode::Full, duration, repeats, dir);
    std::filesystem::remove_all(dir);

    // Per-interval durability cost, amortized over the run.
    auto us_per_interval = [&](double t) {
        return std::max(0.0, t - t_off) / intervals * 1e6;
    };
    // Overhead on the deployed loop, whose interval is 100 ms wall.
    auto pct_of_budget = [&](double t) {
        return 100.0 * (us_per_interval(t) / 1e6) /
               kDefaultIntervalSeconds;
    };

    TablePrinter table({"mode", "best wall s", "us/interval",
                        "% of 100 ms interval"});
    table.addRow({modeName(PersistMode::Off),
                  TablePrinter::num(t_off, 4), "-", "-"});
    table.addRow({modeName(PersistMode::WalOnly),
                  TablePrinter::num(t_wal, 4),
                  TablePrinter::num(us_per_interval(t_wal), 2),
                  TablePrinter::num(pct_of_budget(t_wal), 4)});
    table.addRow({modeName(PersistMode::Full),
                  TablePrinter::num(t_full, 4),
                  TablePrinter::num(us_per_interval(t_full), 2),
                  TablePrinter::num(pct_of_budget(t_full), 4)});
    table.print();

    const double overhead_pct = pct_of_budget(t_full);
    if (overhead_pct >= 5.0) {
        std::printf("\nFAIL: durability costs %.2f%% of the 100 ms "
                    "control interval (>= 5%% budget)\n",
                    overhead_pct);
        return 1;
    }
    std::printf("\nOK: durability costs %.4f%% of the 100 ms control "
                "interval (< 5%% budget)\n",
                overhead_pct);
    return 0;
}
