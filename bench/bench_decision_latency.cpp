/**
 * @file
 * Decision-loop latency microbenchmark: per-interval proxy-model
 * update (fit) and acquisition-maximization cost as the training set
 * grows, measured for both engine paths:
 *
 *   full - the pre-optimization behavior (EngineOptions::incremental
 *          = false: every update refactorizes from scratch, O(n^3))
 *          with the acquisition loop predicting one candidate at a
 *          time, exactly as suggestIndex() used to;
 *   fast - the incremental path (rank-1 Cholesky appends, O(n^2))
 *          with the batched suggestIndex().
 *
 * Both paths produce bit-identical decisions (tests/perf_path_test
 * pins that); this bench quantifies the latency gap and emits
 * BENCH_decision_latency.json so CI can (a) require the fast path's
 * model update (fit) to stay >= 5x quicker than a full refit at the
 * largest sample count - a machine-independent ratio - and (b) flag a
 * > 2x p95 regression of the fast path against the checked-in
 * baseline.
 *
 * The gated ratio is fit p95, not end-to-end p95, deliberately. The
 * acquisition step's cost is dominated by the K* kernel evaluations
 * (n * candidates Matern evals), which both paths must perform and
 * which batching cannot remove, and the "full" emulation below runs
 * inside the current build, so it inherits every shared-path speedup
 * (inlined matrix element access, batched kernel rows) that this
 * change also delivered. Gating end-to-end would therefore punish
 * improvements to the shared code. The fit ratio isolates the
 * O(n^3) -> O(n^2) algorithmic change and is stable across builds;
 * the end-to-end ratio is still printed and recorded for context.
 *
 * Timing uses obs::steadyNowNs(), the library's one sanctioned
 * steady-clock entry point; nothing measured here feeds back into
 * decisions.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "satori/satori.hpp"
#include "satori/obs/tracer.hpp"

using namespace satori;

namespace {

constexpr std::size_t kDims = 10;
constexpr std::size_t kCandidates = 64;
const std::size_t kSampleCounts[] = {25, 50, 100, 200};

struct PathStats
{
    std::vector<double> fit_ns;
    std::vector<double> acq_ns;
    std::vector<double> total_ns;
};

/** p50/p95 summary of one (path, n) cell. */
struct Point
{
    std::string path;
    std::size_t n = 0;
    double fit_p50 = 0.0, fit_p95 = 0.0;
    double acq_p50 = 0.0, acq_p95 = 0.0;
    double total_p50 = 0.0, total_p95 = 0.0;
};

RealVec
randomInput(Rng& rng)
{
    RealVec x(kDims);
    for (double& v : x)
        v = rng.uniform();
    return x;
}

/** Smooth synthetic objective with mild observation noise. */
double
syntheticTarget(const RealVec& x, Rng& rng)
{
    double d2 = 0.0;
    for (const double v : x)
        d2 += (v - 0.5) * (v - 0.5);
    return -d2 + 0.05 * rng.gaussian();
}

bo::EngineOptions
engineOptions(bool incremental)
{
    bo::EngineOptions opt;
    opt.length_scale_grid.clear(); // isolate the per-update fit cost
    opt.incremental = incremental;
    return opt;
}

/**
 * One timed decision interval at sample count @p n: append the n-th
 * sample (fit) and maximize acquisition over the candidate set. The
 * full path emulates the pre-optimization engine exactly: full refit
 * plus one predict() per candidate.
 */
void
runTrial(bool fast, std::size_t n, std::uint64_t seed, PathStats& stats)
{
    Rng rng(seed);
    std::vector<RealVec> inputs;
    std::vector<double> targets;
    inputs.reserve(n);
    targets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        inputs.push_back(randomInput(rng));
        targets.push_back(syntheticTarget(inputs.back(), rng));
    }
    std::vector<RealVec> candidates;
    candidates.reserve(kCandidates);
    for (std::size_t c = 0; c < kCandidates; ++c)
        candidates.push_back(randomInput(rng));

    bo::BoEngine engine(engineOptions(fast));
    std::vector<RealVec> warm(inputs.begin(), inputs.end() - 1);
    std::vector<double> warm_y(targets.begin(), targets.end() - 1);
    engine.setSamples(warm, warm_y);

    const std::uint64_t t0 = obs::steadyNowNs();
    engine.addSample(inputs.back(), targets.back());
    const std::uint64_t t1 = obs::steadyNowNs();
    std::size_t pick = 0;
    if (fast) {
        pick = engine.suggestIndex(candidates);
    } else {
        // The pre-optimization acquisition loop: one GP solve per
        // candidate.
        const double best = engine.bestObserved();
        double best_score = -1e300;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const auto pred = engine.predict(candidates[c]);
            const double score = bo::acquisition(
                engine.options().acquisition, pred, best,
                engine.options().xi, engine.options().ucb_beta);
            if (score > best_score) {
                best_score = score;
                pick = c;
            }
        }
    }
    const std::uint64_t t2 = obs::steadyNowNs();
    // Keep the optimizer honest about the chosen index.
    if (pick >= candidates.size())
        std::abort();

    stats.fit_ns.push_back(static_cast<double>(t1 - t0));
    stats.acq_ns.push_back(static_cast<double>(t2 - t1));
    stats.total_ns.push_back(static_cast<double>(t2 - t0));
}

Point
summarize(const std::string& path, std::size_t n, const PathStats& s)
{
    Point p;
    p.path = path;
    p.n = n;
    p.fit_p50 = percentile(s.fit_ns, 50.0);
    p.fit_p95 = percentile(s.fit_ns, 95.0);
    p.acq_p50 = percentile(s.acq_ns, 50.0);
    p.acq_p95 = percentile(s.acq_ns, 95.0);
    p.total_p50 = percentile(s.total_ns, 50.0);
    p.total_p95 = percentile(s.total_ns, 95.0);
    return p;
}

void
writeJson(const std::string& file_path, const std::vector<Point>& points,
          double fit_speedup, double total_speedup)
{
    std::ofstream out(file_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", file_path.c_str());
        std::exit(1);
    }
    out << "{\n";
    out << "  \"bench\": \"decision_latency\",\n";
    out << "  \"dims\": " << kDims << ",\n";
    out << "  \"candidates\": " << kCandidates << ",\n";
    out << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "    {\"path\": \"%s\", \"n\": %zu, "
            "\"fit_p50_ns\": %.0f, \"fit_p95_ns\": %.0f, "
            "\"acq_p50_ns\": %.0f, \"acq_p95_ns\": %.0f, "
            "\"total_p50_ns\": %.0f, \"total_p95_ns\": %.0f}%s\n",
            p.path.c_str(), p.n, p.fit_p50, p.fit_p95, p.acq_p50,
            p.acq_p95, p.total_p50, p.total_p95,
            i + 1 < points.size() ? "," : "");
        out << line;
    }
    out << "  ],\n";
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "  \"speedup_p95_fit_at_max_n\": %.2f,\n"
                  "  \"speedup_p95_total_at_max_n\": %.2f\n",
                  fit_speedup, total_speedup);
    out << tail;
    out << "}\n";
}

/**
 * Minimal reader for the flat JSON this bench writes: returns
 * fast-path total_p95_ns keyed by n. No general JSON parsing - the
 * format is one point per line with fixed key order.
 */
std::map<std::size_t, double>
readBaselineFastP95(const std::string& file_path)
{
    std::ifstream in(file_path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     file_path.c_str());
        std::exit(1);
    }
    std::map<std::size_t, double> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"path\": \"fast\"") == std::string::npos)
            continue;
        std::size_t n = 0;
        double total_p95 = 0.0;
        const std::size_t n_at = line.find("\"n\": ");
        const std::size_t t_at = line.find("\"total_p95_ns\": ");
        if (n_at == std::string::npos || t_at == std::string::npos)
            continue;
        n = static_cast<std::size_t>(
            std::strtoul(line.c_str() + n_at + 5, nullptr, 10));
        total_p95 = std::strtod(line.c_str() + t_at + 16, nullptr);
        out[n] = total_p95;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool full = false;
    std::string json_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            full = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--full] [--json PATH] [--check BASELINE]\n"
                "  --full           more trials per point\n"
                "  --json PATH      write the results as JSON\n"
                "  --check BASELINE fail on >2x fast-path p95 regression\n"
                "                   vs BASELINE or <5x fit p95 speedup\n",
                argv[0]);
            return 2;
        }
    }

    const std::size_t trials = full ? 60 : 25;
    const std::size_t warmup = 3;

    std::printf("Decision-loop latency: full (O(n^3) refit + looped "
                "acquisition)\nvs fast (rank-1 append + batched "
                "acquisition); %zu dims, %zu candidates, %zu trials\n\n",
                kDims, kCandidates, trials);

    std::vector<Point> points;
    for (const bool fast : {false, true}) {
        for (const std::size_t n : kSampleCounts) {
            PathStats stats;
            PathStats discard;
            for (std::size_t t = 0; t < warmup + trials; ++t)
                runTrial(fast, n, 1000 + t,
                         t < warmup ? discard : stats);
            points.push_back(
                summarize(fast ? "fast" : "full", n, stats));
        }
    }

    TablePrinter table({"path", "n", "fit p50 us", "fit p95 us",
                        "acq p50 us", "acq p95 us", "total p95 us"});
    for (const Point& p : points) {
        table.addRow({p.path, std::to_string(p.n),
                      TablePrinter::num(p.fit_p50 / 1e3, 1),
                      TablePrinter::num(p.fit_p95 / 1e3, 1),
                      TablePrinter::num(p.acq_p50 / 1e3, 1),
                      TablePrinter::num(p.acq_p95 / 1e3, 1),
                      TablePrinter::num(p.total_p95 / 1e3, 1)});
    }
    table.print();

    const std::size_t max_n =
        kSampleCounts[std::size(kSampleCounts) - 1];
    double full_fit_p95 = 0.0, fast_fit_p95 = 0.0;
    double full_total_p95 = 0.0, fast_total_p95 = 0.0;
    for (const Point& p : points) {
        if (p.n != max_n)
            continue;
        if (p.path == "full") {
            full_fit_p95 = p.fit_p95;
            full_total_p95 = p.total_p95;
        } else {
            fast_fit_p95 = p.fit_p95;
            fast_total_p95 = p.total_p95;
        }
    }
    const double fit_speedup = full_fit_p95 / fast_fit_p95;
    const double total_speedup = full_total_p95 / fast_total_p95;
    std::printf("\nfit p95 speedup at n=%zu: %.1fx (target >= 5x); "
                "end-to-end: %.1fx\n",
                max_n, fit_speedup, total_speedup);

    if (!json_path.empty()) {
        writeJson(json_path, points, fit_speedup, total_speedup);
        std::printf("wrote %s\n", json_path.c_str());
    }

    bool ok = true;
    if (!check_path.empty()) {
        if (fit_speedup < 5.0) {
            std::printf("CHECK FAIL: fit speedup %.1fx < 5x\n",
                        fit_speedup);
            ok = false;
        }
        const auto baseline = readBaselineFastP95(check_path);
        for (const Point& p : points) {
            if (p.path != "fast")
                continue;
            const auto it = baseline.find(p.n);
            if (it == baseline.end())
                continue;
            if (p.total_p95 > 2.0 * it->second) {
                std::printf("CHECK FAIL: fast path n=%zu total p95 "
                            "%.0f ns > 2x baseline %.0f ns\n",
                            p.n, p.total_p95, it->second);
                ok = false;
            }
        }
        if (ok)
            std::printf("CHECK PASS: >= 5x fit speedup and fast-path "
                        "p95 within 2x of baseline\n");
    }
    return ok ? 0 : 1;
}
