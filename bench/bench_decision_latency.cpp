/**
 * @file
 * Decision-loop latency microbenchmark: per-interval proxy-model
 * update (fit) and acquisition-maximization cost as the training set
 * and the candidate set grow, measured across the engine's decision
 * paths:
 *
 *   full     - the pre-optimization behavior (EngineOptions::
 *              incremental = false: every update refactorizes from
 *              scratch, O(n^3)) with the acquisition loop predicting
 *              one candidate at a time, exactly as suggestIndex()
 *              used to;
 *   fast     - the incremental default (rank-1 Cholesky appends,
 *              O(n^2)) with batched, screened suggestIndex();
 *   windowed - fast plus a bounded history (max_history = 200):
 *              rank-1 downdate-evict + rank-1 append keeps the
 *              per-interval fit O(W^2) no matter how long the
 *              stream runs;
 *   approx   - the inducing-point sparse regression (approx = true,
 *              32 inducing points) in its operating configuration:
 *              UCB acquisition and a fixed candidate lattice scored
 *              through the candidate cache (cross-covariance block
 *              cached by content hash, variances maintained across
 *              rank-1 Gram changes by journaled Sherman-Morrison
 *              corrections), for sub-millisecond decisions at sample
 *              counts and candidate counts the exact paths cannot
 *              reach.
 *
 * full/fast/windowed cells build a fresh engine per trial and time
 * one decision interval at exactly n samples. approx cells instead
 * run ONE engine through warmup + trials consecutive decision
 * intervals against the same candidate lattice - the decision loop's
 * actual shape - so the gate covers the cached steady state; warmup
 * absorbs the first decision, which pays the full kernel + solve
 * cache build (about the uncached batched-scoring cost).
 *
 * full/fast/windowed produce bit-identical decisions (tests pin
 * screened == dense argmax and evict-append byte-stability); approx
 * trades exactness for latency, so this bench also measures its
 * prediction RMSE against the exact GP on held-out queries and gates
 * it, keeping the speed/accuracy trade visible in CI.
 *
 * Emits BENCH_decision_latency.json; --check enforces, against the
 * checked-in baseline:
 *   - fit p95 speedup (full/fast at n=200)  >= 5x   (machine-free)
 *   - windowed fit p95 at n=1000            <  1 ms (absolute)
 *   - approx total p95 at n=1000, every C   <  1 ms (absolute)
 *   - approx mean RMSE vs exact             <= 0.25 (absolute)
 *   - every measured (path, n, candidates) present in the baseline -
 *     missing keys are listed and fail the check, so growing the
 *     matrix forces a baseline regeneration instead of silently
 *     skipping the new cells
 *   - fast/windowed/approx total p95 within 3x of baseline per cell
 *
 * Timing uses obs::steadyNowNs(), the library's one sanctioned
 * steady-clock entry point; nothing measured here feeds back into
 * decisions.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "satori/satori.hpp"
#include "satori/bo/approx_gp.hpp"
#include "satori/obs/tracer.hpp"

using namespace satori;

namespace {

constexpr std::size_t kDims = 10;
constexpr std::size_t kWindow = 200;
constexpr std::size_t kInducing = 32;
constexpr double kMsNs = 1e6;

struct PathStats
{
    std::vector<double> fit_ns;
    std::vector<double> acq_ns;
    std::vector<double> total_ns;
};

/** p50/p95 summary of one (path, n, candidates) cell. */
struct Point
{
    std::string path;
    std::size_t n = 0;
    std::size_t candidates = 0;
    double fit_p50 = 0.0, fit_p95 = 0.0;
    double acq_p50 = 0.0, acq_p95 = 0.0;
    double total_p50 = 0.0, total_p95 = 0.0;
    double pruned_frac = 0.0;
};

/** One cell of the measurement matrix. */
struct Cell
{
    const char* path;
    std::size_t n;
    std::size_t candidates;
};

const Cell kCells[] = {
    // Legacy cells: the machine-independent full/fast speedup gate.
    {"full", 25, 64},
    {"full", 50, 64},
    {"full", 100, 64},
    {"full", 200, 64},
    {"fast", 25, 64},
    {"fast", 50, 64},
    {"fast", 100, 64},
    {"fast", 200, 64},
    // Exact path at enlarged candidate sets (benchmarked, not gated:
    // the O(n^2)-per-candidate variance solve is what approx removes).
    {"fast", 200, 1024},
    {"fast", 200, 10240},
    // Bounded-history exact path at stream lengths the unwindowed
    // engine cannot sustain. Gate: fit p95 < 1 ms at n=1000.
    {"windowed", 500, 64},
    {"windowed", 1000, 64},
    {"windowed", 1000, 1024},
    {"windowed", 1000, 10240},
    // Sparse path. Gate: total p95 < 1 ms at n=1000 for every C.
    {"approx", 500, 64},
    {"approx", 1000, 64},
    {"approx", 1000, 1024},
    {"approx", 1000, 10240},
};

RealVec
randomInput(Rng& rng)
{
    RealVec x(kDims);
    for (double& v : x)
        v = rng.uniform();
    return x;
}

/** Smooth synthetic objective with mild observation noise. */
double
syntheticTarget(const RealVec& x, Rng& rng)
{
    double d2 = 0.0;
    for (const double v : x)
        d2 += (v - 0.5) * (v - 0.5);
    return -d2 + 0.05 * rng.gaussian();
}

bo::EngineOptions
engineOptions(const std::string& path)
{
    bo::EngineOptions opt;
    opt.length_scale_grid.clear(); // isolate the per-update fit cost
    if (path == "full")
        opt.incremental = false;
    if (path == "windowed")
        opt.max_history = kWindow;
    if (path == "approx") {
        opt.approx = true;
        opt.approx_inducing = kInducing;
        opt.approx_min_samples = 256;
        // The fast-decision configuration: UCB scores in one fused
        // pass over the batched predictions, where EI pays a libm
        // erfc + exp per candidate (~0.5 ms alone at C = 10240 -
        // more than the whole latency budget).
        opt.acquisition = bo::AcquisitionKind::Ucb;
    }
    return opt;
}

/**
 * One timed decision interval at sample count @p n: append the n-th
 * sample (fit) and maximize acquisition over the candidate set. The
 * full path emulates the pre-optimization engine exactly: full refit
 * plus one predict() per candidate.
 */
void
runTrial(const Cell& cell, std::uint64_t seed, PathStats& stats,
         double& pruned_frac)
{
    Rng rng(seed);
    std::vector<RealVec> inputs;
    std::vector<double> targets;
    inputs.reserve(cell.n);
    targets.reserve(cell.n);
    for (std::size_t i = 0; i < cell.n; ++i) {
        inputs.push_back(randomInput(rng));
        targets.push_back(syntheticTarget(inputs.back(), rng));
    }
    std::vector<RealVec> candidates;
    candidates.reserve(cell.candidates);
    for (std::size_t c = 0; c < cell.candidates; ++c)
        candidates.push_back(randomInput(rng));

    bo::BoEngine engine(engineOptions(cell.path));
    std::vector<RealVec> warm(inputs.begin(), inputs.end() - 1);
    std::vector<double> warm_y(targets.begin(), targets.end() - 1);
    engine.setSamples(warm, warm_y);

    const bool full = std::strcmp(cell.path, "full") == 0;
    const std::uint64_t t0 = obs::steadyNowNs();
    engine.addSample(inputs.back(), targets.back());
    const std::uint64_t t1 = obs::steadyNowNs();
    std::size_t pick = 0;
    if (!full) {
        pick = engine.suggestIndex(candidates);
    } else {
        // The pre-optimization acquisition loop: one GP solve per
        // candidate.
        const double best = engine.bestObserved();
        double best_score = -1e300;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const auto pred = engine.predict(candidates[c]);
            const double score = bo::acquisition(
                engine.options().acquisition, pred, best,
                engine.options().xi, engine.options().ucb_beta);
            if (score > best_score) {
                best_score = score;
                pick = c;
            }
        }
    }
    const std::uint64_t t2 = obs::steadyNowNs();
    // Keep the optimizer honest about the chosen index.
    if (pick >= candidates.size())
        std::abort();
    if (!full) {
        const auto& s = engine.suggestStats();
        if (s.screen_kept + s.screen_pruned > 0)
            pruned_frac =
                static_cast<double>(s.screen_pruned) /
                static_cast<double>(s.screen_kept + s.screen_pruned);
    }

    stats.fit_ns.push_back(static_cast<double>(t1 - t0));
    stats.acq_ns.push_back(static_cast<double>(t2 - t1));
    stats.total_ns.push_back(static_cast<double>(t2 - t0));
}

/**
 * Steady-state decision loop for the approx path: one engine, one
 * fixed candidate lattice, warmup + trials consecutive intervals of
 * append-then-suggest. The first suggest builds the candidate cache
 * (a miss, absorbed by warmup); every following interval journals the
 * interval's rank-1 Gram changes and scores through the cache - the
 * configuration the engine actually runs in once the controller
 * settles on a lattice.
 */
void
runApproxCell(const Cell& cell, std::size_t warmup, std::size_t trials,
              PathStats& stats, double& pruned_frac)
{
    Rng rng(4000 + cell.n + cell.candidates);
    std::vector<RealVec> inputs;
    std::vector<double> targets;
    inputs.reserve(cell.n);
    targets.reserve(cell.n);
    for (std::size_t i = 0; i < cell.n; ++i) {
        inputs.push_back(randomInput(rng));
        targets.push_back(syntheticTarget(inputs.back(), rng));
    }
    std::vector<RealVec> candidates;
    candidates.reserve(cell.candidates);
    for (std::size_t c = 0; c < cell.candidates; ++c)
        candidates.push_back(randomInput(rng));

    bo::BoEngine engine(engineOptions(cell.path));
    engine.setSamples(inputs, targets);

    for (std::size_t t = 0; t < warmup + trials; ++t) {
        const RealVec x = randomInput(rng);
        const double y = syntheticTarget(x, rng);
        const std::uint64_t t0 = obs::steadyNowNs();
        engine.addSample(x, y);
        const std::uint64_t t1 = obs::steadyNowNs();
        const std::size_t pick = engine.suggestIndex(candidates);
        const std::uint64_t t2 = obs::steadyNowNs();
        if (pick >= candidates.size())
            std::abort();
        if (t < warmup)
            continue;
        const auto& s = engine.suggestStats();
        if (s.screen_kept + s.screen_pruned > 0)
            pruned_frac =
                static_cast<double>(s.screen_pruned) /
                static_cast<double>(s.screen_kept + s.screen_pruned);
        stats.fit_ns.push_back(static_cast<double>(t1 - t0));
        stats.acq_ns.push_back(static_cast<double>(t2 - t1));
        stats.total_ns.push_back(static_cast<double>(t2 - t0));
    }
}

Point
summarize(const Cell& cell, const PathStats& s, double pruned_frac)
{
    Point p;
    p.path = cell.path;
    p.n = cell.n;
    p.candidates = cell.candidates;
    p.fit_p50 = percentile(s.fit_ns, 50.0);
    p.fit_p95 = percentile(s.fit_ns, 95.0);
    p.acq_p50 = percentile(s.acq_ns, 50.0);
    p.acq_p95 = percentile(s.acq_ns, 95.0);
    p.total_p50 = percentile(s.total_ns, 50.0);
    p.total_p95 = percentile(s.total_ns, 95.0);
    p.pruned_frac = pruned_frac;
    return p;
}

/**
 * Approximation error of the sparse path against the exact GP on the
 * bench objective: both models fit the same n samples, RMSE of the
 * posterior-mean difference over fresh queries, averaged over seeds.
 */
double
measureApproxRmse(std::size_t n, std::size_t seeds)
{
    double sum = 0.0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        Rng rng(9000 + s);
        std::vector<RealVec> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < n; ++i) {
            xs.push_back(randomInput(rng));
            ys.push_back(syntheticTarget(xs.back(), rng));
        }
        const bo::EngineOptions opt;
        bo::GaussianProcess exact(
            std::make_unique<bo::Matern52Kernel>(opt.length_scale),
            opt.noise_variance);
        exact.fit(xs, ys);
        bo::ApproxGp approx(
            std::make_unique<bo::Matern52Kernel>(opt.length_scale),
            opt.noise_variance, kInducing);
        approx.fit(xs, ys);
        double se = 0.0;
        constexpr std::size_t kQueries = 200;
        for (std::size_t q = 0; q < kQueries; ++q) {
            const RealVec x = randomInput(rng);
            const double d =
                exact.predict(x).mean - approx.predict(x).mean;
            se += d * d;
        }
        sum += std::sqrt(se / kQueries);
    }
    return sum / static_cast<double>(seeds);
}

void
writeJson(const std::string& file_path, const std::vector<Point>& points,
          double fit_speedup, double total_speedup, double approx_rmse)
{
    std::ofstream out(file_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", file_path.c_str());
        std::exit(1);
    }
    out << "{\n";
    out << "  \"bench\": \"decision_latency\",\n";
    out << "  \"dims\": " << kDims << ",\n";
    out << "  \"window\": " << kWindow << ",\n";
    out << "  \"inducing\": " << kInducing << ",\n";
    out << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        char line[640];
        std::snprintf(
            line, sizeof(line),
            "    {\"path\": \"%s\", \"n\": %zu, \"candidates\": %zu, "
            "\"fit_p50_ns\": %.0f, \"fit_p95_ns\": %.0f, "
            "\"acq_p50_ns\": %.0f, \"acq_p95_ns\": %.0f, "
            "\"total_p50_ns\": %.0f, \"total_p95_ns\": %.0f, "
            "\"pruned_frac\": %.3f}%s\n",
            p.path.c_str(), p.n, p.candidates, p.fit_p50, p.fit_p95,
            p.acq_p50, p.acq_p95, p.total_p50, p.total_p95,
            p.pruned_frac, i + 1 < points.size() ? "," : "");
        out << line;
    }
    out << "  ],\n";
    char tail[240];
    std::snprintf(tail, sizeof(tail),
                  "  \"speedup_p95_fit_at_max_n\": %.2f,\n"
                  "  \"speedup_p95_total_at_max_n\": %.2f,\n"
                  "  \"approx_rmse_vs_exact\": %.4f\n",
                  fit_speedup, total_speedup, approx_rmse);
    out << tail;
    out << "}\n";
}

/**
 * Minimal reader for the flat JSON this bench writes: total_p95_ns
 * keyed by "path/n/candidates". No general JSON parsing - the format
 * is one point per line with fixed key order. Lines missing any of
 * the three key fields are malformed and abort the check rather than
 * being skipped.
 */
std::map<std::string, double>
readBaselineTotalP95(const std::string& file_path)
{
    std::ifstream in(file_path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     file_path.c_str());
        std::exit(1);
    }
    std::map<std::string, double> out;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t p_at = line.find("\"path\": \"");
        if (p_at == std::string::npos)
            continue;
        const std::size_t p_start = p_at + 9;
        const std::size_t p_end = line.find('"', p_start);
        const std::size_t n_at = line.find("\"n\": ");
        const std::size_t c_at = line.find("\"candidates\": ");
        const std::size_t t_at = line.find("\"total_p95_ns\": ");
        if (p_end == std::string::npos || n_at == std::string::npos ||
            c_at == std::string::npos || t_at == std::string::npos) {
            std::fprintf(stderr,
                         "malformed baseline point in %s: %s\n",
                         file_path.c_str(), line.c_str());
            std::exit(1);
        }
        const std::string path = line.substr(p_start, p_end - p_start);
        const unsigned long n =
            std::strtoul(line.c_str() + n_at + 5, nullptr, 10);
        const unsigned long c =
            std::strtoul(line.c_str() + c_at + 14, nullptr, 10);
        const double total_p95 =
            std::strtod(line.c_str() + t_at + 16, nullptr);
        out[path + "/" + std::to_string(n) + "/" + std::to_string(c)] =
            total_p95;
    }
    return out;
}

std::string
cellKey(const Point& p)
{
    return p.path + "/" + std::to_string(p.n) + "/" +
           std::to_string(p.candidates);
}

} // namespace

int
main(int argc, char** argv)
{
    bool full_run = false;
    std::string json_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            full_run = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--full] [--json PATH] [--check BASELINE]\n"
                "  --full           more trials per point\n"
                "  --json PATH      write the results as JSON\n"
                "  --check BASELINE fail on missing baseline cells, >3x\n"
                "                   p95 regression, <5x fit speedup, or\n"
                "                   a blown windowed/approx latency or\n"
                "                   RMSE budget\n",
                argv[0]);
            return 2;
        }
    }

    std::printf("Decision-loop latency across engine paths (full, "
                "fast,\nwindowed W=%zu, approx m=%zu); %zu dims\n\n",
                kWindow, kInducing, kDims);

    std::vector<Point> points;
    for (const Cell& cell : kCells) {
        // Scale trials down where a single trial is itself expensive
        // (exact scoring of 10k candidates, O(n^3) warm fits).
        std::size_t trials = full_run ? 60 : 25;
        if (cell.candidates >= 10240 &&
            std::strcmp(cell.path, "approx") != 0)
            trials = full_run ? 20 : 8;
        const std::size_t warmup = 2;
        PathStats stats;
        PathStats discard;
        double pruned_frac = 0.0;
        if (std::strcmp(cell.path, "approx") == 0) {
            runApproxCell(cell, warmup, trials, stats, pruned_frac);
        } else {
            for (std::size_t t = 0; t < warmup + trials; ++t)
                runTrial(cell, 1000 + t, t < warmup ? discard : stats,
                         pruned_frac);
        }
        points.push_back(summarize(cell, stats, pruned_frac));
    }

    const double approx_rmse = measureApproxRmse(1000, full_run ? 5 : 3);

    TablePrinter table({"path", "n", "cands", "fit p50 us",
                        "fit p95 us", "acq p50 us", "acq p95 us",
                        "total p95 us", "pruned"});
    for (const Point& p : points) {
        table.addRow({p.path, std::to_string(p.n),
                      std::to_string(p.candidates),
                      TablePrinter::num(p.fit_p50 / 1e3, 1),
                      TablePrinter::num(p.fit_p95 / 1e3, 1),
                      TablePrinter::num(p.acq_p50 / 1e3, 1),
                      TablePrinter::num(p.acq_p95 / 1e3, 1),
                      TablePrinter::num(p.total_p95 / 1e3, 1),
                      TablePrinter::num(p.pruned_frac, 2)});
    }
    table.print();

    // Machine-independent full/fast ratio at the largest shared n.
    constexpr std::size_t kRatioN = 200;
    double full_fit_p95 = 0.0, fast_fit_p95 = 0.0;
    double full_total_p95 = 0.0, fast_total_p95 = 0.0;
    for (const Point& p : points) {
        if (p.n != kRatioN || p.candidates != 64)
            continue;
        if (p.path == "full") {
            full_fit_p95 = p.fit_p95;
            full_total_p95 = p.total_p95;
        } else if (p.path == "fast") {
            fast_fit_p95 = p.fit_p95;
            fast_total_p95 = p.total_p95;
        }
    }
    const double fit_speedup = full_fit_p95 / fast_fit_p95;
    const double total_speedup = full_total_p95 / fast_total_p95;
    std::printf("\nfit p95 speedup at n=%zu: %.1fx (target >= 5x); "
                "end-to-end: %.1fx\napprox mean RMSE vs exact at "
                "n=1000: %.4f (budget 0.25)\n",
                kRatioN, fit_speedup, total_speedup, approx_rmse);

    if (!json_path.empty()) {
        writeJson(json_path, points, fit_speedup, total_speedup,
                  approx_rmse);
        std::printf("wrote %s\n", json_path.c_str());
    }

    bool ok = true;
    if (!check_path.empty()) {
        if (fit_speedup < 5.0) {
            std::printf("CHECK FAIL: fit speedup %.1fx < 5x\n",
                        fit_speedup);
            ok = false;
        }
        if (approx_rmse > 0.25) {
            std::printf("CHECK FAIL: approx RMSE %.4f > 0.25 budget\n",
                        approx_rmse);
            ok = false;
        }
        for (const Point& p : points) {
            if (p.path == "windowed" && p.n == 1000 &&
                p.fit_p95 >= kMsNs) {
                std::printf("CHECK FAIL: windowed fit p95 %.0f ns "
                            ">= 1 ms at n=%zu C=%zu\n",
                            p.fit_p95, p.n, p.candidates);
                ok = false;
            }
            if (p.path == "approx" && p.n == 1000 &&
                p.total_p95 >= kMsNs) {
                std::printf("CHECK FAIL: approx total p95 %.0f ns "
                            ">= 1 ms at n=%zu C=%zu\n",
                            p.total_p95, p.n, p.candidates);
                ok = false;
            }
        }
        const auto baseline = readBaselineTotalP95(check_path);
        for (const Point& p : points) {
            if (p.path == "full")
                continue; // emulation cells regression-gate via ratio
            const auto it = baseline.find(cellKey(p));
            if (it == baseline.end()) {
                std::printf("CHECK FAIL: baseline %s has no cell "
                            "%s - regenerate the baseline to cover "
                            "the current matrix\n",
                            check_path.c_str(), cellKey(p).c_str());
                ok = false;
                continue;
            }
            // 3x, not 2x: the sub-100 us cells sit close to shared-
            // runner timer jitter, and losing an optimization is far
            // coarser than that (uncached approx scoring alone is
            // ~6x the cached baseline at C = 10240).
            if (p.total_p95 > 3.0 * it->second) {
                std::printf("CHECK FAIL: %s total p95 %.0f ns > 3x "
                            "baseline %.0f ns\n",
                            cellKey(p).c_str(), p.total_p95,
                            it->second);
                ok = false;
            }
        }
        if (ok)
            std::printf(
                "CHECK PASS: >= 5x fit speedup, windowed fit < 1 ms "
                "and approx total < 1 ms at n=1000, RMSE within "
                "budget, all cells within 3x of baseline\n");
    }
    return ok ? 0 : 1;
}
