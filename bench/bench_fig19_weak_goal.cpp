/**
 * @file
 * Fig. 19 + the Sec. III-C design note: prioritizing the *weaker*
 * goal in the next period (Eq. 4 as published) outperforms the
 * alternative of continuing to favor the goal that just performed
 * well (paper: by approximately 5%).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace satori;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner(
        "Fig. 19: prioritizing the weaker goal",
        "Paper: favoring the goal whose counterpart just improved "
        "(Eq. 4) beats favoring the strong goal by ~5%.",
        opt);

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const auto mixes =
        workloads::allMixes(workloads::parsecSuite(), 5);
    const Seconds duration = opt.full ? 60.0 : 20.0;
    const std::size_t stride = opt.full ? 2 : 4;

    harness::ExperimentOptions eopt;
    eopt.duration = duration;

    OnlineStats weak_t, weak_f, strong_t, strong_f;
    for (std::size_t m = 0; m < mixes.size(); m += stride) {
        core::SatoriOptions weak_opt;
        weak_opt.weights.favor_weaker_goal = true;
        const auto weak = harness::comparePolicies(
            platform, mixes[m], {"SATORI"}, eopt, 42 + m, weak_opt);
        weak_t.add(weak.score("SATORI").throughput_pct);
        weak_f.add(weak.score("SATORI").fairness_pct);

        core::SatoriOptions strong_opt;
        strong_opt.weights.favor_weaker_goal = false;
        const auto strong = harness::comparePolicies(
            platform, mixes[m], {"SATORI"}, eopt, 42 + m, strong_opt);
        strong_t.add(strong.score("SATORI").throughput_pct);
        strong_f.add(strong.score("SATORI").fairness_pct);
    }

    TablePrinter table({"prioritization target",
                        "throughput (% of oracle)",
                        "fairness (% of oracle)"});
    table.addRow({"weaker goal (Eq. 4, SATORI)", bench::pct(weak_t.mean()),
                  bench::pct(weak_f.mean())});
    table.addRow({"stronger goal (alternative)",
                  bench::pct(strong_t.mean()),
                  bench::pct(strong_f.mean())});
    table.print();
    std::printf("\nEq. 4 vs alternative: %+.1f %%-points throughput, "
                "%+.1f %%-points fairness (paper: ~+5 combined)\n",
                (weak_t.mean() - strong_t.mean()) * 100.0,
                (weak_f.mean() - strong_f.mean()) * 100.0);
    return 0;
}
