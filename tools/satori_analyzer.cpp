/**
 * @file
 * satori_analyzer driver: project-specific semantic static analysis
 * over the SATORI tree (see tools/analyzer/analyzer.hpp for the rule
 * packs and GUIDE.md §10 for the workflow).
 *
 * Usage:
 *   satori_analyzer [--packs=det,num,api,header,conc,persist,arch,
 *                            flow|all]
 *                   [--root <include-root>] [--baseline <file>]
 *                   [--check-baseline]
 *                   [--persist-schema <file>]
 *                   [--allow-wallclock <path-substr>]... [--json]
 *                   [--sarif=<file>] [--jobs=N] [--stats]
 *                   <dir-or-file>...
 *   satori_analyzer --write-persist-schema <file> <dir-or-file>...
 *   satori_analyzer --explain <rule-id>
 *
 * Exit status: 0 when every finding is suppressed or baselined, 1 on
 * any active finding (or, under --check-baseline, any stale baseline
 * entry), 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"

namespace {

void
printUsage(std::FILE* to)
{
    std::fprintf(
        to,
        "usage: satori_analyzer "
        "[--packs=det,num,api,header,conc,persist,arch,flow|all]\n"
        "                       [--root <include-root>] [--baseline "
        "<file>]\n"
        "                       [--check-baseline] [--persist-schema "
        "<file>]\n"
        "                       [--allow-wallclock <path-substr>]... "
        "[--json]\n"
        "                       [--sarif=<file>] [--jobs=N] [--stats]\n"
        "                       <dir-or-file>...\n"
        "       satori_analyzer --write-persist-schema <file> "
        "<dir-or-file>...\n"
        "       satori_analyzer --explain <rule-id>\n");
}

} // namespace

int
main(int argc, char** argv)
{
    namespace sa = satori_analyzer;
    sa::Options options;
    std::vector<std::filesystem::path> targets;
    std::filesystem::path baseline_path;
    std::filesystem::path sarif_path;
    std::filesystem::path write_schema_path;
    bool json = false;
    bool check_baseline = false;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--explain") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing rule id for --explain\n");
                return 2;
            }
            std::string text;
            const bool known = sa::explainRule(argv[i + 1], text);
            std::fputs(text.c_str(), known ? stdout : stderr);
            return known ? 0 : 2;
        }
        if (arg.rfind("--packs=", 0) == 0) {
            options.packs = sa::parsePackList(arg.substr(8));
            if (options.packs == 0) {
                std::fprintf(stderr, "unknown pack in '%s'\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --root\n");
                return 2;
            }
            options.include_root = argv[++i];
        } else if (arg == "--baseline") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --baseline\n");
                return 2;
            }
            baseline_path = argv[++i];
        } else if (arg == "--allow-wallclock") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "missing value for --allow-wallclock\n");
                return 2;
            }
            options.wallclock_allow.emplace_back(argv[++i]);
        } else if (arg == "--persist-schema") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "missing value for --persist-schema\n");
                return 2;
            }
            options.persist_schema = argv[++i];
        } else if (arg == "--write-persist-schema") {
            if (i + 1 >= argc) {
                std::fprintf(
                    stderr,
                    "missing value for --write-persist-schema\n");
                return 2;
            }
            write_schema_path = argv[++i];
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarif_path = arg.substr(8);
            if (sarif_path.empty()) {
                std::fprintf(stderr, "missing value for --sarif\n");
                return 2;
            }
        } else if (arg.rfind("--jobs=", 0) == 0) {
            const std::string value = arg.substr(7);
            char* end = nullptr;
            const long jobs = std::strtol(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0' || jobs < 0) {
                std::fprintf(stderr, "bad value in '%s'\n",
                             arg.c_str());
                return 2;
            }
            options.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--check-baseline") {
            check_baseline = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            printUsage(stderr);
            return 2;
        } else {
            targets.emplace_back(arg);
        }
    }
    if (targets.empty()) {
        printUsage(stderr);
        return 2;
    }
    for (const auto& target : targets) {
        if (!std::filesystem::exists(target)) {
            std::fprintf(stderr, "no such file or directory: %s\n",
                         target.string().c_str());
            return 2;
        }
    }
    // Default the include root to an `include/` directory among the
    // targets so `satori_analyzer include src` derives SATORI_*_HPP
    // guard names without extra flags.
    if (options.include_root.empty()) {
        for (const auto& target : targets)
            if (target.filename() == "include")
                options.include_root = target;
    }

    if (check_baseline && baseline_path.empty()) {
        std::fprintf(stderr,
                     "--check-baseline requires --baseline <file>\n");
        return 2;
    }

    if (!write_schema_path.empty()) {
        // Regenerate the checked-in persist schema manifest and exit.
        const std::vector<sa::SourceFile> sources =
            sa::loadSourceTree(targets, options);
        const sa::SymbolIndex index =
            sa::buildSymbolIndex(sources, options);
        const std::string manifest =
            sa::renderPersistSchema(sources, index);
        std::ofstream out(write_schema_path);
        if (!out || !(out << manifest) || !out.flush()) {
            std::fprintf(stderr, "satori_analyzer: cannot write %s\n",
                         write_schema_path.string().c_str());
            return 2;
        }
        std::fprintf(stdout, "satori_analyzer: wrote %s (%zu files)\n",
                     write_schema_path.string().c_str(),
                     sources.size());
        return 0;
    }

    const auto scan_begin = std::chrono::steady_clock::now();
    sa::AnalyzeResult result = sa::analyzePaths(targets, options);
    const auto scan_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - scan_begin)
            .count();

    std::vector<sa::BaselineEntry> baseline;
    std::size_t stale = 0;
    if (!baseline_path.empty()) {
        std::string error;
        if (!sa::loadBaseline(baseline_path, baseline, error)) {
            std::fprintf(stderr, "satori_analyzer: %s\n",
                         error.c_str());
            return 2;
        }
        sa::applyBaseline(baseline, result.findings);
        for (const sa::BaselineEntry& entry : baseline) {
            if (entry.used)
                continue;
            ++stale;
            std::fprintf(stderr,
                         "satori_analyzer: %s: stale baseline entry "
                         "at %s:%d (%s) matched nothing — delete it\n",
                         check_baseline ? "error" : "note",
                         baseline_path.string().c_str(),
                         entry.source_line, entry.rule.c_str());
        }
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path);
        if (!out ||
            !(out << sa::renderSarif(result, "satori_analyzer")) ||
            !out.flush()) {
            std::fprintf(stderr, "satori_analyzer: cannot write %s\n",
                         sarif_path.string().c_str());
            return 2;
        }
    }

    if (json)
        std::fputs(sa::renderJson(result).c_str(), stdout);
    else
        std::fputs(sa::renderText(result, "satori_analyzer").c_str(),
                   stdout);
    if (stats)
        std::fprintf(stdout,
                     "satori_analyzer: stats: %zu files in %lld ms "
                     "on %u jobs\n",
                     result.files_scanned,
                     static_cast<long long>(scan_ms),
                     result.jobs_used);
    if (sa::countActive(result.findings) != 0)
        return 1;
    return (check_baseline && stale != 0) ? 1 : 0;
}
