/**
 * @file
 * satori_analyzer: project-specific semantic static analysis for the
 * SATORI tree. One engine, eight rule packs:
 *
 *   det    - determinism: no wall clocks, no std::random_device, no
 *            emitting loops over unordered containers, no pointer-value
 *            hashing — per line, plus a cross-file taint pass
 *            (det-taint-reaches-trace) that propagates nondeterminism
 *            sources through the project call graph and flags any
 *            trace/audit emit site that reaches one. A (plan, seed)
 *            pair must replay byte-for-byte.
 *   num    - numeric hygiene: no floating == / !=, no C-style (int) or
 *            (long) narrowing of floating expressions, no std::abs that
 *            can bind <cstdlib>'s integer overload.
 *   api    - API contracts in public headers: [[nodiscard]] on
 *            non-mutating value-returning functions, explicit on
 *            single-argument constructors, no adjacent raw int/double
 *            resource parameters (the cores/ways/bandwidth trap).
 *   header - include-guard naming, #define matching the #ifndef, and
 *            no `using namespace` at header scope (the legacy
 *            satori_lint checks, folded in as a pass).
 *   conc   - concurrency discipline for the determinism contract:
 *            mutable statics without a guard, by-reference captures
 *            handed to deferred executors, non-slot accumulation
 *            inside parallelFor bodies, raw std::thread outside the
 *            harness, member mutexes without SATORI_GUARDED_BY
 *            siblings, and cross-function lock-order cycles.
 *   persist - saveState/restoreState symmetry: the StateWriter put
 *            sequence of every persistent type must mirror its
 *            StateReader get sequence tag for tag, and the extracted
 *            schema must match the checked-in tools/persist_schema.txt
 *            manifest unless kSnapshotFormatVersion was bumped.
 *   arch   - subsystem layering: every `#include "satori/..."` edge
 *            checked against the declared dependency DAG (core must
 *            not reach sim, common depends on nothing, ...), with
 *            include-cycle detection and shortest-chain reports.
 *   flow   - CFG-based intra-procedural dataflow: use-after-move on
 *            some path, discarded [[nodiscard]] results, statements
 *            only reachable by falling through a fatal call.
 *
 * Findings are reported as `file:line: [rule-id] message`. A finding
 * can be silenced inline (`// satori-analyzer: allow(rule-id)`) on the
 * offending line or the line above, or grandfathered in a checked-in
 * baseline file (see loadBaseline() for the grammar).
 *
 * The scanner is token-heuristic, not a full parser: comments, string
 * and character literals are stripped first, then the per-file packs
 * work on lines, declared-identifier tables, and a lightweight scope
 * walker, while the cross-file passes work on a project-wide symbol
 * index and call graph derived from the same stripped-token model.
 * False negatives are acceptable; the rule set is tuned so the real
 * tree compiles the packs with zero noise.
 */

#ifndef SATORI_TOOLS_ANALYZER_ANALYZER_HPP
#define SATORI_TOOLS_ANALYZER_ANALYZER_HPP

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace satori_analyzer {

// --- rule packs ------------------------------------------------------

inline constexpr unsigned kPackDeterminism = 1u << 0;
inline constexpr unsigned kPackNumeric = 1u << 1;
inline constexpr unsigned kPackApi = 1u << 2;
inline constexpr unsigned kPackHeader = 1u << 3;
inline constexpr unsigned kPackConcurrency = 1u << 4;
inline constexpr unsigned kPackPersist = 1u << 5;
inline constexpr unsigned kPackArch = 1u << 6;
inline constexpr unsigned kPackFlow = 1u << 7;
inline constexpr unsigned kPackAll =
    kPackDeterminism | kPackNumeric | kPackApi | kPackHeader |
    kPackConcurrency | kPackPersist | kPackArch | kPackFlow;

/**
 * Parse a comma-separated pack list ("det,num", "api", "conc", "all",
 * or the legacy alias "header") into a pack mask. Returns 0 on an
 * unknown pack name (the driver reports usage).
 */
[[nodiscard]] unsigned parsePackList(const std::string& list);

// --- findings --------------------------------------------------------

/** One diagnostic produced by a rule pass. */
struct Finding
{
    std::string file;        ///< Path as scanned (generic separators).
    int line = 0;            ///< 1-based line of the finding.
    std::string rule;        ///< Kebab-case rule id, e.g. "num-float-eq".
    std::string message;     ///< Human-readable explanation.
    std::string fingerprint; ///< Trimmed source line (baseline matching).
    bool suppressed = false; ///< Silenced by an inline allow comment.
    bool baselined = false;  ///< Silenced by a baseline entry.
};

/** Analysis options shared by the driver, the lint alias, and tests. */
struct Options
{
    unsigned packs = kPackAll;

    /**
     * Include root used to derive expected header-guard names; files
     * below it use their path relative to it (include/ ->
     * SATORI_COMMON_TYPES_HPP for satori/common/types.hpp). Files
     * outside it fall back to their path relative to the scan
     * target's parent (bench/bench_util.hpp ->
     * SATORI_BENCH_BENCH_UTIL_HPP).
     */
    std::filesystem::path include_root;

    /**
     * Path substrings (generic separators) where wall-clock reads are
     * legitimate: interactive CLI entry points and bench harness
     * timing. Everything else must use simulated time.
     */
    std::vector<std::string> wallclock_allow = {
        "tools/satori_sim.cpp",
        // The analyzer driver times its own scan for --stats; the
        // reading never reaches a simulation artifact.
        "tools/satori_analyzer.cpp",
        "bench/bench_util",
        // Exactly the obs sources with a legitimate wall-clock /
        // syscall surface: span timing, the socket-serving exporter,
        // and the history store. The rest of the obs layer (registry,
        // audit, watchdog, the Observability context) runs on
        // simulated time and is NOT exempt.
        "obs/tracer",
        "obs/http_exporter",
        "obs/stats_history",
    };

    /**
     * Call tokens that mark a function as a decision-trace/audit emit
     * site for the cross-file det-taint-reaches-trace pass: reaching
     * a nondeterminism source from one of these functions breaks the
     * byte-identical replay contract.
     */
    std::vector<std::string> trace_emit_calls = {
        "emit", "writeCsv", "writeCsvHeader", "writeJsonl",
        "writeChromeTrace",
    };

    /**
     * Path substrings where raw std::thread construction or detach is
     * legitimate: the pool implementation itself. Everything else —
     * tests included — goes through harness::ThreadPool/parallelFor.
     */
    std::vector<std::string> raw_thread_allow = {
        // The pool implementation lives in common/ (shared by the bo
        // engine's batched scoring and the harness); the harness
        // header is a thin alias kept for source compatibility.
        "include/satori/common/parallel",
        "src/common/parallel",
        "include/satori/harness/",
        "src/harness/",
        // The analyzer's own tree scan claims files from a small
        // worker pool; it cannot depend on the satori library.
        "tools/analyzer/engine.cpp",
        // The embedded HTTP exporter's serving/scraper threads block
        // in poll()/accept(); pool workers must stay available for
        // deterministic decision-path work.
        "obs/http_exporter",
    };

    /**
     * Path substrings where CPU intrinsics / vector extensions are
     * legitimate: the linalg SIMD kernels (dispatch + AVX2 bodies)
     * and the analyzer's own rule tables, which must spell the
     * marker strings to detect them.
     */
    std::vector<std::string> simd_allow = {
        "src/linalg/",
        "tools/analyzer/",
    };

    /**
     * Persist-schema manifest (tools/persist_schema.txt) to diff the
     * extracted saveState sequences against. Empty disables the
     * manifest rules (persist-schema-drift / persist-manifest-stale);
     * the asymmetry rule runs regardless.
     */
    std::filesystem::path persist_schema;

    /**
     * Worker threads for the per-file scan phase: 0 picks a value
     * from the hardware, 1 forces the serial path. Output is
     * path-sorted and byte-identical at every setting.
     */
    unsigned jobs = 0;
};

// --- source model ----------------------------------------------------

/** One physical line: raw text plus its comment/string-stripped form. */
struct SourceLine
{
    std::string raw;
    std::string code;    ///< raw minus comments, string/char literals.
    bool preproc = false; ///< Preprocessor directive or continuation.
};

/**
 * A scanned file plus the derived per-file identifier tables the rule
 * packs share.
 */
struct SourceFile
{
    std::filesystem::path path;
    std::string display;      ///< path.generic_string(), as reported.
    bool is_header = false;   ///< .hpp (api/header packs apply).
    std::string guard_rel;    ///< Relative path deriving the guard name.
    std::vector<SourceLine> lines; ///< lines[i] is line i+1.

    std::set<std::string> float_idents;     ///< declared double/float names.
    std::set<std::string> integer_idents;   ///< declared integer names.
    std::set<std::string> unordered_idents; ///< unordered_{map,set} names.
    bool has_cmath = false;
    bool has_cstdlib = false;
};

/** Load @p path and derive the identifier tables. */
[[nodiscard]] SourceFile loadSourceFile(const std::filesystem::path& path);

/**
 * Relative path used to derive the expected include-guard name: below
 * @p include_root, relative to it; otherwise relative to
 * @p scan_target's parent directory (or to @p scan_target itself when
 * the target is the file). Empty when no sensible relation exists.
 */
[[nodiscard]] std::string
guardRelativePath(const std::filesystem::path& file,
                  const std::filesystem::path& include_root,
                  const std::filesystem::path& scan_target);

// --- token helpers (shared by the rule passes and their tests) -------

/** True for [A-Za-z0-9_]. */
[[nodiscard]] bool isIdentChar(char c);

/** True if @p word occurs in @p s delimited by non-identifier chars. */
[[nodiscard]] bool containsWord(const std::string& s,
                                const std::string& word);

/**
 * Strip // and (multi-line) block comments plus string and character
 * literals; @p in_block carries block-comment state across lines.
 * Digit separators (1'000'000) are not treated as character literals;
 * raw strings (R"(...)") strip without terminating on embedded
 * quotes (single-line only — an unterminated raw literal strips to
 * end of line).
 */
[[nodiscard]] std::string stripCommentsAndStrings(const std::string& line,
                                                  bool& in_block);

/**
 * The token ending immediately before @p pos (whitespace skipped):
 * a qualified identifier chain (abc::def), a numeric literal, or a
 * single punctuation character. Empty at start of line.
 */
[[nodiscard]] std::string prevTokenBefore(const std::string& s,
                                          std::size_t pos);

/** The token starting at or after @p pos (whitespace skipped). */
[[nodiscard]] std::string nextTokenAfter(const std::string& s,
                                         std::size_t pos);

/**
 * Position of the closer matching the opener at @p s[pos], counting
 * nesting; std::string::npos if unbalanced within @p s.
 */
[[nodiscard]] std::size_t findMatching(const std::string& s,
                                       std::size_t pos, char open,
                                       char close);

/** True if @p token spells a floating-point literal (1.5, .5, 1e-3). */
[[nodiscard]] bool isFloatLiteral(const std::string& token);

/**
 * True if @p token names a floating-valued expression in @p file:
 * a declared double/float identifier, a floating literal, or a
 * known double-returning satori API (mean, stddev, clamp, ...).
 * Names declared with both an integer and a floating type somewhere
 * in the file are resolved by the nearest declaration at or above
 * @p line_index (0-based); ties go to not-floating.
 */
[[nodiscard]] bool isFloatingToken(const SourceFile& file,
                                   const std::string& token,
                                   std::size_t line_index);

// --- project model: symbol index, call graph, dataflow ---------------

/**
 * One call site inside a function body, with whatever qualification
 * the token stream offers: an explicit `X::` scope, a receiver
 * expression (`recv.name(...)` / `recv->name(...)` / `this->`), or
 * nothing. The call graph uses it to prune same-name false edges.
 */
struct CalleeRef
{
    std::string name;      ///< Unqualified callee name.
    std::string qualifier; ///< `X` from `X::name(` calls, else "".
    std::string receiver;  ///< Receiver token ("this" for this->),
                           ///< else "".
};

/**
 * One free or member function definition found by the symbol indexer,
 * with the per-function attribute lattice the cross-file passes
 * consume (direct nondeterminism use, trace-emit calls, lock
 * acquisitions).
 */
struct FunctionDef
{
    std::string name;      ///< Unqualified name (last :: component).
    std::string qualified; ///< Name as written (Class::name) for
                           ///< diagnostics.
    std::string display;   ///< Defining file (as reported).
    int line = 0;          ///< 1-based line of the definition.
    int body_line = 0;     ///< 1-based line of the first body char
                           ///< (after the opening `{`).
    std::string body;      ///< Stripped body text, '\n'-joined.
    std::string params;    ///< Raw text inside the parameter parens.

    /// Enclosing class/struct, from the in-class scope or the
    /// `Class::` prefix of an out-of-line definition; "" for free
    /// functions.
    std::string owner;

    /// Parameter names, left to right ("" for unnamed).
    std::vector<std::string> param_names;

    /// Declared parameter/local name -> normalized type key (last
    /// `::` component, smart-pointer wrappers unwrapped).
    std::map<std::string, std::string> var_types;

    /// Unqualified names of `name(` call tokens in the body.
    std::vector<std::string> callee_names;

    /// The same call sites with qualification context preserved.
    std::vector<CalleeRef> callees;

    /// Normalized lock expressions acquired in the body, in source
    /// order (MutexLock/lock_guard/unique_lock/scoped_lock ctor args
    /// and `expr.lock()` receivers).
    std::vector<std::string> locks_acquired;

    /// Defined in a wallclock_allow path: a sanctioned boundary the
    /// taint traversal neither enters nor sources from.
    bool allowlisted = false;

    /// Body calls one of Options::trace_emit_calls.
    bool emits_trace = false;

    /// Human-readable description of a direct nondeterminism source
    /// in the body ("" when clean): wall-clock read, OS entropy,
    /// thread-id, or pointer-value formatting.
    std::string nondet_what;
};

/** Project-wide function table with a by-name lookup. */
struct SymbolIndex
{
    std::vector<FunctionDef> functions;
    /// Unqualified name -> indices into functions (overloads and
    /// same-name members all resolve here; the passes are
    /// conservative about the ambiguity).
    std::map<std::string, std::vector<std::size_t>> by_name;

    /// Class name -> member field name -> normalized type key,
    /// harvested from in-class declarations (receiver-type
    /// resolution for call-edge pruning).
    std::map<std::string, std::map<std::string, std::string>>
        class_fields;

    /// Qualified names declared [[nodiscard]] anywhere in the scanned
    /// set: "Owner::name" for members, "::name" for free functions.
    std::set<std::string> nodiscard_qualified;
};

/** Build the index over every scanned file (heuristic, see @file). */
[[nodiscard]] SymbolIndex
buildSymbolIndex(const std::vector<SourceFile>& files,
                 const Options& options);

/**
 * Call edges resolved by callee name, pruned by qualification: an
 * explicit `X::` scope, a receiver whose type resolves through the
 * caller's parameter/local table or its class's field table, or the
 * caller's own class for unqualified/this-> calls restricts a
 * same-name candidate set to the matching owners. When nothing
 * resolves, every candidate keeps its edge (conservative — the
 * cross-file passes propagate monotone facts where a spurious edge
 * at worst widens a fact the reporting rules then filter).
 */
struct CallGraph
{
    /// callees[i] holds indices into SymbolIndex::functions, parallel
    /// to SymbolIndex::functions.
    std::vector<std::vector<std::size_t>> callees;
};

[[nodiscard]] CallGraph buildCallGraph(const SymbolIndex& index);

// --- control-flow graphs ---------------------------------------------

/**
 * One CFG node: a statement or a branch/loop condition. Nodes with no
 * successors terminate the function (return/throw/fatal or the last
 * statement).
 */
struct CfgNode
{
    std::string text; ///< Stripped statement text, trimmed.
    int line = 0;     ///< 1-based source line of the first token.
    std::vector<std::size_t> succ; ///< Indices into Cfg::nodes.
};

/**
 * Intra-procedural control-flow graph over the stripped statement
 * stream of one function body: if/else, while/for/do, switch with
 * case fallthrough, break/continue, and return/throw terminators are
 * modeled; goto is not (the tree has none). Nodes appear in source
 * order; entry is node 0 when any node exists.
 */
struct Cfg
{
    std::vector<CfgNode> nodes;
};

/** Build the CFG for @p def's body. */
[[nodiscard]] Cfg buildCfg(const FunctionDef& def);

/**
 * Per-function nondeterminism taint. A function is tainted when its
 * own body uses a nondeterminism source directly or when it calls a
 * tainted function; functions in allowlisted files are boundaries
 * (never sources, never traversed into).
 */
struct TaintResult
{
    std::vector<bool> tainted; ///< Parallel to SymbolIndex::functions.
    /// For tainted functions: the callee index one step closer to the
    /// source (self-index when the function is itself the source);
    /// reconstructs the offending call chain for diagnostics.
    std::vector<std::size_t> next_toward_source;
};

[[nodiscard]] TaintResult
propagateNondeterminism(const SymbolIndex& index, const CallGraph& graph);

// --- rule passes -----------------------------------------------------

void runDeterminismPack(const SourceFile& file, const Options& options,
                        std::vector<Finding>& findings);
void runNumericPack(const SourceFile& file, std::vector<Finding>& findings);
void runApiPack(const SourceFile& file, std::vector<Finding>& findings);
void runHeaderPack(const SourceFile& file, std::vector<Finding>& findings);

/** Per-file concurrency rules (conc-* except conc-lock-order). */
void runConcurrencyPack(const SourceFile& file, const Options& options,
                        std::vector<Finding>& findings);

/**
 * Cross-file det pass: report each non-allowlisted trace/audit emit
 * site whose call chain reaches a nondeterminism source
 * (det-taint-reaches-trace), with the chain in the message.
 */
void runTaintPass(const SymbolIndex& index, const CallGraph& graph,
                  const TaintResult& taint,
                  std::vector<Finding>& findings);

/**
 * Cross-file conc pass: two-lock ordering. Report when lock `a` is
 * held while `b` is acquired on one call path and `b` is held while
 * `a` is acquired on another (conc-lock-order). Locks are compared
 * by normalized source expression, so distinct same-named members in
 * unrelated classes can alias conservatively; false negatives, not
 * false positives, on the real tree.
 */
void runLockOrderPass(const SymbolIndex& index, const CallGraph& graph,
                      std::vector<Finding>& findings);

/**
 * CFG-based flow pack over every function @p index found in @p file:
 * locals/parameters used after std::move on some path without an
 * intervening reassignment (flow-use-after-move), discarded calls to
 * [[nodiscard]] functions (flow-discarded-nodiscard), and statements
 * that can only be reached by falling through a SATORI_FATAL /
 * SATORI_PANIC / abort / exit call (flow-dead-after-fatal).
 */
void runFlowPack(const SourceFile& file, const SymbolIndex& index,
                 std::vector<Finding>& findings);

/**
 * Persist pack: for every type with saveState/restoreState members,
 * extract the StateWriter put-sequence and StateReader get-sequence
 * as codec type tags (`u64`, `double`, `state(member)`, ... with `*`
 * for in-loop and `?` for conditional ops) and report divergence with
 * both locations (persist-asymmetric-state). With a manifest in
 * Options::persist_schema, additionally diff the extracted schema of
 * every include/- or src/-resident type against it: a sequence change
 * while the manifest still matches the source kSnapshotFormatVersion
 * is persist-schema-drift; version skew or dead manifest entries are
 * persist-manifest-stale.
 */
void runPersistPack(const std::vector<SourceFile>& sources,
                    const SymbolIndex& index, const Options& options,
                    std::vector<Finding>& findings);

/**
 * Render the extracted persist schema in manifest form (`version N`
 * header plus one `Class: tag tag ...` line per type), for
 * --write-persist-schema. Covers include/- and src/-resident types.
 */
[[nodiscard]] std::string
renderPersistSchema(const std::vector<SourceFile>& sources,
                    const SymbolIndex& index);

/**
 * Arch pack: check every `#include "satori/..."` edge against the
 * declared subsystem layering DAG (closure of the direct-dependency
 * table in rules_arch.cpp). Reports arch-forbidden-include with the
 * shortest offending include chain, arch-include-cycle on file-level
 * include cycles, arch-unknown-subsystem for directories missing
 * from the DAG, and arch-simd-confined for intrinsics/vector
 * extensions outside Options::simd_allow.
 */
void runArchPack(const std::vector<SourceFile>& sources,
                 const Options& options,
                 std::vector<Finding>& findings);

// --- suppression and baseline ----------------------------------------

/**
 * Mark findings silenced by `// satori-analyzer: allow(rule-a, ...)`
 * (or allow(all)) on the finding's line or the line directly above.
 */
void applySuppressions(const SourceFile& file,
                       std::vector<Finding>& findings);

/**
 * One grandfathered finding. Grammar (one per line, `#` comments):
 *
 *     <rule-id> | <path-suffix> | <trimmed source line>
 *
 * An entry silences at most one finding whose rule matches, whose
 * file ends with the path suffix, and whose trimmed source line
 * equals the fingerprint — so entries survive unrelated line-number
 * churn but die with the code they grandfathered.
 */
struct BaselineEntry
{
    std::string rule;
    std::string path_suffix;
    std::string fingerprint;
    int source_line = 0; ///< Line in the baseline file (diagnostics).
    bool used = false;
};

/**
 * Parse @p path into @p entries. Returns false and sets @p error on a
 * malformed line; a missing file is an error too (pass no baseline
 * instead).
 */
[[nodiscard]] bool loadBaseline(const std::filesystem::path& path,
                                std::vector<BaselineEntry>& entries,
                                std::string& error);

/** Mark at most one matching finding baselined per entry. */
void applyBaseline(std::vector<BaselineEntry>& entries,
                   std::vector<Finding>& findings);

// --- engine ----------------------------------------------------------

/** Aggregate result of analyzing a set of targets. */
struct AnalyzeResult
{
    std::vector<Finding> findings; ///< Sorted by (file, line, rule).
    std::size_t files_scanned = 0;
    unsigned jobs_used = 1; ///< Worker threads the tree scan ran on.
};

/**
 * Analyze one file with the packs enabled in @p options that apply to
 * its kind (det/num: any source; api/header: headers only). Inline
 * suppressions are applied; baselines are the caller's business.
 */
[[nodiscard]] std::vector<Finding>
analyzeFile(const std::filesystem::path& file, const Options& options,
            const std::filesystem::path& scan_target);

/**
 * Load every .hpp/.cpp under @p targets (files or directories,
 * recursively; paths containing "/build" are skipped, fixture trees
 * only when targeted explicitly), path-sorted and deduplicated, with
 * guard_rel derived per file. The per-file loads run on
 * Options::jobs workers; the returned order is identical at any job
 * count.
 */
[[nodiscard]] std::vector<SourceFile>
loadSourceTree(const std::vector<std::filesystem::path>& targets,
               const Options& options);

/**
 * Analyze every .hpp/.cpp under @p targets (files or directories,
 * recursively; paths containing "/build" are skipped) and return the
 * sorted findings. The per-file packs run in parallel across
 * Options::jobs workers; findings are merged in path order, so the
 * output is byte-identical to a serial scan.
 */
[[nodiscard]] AnalyzeResult
analyzePaths(const std::vector<std::filesystem::path>& targets,
             const Options& options);

/** Active findings only: neither suppressed nor baselined. */
[[nodiscard]] std::size_t countActive(const std::vector<Finding>& findings);

/** Render active findings as `file:line: [rule] message` lines. */
[[nodiscard]] std::string renderText(const AnalyzeResult& result,
                                     const std::string& tool_name);

/** Render the full result (including silenced findings) as JSON. */
[[nodiscard]] std::string renderJson(const AnalyzeResult& result);

/**
 * Render the active findings as a SARIF 2.1.0 log (one run, rule
 * metadata from the catalog) so CI can annotate PR diffs.
 */
[[nodiscard]] std::string renderSarif(const AnalyzeResult& result,
                                      const std::string& tool_name);

// --- rule catalog (--explain) ----------------------------------------

/** Documentation for one rule id, rendered by `--explain <rule-id>`. */
struct RuleInfo
{
    std::string id;        ///< Kebab-case rule id.
    std::string pack;      ///< Owning pack name ("det", "conc", ...).
    std::string rationale; ///< Why the rule exists in this tree.
    std::string idiom;     ///< The sanctioned replacement idiom.
};

/** Every rule the packs can emit, sorted by id. */
[[nodiscard]] const std::vector<RuleInfo>& ruleCatalog();

/**
 * Render the catalog entry for @p rule_id (rationale + sanctioned
 * idiom). Returns false when the id is unknown, leaving @p out with a
 * list of known ids.
 */
[[nodiscard]] bool explainRule(const std::string& rule_id,
                               std::string& out);

} // namespace satori_analyzer

#endif // SATORI_TOOLS_ANALYZER_ANALYZER_HPP
