/**
 * @file
 * API-contract rule pack for public headers: [[nodiscard]] on
 * non-mutating value-returning functions, explicit on single-argument
 * constructors, and no adjacent raw int/double resource parameters
 * (the cores/ways/bandwidth confusion trap).
 *
 * Rules: api-nodiscard, api-explicit, api-raw-params.
 *
 * Implementation: a lightweight scope walker over the stripped code.
 * Braces push a scope classified from the text accumulated since the
 * last declaration boundary (namespace / class / enum / function /
 * other); declarations are analyzed when they terminate with `;` or
 * open a body with `{` at namespace or class scope.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>

namespace satori_analyzer {

namespace {

void
add(std::vector<Finding>& findings, const SourceFile& file, int line,
    const char* rule, std::string message)
{
    Finding f;
    f.file = file.display;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
}

enum class ScopeKind
{
    Namespace,
    Class,
    Enum,
    Function,
    Other,
};

struct Scope
{
    ScopeKind kind;
    std::string class_name; ///< For Class scopes.
};

/** Collapse runs of whitespace to single spaces and trim. */
std::string
normalizeWhitespace(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    bool pending_space = false;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            pending_space = !out.empty();
        } else {
            if (pending_space)
                out.push_back(' ');
            pending_space = false;
            out.push_back(c);
        }
    }
    return out;
}

/** Remove access-specifier labels merged into the declaration text. */
std::string
stripAccessLabels(std::string text)
{
    for (const char* label : {"public :", "protected :", "private :",
                              "public:", "protected:", "private:"}) {
        std::size_t at;
        const std::string pat(label);
        while ((at = text.find(pat)) != std::string::npos) {
            const bool left_ok = at == 0 || !isIdentChar(text[at - 1]);
            if (!left_ok)
                break;
            text.erase(at, pat.size());
        }
    }
    return text;
}

/** Strip one leading `template < ... >` clause (nesting-aware). */
std::string
stripTemplateClause(const std::string& text)
{
    std::string t = text;
    while (t.rfind("template", 0) == 0) {
        const std::size_t open = t.find('<');
        if (open == std::string::npos)
            break;
        int depth = 0;
        std::size_t i = open;
        for (; i < t.size(); ++i) {
            if (t[i] == '<')
                ++depth;
            else if (t[i] == '>' && --depth == 0)
                break;
        }
        if (i >= t.size())
            break;
        t = t.substr(i + 1);
        while (!t.empty() &&
               std::isspace(static_cast<unsigned char>(t[0])) != 0)
            t.erase(t.begin());
    }
    return t;
}

/** Remove `[[...]]` attribute blocks. */
std::string
stripAttributes(const std::string& text)
{
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '[' && i + 1 < text.size() &&
            text[i + 1] == '[') {
            const std::size_t close = text.find("]]", i + 2);
            if (close != std::string::npos) {
                i = close + 1;
                continue;
            }
        }
        out.push_back(text[i]);
    }
    return out;
}

/** Split @p params on commas at paren/angle depth zero. */
std::vector<std::string>
splitParams(const std::string& params)
{
    std::vector<std::string> out;
    std::string current;
    int paren = 0;
    int angle = 0;
    int brace = 0;
    for (char c : params) {
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
            out.push_back(normalizeWhitespace(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    const std::string last = normalizeWhitespace(current);
    if (!last.empty())
        out.push_back(last);
    return out;
}

/** Drop a trailing ` = default-value` from a parameter. */
std::string
stripDefaultArg(const std::string& param)
{
    int angle = 0;
    int paren = 0;
    for (std::size_t i = 0; i < param.size(); ++i) {
        const char c = param[i];
        if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '=' && angle == 0 && paren == 0 &&
                 (i == 0 || (param[i - 1] != '=' && param[i - 1] != '!' &&
                             param[i - 1] != '<' && param[i - 1] != '>')))
            return normalizeWhitespace(param.substr(0, i));
    }
    return param;
}

/** Last identifier token of @p param: the parameter name (or ""). */
std::string
paramName(const std::string& param)
{
    const std::string p = stripDefaultArg(param);
    if (p.empty())
        return "";
    std::size_t end = p.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(p[end - 1])) != 0)
        --end;
    std::size_t start = end;
    while (start > 0 && isIdentChar(p[start - 1]))
        --start;
    if (start == end)
        return "";
    const std::string name = p.substr(start, end - start);
    // A single token is an unnamed parameter's type, not a name.
    if (normalizeWhitespace(p) == name)
        return "";
    return name;
}

/** Parameter type with name and default stripped. */
std::string
paramType(const std::string& param)
{
    std::string p = stripDefaultArg(param);
    const std::string name = paramName(param);
    if (!name.empty()) {
        const std::size_t at = p.rfind(name);
        if (at != std::string::npos)
            p = p.substr(0, at);
    }
    return normalizeWhitespace(p);
}

/** `int` / `double`, optionally const-qualified, nothing else. */
bool
isRawArithmeticType(const std::string& type)
{
    std::string t = type;
    if (t.rfind("const ", 0) == 0)
        t = t.substr(6);
    return t == "int" || t == "double";
}

/** Parameter names that smell like partitionable-resource amounts. */
bool
isResourceName(const std::string& name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    for (const char* token :
         {"core", "way", "bandwidth", "bw", "power", "watt", "unit",
          "part", "llc", "mem"}) {
        if (lower.find(token) != std::string::npos)
            return true;
    }
    return false;
}

/** Specifier keywords preceding the return type in a declaration. */
bool
isSpecifierToken(const std::string& token)
{
    return token == "static" || token == "inline" ||
           token == "constexpr" || token == "virtual" ||
           token == "explicit" || token == "extern" ||
           token == "friend" || token == "typename" ||
           token == "consteval" || token == "constinit";
}

struct DeclInfo
{
    std::string text;   ///< Normalized declaration text.
    int line = 0;       ///< Line the declaration started on.
};

/** The walker state and the findings sink. */
struct ApiWalker
{
    const SourceFile& file;
    std::vector<Finding>& findings;
    std::vector<Scope> scopes;
    DeclInfo decl;

    void pushChar(char c, int line)
    {
        if (std::isspace(static_cast<unsigned char>(c)) == 0 &&
            decl.text.find_first_not_of(" \t\n") == std::string::npos)
            decl.line = line;
        decl.text.push_back(c);
        // An access label ends with `:` and is not a declaration; drop
        // it here so the next declaration's line is attributed to its
        // own first token, not to the `public:` above it.
        if (c == ':') {
            const std::string t = normalizeWhitespace(decl.text);
            if (t == "public:" || t == "public :" || t == "private:" ||
                t == "private :" || t == "protected:" ||
                t == "protected :")
                decl.text.clear();
        }
    }

    ScopeKind currentKind() const
    {
        return scopes.empty() ? ScopeKind::Namespace
                              : scopes.back().kind;
    }

    void processDeclaration(bool opens_body);
    void classifyAndPush();
};

/**
 * Analyze one declaration that terminated at namespace or class
 * scope. @p opens_body distinguishes `int f();` from `int f() {`.
 */
void
ApiWalker::processDeclaration(bool opens_body)
{
    (void)opens_body;
    const ScopeKind kind = currentKind();
    std::string text = normalizeWhitespace(stripAccessLabels(decl.text));
    if (text.empty())
        return;
    const bool has_nodiscard =
        text.find("[[nodiscard") != std::string::npos;
    const bool has_explicit = containsWord(text, "explicit");
    text = stripTemplateClause(text);
    const std::string no_attr = normalizeWhitespace(stripAttributes(text));
    if (no_attr.empty())
        return;

    // Skip non-function declarations and the shapes the rules do not
    // govern: operators (incl. conversion), destructors, friends,
    // deleted functions, typedefs/usings, and macro-ish lines.
    if (containsWord(no_attr, "operator") ||
        containsWord(no_attr, "friend") ||
        containsWord(no_attr, "typedef") ||
        containsWord(no_attr, "using") ||
        no_attr.find('~') != std::string::npos ||
        no_attr.find("= delete") != std::string::npos)
        return;

    const std::size_t open = no_attr.find('(');
    if (open == std::string::npos)
        return;
    const std::size_t close = findMatching(no_attr, open, '(', ')');
    if (close == std::string::npos)
        return;
    const std::string name = prevTokenBefore(no_attr, open);
    if (name.empty() || !isIdentChar(name[0]) ||
        std::isdigit(static_cast<unsigned char>(name[0])) != 0)
        return;
    if (name == "main")
        return;
    const std::string params_text =
        no_attr.substr(open + 1, close - open - 1);
    const std::vector<std::string> params =
        params_text == "void" ? std::vector<std::string>{}
                              : splitParams(params_text);
    const std::string after = no_attr.substr(close + 1);

    // An `=` before the parameter list means this is a variable with
    // an initializer, not a function declaration.
    const std::size_t eq = no_attr.find('=');
    if (eq != std::string::npos && eq < open)
        return;

    const bool is_ctor =
        kind == ScopeKind::Class && !scopes.empty() &&
        name == scopes.back().class_name;

    // --- api-explicit ------------------------------------------------
    if (is_ctor && !has_explicit && !params.empty()) {
        bool single_arg_callable = true;
        for (std::size_t i = 1; i < params.size(); ++i)
            if (stripDefaultArg(params[i]) == params[i])
                single_arg_callable = false;
        const bool copy_or_move =
            params.size() == 1 &&
            params[0].find(name) != std::string::npos;
        const bool init_list =
            params[0].find("initializer_list") != std::string::npos;
        if (single_arg_callable && !copy_or_move && !init_list)
            add(findings, file, decl.line, "api-explicit",
                "constructor `" + name +
                    "` is callable with one argument; mark it "
                    "explicit to forbid implicit conversions");
    }

    // --- api-raw-params (constructors included: a `(cores, ways,
    // bw)` constructor is the canonical confusion trap) -------------
    for (std::size_t i = 0; i + 1 < params.size(); ++i) {
        const std::string t0 = paramType(params[i]);
        const std::string t1 = paramType(params[i + 1]);
        const std::string n0 = paramName(params[i]);
        const std::string n1 = paramName(params[i + 1]);
        if (isRawArithmeticType(t0) && isRawArithmeticType(t1) &&
            isResourceName(n0) && isResourceName(n1)) {
            add(findings, file, decl.line, "api-raw-params",
                "function `" + name + "` takes adjacent raw " + t0 +
                    " resource parameters (`" + n0 + "`, `" + n1 +
                    "`); wrap them in a struct or strong type so "
                    "cores/ways/bandwidth cannot be swapped "
                    "silently");
            break;
        }
    }

    if (is_ctor)
        return;

    // --- return type -------------------------------------------------
    std::string ret = normalizeWhitespace(no_attr.substr(0, open));
    // Drop the function name and leading specifiers.
    if (ret.size() >= name.size())
        ret = normalizeWhitespace(
            ret.substr(0, ret.size() - name.size()));
    bool is_static = false;
    bool stripped = true;
    while (stripped && !ret.empty()) {
        stripped = false;
        const std::string first = nextTokenAfter(ret, 0);
        if (isSpecifierToken(first)) {
            if (first == "static")
                is_static = true;
            ret = normalizeWhitespace(ret.substr(first.size()));
            stripped = true;
        }
    }
    if (ret.empty())
        return; // conversion operator or constructor-like shape
    // `class SATORI_CAPABILITY("mutex") Mutex` parses as a call with a
    // class-key return type; type definitions are not functions.
    if (ret == "class" || ret == "struct" || ret == "union" ||
        ret == "enum")
        return;
    const bool returns_void = ret == "void";
    const bool returns_ref = ret.find('&') != std::string::npos;
    const bool is_const_member =
        kind == ScopeKind::Class && containsWord(after, "const");

    // --- api-nodiscard -----------------------------------------------
    if (!returns_void && !has_nodiscard) {
        if (kind == ScopeKind::Class &&
            (is_const_member || (is_static && !returns_ref))) {
            add(findings, file, decl.line, "api-nodiscard",
                std::string(is_const_member ? "const member"
                                            : "static member") +
                    " function `" + name + "` returns `" + ret +
                    "`; non-mutating results must be [[nodiscard]] "
                    "so discarded calls surface as bugs");
        } else if (kind == ScopeKind::Namespace && !returns_ref) {
            add(findings, file, decl.line, "api-nodiscard",
                "free function `" + name + "` returns `" + ret +
                    "`; value-returning public functions must be "
                    "[[nodiscard]]");
        }
    }

}

/** Classify the `{` that just opened and push the new scope. */
void
ApiWalker::classifyAndPush()
{
    const std::string text =
        normalizeWhitespace(stripAccessLabels(decl.text));
    const std::string body = stripTemplateClause(text);
    Scope scope{ScopeKind::Other, ""};
    if (containsWord(body, "namespace") || body.rfind("extern", 0) == 0) {
        scope.kind = ScopeKind::Namespace;
    } else if (containsWord(body, "enum")) {
        scope.kind = ScopeKind::Enum;
    } else if ((containsWord(body, "class") ||
                containsWord(body, "struct") ||
                containsWord(body, "union")) &&
               body.find('(') == std::string::npos) {
        scope.kind = ScopeKind::Class;
        // Name: token after the class keyword, skipping attributes
        // and before any base-clause `:`.
        for (const char* kw : {"class", "struct", "union"}) {
            std::size_t at = body.find(kw);
            if (at == std::string::npos ||
                (at > 0 && isIdentChar(body[at - 1])))
                continue;
            std::string name =
                nextTokenAfter(body, at + std::string(kw).size());
            if (name == "alignas" || name.empty())
                continue;
            scope.class_name = name;
            break;
        }
    } else if (body.find('(') != std::string::npos &&
               (currentKind() == ScopeKind::Namespace ||
                currentKind() == ScopeKind::Class)) {
        // Function definition: analyze the declaration, then enter
        // the body (member declarations inside are invisible).
        processDeclaration(true);
        scope.kind = ScopeKind::Function;
    } else {
        scope.kind = currentKind() == ScopeKind::Function
                         ? ScopeKind::Function
                         : ScopeKind::Other;
    }
    scopes.push_back(std::move(scope));
    decl.text.clear();
}

} // namespace

void
runApiPack(const SourceFile& file, std::vector<Finding>& findings)
{
    if (!file.is_header)
        return;
    ApiWalker walker{file, findings, {}, {}};
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        if (file.lines[li].preproc)
            continue;
        const std::string& code = file.lines[li].code;
        for (char c : code) {
            if (c == '{') {
                walker.classifyAndPush();
            } else if (c == '}') {
                if (!walker.scopes.empty())
                    walker.scopes.pop_back();
                walker.decl.text.clear();
            } else if (c == ';') {
                const ScopeKind kind = walker.currentKind();
                if (kind == ScopeKind::Namespace ||
                    kind == ScopeKind::Class)
                    walker.processDeclaration(false);
                walker.decl.text.clear();
            } else {
                walker.pushChar(c, static_cast<int>(li) + 1);
            }
        }
        walker.decl.text.push_back('\n');
    }
}

} // namespace satori_analyzer
