/**
 * @file
 * The persist pack: snapshot write/read symmetry and schema-manifest
 * drift.
 *
 * Every persisted type pairs a `saveState(StateWriter&)` with a
 * `restoreState(StateReader&)`, and the codec is positional: the get
 * sequence must mirror the put sequence op for op or restores decode
 * garbage. The pack extracts both sequences per class as ordered op
 * tags:
 *
 *   u8 u32 u64 i64 bool double size string doublevec intvec
 *   config            - putConfiguration / getConfiguration
 *   state(member_)    - nested member.saveState(w) delegation
 *
 * with a `*` suffix for ops inside a loop and `?` for ops inside a
 * conditional (counted writes / optional sections are still symmetric
 * as long as both sides share the shape).
 *
 *   persist-asymmetric-state - the two sequences diverge, or one of
 *                              the pair is missing.
 *   persist-schema-drift     - a sequence differs from the checked-in
 *                              manifest while kSnapshotFormatVersion
 *                              was not bumped; on-disk snapshots from
 *                              the previous build would mis-decode
 *                              silently.
 *   persist-manifest-stale   - the manifest itself is out of date:
 *                              version skew against the sources, or
 *                              an entry whose class no longer
 *                              persists anything. Regenerate with
 *                              --write-persist-schema.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace satori_analyzer {

namespace {

std::size_t
findWord(const std::string& s, const std::string& word,
         std::size_t from = 0)
{
    std::size_t at = from;
    while ((at = s.find(word, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(s[at - 1]);
        const std::size_t end = at + word.size();
        const bool right_ok = end >= s.size() || !isIdentChar(s[end]);
        if (left_ok && right_ok)
            return at;
        at = end;
    }
    return std::string::npos;
}

/** A control-structure body span inside a function body. */
struct Region
{
    std::size_t begin = 0;
    std::size_t end = 0;
    bool loop = false; ///< for/while/do body vs if/else body.
};

/**
 * Map every for/while/do/if/else body in @p body to a Region so op
 * extraction can annotate repetition (`*`) and optionality (`?`).
 */
std::vector<Region>
controlRegions(const std::string& body)
{
    std::vector<Region> regions;
    static const struct
    {
        const char* kw;
        bool loop;
        bool paren; ///< keyword is followed by a (condition).
    } kKinds[] = {
        {"for", true, true},
        {"while", true, true},
        {"if", false, true},
        {"do", true, false},
        {"else", false, false},
    };
    for (const auto& kind : kKinds) {
        std::size_t at = 0;
        while ((at = findWord(body, kind.kw, at)) !=
               std::string::npos) {
            std::size_t pos = at + std::string(kind.kw).size();
            at = pos;
            if (kind.paren) {
                while (pos < body.size() &&
                       std::isspace(
                           static_cast<unsigned char>(body[pos])) != 0)
                    ++pos;
                if (pos >= body.size() || body[pos] != '(')
                    continue;
                const std::size_t close =
                    findMatching(body, pos, '(', ')');
                if (close == std::string::npos)
                    continue;
                pos = close + 1;
            }
            while (pos < body.size() &&
                   std::isspace(
                       static_cast<unsigned char>(body[pos])) != 0)
                ++pos;
            if (pos >= body.size())
                continue;
            Region region;
            region.loop = kind.loop;
            if (body[pos] == '{') {
                const std::size_t close =
                    findMatching(body, pos, '{', '}');
                if (close == std::string::npos)
                    continue;
                region.begin = pos + 1;
                region.end = close;
            } else {
                const std::size_t semi = body.find(';', pos);
                if (semi == std::string::npos)
                    continue;
                region.begin = pos;
                region.end = semi;
            }
            regions.push_back(region);
        }
    }
    return regions;
}

std::string
suffixAt(const std::vector<Region>& regions, std::size_t pos)
{
    bool in_cond = false;
    for (const Region& region : regions) {
        if (pos < region.begin || pos >= region.end)
            continue;
        if (region.loop)
            return "*";
        in_cond = true;
    }
    return in_cond ? "?" : "";
}

/** One extracted codec op, ordered by position in the body. */
struct Op
{
    std::size_t pos = 0;
    std::string tag;
};

/**
 * Extract the ordered codec op sequence of a saveState/restoreState
 * body given the writer/reader parameter name.
 */
std::vector<std::string>
extractOps(const std::string& body, const std::string& param,
           bool save)
{
    std::vector<Op> ops;
    const std::vector<Region> regions = controlRegions(body);
    const std::string prefix = save ? "put" : "get";
    const std::string nested = save ? "saveState" : "restoreState";

    // param.putX(...) / param->getX(...)
    std::size_t at = 0;
    while ((at = findWord(body, param, at)) != std::string::npos) {
        std::size_t pos = at + param.size();
        at = pos;
        if (pos < body.size() && body[pos] == '.') {
            ++pos;
        } else if (pos + 1 < body.size() && body[pos] == '-' &&
                   body[pos + 1] == '>') {
            pos += 2;
        } else {
            continue;
        }
        if (body.compare(pos, prefix.size(), prefix) != 0)
            continue;
        std::size_t end = pos + prefix.size();
        while (end < body.size() && isIdentChar(body[end]))
            ++end;
        if (end == pos + prefix.size() || end >= body.size() ||
            body[end] != '(')
            continue;
        std::string tag =
            body.substr(pos + prefix.size(), end - pos - prefix.size());
        std::transform(tag.begin(), tag.end(), tag.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        ops.push_back({at, tag + suffixAt(regions, at)});
    }

    // putConfiguration(param, ...) / getConfiguration(param)
    const std::string config = prefix + "Configuration";
    at = 0;
    while ((at = findWord(body, config, at)) != std::string::npos) {
        const std::size_t open = at + config.size();
        const std::size_t start = at;
        at = open;
        if (open >= body.size() || body[open] != '(')
            continue;
        const std::size_t close = findMatching(body, open, '(', ')');
        if (close == std::string::npos)
            continue;
        const std::string args = body.substr(open + 1, close - open - 1);
        if (findWord(args, param) == std::string::npos)
            continue;
        ops.push_back({start, "config" + suffixAt(regions, start)});
    }

    // member.saveState(param) delegation.
    at = 0;
    while ((at = findWord(body, nested, at)) != std::string::npos) {
        const std::size_t start = at;
        std::size_t open = at + nested.size();
        at = open;
        if (open >= body.size() || body[open] != '(')
            continue;
        const std::size_t close = findMatching(body, open, '(', ')');
        if (close == std::string::npos)
            continue;
        const std::string args = body.substr(open + 1, close - open - 1);
        if (findWord(args, param) == std::string::npos)
            continue;
        // Receiver chain before the '.'/'->'.
        std::size_t dot = start;
        std::string receiver;
        if (dot >= 1 && body[dot - 1] == '.') {
            std::size_t b = dot - 1;
            while (b > 0 && isIdentChar(body[b - 1]))
                --b;
            receiver = body.substr(b, dot - 1 - b);
        } else if (dot >= 2 && body[dot - 2] == '-' &&
                   body[dot - 1] == '>') {
            std::size_t b = dot - 2;
            while (b > 0 && isIdentChar(body[b - 1]))
                --b;
            receiver = body.substr(b, dot - 2 - b);
        } else {
            continue; // unqualified recursion, not delegation
        }
        if (receiver.empty())
            continue;
        ops.push_back(
            {start, "state(" + receiver + ")" + suffixAt(regions, start)});
    }

    std::sort(ops.begin(), ops.end(),
              [](const Op& a, const Op& b) { return a.pos < b.pos; });
    std::vector<std::string> tags;
    tags.reserve(ops.size());
    for (Op& op : ops)
        tags.push_back(std::move(op.tag));
    return tags;
}

/** The writer/reader parameter name of a saveState/restoreState. */
std::string
codecParam(const FunctionDef& def, bool save)
{
    const std::string type = save ? "StateWriter" : "StateReader";
    std::size_t begin = 0;
    std::size_t depth = 0;
    for (std::size_t i = 0; i <= def.params.size(); ++i) {
        const char c = i < def.params.size() ? def.params[i] : ',';
        if (c == '<' || c == '(')
            ++depth;
        else if (c == '>' || c == ')')
            --depth;
        if (c != ',' || depth != 0)
            continue;
        const std::string piece = def.params.substr(begin, i - begin);
        begin = i + 1;
        if (piece.find(type) == std::string::npos)
            continue;
        std::size_t e = piece.size();
        while (e > 0 && std::isspace(
                            static_cast<unsigned char>(piece[e - 1])) != 0)
            --e;
        std::size_t b = e;
        while (b > 0 && isIdentChar(piece[b - 1]))
            --b;
        if (b < e)
            return piece.substr(b, e - b);
    }
    return "";
}

/** One class's extracted persistence schema. */
struct PersistClass
{
    const FunctionDef* save = nullptr;
    const FunctionDef* restore = nullptr;
    std::vector<std::string> save_ops;
    std::vector<std::string> restore_ops;
};

/**
 * Group saveState/restoreState members by owning class and extract
 * both op sequences. Overloads without a StateWriter/StateReader
 * parameter are ignored.
 */
std::map<std::string, PersistClass>
collectPersistClasses(const SymbolIndex& index)
{
    std::map<std::string, PersistClass> classes;
    for (const FunctionDef& def : index.functions) {
        if (def.owner.empty() || def.body.empty())
            continue;
        const bool save = def.name == "saveState";
        const bool restore = def.name == "restoreState";
        if (!save && !restore)
            continue;
        const std::string param = codecParam(def, save);
        if (param.empty())
            continue;
        PersistClass& cls = classes[def.owner];
        if (save && cls.save == nullptr) {
            cls.save = &def;
            cls.save_ops = extractOps(def.body, param, true);
        } else if (restore && cls.restore == nullptr) {
            cls.restore = &def;
            cls.restore_ops = extractOps(def.body, param, false);
        }
    }
    return classes;
}

std::string
joinOps(const std::vector<std::string>& ops)
{
    std::string out;
    for (const std::string& op : ops) {
        if (!out.empty())
            out += ' ';
        out += op;
    }
    return out;
}

/** Location of `kSnapshotFormatVersion = N` in the scanned sources. */
struct SourceVersion
{
    int value = -1;
    std::string file;
    int line = 0;
};

SourceVersion
findSourceVersion(const std::vector<SourceFile>& sources)
{
    SourceVersion v;
    for (const SourceFile& source : sources) {
        for (std::size_t i = 0; i < source.lines.size(); ++i) {
            const std::string& code = source.lines[i].code;
            const std::size_t at =
                findWord(code, "kSnapshotFormatVersion");
            if (at == std::string::npos)
                continue;
            const std::size_t eq = code.find('=', at);
            if (eq == std::string::npos)
                continue;
            std::size_t d = eq + 1;
            while (d < code.size() &&
                   std::isspace(
                       static_cast<unsigned char>(code[d])) != 0)
                ++d;
            if (d >= code.size() ||
                std::isdigit(static_cast<unsigned char>(code[d])) == 0)
                continue;
            v.value = std::atoi(code.c_str() + d);
            v.file = source.display;
            v.line = static_cast<int>(i + 1);
            return v;
        }
    }
    return v;
}

/** The checked-in schema manifest. */
struct Manifest
{
    bool loaded = false;
    int version = -1;
    int version_line = 0;
    /// class name -> (ops, manifest line)
    std::map<std::string, std::pair<std::vector<std::string>, int>>
        entries;
};

Manifest
loadManifest(const std::filesystem::path& path)
{
    Manifest m;
    std::ifstream in(path);
    if (!in)
        return m;
    m.loaded = true;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] == '#')
            continue;
        std::istringstream fields(line);
        std::string head;
        fields >> head;
        if (head == "version") {
            fields >> m.version;
            m.version_line = lineno;
            continue;
        }
        if (!head.empty() && head.back() == ':') {
            head.pop_back();
            std::vector<std::string> ops;
            std::string op;
            while (fields >> op)
                ops.push_back(op);
            m.entries[head] = {std::move(ops), lineno};
        }
    }
    return m;
}

/** Classes in shipping code (include/ or src/) gate the manifest;
 *  test fixtures and tools do not belong in the schema. */
bool
inManifestScope(const FunctionDef& def)
{
    return def.display.find("include/") != std::string::npos ||
           def.display.find("src/") != std::string::npos;
}

} // namespace

void
runPersistPack(const std::vector<SourceFile>& sources,
               const SymbolIndex& index, const Options& opts,
               std::vector<Finding>& findings)
{
    const std::map<std::string, PersistClass> classes =
        collectPersistClasses(index);

    // --- persist-asymmetric-state -----------------------------------
    for (const auto& [name, cls] : classes) {
        if (cls.save == nullptr || cls.restore == nullptr) {
            const FunctionDef* def =
                cls.save != nullptr ? cls.save : cls.restore;
            Finding f;
            f.file = def->display;
            f.line = def->line;
            f.rule = "persist-asymmetric-state";
            f.message = name + " defines " + def->name +
                        " but no matching " +
                        (cls.save != nullptr ? "restoreState"
                                             : "saveState") +
                        "; snapshots of it cannot round-trip";
            findings.push_back(std::move(f));
            continue;
        }
        if (cls.save_ops == cls.restore_ops)
            continue;
        std::size_t i = 0;
        while (i < cls.save_ops.size() && i < cls.restore_ops.size() &&
               cls.save_ops[i] == cls.restore_ops[i])
            ++i;
        const std::string wrote =
            i < cls.save_ops.size() ? cls.save_ops[i] : "(end)";
        const std::string read =
            i < cls.restore_ops.size() ? cls.restore_ops[i] : "(end)";
        Finding f;
        f.file = cls.save->display;
        f.line = cls.save->line;
        f.rule = "persist-asymmetric-state";
        f.message =
            name + "::saveState writes [" + joinOps(cls.save_ops) +
            "] but restoreState (" + cls.restore->display + ":" +
            std::to_string(cls.restore->line) + ") reads [" +
            joinOps(cls.restore_ops) + "]; first divergence at op " +
            std::to_string(i + 1) + " (" + wrote + " vs " + read + ")";
        findings.push_back(std::move(f));
    }

    // --- manifest checks --------------------------------------------
    if (opts.persist_schema.empty())
        return;
    const std::string manifest_display =
        opts.persist_schema.generic_string();
    const Manifest manifest = loadManifest(opts.persist_schema);
    if (!manifest.loaded) {
        Finding f;
        f.file = manifest_display;
        f.line = 1;
        f.rule = "persist-manifest-stale";
        f.message = "persist schema manifest cannot be read; "
                    "regenerate it with --write-persist-schema";
        findings.push_back(std::move(f));
        return;
    }

    const SourceVersion source_version = findSourceVersion(sources);
    if (source_version.value < 0) {
        Finding f;
        f.file = manifest_display;
        f.line = manifest.version_line > 0 ? manifest.version_line : 1;
        f.rule = "persist-manifest-stale";
        f.message = "kSnapshotFormatVersion was not found in the "
                    "scanned sources, so the manifest version cannot "
                    "be validated";
        findings.push_back(std::move(f));
        return;
    }
    const bool version_bumped =
        manifest.version != source_version.value;
    if (version_bumped) {
        // A bump is the sanctioned way to change the schema, but the
        // manifest must be regenerated in the same change.
        Finding f;
        f.file = manifest_display;
        f.line = manifest.version_line > 0 ? manifest.version_line : 1;
        f.rule = "persist-manifest-stale";
        f.message =
            "manifest is for snapshot format version " +
            std::to_string(manifest.version) + " but " +
            source_version.file + ":" +
            std::to_string(source_version.line) +
            " declares version " +
            std::to_string(source_version.value) +
            "; regenerate with --write-persist-schema";
        findings.push_back(std::move(f));
        return;
    }

    // Versions match: any schema difference is silent drift.
    for (const auto& [name, cls] : classes) {
        const FunctionDef* def =
            cls.save != nullptr ? cls.save : cls.restore;
        if (def == nullptr || !inManifestScope(*def))
            continue;
        const auto entry = manifest.entries.find(name);
        if (entry == manifest.entries.end()) {
            Finding f;
            f.file = def->display;
            f.line = def->line;
            f.rule = "persist-schema-drift";
            f.message =
                name + " persists state but has no entry in " +
                manifest_display +
                "; bump kSnapshotFormatVersion and regenerate the "
                "manifest with --write-persist-schema";
            findings.push_back(std::move(f));
            continue;
        }
        if (cls.save != nullptr &&
            entry->second.first != cls.save_ops) {
            Finding f;
            f.file = cls.save->display;
            f.line = cls.save->line;
            f.rule = "persist-schema-drift";
            f.message =
                name + "::saveState now writes [" +
                joinOps(cls.save_ops) + "] but the manifest (" +
                manifest_display + ":" +
                std::to_string(entry->second.second) + ") records [" +
                joinOps(entry->second.first) +
                "] for unchanged format version " +
                std::to_string(source_version.value) +
                "; bump kSnapshotFormatVersion and regenerate the "
                "manifest";
            findings.push_back(std::move(f));
        }
    }
    for (const auto& [name, entry] : manifest.entries) {
        const auto cls = classes.find(name);
        if (cls != classes.end()) {
            const FunctionDef* def = cls->second.save != nullptr
                                         ? cls->second.save
                                         : cls->second.restore;
            if (def != nullptr && inManifestScope(*def))
                continue;
        }
        Finding f;
        f.file = manifest_display;
        f.line = entry.second;
        f.rule = "persist-manifest-stale";
        f.message = "manifest entry `" + name +
                    "` matches no persisted class in the scanned "
                    "sources; regenerate with --write-persist-schema";
        findings.push_back(std::move(f));
    }
}

std::string
renderPersistSchema(const std::vector<SourceFile>& sources,
                    const SymbolIndex& index)
{
    const SourceVersion version = findSourceVersion(sources);
    std::string out;
    out += "# satori persist schema manifest.\n";
    out += "# One line per persisted class: the ordered codec op "
           "sequence its\n";
    out += "# saveState writes (`*` = inside a loop, `?` = inside a "
           "conditional,\n";
    out += "# state(x) = nested delegation). Regenerate with\n";
    out += "#   satori_analyzer --write-persist-schema "
           "tools/persist_schema.txt <paths>\n";
    out += "# after bumping kSnapshotFormatVersion.\n";
    out += "version " +
           std::to_string(version.value < 0 ? 0 : version.value) +
           "\n";
    for (const auto& [name, cls] : collectPersistClasses(index)) {
        const FunctionDef* def =
            cls.save != nullptr ? cls.save : cls.restore;
        if (def == nullptr || !inManifestScope(*def))
            continue;
        out += name + ": " + joinOps(cls.save_ops) + "\n";
    }
    return out;
}

} // namespace satori_analyzer
