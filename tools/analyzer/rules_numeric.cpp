/**
 * @file
 * Numeric-hygiene rule pack: the BO/GP path (kernel matrices,
 * Cholesky, acquisition values) is all doubles, and the SPD guarantees
 * live or die on well-behaved float handling. These passes catch the
 * classic traps at commit time.
 *
 * Rules: num-float-eq, num-c-cast, num-int-abs.
 */

#include "analyzer/analyzer.hpp"

#include <cctype>

namespace satori_analyzer {

namespace {

void
add(std::vector<Finding>& findings, const SourceFile& file, int line,
    const char* rule, std::string message)
{
    Finding f;
    f.file = file.display;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
}

/** Final component of a qualified name (std::abs -> abs). */
std::string
baseName(const std::string& token)
{
    const std::size_t colon = token.rfind("::");
    return colon == std::string::npos ? token : token.substr(colon + 2);
}

/**
 * Resolve the operand token adjacent to a comparison at @p pos
 * (direction @p backward). A `)` resolves to the callee of the call
 * it closes, so `mean(v) == x` sees `mean`. Returns the token and
 * whether it is a call result.
 */
std::string
operandToken(const std::string& code, std::size_t pos, bool backward,
             bool& is_call)
{
    is_call = false;
    if (backward) {
        std::string tok = prevTokenBefore(code, pos);
        if (tok == ")") {
            // Walk back to the matching `(` and take the callee name.
            std::size_t i = pos;
            while (i > 0 &&
                   std::isspace(
                       static_cast<unsigned char>(code[i - 1])) != 0)
                --i;
            int depth = 0;
            while (i > 0) {
                --i;
                if (code[i] == ')')
                    ++depth;
                else if (code[i] == '(' && --depth == 0)
                    break;
            }
            is_call = true;
            return prevTokenBefore(code, i);
        }
        return tok;
    }
    std::string tok = nextTokenAfter(code, pos);
    if (!tok.empty() && isIdentChar(tok[0]) &&
        std::isdigit(static_cast<unsigned char>(tok[0])) == 0) {
        // Peek past the token: a `(` means a call.
        std::size_t i = code.find(tok, pos);
        if (i != std::string::npos) {
            i += tok.size();
            while (i < code.size() &&
                   std::isspace(
                       static_cast<unsigned char>(code[i])) != 0)
                ++i;
            if (i < code.size() && code[i] == '(')
                is_call = true;
        }
    }
    return tok;
}

bool
isZeroLiteral(const std::string& token)
{
    return token == "0.0" || token == "0." || token == "0.0f" ||
           token == "0.f" || token == "0.0F";
}

/**
 * True when a `== 0.0` comparison sits next to an explicit tolerance
 * idiom: std::abs on either operand, or an abs/tolerance token within
 * the two lines above (the sanctioned `std::abs(x) == 0.0` and
 * `if (std::abs(a - b) < eps)` shapes).
 */
bool
zeroCompareAllowlisted(const SourceFile& file, std::size_t li,
                       const std::string& left_tok,
                       const std::string& right_tok)
{
    if (baseName(left_tok) == "abs" || baseName(left_tok) == "fabs" ||
        baseName(right_tok) == "abs" || baseName(right_tok) == "fabs")
        return true;
    const std::size_t lo = li >= 2 ? li - 2 : 0;
    for (std::size_t l = lo; l <= li; ++l) {
        const std::string& code = file.lines[l].code;
        if (containsWord(code, "abs") || containsWord(code, "fabs") ||
            code.find("tol") != std::string::npos ||
            code.find("eps") != std::string::npos)
            return true;
    }
    return false;
}

void
scanFloatEquality(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        if (file.lines[li].preproc)
            continue;
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            const bool eq = code[i] == '=' && code[i + 1] == '=';
            const bool ne = code[i] == '!' && code[i + 1] == '=';
            if (!eq && !ne)
                continue;
            // Exclude <=, >=, ==>, and assignment contexts.
            if (eq && i > 0 &&
                (code[i - 1] == '<' || code[i - 1] == '>' ||
                 code[i - 1] == '=' || code[i - 1] == '!'))
                continue;
            if (eq && i + 2 < code.size() && code[i + 2] == '=')
                continue;
            bool left_call = false;
            bool right_call = false;
            const std::string left =
                operandToken(code, i, true, left_call);
            const std::string right =
                operandToken(code, i + 2, false, right_call);
            if (left == "operator" || right == "operator")
                continue;
            const bool left_float = isFloatingToken(file, left, li);
            const bool right_float = isFloatingToken(file, right, li);
            if (!left_float && !right_float)
                continue;
            if ((isZeroLiteral(left) || isZeroLiteral(right)) &&
                zeroCompareAllowlisted(file, li, left, right))
                continue;
            add(findings, file, lineno, "num-float-eq",
                std::string(eq ? "==" : "!=") +
                    " between floating-point expressions (`" + left +
                    "` vs `" + right +
                    "`); compare against a tolerance instead");
            i += 1;
        }
    }
}

void
scanCStyleCast(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        if (file.lines[li].preproc)
            continue;
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        for (const char* type : {"(int)", "(long)"}) {
            const std::string pat(type);
            std::size_t at = 0;
            while ((at = code.find(pat, at)) != std::string::npos) {
                const std::size_t begin = at;
                at += pat.size();
                // A cast follows an operator/keyword, not an
                // identifier (that would be a parameter list `f(int)`).
                const std::string before =
                    prevTokenBefore(code, begin);
                const bool cast_context =
                    before.empty() || before == "return" ||
                    before == "case" ||
                    (before.size() == 1 &&
                     std::string("=+-*/%<>&|,;({?:").find(before) !=
                         std::string::npos);
                if (!cast_context)
                    continue;
                bool is_call = false;
                std::string operand =
                    operandToken(code, begin + pat.size(), false,
                                 is_call);
                if (operand == "(") {
                    // `(int)(expr)` — look inside the parens.
                    const std::size_t open = code.find('(', at - 1);
                    const std::size_t close =
                        open == std::string::npos
                            ? std::string::npos
                            : findMatching(code, open, '(', ')');
                    bool floating = false;
                    if (close != std::string::npos) {
                        const std::string inner =
                            code.substr(open + 1, close - open - 1);
                        for (const std::string& name :
                             file.float_idents)
                            if (containsWord(inner, name))
                                floating = true;
                        if (inner.find('.') != std::string::npos)
                            floating = true;
                    }
                    if (!floating)
                        continue;
                    operand = "(...)";
                } else if (!isFloatingToken(file, operand, li)) {
                    continue;
                }
                add(findings, file, lineno, "num-c-cast",
                    "C-style " + pat +
                        " narrowing of floating expression `" +
                        operand +
                        "`; use static_cast with an explicit rounding "
                        "helper (std::lround/std::floor)");
            }
        }
    }
}

void
scanIntegerAbs(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        if (file.lines[li].preproc)
            continue;
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        std::size_t at = 0;
        while ((at = code.find("abs", at)) != std::string::npos) {
            const std::size_t begin = at;
            at += 3;
            // Standalone `abs` or `std::abs` call; fabs/labs have an
            // identifier char on the left and are skipped here.
            if (begin > 0 && isIdentChar(code[begin - 1]))
                continue;
            if (begin + 3 >= code.size() || code[begin + 3] != '(')
                continue;
            const bool qualified =
                begin >= 2 && code[begin - 1] == ':' &&
                code[begin - 2] == ':';
            bool dummy = false;
            const std::string arg =
                operandToken(code, begin + 4, false, dummy);
            bool floating = isFloatingToken(file, arg, li);
            if (!floating) {
                const std::size_t close =
                    findMatching(code, begin + 3, '(', ')');
                if (close != std::string::npos) {
                    const std::string inner = code.substr(
                        begin + 4, close - begin - 4);
                    for (const std::string& name : file.float_idents)
                        if (containsWord(inner, name))
                            floating = true;
                }
            }
            if (!floating)
                continue;
            if (!qualified) {
                add(findings, file, lineno, "num-int-abs",
                    "C `abs(` on a floating argument truncates to "
                    "int; use std::abs with <cmath> included");
            } else if (!file.has_cmath) {
                add(findings, file, lineno, "num-int-abs",
                    "std::abs on a floating argument without <cmath>; "
                    "<cstdlib>'s integer overload may bind and "
                    "silently truncate");
            }
        }
    }
}

} // namespace

void
runNumericPack(const SourceFile& file, std::vector<Finding>& findings)
{
    scanFloatEquality(file, findings);
    scanCStyleCast(file, findings);
    scanIntegerAbs(file, findings);
}

} // namespace satori_analyzer
