/**
 * @file
 * Source loading, comment/string stripping, token helpers, and the
 * derived per-file identifier tables shared by every rule pass.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace fs = std::filesystem;

namespace satori_analyzer {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string
stripCommentsAndStrings(const std::string& line, bool& in_block)
{
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block) {
            if (line[i] == '*' && i + 1 < line.size() &&
                line[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        if (line[i] == '/' && i + 1 < line.size()) {
            if (line[i + 1] == '/')
                break;
            if (line[i + 1] == '*') {
                in_block = true;
                ++i;
                continue;
            }
        }
        if (line[i] == '"' && i > 0 && line[i - 1] == 'R' &&
            (i < 2 || !isIdentChar(line[i - 2]) ||
             line[i - 2] == 'u' || line[i - 2] == 'L' ||
             line[i - 2] == '8')) {
            // Raw string literal R"delim(...)delim": no escapes, and
            // embedded quotes do not terminate it. Spanning lines is
            // not supported; an unterminated raw literal strips to
            // end of line.
            const std::size_t open = line.find('(', i + 1);
            if (open == std::string::npos)
                break;
            // Built piecewise: the operator+ chain trips a GCC 12
            // -Wrestrict false positive under -Werror.
            std::string closer;
            closer.reserve(open - i + 1);
            closer.push_back(')');
            closer.append(line, i + 1, open - i - 1);
            closer.push_back('"');
            const std::size_t end = line.find(closer, open + 1);
            if (end == std::string::npos)
                break;
            i = end + closer.size() - 1;
            continue;
        }
        if (line[i] == '"' ||
            (line[i] == '\'' &&
             (i == 0 || !isIdentChar(line[i - 1])))) {
            const char quote = line[i];
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\')
                    ++i;
                else if (line[i] == quote)
                    break;
                ++i;
            }
            continue;
        }
        out.push_back(line[i]);
    }
    return out;
}

bool
containsWord(const std::string& s, const std::string& word)
{
    std::size_t at = 0;
    while ((at = s.find(word, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(s[at - 1]);
        const std::size_t end = at + word.size();
        const bool right_ok = end >= s.size() || !isIdentChar(s[end]);
        if (left_ok && right_ok)
            return true;
        at = end;
    }
    return false;
}

namespace {

/** True for characters that extend a numeric literal (1.5e-3f). */
bool
isNumericChar(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
           c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F' ||
           c == 'x' || c == 'u' || c == 'U' || c == 'l' || c == 'L';
}

} // namespace

std::string
prevTokenBefore(const std::string& s, std::size_t pos)
{
    std::size_t i = std::min(pos, s.size());
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(s[i - 1])) != 0)
        --i;
    if (i == 0)
        return "";
    std::size_t end = i;
    if (isIdentChar(s[i - 1])) {
        // Identifier chain, possibly qualified: abc::def::ghi — or a
        // numeric literal; both read the same way backwards.
        while (i > 0 &&
               (isIdentChar(s[i - 1]) ||
                (s[i - 1] == ':' && i > 1 && s[i - 2] == ':') ||
                (s[i - 1] == ':' && i < end && s[i] == ':')))
            --i;
        return s.substr(i, end - i);
    }
    return s.substr(i - 1, 1);
}

std::string
nextTokenAfter(const std::string& s, std::size_t pos)
{
    std::size_t i = pos;
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0)
        ++i;
    if (i >= s.size())
        return "";
    const std::size_t start = i;
    if (isIdentChar(s[i])) {
        if (std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
            while (i < s.size() &&
                   (isNumericChar(s[i]) ||
                    ((s[i] == '+' || s[i] == '-') && i > start &&
                     (s[i - 1] == 'e' || s[i - 1] == 'E'))))
                ++i;
        } else {
            while (i < s.size() &&
                   (isIdentChar(s[i]) ||
                    (s[i] == ':' && i + 1 < s.size() &&
                     s[i + 1] == ':') ||
                    (s[i] == ':' && i > start && s[i - 1] == ':')))
                ++i;
        }
        return s.substr(start, i - start);
    }
    if (s[i] == '.' && i + 1 < s.size() &&
        std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0) {
        while (i < s.size() && isNumericChar(s[i]))
            ++i;
        return s.substr(start, i - start);
    }
    return s.substr(start, 1);
}

std::size_t
findMatching(const std::string& s, std::size_t pos, char open, char close)
{
    if (pos >= s.size() || s[pos] != open)
        return std::string::npos;
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == open)
            ++depth;
        else if (s[i] == close && --depth == 0)
            return i;
    }
    return std::string::npos;
}

bool
isFloatLiteral(const std::string& token)
{
    if (token.empty())
        return false;
    bool digit = false;
    bool dot_or_exp = false;
    for (std::size_t i = 0; i < token.size(); ++i) {
        const char c = token[i];
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            digit = true;
        } else if (c == '.') {
            dot_or_exp = true;
        } else if ((c == 'e' || c == 'E') && digit) {
            dot_or_exp = true;
        } else if (c == '+' || c == '-') {
            if (i == 0 || (token[i - 1] != 'e' && token[i - 1] != 'E'))
                return false;
        } else if ((c == 'f' || c == 'F') && i + 1 == token.size()) {
            dot_or_exp = true;
        } else {
            return false;
        }
    }
    return digit && dot_or_exp;
}

namespace {

/**
 * Free functions from satori/common/math.hpp and friends that return
 * double: calls to these are floating expressions even though the
 * declaring header is a different file.
 */
const std::set<std::string>&
knownDoubleApis()
{
    static const std::set<std::string> apis = {
        "normalPdf",     "normalCdf",     "clamp",
        "mean",          "stddev",        "geomean",
        "harmonicMean",  "coefficientOfVariation",
        "squaredDistance", "euclideanDistance",
        "amdahlSpeedup", "uniform",       "gaussian",
        "sqrt",          "exp",           "log",
        "pow",           "floor",         "ceil",
        "round",         "fabs",
    };
    return apis;
}

} // namespace

namespace {

/** Does @p code declare @p name with one of the @p types keywords? */
bool
declaresAs(const std::string& code, const std::string& name,
           const std::initializer_list<const char*>& types)
{
    std::size_t at = 0;
    while ((at = code.find(name, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(code[at - 1]);
        const std::size_t end = at + name.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok) {
            // Read the type token leftwards, past &/* qualifiers.
            std::size_t i = at;
            while (i > 0 &&
                   (std::isspace(
                        static_cast<unsigned char>(code[i - 1])) != 0 ||
                    code[i - 1] == '&' || code[i - 1] == '*'))
                --i;
            const std::string prev = prevTokenBefore(code, i);
            for (const char* type : types)
                if (prev == type || prev == std::string("std::") + type)
                    return true;
        }
        at = end;
    }
    return false;
}

} // namespace

bool
isFloatingToken(const SourceFile& file, const std::string& token,
                std::size_t line_index)
{
    if (token.empty())
        return false;
    if (isFloatLiteral(token))
        return true;
    // Strip a qualification chain down to the final component so
    // std::sqrt and satori::mean resolve like sqrt and mean.
    std::string base = token;
    const std::size_t colon = base.rfind("::");
    if (colon != std::string::npos)
        base = base.substr(colon + 2);
    if (file.float_idents.count(base) != 0) {
        if (file.integer_idents.count(base) == 0)
            return true;
        // Ambiguous name (declared with both kinds somewhere in the
        // file, e.g. `int total` here and `double total` elsewhere):
        // the nearest declaration at or above the use decides.
        const std::size_t lo =
            std::min(line_index, file.lines.size() - 1);
        for (std::size_t l = lo + 1; l-- > 0;) {
            const std::string& code = file.lines[l].code;
            if (declaresAs(code, base, {"double", "float"}))
                return true;
            if (declaresAs(code, base,
                           {"int", "long", "short", "unsigned",
                            "size_t", "uint64_t", "int64_t",
                            "uint32_t", "int32_t", "bool", "char",
                            "auto"}))
                return false;
        }
        return false;
    }
    return knownDoubleApis().count(base) != 0;
}

namespace {

/** Record declared double/float and unordered-container identifiers. */
void
harvestIdentifiers(const std::string& code, SourceFile& file)
{
    const auto harvest = [&code](const char* kw,
                                 std::set<std::string>& into) {
        std::size_t at = 0;
        const std::string word(kw);
        while ((at = code.find(word, at)) != std::string::npos) {
            const bool left_ok = at == 0 || !isIdentChar(code[at - 1]);
            const std::size_t end = at + word.size();
            const bool right_ok =
                end >= code.size() || !isIdentChar(code[end]);
            if (left_ok && right_ok) {
                const std::string next = nextTokenAfter(code, end);
                if (!next.empty() && isIdentChar(next[0]) &&
                    std::isdigit(static_cast<unsigned char>(next[0])) ==
                        0)
                    into.insert(next);
            }
            at = end;
        }
    };
    for (const char* kw : {"double", "float"})
        harvest(kw, file.float_idents);
    for (const char* kw : {"int", "long", "short", "unsigned", "size_t",
                           "uint64_t", "int64_t", "uint32_t", "int32_t"})
        harvest(kw, file.integer_idents);
    for (const char* kw : {"unordered_map", "unordered_set"}) {
        std::size_t at = 0;
        const std::string word(kw);
        while ((at = code.find(word, at)) != std::string::npos) {
            std::size_t i = at + word.size();
            if (i < code.size() && code[i] == '<') {
                const std::size_t close =
                    findMatching(code, i, '<', '>');
                if (close != std::string::npos) {
                    // Skip ref/pointer qualifiers so parameters like
                    // `const unordered_map<K, V>& table` harvest too.
                    std::size_t j = close + 1;
                    while (j < code.size() &&
                           (std::isspace(static_cast<unsigned char>(
                                code[j])) != 0 ||
                            code[j] == '&' || code[j] == '*'))
                        ++j;
                    const std::string next = nextTokenAfter(code, j);
                    if (!next.empty() && isIdentChar(next[0]))
                        file.unordered_idents.insert(next);
                }
            }
            at = at + word.size();
        }
    }
}

} // namespace

SourceFile
loadSourceFile(const fs::path& path)
{
    SourceFile file;
    file.path = path;
    file.display = path.generic_string();
    file.is_header = path.extension() == ".hpp";

    std::ifstream in(path);
    std::string raw;
    bool in_block = false;
    bool continuation = false;
    while (std::getline(in, raw)) {
        SourceLine line;
        line.raw = raw;
        line.code = stripCommentsAndStrings(raw, in_block);
        std::size_t first = 0;
        while (first < line.code.size() &&
               std::isspace(
                   static_cast<unsigned char>(line.code[first])) != 0)
            ++first;
        line.preproc = continuation ||
                       (first < line.code.size() &&
                        line.code[first] == '#');
        continuation = line.preproc && !line.code.empty() &&
                       line.code.back() == '\\';
        if (line.preproc) {
            if (line.code.find("<cmath>") != std::string::npos)
                file.has_cmath = true;
            if (line.code.find("<cstdlib>") != std::string::npos)
                file.has_cstdlib = true;
        } else {
            harvestIdentifiers(line.code, file);
        }
        file.lines.push_back(std::move(line));
    }
    return file;
}

std::string
guardRelativePath(const fs::path& file, const fs::path& include_root,
                  const fs::path& scan_target)
{
    std::error_code ec;
    if (!include_root.empty()) {
        const fs::path rel = fs::relative(file, include_root, ec);
        if (!ec && !rel.empty() &&
            rel.generic_string().rfind("..", 0) != 0)
            return rel.generic_string();
    }
    // Outside the include root, derive from the scan target's parent
    // so `bench/bench_util.hpp` scanned via target `bench` keeps its
    // directory in the guard (SATORI_BENCH_BENCH_UTIL_HPP).
    fs::path base = scan_target.parent_path();
    if (base.empty())
        base = "."; // single-component relative target, e.g. `bench`
    const fs::path rel = fs::relative(file, base, ec);
    if (!ec && !rel.empty() && rel.generic_string().rfind("..", 0) != 0)
        return rel.generic_string();
    return file.filename().generic_string();
}

} // namespace satori_analyzer
