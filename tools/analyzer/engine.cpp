/**
 * @file
 * The rule-pass engine: file collection, pack dispatch, inline
 * suppressions, baseline handling, and text/JSON rendering.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace satori_analyzer {

unsigned
parsePackList(const std::string& list)
{
    unsigned packs = 0;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "det" || item == "determinism")
            packs |= kPackDeterminism;
        else if (item == "num" || item == "numeric")
            packs |= kPackNumeric;
        else if (item == "api")
            packs |= kPackApi;
        else if (item == "header" || item == "hdr")
            packs |= kPackHeader;
        else if (item == "all")
            packs |= kPackAll;
        else
            return 0;
    }
    return packs;
}

namespace {

/** Trimmed copy of @p s (the fingerprint normalization). */
std::string
trimmed(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    std::size_t e = s.find_last_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Rules allowed by `satori-analyzer: allow(a, b)` in @p raw, or "". */
std::vector<std::string>
parseAllowedRules(const std::string& raw)
{
    std::vector<std::string> rules;
    const std::size_t tag = raw.find("satori-analyzer:");
    if (tag == std::string::npos)
        return rules;
    const std::size_t allow = raw.find("allow", tag);
    if (allow == std::string::npos)
        return rules;
    const std::size_t open = raw.find('(', allow);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : raw.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::stringstream ss(raw.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(ss, item, ','))
        rules.push_back(trimmed(item));
    return rules;
}

} // namespace

void
applySuppressions(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file != file.display || f.line <= 0 ||
            static_cast<std::size_t>(f.line) > file.lines.size())
            continue;
        for (int line : {f.line, f.line - 1}) {
            if (line <= 0)
                continue;
            const std::vector<std::string> allowed = parseAllowedRules(
                file.lines[static_cast<std::size_t>(line) - 1].raw);
            for (const std::string& rule : allowed)
                if (rule == f.rule || rule == "all")
                    f.suppressed = true;
        }
    }
}

bool
loadBaseline(const fs::path& path, std::vector<BaselineEntry>& entries,
             std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open baseline file " + path.string();
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t p1 = t.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : t.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": expected `rule | path-suffix | fingerprint`";
            return false;
        }
        BaselineEntry entry;
        entry.rule = trimmed(t.substr(0, p1));
        entry.path_suffix = trimmed(t.substr(p1 + 1, p2 - p1 - 1));
        entry.fingerprint = trimmed(t.substr(p2 + 1));
        entry.source_line = lineno;
        if (entry.rule.empty() || entry.path_suffix.empty()) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": empty rule or path suffix";
            return false;
        }
        entries.push_back(std::move(entry));
    }
    return true;
}

void
applyBaseline(std::vector<BaselineEntry>& entries,
              std::vector<Finding>& findings)
{
    for (BaselineEntry& entry : entries) {
        for (Finding& f : findings) {
            if (f.baselined || f.suppressed || f.rule != entry.rule)
                continue;
            if (f.file.size() < entry.path_suffix.size() ||
                f.file.compare(f.file.size() - entry.path_suffix.size(),
                               entry.path_suffix.size(),
                               entry.path_suffix) != 0)
                continue;
            if (f.fingerprint != entry.fingerprint)
                continue;
            f.baselined = true;
            entry.used = true;
            break;
        }
    }
}

namespace {

void
sortFindings(std::vector<Finding>& findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

void
fillFingerprints(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file == file.display && f.line >= 1 &&
            static_cast<std::size_t>(f.line) <= file.lines.size())
            f.fingerprint = trimmed(
                file.lines[static_cast<std::size_t>(f.line) - 1].raw);
    }
}

} // namespace

std::vector<Finding>
analyzeFile(const fs::path& file, const Options& options,
            const fs::path& scan_target)
{
    SourceFile source = loadSourceFile(file);
    source.guard_rel =
        guardRelativePath(file, options.include_root, scan_target);
    std::vector<Finding> findings;
    if ((options.packs & kPackDeterminism) != 0)
        runDeterminismPack(source, options, findings);
    if ((options.packs & kPackNumeric) != 0)
        runNumericPack(source, findings);
    if ((options.packs & kPackApi) != 0)
        runApiPack(source, findings);
    if ((options.packs & kPackHeader) != 0)
        runHeaderPack(source, findings);
    fillFingerprints(source, findings);
    applySuppressions(source, findings);
    return findings;
}

AnalyzeResult
analyzePaths(const std::vector<fs::path>& targets, const Options& options)
{
    AnalyzeResult result;
    std::vector<std::pair<fs::path, fs::path>> files; // (file, target)
    for (const fs::path& target : targets) {
        if (fs::is_directory(target)) {
            for (const auto& entry :
                 fs::recursive_directory_iterator(target)) {
                if (!entry.is_regular_file())
                    continue;
                const fs::path& p = entry.path();
                if (p.extension() != ".hpp" && p.extension() != ".cpp")
                    continue;
                if (p.generic_string().find("/build") !=
                    std::string::npos)
                    continue;
                files.emplace_back(p, target);
            }
        } else {
            files.emplace_back(target, target);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    for (const auto& [file, target] : files) {
        std::vector<Finding> findings =
            analyzeFile(file, options, target);
        result.findings.insert(result.findings.end(),
                               findings.begin(), findings.end());
    }
    result.files_scanned = files.size();
    sortFindings(result.findings);
    return result;
}

std::size_t
countActive(const std::vector<Finding>& findings)
{
    std::size_t active = 0;
    for (const Finding& f : findings)
        if (!f.suppressed && !f.baselined)
            ++active;
    return active;
}

std::string
renderText(const AnalyzeResult& result, const std::string& tool_name)
{
    std::ostringstream out;
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    for (const Finding& f : result.findings) {
        if (f.suppressed) {
            ++suppressed;
            continue;
        }
        if (f.baselined) {
            ++baselined;
            continue;
        }
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    }
    out << tool_name << ": " << result.files_scanned << " files, "
        << countActive(result.findings) << " findings (" << suppressed
        << " suppressed, " << baselined << " baselined)\n";
    return out.str();
}

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const AnalyzeResult& result)
{
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << result.files_scanned
        << ",\n  \"active_findings\": "
        << countActive(result.findings) << ",\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : result.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\", \"suppressed\": "
            << (f.suppressed ? "true" : "false")
            << ", \"baselined\": " << (f.baselined ? "true" : "false")
            << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

} // namespace satori_analyzer
