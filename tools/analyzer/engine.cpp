/**
 * @file
 * The rule-pass engine: file collection, pack dispatch, inline
 * suppressions, baseline handling, and text/JSON rendering.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace fs = std::filesystem;

namespace satori_analyzer {

unsigned
parsePackList(const std::string& list)
{
    unsigned packs = 0;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "det" || item == "determinism")
            packs |= kPackDeterminism;
        else if (item == "num" || item == "numeric")
            packs |= kPackNumeric;
        else if (item == "api")
            packs |= kPackApi;
        else if (item == "header" || item == "hdr")
            packs |= kPackHeader;
        else if (item == "conc" || item == "concurrency")
            packs |= kPackConcurrency;
        else if (item == "persist")
            packs |= kPackPersist;
        else if (item == "arch")
            packs |= kPackArch;
        else if (item == "flow")
            packs |= kPackFlow;
        else if (item == "all")
            packs |= kPackAll;
        else
            return 0;
    }
    return packs;
}

namespace {

/** Trimmed copy of @p s (the fingerprint normalization). */
std::string
trimmed(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    std::size_t e = s.find_last_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Rules allowed by `satori-analyzer: allow(a, b)` in @p raw, or "". */
std::vector<std::string>
parseAllowedRules(const std::string& raw)
{
    std::vector<std::string> rules;
    const std::size_t tag = raw.find("satori-analyzer:");
    if (tag == std::string::npos)
        return rules;
    const std::size_t allow = raw.find("allow", tag);
    if (allow == std::string::npos)
        return rules;
    const std::size_t open = raw.find('(', allow);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : raw.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::stringstream ss(raw.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(ss, item, ','))
        rules.push_back(trimmed(item));
    return rules;
}

} // namespace

void
applySuppressions(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file != file.display || f.line <= 0 ||
            static_cast<std::size_t>(f.line) > file.lines.size())
            continue;
        for (int line : {f.line, f.line - 1}) {
            if (line <= 0)
                continue;
            const std::vector<std::string> allowed = parseAllowedRules(
                file.lines[static_cast<std::size_t>(line) - 1].raw);
            for (const std::string& rule : allowed)
                if (rule == f.rule || rule == "all")
                    f.suppressed = true;
        }
    }
}

bool
loadBaseline(const fs::path& path, std::vector<BaselineEntry>& entries,
             std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open baseline file " + path.string();
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t p1 = t.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : t.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": expected `rule | path-suffix | fingerprint`";
            return false;
        }
        BaselineEntry entry;
        entry.rule = trimmed(t.substr(0, p1));
        entry.path_suffix = trimmed(t.substr(p1 + 1, p2 - p1 - 1));
        entry.fingerprint = trimmed(t.substr(p2 + 1));
        entry.source_line = lineno;
        if (entry.rule.empty() || entry.path_suffix.empty()) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": empty rule or path suffix";
            return false;
        }
        entries.push_back(std::move(entry));
    }
    return true;
}

void
applyBaseline(std::vector<BaselineEntry>& entries,
              std::vector<Finding>& findings)
{
    for (BaselineEntry& entry : entries) {
        for (Finding& f : findings) {
            if (f.baselined || f.suppressed || f.rule != entry.rule)
                continue;
            if (f.file.size() < entry.path_suffix.size() ||
                f.file.compare(f.file.size() - entry.path_suffix.size(),
                               entry.path_suffix.size(),
                               entry.path_suffix) != 0)
                continue;
            if (f.fingerprint != entry.fingerprint)
                continue;
            f.baselined = true;
            entry.used = true;
            break;
        }
    }
}

namespace {

void
sortFindings(std::vector<Finding>& findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

void
fillFingerprints(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file == file.display && f.line >= 1 &&
            static_cast<std::size_t>(f.line) <= file.lines.size())
            f.fingerprint = trimmed(
                file.lines[static_cast<std::size_t>(f.line) - 1].raw);
    }
}

/** Per-file packs over an already-loaded source. */
std::vector<Finding>
analyzeSource(const SourceFile& source, const Options& options)
{
    std::vector<Finding> findings;
    if ((options.packs & kPackDeterminism) != 0)
        runDeterminismPack(source, options, findings);
    if ((options.packs & kPackNumeric) != 0)
        runNumericPack(source, findings);
    if ((options.packs & kPackApi) != 0)
        runApiPack(source, findings);
    if ((options.packs & kPackHeader) != 0)
        runHeaderPack(source, findings);
    if ((options.packs & kPackConcurrency) != 0)
        runConcurrencyPack(source, options, findings);
    fillFingerprints(source, findings);
    applySuppressions(source, findings);
    return findings;
}

/** Worker count for the tree scan: Options::jobs, or the hardware
 *  concurrency (capped so tiny scans do not spawn idle threads). */
unsigned
resolveJobs(const Options& options, std::size_t work_items)
{
    unsigned jobs = options.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
        jobs = std::min(jobs, 8u);
    }
    if (work_items < jobs)
        jobs = static_cast<unsigned>(work_items);
    return std::max(jobs, 1u);
}

/**
 * Run @p work(i) for every index in [0, count) across @p jobs
 * threads. Work is claimed by atomic counter, so output written to
 * index-addressed slots is deterministic regardless of schedule.
 */
template <typename Work>
void
parallelIndexed(std::size_t count, unsigned jobs, const Work& work)
{
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            work(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&next, count, &work] {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1))
            work(i);
    };
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j)
        threads.emplace_back(worker);
    for (std::thread& t : threads)
        t.join();
}

} // namespace

std::vector<Finding>
analyzeFile(const fs::path& file, const Options& options,
            const fs::path& scan_target)
{
    SourceFile source = loadSourceFile(file);
    source.guard_rel =
        guardRelativePath(file, options.include_root, scan_target);
    std::vector<Finding> findings = analyzeSource(source, options);

    // The cross-file packs run over a one-file index so single-file
    // invocations (and the rule fixtures) still exercise them.
    if ((options.packs &
         (kPackFlow | kPackPersist | kPackArch)) != 0) {
        std::vector<SourceFile> one;
        one.push_back(std::move(source));
        std::vector<Finding> cross;
        if ((options.packs & (kPackFlow | kPackPersist)) != 0) {
            const SymbolIndex index = buildSymbolIndex(one, options);
            if ((options.packs & kPackFlow) != 0)
                runFlowPack(one[0], index, cross);
            if ((options.packs & kPackPersist) != 0)
                runPersistPack(one, index, options, cross);
        }
        if ((options.packs & kPackArch) != 0)
            runArchPack(one, options, cross);
        fillFingerprints(one[0], cross);
        applySuppressions(one[0], cross);
        findings.insert(findings.end(), cross.begin(), cross.end());
    }
    return findings;
}

std::vector<SourceFile>
loadSourceTree(const std::vector<fs::path>& targets,
               const Options& options)
{
    std::vector<std::pair<fs::path, fs::path>> files; // (file, target)
    for (const fs::path& target : targets) {
        if (fs::is_directory(target)) {
            const bool target_is_fixtures =
                target.generic_string().find("fixtures") !=
                std::string::npos;
            for (const auto& entry :
                 fs::recursive_directory_iterator(target)) {
                if (!entry.is_regular_file())
                    continue;
                const fs::path& p = entry.path();
                if (p.extension() != ".hpp" && p.extension() != ".cpp")
                    continue;
                if (p.generic_string().find("/build") !=
                    std::string::npos)
                    continue;
                // Fixture trees hold deliberate violations; they are
                // only scanned when targeted explicitly.
                if (!target_is_fixtures &&
                    p.generic_string().find("fixtures") !=
                        std::string::npos)
                    continue;
                files.emplace_back(p, target);
            }
        } else {
            files.emplace_back(target, target);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<SourceFile> sources(files.size());
    parallelIndexed(files.size(), resolveJobs(options, files.size()),
                    [&files, &sources, &options](std::size_t i) {
                        SourceFile source =
                            loadSourceFile(files[i].first);
                        source.guard_rel = guardRelativePath(
                            files[i].first, options.include_root,
                            files[i].second);
                        sources[i] = std::move(source);
                    });
    return sources;
}

AnalyzeResult
analyzePaths(const std::vector<fs::path>& targets, const Options& options)
{
    AnalyzeResult result;
    const std::vector<SourceFile> sources =
        loadSourceTree(targets, options);
    result.jobs_used = resolveJobs(options, sources.size());

    // Per-file packs in parallel; slot-per-file keeps the merged
    // order identical to a serial scan.
    std::vector<std::vector<Finding>> slots(sources.size());
    parallelIndexed(sources.size(), result.jobs_used,
                    [&sources, &slots, &options](std::size_t i) {
                        slots[i] = analyzeSource(sources[i], options);
                    });
    for (std::vector<Finding>& slot : slots)
        result.findings.insert(result.findings.end(), slot.begin(),
                               slot.end());

    // Cross-file passes: the symbol index and call graph feed the
    // nondeterminism taint pass (det) and lock-order pass (conc); the
    // index alone feeds the flow and persist packs; arch works from
    // the include graph of the loaded tree.
    std::vector<Finding> cross;
    if ((options.packs & (kPackDeterminism | kPackConcurrency |
                          kPackFlow | kPackPersist)) != 0) {
        const SymbolIndex index = buildSymbolIndex(sources, options);
        if ((options.packs &
             (kPackDeterminism | kPackConcurrency)) != 0) {
            const CallGraph graph = buildCallGraph(index);
            if ((options.packs & kPackDeterminism) != 0) {
                const TaintResult taint =
                    propagateNondeterminism(index, graph);
                runTaintPass(index, graph, taint, cross);
            }
            if ((options.packs & kPackConcurrency) != 0)
                runLockOrderPass(index, graph, cross);
        }
        if ((options.packs & kPackFlow) != 0)
            for (const SourceFile& source : sources)
                runFlowPack(source, index, cross);
        if ((options.packs & kPackPersist) != 0)
            runPersistPack(sources, index, options, cross);
    }
    if ((options.packs & kPackArch) != 0)
        runArchPack(sources, options, cross);
    if (!cross.empty()) {
        for (const SourceFile& source : sources) {
            fillFingerprints(source, cross);
            applySuppressions(source, cross);
        }
        result.findings.insert(result.findings.end(), cross.begin(),
                               cross.end());
    }

    result.files_scanned = sources.size();
    sortFindings(result.findings);
    return result;
}

std::size_t
countActive(const std::vector<Finding>& findings)
{
    std::size_t active = 0;
    for (const Finding& f : findings)
        if (!f.suppressed && !f.baselined)
            ++active;
    return active;
}

std::string
renderText(const AnalyzeResult& result, const std::string& tool_name)
{
    std::ostringstream out;
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    for (const Finding& f : result.findings) {
        if (f.suppressed) {
            ++suppressed;
            continue;
        }
        if (f.baselined) {
            ++baselined;
            continue;
        }
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    }
    out << tool_name << ": " << result.files_scanned << " files, "
        << countActive(result.findings) << " findings (" << suppressed
        << " suppressed, " << baselined << " baselined)\n";
    return out.str();
}

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const AnalyzeResult& result)
{
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << result.files_scanned
        << ",\n  \"active_findings\": "
        << countActive(result.findings) << ",\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : result.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\", \"suppressed\": "
            << (f.suppressed ? "true" : "false")
            << ", \"baselined\": " << (f.baselined ? "true" : "false")
            << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

std::string
renderSarif(const AnalyzeResult& result, const std::string& tool_name)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"" << jsonEscape(tool_name) << "\",\n"
        << "          \"rules\": [";
    bool first = true;
    for (const RuleInfo& info : ruleCatalog()) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "            {\"id\": \"" << jsonEscape(info.id)
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(info.id + " (" + info.pack + " pack)")
            << "\"}, \"fullDescription\": {\"text\": \""
            << jsonEscape(info.rationale)
            << "\"}, \"help\": {\"text\": \"" << jsonEscape(info.idiom)
            << "\"}}";
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    first = true;
    for (const Finding& f : result.findings) {
        if (f.suppressed || f.baselined)
            continue;
        out << (first ? "\n" : ",\n");
        first = false;
        out << "        {\"ruleId\": \"" << jsonEscape(f.rule)
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(f.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(f.file)
            << "\"}, \"region\": {\"startLine\": "
            << (f.line > 0 ? f.line : 1) << "}}}]}";
    }
    out << "\n      ]\n    }\n  ]\n}\n";
    return out.str();
}

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"api-explicit", "api",
         "A single-argument constructor without `explicit` is an "
         "implicit conversion: a stray int silently becomes a "
         "Configuration and the compiler says nothing.",
         "Mark single-argument constructors `explicit`; allow "
         "intentional conversions with a named factory instead."},
        {"api-nodiscard", "api",
         "A non-mutating, value-returning function whose result is "
         "dropped is almost always a bug (the caller thought it "
         "mutated).",
         "Add [[nodiscard]] to non-mutating value-returning functions "
         "in public headers."},
        {"api-raw-params", "api",
         "Adjacent raw int/double resource parameters (cores, ways, "
         "bandwidth) transpose silently at call sites.",
         "Take a Configuration/struct parameter, or strong typedefs, "
         "so the compiler catches swapped arguments."},
        {"arch-forbidden-include", "arch",
         "A file reaching a subsystem outside its declared layer "
         "(transitively, through project includes) couples layers the "
         "design keeps apart; the dependency compiles today and makes "
         "every future refactor of the lower layer drag the upper one "
         "along.",
         "Move the shared type down (or the dependent code up), or "
         "extend the layering DAG in tools/analyzer/rules_arch.cpp "
         "and GUIDE.md section 10 as a deliberate design decision. "
         "The finding prints the shortest offending include chain."},
        {"arch-include-cycle", "arch",
         "Mutually-including headers only build while include order "
         "and guards line up by accident, and they make the subsystem "
         "graph cyclic so no layer can be built, tested, or reasoned "
         "about alone.",
         "Break the cycle with a forward declaration or by moving the "
         "shared piece into a header both sides may include."},
        {"arch-simd-confined", "arch",
         "Intrinsics or vector extensions outside the linalg SIMD "
         "home fork the numerics: a second vector code path with its "
         "own dispatch, fallback, and bit-identity story that no "
         "shared test pins.",
         "Express the loop through the linalg::simd kernel API (or "
         "add a kernel there); its scalar reference implementations "
         "and runtime dispatch are tested in one place."},
        {"arch-unknown-subsystem", "arch",
         "A directory under include/satori/ or src/ that is not in "
         "the declared layering DAG is invisible to the layering "
         "check, so its dependencies decay unreviewed.",
         "Add the subsystem and its allowed dependencies to "
         "subsystemDeps() in tools/analyzer/rules_arch.cpp and to the "
         "diagram in GUIDE.md section 10."},
        {"conc-global-mutable", "conc",
         "Mutable static state is shared by every thread and every "
         "test in the process; unsynchronized writes race and leak "
         "state across runs, breaking replay.",
         "Make it const/constexpr/atomic, guard it with a "
         "common::Mutex + SATORI_GUARDED_BY, or pass the state "
         "explicitly through the call chain."},
        {"conc-ref-capture", "conc",
         "A [&] lambda handed to a deferred executor (std::thread, "
         "async, submit queues) can run after the captured frame is "
         "gone — a use-after-scope that sanitizers only catch when "
         "the schedule cooperates.",
         "Capture by value, or keep the work on "
         "harness::parallelFor, which joins before returning so "
         "reference captures cannot dangle."},
        {"conc-parallel-accumulate", "conc",
         "Work items in a parallelFor body run concurrently: `sum += "
         "x` or push_back on a captured container races and makes "
         "results depend on the schedule, breaking the byte-identical "
         "trace contract.",
         "Write each item's result to its own pre-sized slot "
         "(out[i] = ...) and aggregate after the join in index "
         "order, or use a std::atomic counter."},
        {"conc-raw-thread", "conc",
         "Raw std::thread scatters join/error/determinism handling "
         "across the tree; a detached thread outliving main is "
         "undefined behavior at shutdown.",
         "Route parallel work through harness::ThreadPool / "
         "parallelFor, which centralizes joins, first-error capture, "
         "and the slot-write idiom."},
        {"conc-unannotated-mutex", "conc",
         "A mutex member with no SATORI_GUARDED_BY siblings protects "
         "nothing the compiler can see, so clang -Wthread-safety "
         "verifies nothing and lock discipline erodes silently.",
         "Declare the mutex as common::Mutex and annotate each "
         "protected member with SATORI_GUARDED_BY(mutex_) (see "
         "include/satori/common/thread_annotations.hpp). The one "
         "documented exception is obs::Tracer (GUIDE.md §13)."},
        {"conc-lock-order", "conc",
         "Two call paths acquiring the same two locks in opposite "
         "orders deadlock the first time the schedules interleave — "
         "typically in production, not in tests.",
         "Pick one global acquisition order and keep it; release the "
         "first lock before calling into code that takes the other."},
        {"det-pointer-hash", "det",
         "Pointer bits differ run to run under ASLR; hashing or "
         "casting them into keys/traces makes output "
         "non-reproducible.",
         "Key on a stable id (job index, name) instead of an "
         "address."},
        {"det-random-device", "det",
         "std::random_device draws OS entropy, so the run cannot be "
         "replayed from its seed.",
         "Seed satori::Rng explicitly from the experiment plan."},
        {"det-taint-reaches-trace", "det",
         "A trace/audit emit site whose call chain reaches a "
         "nondeterminism source (wall clock, OS entropy, thread "
         "identity, pointer bits) writes values that differ between "
         "identical runs, breaking the byte-identical replay "
         "contract.",
         "Route the value through simulated time or a seeded Rng; if "
         "the read is genuinely observability-only, move it into an "
         "allowlisted layer (src/obs/) so the boundary is explicit."},
        {"det-unordered-iter", "det",
         "Iteration order of unordered containers varies across "
         "implementations and runs; feeding it into output makes "
         "traces unstable.",
         "Sort the keys first, or use std::map when order reaches "
         "output."},
        {"det-wallclock", "det",
         "Wall-clock reads differ every run; any decision or trace "
         "derived from them cannot replay byte-for-byte.",
         "Use the simulator's virtual time; only the allowlisted "
         "harness/CLI/obs set may read real time."},
        {"flow-dead-after-fatal", "flow",
         "SATORI_FATAL / SATORI_PANIC / abort never return, so a "
         "statement only reachable by falling through one is dead "
         "code — usually a cleanup or fallback the author believed "
         "still ran.",
         "Delete the unreachable statement, or restructure so the "
         "cleanup runs before the fatal path (RAII handles most "
         "cases)."},
        {"flow-discarded-nodiscard", "flow",
         "An expression statement that drops the result of a "
         "[[nodiscard]] function ignores a value the author marked "
         "as must-use — typically an error state or a computed "
         "result the caller thought was stored.",
         "Use the returned value, or document the deliberate drop "
         "with `(void)` plus a comment saying why."},
        {"flow-use-after-move", "flow",
         "A variable read after std::move consumed it holds an "
         "unspecified value; the code works until the moved-from "
         "state changes with the standard library version, then "
         "fails far from the move.",
         "Reassign the variable before reusing it (moved-from "
         "objects may be assigned to), or stop moving it if the "
         "later read is intentional."},
        {"guard-define-mismatch", "header",
         "An #ifndef whose #define spells a different macro leaves "
         "the guard open: the header double-includes.",
         "Make the #define repeat the #ifndef macro exactly."},
        {"guard-mismatch", "header",
         "Guard names that do not follow SATORI_<PATH>_HPP collide "
         "or confuse moved files.",
         "Derive the guard from the path: "
         "satori/common/types.hpp -> SATORI_COMMON_TYPES_HPP."},
        {"missing-guard", "header",
         "A header without an include guard double-includes the "
         "moment two translation units meet it.",
         "Open every header with #ifndef/#define "
         "SATORI_<PATH>_HPP and close with #endif."},
        {"num-c-cast", "num",
         "A C-style (int)/(long) cast of a floating expression "
         "truncates silently and hides the intent.",
         "Use static_cast with an explicit rounding call (floor, "
         "round) when truncation is intended."},
        {"num-float-eq", "num",
         "Floating == / != compares rounded representations; results "
         "flip with optimization level and platform.",
         "Compare against an explicit tolerance (std::abs(a - b) < "
         "eps) or restructure to avoid the comparison."},
        {"num-int-abs", "num",
         "std::abs without <cmath> can bind <cstdlib>'s integer "
         "overload and silently truncate a double argument.",
         "Include <cmath> and use std::fabs (or std::abs with a "
         "visibly floating argument)."},
        {"persist-asymmetric-state", "persist",
         "The snapshot codec is positional: restoreState must read "
         "exactly the sequence saveState wrote, op for op, or every "
         "later field decodes from the wrong bytes and the restore "
         "fails (or worse, succeeds with garbage).",
         "Mirror the put sequence in restoreState exactly — same "
         "ops, same order, loops and conditionals shaped alike — and "
         "give every saveState a restoreState twin."},
        {"persist-manifest-stale", "persist",
         "A schema manifest that disagrees with the sources about "
         "the format version (or lists classes that no longer "
         "persist) cannot catch drift, which is its whole job.",
         "Regenerate it: satori_analyzer --write-persist-schema "
         "tools/persist_schema.txt include src — in the same change "
         "that bumps kSnapshotFormatVersion."},
        {"persist-schema-drift", "persist",
         "Changing a put/get sequence without bumping "
         "kSnapshotFormatVersion makes old on-disk snapshots decode "
         "under the new layout: resume reads garbage instead of "
         "refusing cleanly.",
         "Bump kSnapshotFormatVersion in "
         "include/satori/persist/snapshot.hpp and regenerate the "
         "manifest: satori_analyzer --write-persist-schema "
         "tools/persist_schema.txt include src."},
        {"using-namespace", "header",
         "`using namespace` at header scope injects names into every "
         "includer, causing collisions that surface far from the "
         "header.",
         "Qualify names, or scope the using-declaration inside a "
         "function body."},
    };
    return catalog;
}

bool
explainRule(const std::string& rule_id, std::string& out)
{
    for (const RuleInfo& info : ruleCatalog()) {
        if (info.id != rule_id)
            continue;
        std::ostringstream text;
        text << info.id << " (pack: " << info.pack << ")\n\n"
             << "Why:\n  " << info.rationale << "\n\n"
             << "Instead:\n  " << info.idiom << "\n\n"
             << "Silence a deliberate use with `// satori-analyzer: "
                "allow("
             << info.id << ")` on the line or the line above.\n";
        out = text.str();
        return true;
    }
    std::ostringstream text;
    text << "unknown rule id '" << rule_id << "'. Known rules:\n";
    for (const RuleInfo& info : ruleCatalog())
        text << "  " << info.id << "\n";
    out = text.str();
    return false;
}

} // namespace satori_analyzer
