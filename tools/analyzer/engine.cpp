/**
 * @file
 * The rule-pass engine: file collection, pack dispatch, inline
 * suppressions, baseline handling, and text/JSON rendering.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace satori_analyzer {

unsigned
parsePackList(const std::string& list)
{
    unsigned packs = 0;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "det" || item == "determinism")
            packs |= kPackDeterminism;
        else if (item == "num" || item == "numeric")
            packs |= kPackNumeric;
        else if (item == "api")
            packs |= kPackApi;
        else if (item == "header" || item == "hdr")
            packs |= kPackHeader;
        else if (item == "conc" || item == "concurrency")
            packs |= kPackConcurrency;
        else if (item == "all")
            packs |= kPackAll;
        else
            return 0;
    }
    return packs;
}

namespace {

/** Trimmed copy of @p s (the fingerprint normalization). */
std::string
trimmed(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    std::size_t e = s.find_last_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Rules allowed by `satori-analyzer: allow(a, b)` in @p raw, or "". */
std::vector<std::string>
parseAllowedRules(const std::string& raw)
{
    std::vector<std::string> rules;
    const std::size_t tag = raw.find("satori-analyzer:");
    if (tag == std::string::npos)
        return rules;
    const std::size_t allow = raw.find("allow", tag);
    if (allow == std::string::npos)
        return rules;
    const std::size_t open = raw.find('(', allow);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : raw.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::stringstream ss(raw.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(ss, item, ','))
        rules.push_back(trimmed(item));
    return rules;
}

} // namespace

void
applySuppressions(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file != file.display || f.line <= 0 ||
            static_cast<std::size_t>(f.line) > file.lines.size())
            continue;
        for (int line : {f.line, f.line - 1}) {
            if (line <= 0)
                continue;
            const std::vector<std::string> allowed = parseAllowedRules(
                file.lines[static_cast<std::size_t>(line) - 1].raw);
            for (const std::string& rule : allowed)
                if (rule == f.rule || rule == "all")
                    f.suppressed = true;
        }
    }
}

bool
loadBaseline(const fs::path& path, std::vector<BaselineEntry>& entries,
             std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open baseline file " + path.string();
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t p1 = t.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : t.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": expected `rule | path-suffix | fingerprint`";
            return false;
        }
        BaselineEntry entry;
        entry.rule = trimmed(t.substr(0, p1));
        entry.path_suffix = trimmed(t.substr(p1 + 1, p2 - p1 - 1));
        entry.fingerprint = trimmed(t.substr(p2 + 1));
        entry.source_line = lineno;
        if (entry.rule.empty() || entry.path_suffix.empty()) {
            error = path.string() + ":" + std::to_string(lineno) +
                    ": empty rule or path suffix";
            return false;
        }
        entries.push_back(std::move(entry));
    }
    return true;
}

void
applyBaseline(std::vector<BaselineEntry>& entries,
              std::vector<Finding>& findings)
{
    for (BaselineEntry& entry : entries) {
        for (Finding& f : findings) {
            if (f.baselined || f.suppressed || f.rule != entry.rule)
                continue;
            if (f.file.size() < entry.path_suffix.size() ||
                f.file.compare(f.file.size() - entry.path_suffix.size(),
                               entry.path_suffix.size(),
                               entry.path_suffix) != 0)
                continue;
            if (f.fingerprint != entry.fingerprint)
                continue;
            f.baselined = true;
            entry.used = true;
            break;
        }
    }
}

namespace {

void
sortFindings(std::vector<Finding>& findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

void
fillFingerprints(const SourceFile& file, std::vector<Finding>& findings)
{
    for (Finding& f : findings) {
        if (f.file == file.display && f.line >= 1 &&
            static_cast<std::size_t>(f.line) <= file.lines.size())
            f.fingerprint = trimmed(
                file.lines[static_cast<std::size_t>(f.line) - 1].raw);
    }
}

/** Per-file packs over an already-loaded source. */
std::vector<Finding>
analyzeSource(const SourceFile& source, const Options& options)
{
    std::vector<Finding> findings;
    if ((options.packs & kPackDeterminism) != 0)
        runDeterminismPack(source, options, findings);
    if ((options.packs & kPackNumeric) != 0)
        runNumericPack(source, findings);
    if ((options.packs & kPackApi) != 0)
        runApiPack(source, findings);
    if ((options.packs & kPackHeader) != 0)
        runHeaderPack(source, findings);
    if ((options.packs & kPackConcurrency) != 0)
        runConcurrencyPack(source, options, findings);
    fillFingerprints(source, findings);
    applySuppressions(source, findings);
    return findings;
}

} // namespace

std::vector<Finding>
analyzeFile(const fs::path& file, const Options& options,
            const fs::path& scan_target)
{
    SourceFile source = loadSourceFile(file);
    source.guard_rel =
        guardRelativePath(file, options.include_root, scan_target);
    return analyzeSource(source, options);
}

AnalyzeResult
analyzePaths(const std::vector<fs::path>& targets, const Options& options)
{
    AnalyzeResult result;
    std::vector<std::pair<fs::path, fs::path>> files; // (file, target)
    for (const fs::path& target : targets) {
        if (fs::is_directory(target)) {
            const bool target_is_fixtures =
                target.generic_string().find("fixtures") !=
                std::string::npos;
            for (const auto& entry :
                 fs::recursive_directory_iterator(target)) {
                if (!entry.is_regular_file())
                    continue;
                const fs::path& p = entry.path();
                if (p.extension() != ".hpp" && p.extension() != ".cpp")
                    continue;
                if (p.generic_string().find("/build") !=
                    std::string::npos)
                    continue;
                // Fixture trees hold deliberate violations; they are
                // only scanned when targeted explicitly.
                if (!target_is_fixtures &&
                    p.generic_string().find("fixtures") !=
                        std::string::npos)
                    continue;
                files.emplace_back(p, target);
            }
        } else {
            files.emplace_back(target, target);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const auto& [file, target] : files) {
        SourceFile source = loadSourceFile(file);
        source.guard_rel =
            guardRelativePath(file, options.include_root, target);
        std::vector<Finding> findings = analyzeSource(source, options);
        result.findings.insert(result.findings.end(),
                               findings.begin(), findings.end());
        sources.push_back(std::move(source));
    }

    // Cross-file passes: the symbol index and call graph feed the
    // nondeterminism taint pass (det) and lock-order pass (conc).
    if ((options.packs & (kPackDeterminism | kPackConcurrency)) != 0) {
        const SymbolIndex index = buildSymbolIndex(sources, options);
        const CallGraph graph = buildCallGraph(index);
        std::vector<Finding> cross;
        if ((options.packs & kPackDeterminism) != 0) {
            const TaintResult taint =
                propagateNondeterminism(index, graph);
            runTaintPass(index, graph, taint, cross);
        }
        if ((options.packs & kPackConcurrency) != 0)
            runLockOrderPass(index, graph, cross);
        for (const SourceFile& source : sources) {
            fillFingerprints(source, cross);
            applySuppressions(source, cross);
        }
        result.findings.insert(result.findings.end(), cross.begin(),
                               cross.end());
    }

    result.files_scanned = files.size();
    sortFindings(result.findings);
    return result;
}

std::size_t
countActive(const std::vector<Finding>& findings)
{
    std::size_t active = 0;
    for (const Finding& f : findings)
        if (!f.suppressed && !f.baselined)
            ++active;
    return active;
}

std::string
renderText(const AnalyzeResult& result, const std::string& tool_name)
{
    std::ostringstream out;
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    for (const Finding& f : result.findings) {
        if (f.suppressed) {
            ++suppressed;
            continue;
        }
        if (f.baselined) {
            ++baselined;
            continue;
        }
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    }
    out << tool_name << ": " << result.files_scanned << " files, "
        << countActive(result.findings) << " findings (" << suppressed
        << " suppressed, " << baselined << " baselined)\n";
    return out.str();
}

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const AnalyzeResult& result)
{
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << result.files_scanned
        << ",\n  \"active_findings\": "
        << countActive(result.findings) << ",\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : result.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\", \"suppressed\": "
            << (f.suppressed ? "true" : "false")
            << ", \"baselined\": " << (f.baselined ? "true" : "false")
            << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"api-explicit", "api",
         "A single-argument constructor without `explicit` is an "
         "implicit conversion: a stray int silently becomes a "
         "Configuration and the compiler says nothing.",
         "Mark single-argument constructors `explicit`; allow "
         "intentional conversions with a named factory instead."},
        {"api-nodiscard", "api",
         "A non-mutating, value-returning function whose result is "
         "dropped is almost always a bug (the caller thought it "
         "mutated).",
         "Add [[nodiscard]] to non-mutating value-returning functions "
         "in public headers."},
        {"api-raw-params", "api",
         "Adjacent raw int/double resource parameters (cores, ways, "
         "bandwidth) transpose silently at call sites.",
         "Take a Configuration/struct parameter, or strong typedefs, "
         "so the compiler catches swapped arguments."},
        {"conc-global-mutable", "conc",
         "Mutable static state is shared by every thread and every "
         "test in the process; unsynchronized writes race and leak "
         "state across runs, breaking replay.",
         "Make it const/constexpr/atomic, guard it with a "
         "common::Mutex + SATORI_GUARDED_BY, or pass the state "
         "explicitly through the call chain."},
        {"conc-ref-capture", "conc",
         "A [&] lambda handed to a deferred executor (std::thread, "
         "async, submit queues) can run after the captured frame is "
         "gone — a use-after-scope that sanitizers only catch when "
         "the schedule cooperates.",
         "Capture by value, or keep the work on "
         "harness::parallelFor, which joins before returning so "
         "reference captures cannot dangle."},
        {"conc-parallel-accumulate", "conc",
         "Work items in a parallelFor body run concurrently: `sum += "
         "x` or push_back on a captured container races and makes "
         "results depend on the schedule, breaking the byte-identical "
         "trace contract.",
         "Write each item's result to its own pre-sized slot "
         "(out[i] = ...) and aggregate after the join in index "
         "order, or use a std::atomic counter."},
        {"conc-raw-thread", "conc",
         "Raw std::thread scatters join/error/determinism handling "
         "across the tree; a detached thread outliving main is "
         "undefined behavior at shutdown.",
         "Route parallel work through harness::ThreadPool / "
         "parallelFor, which centralizes joins, first-error capture, "
         "and the slot-write idiom."},
        {"conc-unannotated-mutex", "conc",
         "A mutex member with no SATORI_GUARDED_BY siblings protects "
         "nothing the compiler can see, so clang -Wthread-safety "
         "verifies nothing and lock discipline erodes silently.",
         "Declare the mutex as common::Mutex and annotate each "
         "protected member with SATORI_GUARDED_BY(mutex_) (see "
         "include/satori/common/thread_annotations.hpp). The one "
         "documented exception is obs::Tracer (GUIDE.md §13)."},
        {"conc-lock-order", "conc",
         "Two call paths acquiring the same two locks in opposite "
         "orders deadlock the first time the schedules interleave — "
         "typically in production, not in tests.",
         "Pick one global acquisition order and keep it; release the "
         "first lock before calling into code that takes the other."},
        {"det-pointer-hash", "det",
         "Pointer bits differ run to run under ASLR; hashing or "
         "casting them into keys/traces makes output "
         "non-reproducible.",
         "Key on a stable id (job index, name) instead of an "
         "address."},
        {"det-random-device", "det",
         "std::random_device draws OS entropy, so the run cannot be "
         "replayed from its seed.",
         "Seed satori::Rng explicitly from the experiment plan."},
        {"det-taint-reaches-trace", "det",
         "A trace/audit emit site whose call chain reaches a "
         "nondeterminism source (wall clock, OS entropy, thread "
         "identity, pointer bits) writes values that differ between "
         "identical runs, breaking the byte-identical replay "
         "contract.",
         "Route the value through simulated time or a seeded Rng; if "
         "the read is genuinely observability-only, move it into an "
         "allowlisted layer (src/obs/) so the boundary is explicit."},
        {"det-unordered-iter", "det",
         "Iteration order of unordered containers varies across "
         "implementations and runs; feeding it into output makes "
         "traces unstable.",
         "Sort the keys first, or use std::map when order reaches "
         "output."},
        {"det-wallclock", "det",
         "Wall-clock reads differ every run; any decision or trace "
         "derived from them cannot replay byte-for-byte.",
         "Use the simulator's virtual time; only the allowlisted "
         "harness/CLI/obs set may read real time."},
        {"guard-define-mismatch", "header",
         "An #ifndef whose #define spells a different macro leaves "
         "the guard open: the header double-includes.",
         "Make the #define repeat the #ifndef macro exactly."},
        {"guard-mismatch", "header",
         "Guard names that do not follow SATORI_<PATH>_HPP collide "
         "or confuse moved files.",
         "Derive the guard from the path: "
         "satori/common/types.hpp -> SATORI_COMMON_TYPES_HPP."},
        {"missing-guard", "header",
         "A header without an include guard double-includes the "
         "moment two translation units meet it.",
         "Open every header with #ifndef/#define "
         "SATORI_<PATH>_HPP and close with #endif."},
        {"num-c-cast", "num",
         "A C-style (int)/(long) cast of a floating expression "
         "truncates silently and hides the intent.",
         "Use static_cast with an explicit rounding call (floor, "
         "round) when truncation is intended."},
        {"num-float-eq", "num",
         "Floating == / != compares rounded representations; results "
         "flip with optimization level and platform.",
         "Compare against an explicit tolerance (std::abs(a - b) < "
         "eps) or restructure to avoid the comparison."},
        {"num-int-abs", "num",
         "std::abs without <cmath> can bind <cstdlib>'s integer "
         "overload and silently truncate a double argument.",
         "Include <cmath> and use std::fabs (or std::abs with a "
         "visibly floating argument)."},
        {"using-namespace", "header",
         "`using namespace` at header scope injects names into every "
         "includer, causing collisions that surface far from the "
         "header.",
         "Qualify names, or scope the using-declaration inside a "
         "function body."},
    };
    return catalog;
}

bool
explainRule(const std::string& rule_id, std::string& out)
{
    for (const RuleInfo& info : ruleCatalog()) {
        if (info.id != rule_id)
            continue;
        std::ostringstream text;
        text << info.id << " (pack: " << info.pack << ")\n\n"
             << "Why:\n  " << info.rationale << "\n\n"
             << "Instead:\n  " << info.idiom << "\n\n"
             << "Silence a deliberate use with `// satori-analyzer: "
                "allow("
             << info.id << ")` on the line or the line above.\n";
        out = text.str();
        return true;
    }
    std::ostringstream text;
    text << "unknown rule id '" << rule_id << "'. Known rules:\n";
    for (const RuleInfo& info : ruleCatalog())
        text << "  " << info.id << "\n";
    out = text.str();
    return false;
}

} // namespace satori_analyzer
