/**
 * @file
 * The project-wide symbol index: every free or member function
 * definition the heuristic scanner can identify, with the attribute
 * lattice (direct nondeterminism use, trace-emit calls, lock
 * acquisitions) the cross-file passes consume, plus the v3 context
 * tables the qualified call graph and the flow/persist packs need:
 * enclosing-class ownership, parameter/local type keys, per-class
 * field types, and [[nodiscard]] declarations.
 *
 * Detection works on the stripped-token model, not a parse tree. A
 * candidate is an identifier chain followed by a balanced `(...)`
 * whose trailing tokens lead to a `{` — via an optional const /
 * noexcept / override / final tail or a constructor init-list — with
 * the token before the name shaped like a return type or a scope
 * boundary. Control-flow keywords are rejected, bodies are skipped
 * once claimed (so statements inside a recognized function are never
 * re-scanned), and anything the heuristic cannot prove is a
 * definition is dropped: false negatives are acceptable, false edges
 * are not.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>

namespace satori_analyzer {

namespace {

/** Keywords that look like `name(...)` but never name a function. */
bool
isNonFunctionKeyword(const std::string& name)
{
    static const std::set<std::string> keywords = {
        "if",       "for",        "while",     "switch",
        "return",   "catch",      "sizeof",    "throw",
        "new",      "delete",     "case",      "do",
        "else",     "defined",    "alignof",   "decltype",
        "noexcept", "static_assert", "assert", "using",
        "typedef",  "co_return",  "co_await",  "co_yield",
        "operator", "requires",   "alignas",   "typeid",
    };
    return keywords.count(name) != 0;
}

/** Last `::` component of an identifier chain. */
std::string
lastComponent(const std::string& chain)
{
    const std::size_t at = chain.rfind("::");
    return at == std::string::npos ? chain : chain.substr(at + 2);
}

/** Second-to-last `::` component ("" when the chain is unscoped). */
std::string
scopeComponent(const std::string& chain)
{
    const std::size_t at = chain.rfind("::");
    if (at == std::string::npos)
        return "";
    return lastComponent(chain.substr(0, at));
}

/** @p chain spells an identifier chain (possibly ~dtor-prefixed). */
bool
isIdentifierChain(const std::string& chain)
{
    if (chain.empty())
        return false;
    const char first = chain[0];
    if (std::isdigit(static_cast<unsigned char>(first)) != 0)
        return false;
    return isIdentChar(first) || first == '~';
}

/**
 * Skip the balanced group opening at @p s[pos] (after whitespace);
 * returns the position after the closer, or npos when the next
 * non-space character is not @p open or the group is unbalanced.
 */
std::size_t
skipGroup(const std::string& s, std::size_t pos, char open, char close)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    if (pos >= s.size() || s[pos] != open)
        return std::string::npos;
    const std::size_t end = findMatching(s, pos, open, close);
    return end == std::string::npos ? std::string::npos : end + 1;
}

/** First non-space position at or after @p pos. */
std::size_t
skipSpace(const std::string& s, std::size_t pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    return pos;
}

/**
 * Walk a constructor init-list starting after its `:` and return the
 * position of the body `{`, or npos. Member initializers are
 * `name(args)` or `name{args}` groups separated by commas; the first
 * `{` not directly following an initializer name is the body.
 */
std::size_t
findBodyAfterInitList(const std::string& s, std::size_t pos)
{
    for (int guard = 0; guard < 64; ++guard) {
        pos = skipSpace(s, pos);
        if (pos >= s.size())
            return std::string::npos;
        if (s[pos] == '{')
            return pos;
        const std::string member = nextTokenAfter(s, pos);
        if (!isIdentifierChain(member))
            return std::string::npos;
        pos = skipSpace(s, pos) + member.size();
        std::size_t after = skipGroup(s, pos, '(', ')');
        if (after == std::string::npos)
            after = skipGroup(s, pos, '{', '}');
        if (after == std::string::npos)
            return std::string::npos;
        pos = skipSpace(s, after);
        if (pos < s.size() && s[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < s.size() && s[pos] == '{')
            return pos;
        return std::string::npos;
    }
    return std::string::npos;
}

/**
 * From the position after a candidate's closing paren, find the body
 * `{` through an optional `const`/`noexcept(...)`/`override`/`final`
 * tail or an init-list. Returns npos when the tokens lead anywhere
 * else (declaration, `= default`, expression).
 */
std::size_t
findBodyOpen(const std::string& s, std::size_t pos)
{
    for (int guard = 0; guard < 16; ++guard) {
        pos = skipSpace(s, pos);
        if (pos >= s.size())
            return std::string::npos;
        const char c = s[pos];
        if (c == '{')
            return pos;
        if (c == ';' || c == '=' || c == ',' || c == ')')
            return std::string::npos;
        if (c == ':') {
            if (pos + 1 < s.size() && s[pos + 1] == ':')
                return std::string::npos;
            return findBodyAfterInitList(s, pos + 1);
        }
        const std::string tok = nextTokenAfter(s, pos);
        if (tok == "const" || tok == "override" || tok == "final" ||
            tok == "mutable" || tok == "&") {
            pos += tok == "&" ? 1 : tok.size();
            continue;
        }
        if (tok == "noexcept") {
            pos += tok.size();
            const std::size_t after = skipGroup(s, pos, '(', ')');
            if (after != std::string::npos)
                pos = after;
            continue;
        }
        return std::string::npos;
    }
    return std::string::npos;
}

/** Tokens allowed directly before a definition's name. */
bool
contextAllowsDefinition(const std::string& prev)
{
    if (prev.empty())
        return true;
    if (isIdentifierChain(prev))
        return !isNonFunctionKeyword(lastComponent(prev));
    return prev == "*" || prev == "&" || prev == ">" || prev == "}" ||
           prev == "{" || prev == ";" || prev == ":" || prev == "~";
}

/** `word` occurs at @p at as a whole word followed by `(`. */
bool
isCallTokenAt(const std::string& s, std::size_t at,
              const std::string& word)
{
    if (at > 0 && (isIdentChar(s[at - 1]) || s[at - 1] == '~'))
        return false;
    const std::size_t end = at + word.size();
    if (end < s.size() && isIdentChar(s[end]))
        return false;
    return skipSpace(s, end) < s.size() && s[skipSpace(s, end)] == '(';
}

/** Any of @p words occurs in @p body as a call token. */
bool
callsAnyOf(const std::string& body, const std::vector<std::string>& words)
{
    for (const std::string& word : words) {
        std::size_t at = 0;
        while ((at = body.find(word, at)) != std::string::npos) {
            if (isCallTokenAt(body, at, word))
                return true;
            at += word.size();
        }
    }
    return false;
}

/**
 * Normalize a declared type spelling to the key the call-graph
 * pruner compares against FunctionDef::owner: strip cv/ref/pointer
 * decorations and template arguments, unwrap the smart-pointer and
 * container-of-one wrappers, and keep the last `::` component
 * (`const std::unique_ptr<core::PartitioningPolicy>&` ->
 * "PartitioningPolicy").
 */
std::string
typeKey(const std::string& type)
{
    std::string t = type;
    for (const char* wrapper :
         {"unique_ptr", "shared_ptr", "optional", "reference_wrapper"}) {
        const std::size_t at = t.find(wrapper);
        if (at == std::string::npos)
            continue;
        const std::size_t open = t.find('<', at);
        if (open == std::string::npos)
            continue;
        const std::size_t close = findMatching(t, open, '<', '>');
        if (close == std::string::npos)
            continue;
        t = t.substr(open + 1, close - open - 1);
        break;
    }
    // Drop leading qualifiers and trailing decorations.
    std::string out;
    std::size_t pos = 0;
    while (pos < t.size()) {
        pos = skipSpace(t, pos);
        const std::string tok = nextTokenAfter(t, pos);
        if (tok.empty())
            break;
        if (tok == "const" || tok == "constexpr" || tok == "static" ||
            tok == "volatile" || tok == "typename" || tok == "inline") {
            pos = skipSpace(t, pos) + tok.size();
            continue;
        }
        if (!isIdentifierChain(tok))
            break;
        out = tok;
        pos = skipSpace(t, pos) + tok.size();
        // Template arguments on the chosen token are not part of the
        // key; stop at the first decoration.
        break;
    }
    if (out.empty())
        return "";
    const std::size_t angle = out.find('<');
    if (angle != std::string::npos)
        out = out.substr(0, angle);
    return lastComponent(out);
}

/** Split @p args on top-level commas (template/paren aware). */
std::vector<std::string>
splitTopLevel(const std::string& args)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : args) {
        if (c == '(' || c == '<' || c == '[' || c == '{')
            ++depth;
        else if (c == ')' || c == '>' || c == ']' || c == '}')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(cur);
            cur.clear();
            continue;
        }
        cur.push_back(c);
    }
    out.push_back(cur);
    return out;
}

/**
 * Parse one parameter declaration into (name, type key). Unnamed or
 * unparsable parameters return an empty name.
 */
std::pair<std::string, std::string>
parseParam(const std::string& decl)
{
    std::string d = decl;
    const std::size_t eq = d.find('=');
    if (eq != std::string::npos)
        d = d.substr(0, eq);
    // The name is the last identifier token; everything before it is
    // the type.
    std::size_t end = d.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(d[end - 1])) != 0)
        --end;
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(d[begin - 1]))
        --begin;
    if (begin == end)
        return {"", ""};
    const std::string name = d.substr(begin, end - begin);
    if (!isIdentifierChain(name) || isNonFunctionKeyword(name) ||
        std::isdigit(static_cast<unsigned char>(name[0])) != 0)
        return {"", ""};
    const std::string type = d.substr(0, begin);
    if (type.find_first_not_of(" \t\n") == std::string::npos)
        return {"", ""}; // a bare type with no name, e.g. `(void)`.
    return {name, typeKey(type)};
}

/** One class/struct body interval in the joined stripped text. */
struct ClassScope
{
    std::string name;
    std::size_t open = 0;  ///< Offset of the body `{`.
    std::size_t close = 0; ///< Offset of the matching `}`.
};

/**
 * Find every `class X ... { ... }` / `struct X ... { ... }` interval
 * (enum class and forward declarations excluded). Intervals nest;
 * innermostClass() resolves a position to the tightest one.
 */
std::vector<ClassScope>
collectClassScopes(const std::string& all)
{
    std::vector<ClassScope> scopes;
    for (const char* kw : {"class", "struct"}) {
        const std::string word(kw);
        std::size_t at = 0;
        while ((at = all.find(word, at)) != std::string::npos) {
            const std::size_t start = at;
            at += word.size();
            if ((start > 0 && isIdentChar(all[start - 1])) ||
                (at < all.size() && isIdentChar(all[at])))
                continue;
            const std::string prev = prevTokenBefore(all, start);
            if (prev == "enum" || prev == "friend")
                continue;
            std::size_t pos = skipSpace(all, at);
            const std::string name = nextTokenAfter(all, pos);
            if (!isIdentifierChain(name) || name[0] == '~')
                continue;
            pos += name.size();
            // Walk an optional `final` / base clause to the body `{`;
            // a `;` first means forward declaration.
            std::size_t body = std::string::npos;
            for (int guard = 0; guard < 16; ++guard) {
                pos = skipSpace(all, pos);
                if (pos >= all.size())
                    break;
                const char c = all[pos];
                if (c == '{') {
                    body = pos;
                    break;
                }
                if (c == ';' || c == '(' || c == ')' || c == '=' ||
                    c == '*' || c == '&' || c == '>')
                    break;
                if (c == ':') {
                    // Base clause: scan to the body `{` at depth 0.
                    int depth = 0;
                    std::size_t p = pos + 1;
                    for (; p < all.size(); ++p) {
                        const char b = all[p];
                        if (b == '<' || b == '(')
                            ++depth;
                        else if (b == '>' || b == ')')
                            --depth;
                        else if (b == '{' && depth == 0) {
                            body = p;
                            break;
                        } else if (b == ';' && depth == 0)
                            break;
                    }
                    break;
                }
                const std::string tok = nextTokenAfter(all, pos);
                if (tok != "final" && !isIdentifierChain(tok))
                    break;
                pos += tok.size();
            }
            if (body == std::string::npos)
                continue;
            const std::size_t close = findMatching(all, body, '{', '}');
            if (close == std::string::npos)
                continue;
            scopes.push_back({lastComponent(name), body, close});
        }
    }
    return scopes;
}

/** Innermost class scope containing @p pos ("" when at file scope). */
std::string
innermostClass(const std::vector<ClassScope>& scopes, std::size_t pos)
{
    const ClassScope* best = nullptr;
    for (const ClassScope& s : scopes)
        if (s.open < pos && pos < s.close &&
            (best == nullptr || s.open > best->open))
            best = &s;
    return best == nullptr ? "" : best->name;
}

/**
 * Harvest member-field declarations of every class: statements at the
 * class body's top brace level of the form `Type name_;` (with
 * optional initializer). The trailing-underscore convention filters
 * using-aliases, friend declarations, and constants.
 */
void
collectClassFields(
    const std::string& all, const std::vector<ClassScope>& scopes,
    std::map<std::string, std::map<std::string, std::string>>& fields)
{
    for (const ClassScope& scope : scopes) {
        std::size_t pos = scope.open + 1;
        std::string stmt;
        while (pos < scope.close) {
            const char c = all[pos];
            if (c == '{' || c == '(') {
                const std::size_t end = findMatching(
                    all, pos, c, c == '{' ? '}' : ')');
                if (end == std::string::npos || end > scope.close)
                    break;
                // Nested groups (member bodies, initializers,
                // parameter lists) never declare fields; a parameter
                // list still marks the statement as a function.
                if (c == '(')
                    stmt.push_back('(');
                pos = end + 1;
                continue;
            }
            if (c == ';') {
                // Drop anything up to a trailing access specifier so
                // `public: std::size_t n_` parses as a plain field.
                for (const char* spec :
                     {"public:", "private:", "protected:"}) {
                    const std::size_t at = stmt.rfind(spec);
                    if (at != std::string::npos)
                        stmt = stmt.substr(at + std::string(spec).size());
                }
                auto [name, type] = parseParam(stmt);
                if (!name.empty() && name.size() > 1 &&
                    name.back() == '_' && !type.empty() &&
                    stmt.find('(') == std::string::npos &&
                    stmt.find("using") == std::string::npos)
                    fields[scope.name][name] = type;
                stmt.clear();
                ++pos;
                continue;
            }
            stmt.push_back(c);
            ++pos;
        }
    }
}

/**
 * Harvest local-variable declarations from a function body into
 * @p types: `Type name = ...`, `Type name;`, `Type name(...)`,
 * `Type name{...}`, and range-for bindings. Heuristic line-based
 * matching; unresolvable lines contribute nothing.
 */
void
collectLocalTypes(const std::string& body,
                  std::map<std::string, std::string>& types)
{
    std::size_t line_start = 0;
    while (line_start < body.size()) {
        std::size_t line_end = body.find('\n', line_start);
        if (line_end == std::string::npos)
            line_end = body.size();
        std::string line =
            body.substr(line_start, line_end - line_start);
        line_start = line_end + 1;

        // Range-for introduces its binding between '(' and ':'.
        const std::size_t for_at = line.find("for");
        if (for_at != std::string::npos &&
            isCallTokenAt(line, for_at, "for")) {
            const std::size_t open = line.find('(', for_at);
            const std::size_t colon =
                open == std::string::npos ? std::string::npos
                                          : line.find(':', open);
            if (colon != std::string::npos &&
                (colon + 1 >= line.size() || line[colon + 1] != ':')) {
                line = line.substr(open + 1, colon - open - 1);
            } else if (open != std::string::npos) {
                line = line.substr(open + 1);
            } else {
                continue;
            }
        }

        std::size_t pos = skipSpace(line, 0);
        const std::string first = nextTokenAfter(line, pos);
        if (!isIdentifierChain(first) || isNonFunctionKeyword(first) ||
            first == "else" || first == "public" || first == "private")
            continue;
        pos = skipSpace(line, pos) + first.size();
        std::string type = first;
        if (type == "const" || type == "constexpr" || type == "auto" ||
            type == "static") {
            const std::string second = nextTokenAfter(line, pos);
            if (isIdentifierChain(second)) {
                type = second;
                pos = skipSpace(line, pos) + second.size();
            }
        }
        pos = skipSpace(line, pos);
        if (pos < line.size() && line[pos] == '<') {
            const std::size_t close = findMatching(line, pos, '<', '>');
            if (close == std::string::npos)
                continue;
            pos = close + 1;
        }
        while (pos < line.size() &&
               (line[pos] == '&' || line[pos] == '*' ||
                std::isspace(static_cast<unsigned char>(line[pos])) !=
                    0))
            ++pos;
        const std::string name = nextTokenAfter(line, pos);
        if (!isIdentifierChain(name) || name.find("::") !=
                                            std::string::npos ||
            isNonFunctionKeyword(name))
            continue;
        pos = skipSpace(line, pos) + name.size();
        pos = skipSpace(line, pos);
        if (pos >= line.size())
            continue;
        const char next = line[pos];
        const bool declares =
            next == '=' ? (pos + 1 >= line.size() || line[pos + 1] != '=')
                        : (next == ';' || next == '{' || next == '(' ||
                           next == ':');
        if (!declares)
            continue;
        types.emplace(name, typeKey(type));
    }
}

/**
 * Collect call sites from @p body with whatever qualification the
 * token stream offers (unique by name+qualifier+receiver).
 */
void
collectCallees(const std::string& body, std::vector<CalleeRef>& refs,
               std::vector<std::string>& names)
{
    std::set<std::string> seen_names;
    std::set<std::string> seen_refs;
    std::size_t at = 0;
    while ((at = body.find('(', at)) != std::string::npos) {
        const std::size_t paren = at;
        ++at;
        const std::string chain = prevTokenBefore(body, paren);
        if (!isIdentifierChain(chain) || chain[0] == '~')
            continue;
        const std::string name = lastComponent(chain);
        if (isNonFunctionKeyword(name))
            continue;
        CalleeRef ref;
        ref.name = name;
        ref.qualifier = scopeComponent(chain);
        if (ref.qualifier.empty()) {
            // Receiver: the token before `.name(` or `->name(`.
            std::size_t start = paren;
            while (start > 0 &&
                   std::isspace(static_cast<unsigned char>(
                       body[start - 1])) != 0)
                --start;
            start -= chain.size();
            if (start > 0 && body[start - 1] == '.') {
                const std::string recv =
                    prevTokenBefore(body, start - 1);
                if (isIdentifierChain(recv))
                    ref.receiver = recv;
            } else if (start > 1 && body[start - 1] == '>' &&
                       body[start - 2] == '-') {
                const std::string recv =
                    prevTokenBefore(body, start - 2);
                if (isIdentifierChain(recv))
                    ref.receiver = recv;
            }
        }
        if (seen_names.insert(name).second)
            names.push_back(name);
        if (seen_refs
                .insert(ref.name + "|" + ref.qualifier + "|" +
                        ref.receiver)
                .second)
            refs.push_back(std::move(ref));
    }
}

/** @p s with all whitespace removed (lock-expression normalization). */
std::string
withoutSpace(const std::string& s)
{
    std::string out;
    for (char c : s)
        if (std::isspace(static_cast<unsigned char>(c)) == 0)
            out.push_back(c);
    return out;
}

/** Tag arguments that are lock policies, not lock expressions. */
bool
isLockPolicyArg(const std::string& arg)
{
    return arg.find("adopt_lock") != std::string::npos ||
           arg.find("defer_lock") != std::string::npos ||
           arg.find("try_to_lock") != std::string::npos;
}

/**
 * Locks acquired in @p body, in source order: RAII guard constructor
 * arguments plus `expr.lock()` receivers, as normalized expressions.
 */
std::vector<std::string>
collectLocks(const std::string& body)
{
    struct GuardKind
    {
        const char* word;
        bool all_args; ///< scoped_lock takes several mutexes.
    };
    static const GuardKind kGuards[] = {
        {"MutexLock", false},
        {"lock_guard", false},
        {"unique_lock", false},
        {"scoped_lock", true},
    };
    std::vector<std::pair<std::size_t, std::string>> found;
    for (const GuardKind& guard : kGuards) {
        const std::string word(guard.word);
        std::size_t at = 0;
        while ((at = body.find(word, at)) != std::string::npos) {
            const std::size_t start = at;
            at += word.size();
            if ((start > 0 && isIdentChar(body[start - 1])) ||
                (at < body.size() && isIdentChar(body[at])))
                continue;
            std::size_t pos = skipSpace(body, at);
            if (pos < body.size() && body[pos] == '<') {
                const std::size_t close =
                    findMatching(body, pos, '<', '>');
                if (close == std::string::npos)
                    continue;
                pos = skipSpace(body, close + 1);
            }
            const std::string var = nextTokenAfter(body, pos);
            if (!isIdentifierChain(var))
                continue;
            pos = skipSpace(body, pos) + var.size();
            pos = skipSpace(body, pos);
            if (pos >= body.size() || body[pos] != '(')
                continue;
            const std::size_t close =
                findMatching(body, pos, '(', ')');
            if (close == std::string::npos)
                continue;
            const std::vector<std::string> raw_args =
                splitTopLevel(body.substr(pos + 1, close - pos - 1));
            for (std::size_t i = 0; i < raw_args.size(); ++i) {
                const std::string arg = withoutSpace(raw_args[i]);
                if (arg.empty() || isLockPolicyArg(arg))
                    continue;
                found.emplace_back(start, arg);
                if (!guard.all_args)
                    break;
            }
        }
    }
    // Manual acquisition: `expr.lock()` — the receiver is the lock.
    std::size_t at = 0;
    while ((at = body.find(".lock()", at)) != std::string::npos) {
        const std::string recv = prevTokenBefore(body, at);
        const std::size_t start = at;
        at += 7;
        if (isIdentifierChain(recv))
            found.emplace_back(start, recv);
    }
    // Source order across all acquisition kinds.
    std::sort(found.begin(), found.end());
    std::vector<std::string> locks;
    locks.reserve(found.size());
    for (auto& [offset, expr] : found)
        locks.push_back(std::move(expr));
    return locks;
}

/** Direct nondeterminism source in @p body, or "" when clean. */
std::string
describeNondetSource(const std::string& body)
{
    if (body.find("::now") != std::string::npos &&
        body.find("_clock") != std::string::npos)
        return "a chrono clock read";
    static const char* const kClockCalls[] = {
        "time",   "clock",     "gettimeofday",
        "gmtime", "localtime", "clock_gettime",
    };
    for (const char* call : kClockCalls) {
        const std::string name(call);
        std::size_t at = 0;
        while ((at = body.find(name, at)) != std::string::npos) {
            if (isCallTokenAt(body, at, name))
                return "a wall-clock call `" + name + "(`";
            at += name.size();
        }
    }
    if (body.find("random_device") != std::string::npos)
        return "std::random_device (OS entropy)";
    if (body.find("get_id") != std::string::npos &&
        body.find("this_thread") != std::string::npos)
        return "std::this_thread::get_id (thread identity)";
    if (body.find("thread::id") != std::string::npos)
        return "std::thread::id formatting (thread identity)";
    std::size_t at = body.find("reinterpret_cast");
    if (at != std::string::npos) {
        const std::size_t open = body.find('<', at);
        const std::size_t close =
            open == std::string::npos
                ? std::string::npos
                : findMatching(body, open, '<', '>');
        if (close != std::string::npos) {
            const std::string target =
                body.substr(open, close - open + 1);
            if (target.find("uintptr") != std::string::npos ||
                target.find("intptr") != std::string::npos ||
                target.find("size_t") != std::string::npos)
                return "a pointer-value cast (ASLR-dependent bits)";
        }
    }
    return "";
}

bool
pathAllowlisted(const std::string& display, const Options& options)
{
    for (const std::string& allow : options.wallclock_allow)
        if (display.find(allow) != std::string::npos)
            return true;
    return false;
}

/**
 * Harvest [[nodiscard]] declarations: for each attribute, the next
 * `name(` within a short window names the function; the owner is the
 * explicit scope or the enclosing class.
 */
void
collectNodiscard(const std::string& all,
                 const std::vector<ClassScope>& scopes,
                 std::set<std::string>& qualified)
{
    std::size_t at = 0;
    while ((at = all.find("[[", at)) != std::string::npos) {
        const std::size_t close = all.find("]]", at);
        if (close == std::string::npos)
            break;
        const std::string attr = all.substr(at, close - at);
        at = close + 2;
        if (attr.find("nodiscard") == std::string::npos)
            continue;
        // The declaration's name is the identifier before the first
        // `(` after the attribute; bound the window so a nodiscard
        // type doesn't pick up an unrelated call far below.
        const std::size_t limit =
            std::min(all.size(), close + std::size_t{200});
        std::size_t paren = all.find('(', close);
        if (paren == std::string::npos || paren > limit)
            continue;
        // A `;` or `{` before the `(` means the attribute belonged to
        // something without a parameter list (a type, a variable).
        const std::string between =
            all.substr(close + 2, paren - close - 2);
        if (between.find(';') != std::string::npos ||
            between.find('{') != std::string::npos ||
            between.find("operator") != std::string::npos)
            continue;
        const std::string chain = prevTokenBefore(all, paren);
        if (!isIdentifierChain(chain) || chain[0] == '~')
            continue;
        const std::string name = lastComponent(chain);
        if (isNonFunctionKeyword(name))
            continue;
        std::string owner = scopeComponent(chain);
        if (owner.empty())
            owner = innermostClass(scopes, paren);
        qualified.insert(owner + "::" + name);
    }
}

/** Index every definition the heuristic can prove in @p file. */
void
indexFile(const SourceFile& file, const Options& options,
          SymbolIndex& index)
{
    // Join the stripped code ('\n'-separated, preprocessor lines
    // blanked) and keep line starts for offset -> line mapping.
    std::string all;
    std::vector<std::size_t> line_starts;
    for (const SourceLine& line : file.lines) {
        line_starts.push_back(all.size());
        if (!line.preproc)
            all += line.code;
        all.push_back('\n');
    }
    const auto lineAt = [&line_starts](std::size_t offset) {
        std::size_t lo = 0;
        std::size_t hi = line_starts.size();
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            (line_starts[mid] <= offset ? lo : hi) = mid;
        }
        return lo; // 0-based
    };

    const bool allowlisted = pathAllowlisted(file.display, options);
    const std::vector<ClassScope> scopes = collectClassScopes(all);
    collectClassFields(all, scopes, index.class_fields);
    collectNodiscard(all, scopes, index.nodiscard_qualified);

    std::size_t pos = 0;
    while ((pos = all.find('(', pos)) != std::string::npos) {
        const std::size_t paren = pos;
        ++pos;
        const std::string chain = prevTokenBefore(all, paren);
        if (!isIdentifierChain(chain))
            continue;
        const std::string name = lastComponent(chain);
        if (isNonFunctionKeyword(name))
            continue;
        // Locate the chain's start to inspect the token before it.
        std::size_t name_end = paren;
        while (name_end > 0 &&
               std::isspace(
                   static_cast<unsigned char>(all[name_end - 1])) != 0)
            --name_end;
        const std::size_t name_start = name_end - chain.size();
        if (!contextAllowsDefinition(prevTokenBefore(all, name_start)))
            continue;
        const std::size_t close = findMatching(all, paren, '(', ')');
        if (close == std::string::npos ||
            lineAt(close) - lineAt(paren) > 40)
            continue;
        const std::size_t body_open = findBodyOpen(all, close + 1);
        if (body_open == std::string::npos)
            continue;
        const std::size_t body_close =
            findMatching(all, body_open, '{', '}');
        if (body_close == std::string::npos)
            continue;

        FunctionDef def;
        def.name = name[0] == '~' ? name.substr(1) : name;
        def.qualified = chain;
        def.display = file.display;
        def.line = static_cast<int>(lineAt(name_start)) + 1;
        def.body_line = static_cast<int>(lineAt(body_open + 1)) + 1;
        def.body =
            all.substr(body_open + 1, body_close - body_open - 1);
        def.params = all.substr(paren + 1, close - paren - 1);
        def.owner = scopeComponent(chain);
        if (def.owner.empty())
            def.owner = innermostClass(scopes, name_start);
        for (const std::string& param : splitTopLevel(def.params)) {
            auto [pname, ptype] = parseParam(param);
            def.param_names.push_back(pname);
            if (!pname.empty())
                def.var_types.emplace(pname, ptype);
        }
        collectLocalTypes(def.body, def.var_types);
        collectCallees(def.body, def.callees, def.callee_names);
        def.locks_acquired = collectLocks(def.body);
        def.allowlisted = allowlisted;
        def.emits_trace =
            callsAnyOf(def.body, options.trace_emit_calls);
        def.nondet_what = describeNondetSource(def.body);
        index.functions.push_back(std::move(def));

        pos = body_close + 1; // never rescan inside a claimed body
    }
}

} // namespace

SymbolIndex
buildSymbolIndex(const std::vector<SourceFile>& files,
                 const Options& options)
{
    SymbolIndex index;
    for (const SourceFile& file : files)
        indexFile(file, options, index);
    for (std::size_t i = 0; i < index.functions.size(); ++i)
        index.by_name[index.functions[i].name].push_back(i);
    return index;
}

} // namespace satori_analyzer
