/**
 * @file
 * The project-wide symbol index: every free or member function
 * definition the heuristic scanner can identify, with the attribute
 * lattice (direct nondeterminism use, trace-emit calls, lock
 * acquisitions) the cross-file passes consume.
 *
 * Detection works on the stripped-token model, not a parse tree. A
 * candidate is an identifier chain followed by a balanced `(...)`
 * whose trailing tokens lead to a `{` — via an optional const /
 * noexcept / override tail or a constructor init-list — with the
 * token before the name shaped like a return type or a scope
 * boundary. Control-flow keywords are rejected, bodies are skipped
 * once claimed (so statements inside a recognized function are never
 * re-scanned), and anything the heuristic cannot prove is a
 * definition is dropped: false negatives are acceptable, false edges
 * are not.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>

namespace satori_analyzer {

namespace {

/** Keywords that look like `name(...)` but never name a function. */
bool
isNonFunctionKeyword(const std::string& name)
{
    static const std::set<std::string> keywords = {
        "if",       "for",        "while",     "switch",
        "return",   "catch",      "sizeof",    "throw",
        "new",      "delete",     "case",      "do",
        "else",     "defined",    "alignof",   "decltype",
        "noexcept", "static_assert", "assert", "using",
        "typedef",  "co_return",  "co_await",  "co_yield",
        "operator", "requires",   "alignas",   "typeid",
    };
    return keywords.count(name) != 0;
}

/** Last `::` component of an identifier chain. */
std::string
lastComponent(const std::string& chain)
{
    const std::size_t at = chain.rfind("::");
    return at == std::string::npos ? chain : chain.substr(at + 2);
}

/** @p chain spells an identifier chain (possibly ~dtor-prefixed). */
bool
isIdentifierChain(const std::string& chain)
{
    if (chain.empty())
        return false;
    const char first = chain[0];
    if (std::isdigit(static_cast<unsigned char>(first)) != 0)
        return false;
    return isIdentChar(first) || first == '~';
}

/**
 * Skip the balanced group opening at @p s[pos] (after whitespace);
 * returns the position after the closer, or npos when the next
 * non-space character is not @p open or the group is unbalanced.
 */
std::size_t
skipGroup(const std::string& s, std::size_t pos, char open, char close)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    if (pos >= s.size() || s[pos] != open)
        return std::string::npos;
    const std::size_t end = findMatching(s, pos, open, close);
    return end == std::string::npos ? std::string::npos : end + 1;
}

/** First non-space position at or after @p pos. */
std::size_t
skipSpace(const std::string& s, std::size_t pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    return pos;
}

/**
 * Walk a constructor init-list starting after its `:` and return the
 * position of the body `{`, or npos. Member initializers are
 * `name(args)` or `name{args}` groups separated by commas; the first
 * `{` not directly following an initializer name is the body.
 */
std::size_t
findBodyAfterInitList(const std::string& s, std::size_t pos)
{
    for (int guard = 0; guard < 64; ++guard) {
        pos = skipSpace(s, pos);
        if (pos >= s.size())
            return std::string::npos;
        if (s[pos] == '{')
            return pos;
        const std::string member = nextTokenAfter(s, pos);
        if (!isIdentifierChain(member))
            return std::string::npos;
        pos = skipSpace(s, pos) + member.size();
        std::size_t after = skipGroup(s, pos, '(', ')');
        if (after == std::string::npos)
            after = skipGroup(s, pos, '{', '}');
        if (after == std::string::npos)
            return std::string::npos;
        pos = skipSpace(s, after);
        if (pos < s.size() && s[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < s.size() && s[pos] == '{')
            return pos;
        return std::string::npos;
    }
    return std::string::npos;
}

/**
 * From the position after a candidate's closing paren, find the body
 * `{` through an optional `const`/`noexcept(...)`/`override`/`final`
 * tail or an init-list. Returns npos when the tokens lead anywhere
 * else (declaration, `= default`, expression).
 */
std::size_t
findBodyOpen(const std::string& s, std::size_t pos)
{
    for (int guard = 0; guard < 16; ++guard) {
        pos = skipSpace(s, pos);
        if (pos >= s.size())
            return std::string::npos;
        const char c = s[pos];
        if (c == '{')
            return pos;
        if (c == ';' || c == '=' || c == ',' || c == ')')
            return std::string::npos;
        if (c == ':') {
            if (pos + 1 < s.size() && s[pos + 1] == ':')
                return std::string::npos;
            return findBodyAfterInitList(s, pos + 1);
        }
        const std::string tok = nextTokenAfter(s, pos);
        if (tok == "const" || tok == "override" || tok == "final" ||
            tok == "mutable" || tok == "&") {
            pos += tok == "&" ? 1 : tok.size();
            continue;
        }
        if (tok == "noexcept") {
            pos += tok.size();
            const std::size_t after = skipGroup(s, pos, '(', ')');
            if (after != std::string::npos)
                pos = after;
            continue;
        }
        return std::string::npos;
    }
    return std::string::npos;
}

/** Tokens allowed directly before a definition's name. */
bool
contextAllowsDefinition(const std::string& prev)
{
    if (prev.empty())
        return true;
    if (isIdentifierChain(prev))
        return !isNonFunctionKeyword(lastComponent(prev));
    return prev == "*" || prev == "&" || prev == ">" || prev == "}" ||
           prev == "{" || prev == ";" || prev == ":" || prev == "~";
}

/** `word` occurs at @p at as a whole word followed by `(`. */
bool
isCallTokenAt(const std::string& s, std::size_t at,
              const std::string& word)
{
    if (at > 0 && (isIdentChar(s[at - 1]) || s[at - 1] == '~'))
        return false;
    const std::size_t end = at + word.size();
    if (end < s.size() && isIdentChar(s[end]))
        return false;
    return skipSpace(s, end) < s.size() && s[skipSpace(s, end)] == '(';
}

/** Any of @p words occurs in @p body as a call token. */
bool
callsAnyOf(const std::string& body, const std::vector<std::string>& words)
{
    for (const std::string& word : words) {
        std::size_t at = 0;
        while ((at = body.find(word, at)) != std::string::npos) {
            if (isCallTokenAt(body, at, word))
                return true;
            at += word.size();
        }
    }
    return false;
}

/** Collect unique unqualified callee names from @p body. */
std::vector<std::string>
collectCallees(const std::string& body)
{
    std::vector<std::string> callees;
    std::set<std::string> seen;
    std::size_t at = 0;
    while ((at = body.find('(', at)) != std::string::npos) {
        const std::string chain = prevTokenBefore(body, at);
        ++at;
        if (!isIdentifierChain(chain) || chain[0] == '~')
            continue;
        const std::string name = lastComponent(chain);
        if (isNonFunctionKeyword(name))
            continue;
        if (seen.insert(name).second)
            callees.push_back(name);
    }
    return callees;
}

/** @p s with all whitespace removed (lock-expression normalization). */
std::string
withoutSpace(const std::string& s)
{
    std::string out;
    for (char c : s)
        if (std::isspace(static_cast<unsigned char>(c)) == 0)
            out.push_back(c);
    return out;
}

/** Split @p args on top-level commas, normalized. */
std::vector<std::string>
splitArgs(const std::string& args)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : args) {
        if (c == '(' || c == '<' || c == '[' || c == '{')
            ++depth;
        else if (c == ')' || c == '>' || c == ']' || c == '}')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(withoutSpace(cur));
            cur.clear();
            continue;
        }
        cur.push_back(c);
    }
    out.push_back(withoutSpace(cur));
    return out;
}

/** Tag arguments that are lock policies, not lock expressions. */
bool
isLockPolicyArg(const std::string& arg)
{
    return arg.find("adopt_lock") != std::string::npos ||
           arg.find("defer_lock") != std::string::npos ||
           arg.find("try_to_lock") != std::string::npos;
}

/**
 * Locks acquired in @p body, in source order: RAII guard constructor
 * arguments plus `expr.lock()` receivers, as normalized expressions.
 */
std::vector<std::string>
collectLocks(const std::string& body)
{
    struct GuardKind
    {
        const char* word;
        bool all_args; ///< scoped_lock takes several mutexes.
    };
    static const GuardKind kGuards[] = {
        {"MutexLock", false},
        {"lock_guard", false},
        {"unique_lock", false},
        {"scoped_lock", true},
    };
    std::vector<std::pair<std::size_t, std::string>> found;
    for (const GuardKind& guard : kGuards) {
        const std::string word(guard.word);
        std::size_t at = 0;
        while ((at = body.find(word, at)) != std::string::npos) {
            const std::size_t start = at;
            at += word.size();
            if ((start > 0 && isIdentChar(body[start - 1])) ||
                (at < body.size() && isIdentChar(body[at])))
                continue;
            std::size_t pos = skipSpace(body, at);
            if (pos < body.size() && body[pos] == '<') {
                const std::size_t close =
                    findMatching(body, pos, '<', '>');
                if (close == std::string::npos)
                    continue;
                pos = skipSpace(body, close + 1);
            }
            const std::string var = nextTokenAfter(body, pos);
            if (!isIdentifierChain(var))
                continue;
            pos = skipSpace(body, pos) + var.size();
            pos = skipSpace(body, pos);
            if (pos >= body.size() || body[pos] != '(')
                continue;
            const std::size_t close =
                findMatching(body, pos, '(', ')');
            if (close == std::string::npos)
                continue;
            const std::vector<std::string> args =
                splitArgs(body.substr(pos + 1, close - pos - 1));
            for (std::size_t i = 0; i < args.size(); ++i) {
                if (args[i].empty() || isLockPolicyArg(args[i]))
                    continue;
                found.emplace_back(start, args[i]);
                if (!guard.all_args)
                    break;
            }
        }
    }
    // Manual acquisition: `expr.lock()` — the receiver is the lock.
    std::size_t at = 0;
    while ((at = body.find(".lock()", at)) != std::string::npos) {
        const std::string recv = prevTokenBefore(body, at);
        const std::size_t start = at;
        at += 7;
        if (isIdentifierChain(recv))
            found.emplace_back(start, recv);
    }
    // Source order across all acquisition kinds.
    std::sort(found.begin(), found.end());
    std::vector<std::string> locks;
    locks.reserve(found.size());
    for (auto& [offset, expr] : found)
        locks.push_back(std::move(expr));
    return locks;
}

/** Direct nondeterminism source in @p body, or "" when clean. */
std::string
describeNondetSource(const std::string& body)
{
    if (body.find("::now") != std::string::npos &&
        body.find("_clock") != std::string::npos)
        return "a chrono clock read";
    static const char* const kClockCalls[] = {
        "time",   "clock",     "gettimeofday",
        "gmtime", "localtime", "clock_gettime",
    };
    for (const char* call : kClockCalls) {
        const std::string name(call);
        std::size_t at = 0;
        while ((at = body.find(name, at)) != std::string::npos) {
            if (isCallTokenAt(body, at, name))
                return "a wall-clock call `" + name + "(`";
            at += name.size();
        }
    }
    if (body.find("random_device") != std::string::npos)
        return "std::random_device (OS entropy)";
    if (body.find("get_id") != std::string::npos &&
        body.find("this_thread") != std::string::npos)
        return "std::this_thread::get_id (thread identity)";
    if (body.find("thread::id") != std::string::npos)
        return "std::thread::id formatting (thread identity)";
    std::size_t at = body.find("reinterpret_cast");
    if (at != std::string::npos) {
        const std::size_t open = body.find('<', at);
        const std::size_t close =
            open == std::string::npos
                ? std::string::npos
                : findMatching(body, open, '<', '>');
        if (close != std::string::npos) {
            const std::string target =
                body.substr(open, close - open + 1);
            if (target.find("uintptr") != std::string::npos ||
                target.find("intptr") != std::string::npos ||
                target.find("size_t") != std::string::npos)
                return "a pointer-value cast (ASLR-dependent bits)";
        }
    }
    return "";
}

bool
pathAllowlisted(const std::string& display, const Options& options)
{
    for (const std::string& allow : options.wallclock_allow)
        if (display.find(allow) != std::string::npos)
            return true;
    return false;
}

/** Index every definition the heuristic can prove in @p file. */
void
indexFile(const SourceFile& file, const Options& options,
          SymbolIndex& index)
{
    // Join the stripped code ('\n'-separated, preprocessor lines
    // blanked) and keep line starts for offset -> line mapping.
    std::string all;
    std::vector<std::size_t> line_starts;
    for (const SourceLine& line : file.lines) {
        line_starts.push_back(all.size());
        if (!line.preproc)
            all += line.code;
        all.push_back('\n');
    }
    const auto lineAt = [&line_starts](std::size_t offset) {
        std::size_t lo = 0;
        std::size_t hi = line_starts.size();
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            (line_starts[mid] <= offset ? lo : hi) = mid;
        }
        return lo; // 0-based
    };

    const bool allowlisted = pathAllowlisted(file.display, options);

    std::size_t pos = 0;
    while ((pos = all.find('(', pos)) != std::string::npos) {
        const std::size_t paren = pos;
        ++pos;
        const std::string chain = prevTokenBefore(all, paren);
        if (!isIdentifierChain(chain))
            continue;
        const std::string name = lastComponent(chain);
        if (isNonFunctionKeyword(name))
            continue;
        // Locate the chain's start to inspect the token before it.
        std::size_t name_end = paren;
        while (name_end > 0 &&
               std::isspace(
                   static_cast<unsigned char>(all[name_end - 1])) != 0)
            --name_end;
        const std::size_t name_start = name_end - chain.size();
        if (!contextAllowsDefinition(prevTokenBefore(all, name_start)))
            continue;
        const std::size_t close = findMatching(all, paren, '(', ')');
        if (close == std::string::npos ||
            lineAt(close) - lineAt(paren) > 40)
            continue;
        const std::size_t body_open = findBodyOpen(all, close + 1);
        if (body_open == std::string::npos)
            continue;
        const std::size_t body_close =
            findMatching(all, body_open, '{', '}');
        if (body_close == std::string::npos)
            continue;

        FunctionDef def;
        def.name = name[0] == '~' ? name.substr(1) : name;
        def.qualified = chain;
        def.display = file.display;
        def.line = static_cast<int>(lineAt(name_start)) + 1;
        def.body =
            all.substr(body_open + 1, body_close - body_open - 1);
        def.callee_names = collectCallees(def.body);
        def.locks_acquired = collectLocks(def.body);
        def.allowlisted = allowlisted;
        def.emits_trace =
            callsAnyOf(def.body, options.trace_emit_calls);
        def.nondet_what = describeNondetSource(def.body);
        index.functions.push_back(std::move(def));

        pos = body_close + 1; // never rescan inside a claimed body
    }
}

} // namespace

SymbolIndex
buildSymbolIndex(const std::vector<SourceFile>& files,
                 const Options& options)
{
    SymbolIndex index;
    for (const SourceFile& file : files)
        indexFile(file, options, index);
    for (std::size_t i = 0; i < index.functions.size(); ++i)
        index.by_name[index.functions[i].name].push_back(i);
    return index;
}

} // namespace satori_analyzer
