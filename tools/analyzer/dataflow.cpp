/**
 * @file
 * The nondeterminism taint pass (det-taint-reaches-trace): direct
 * sources — wall clocks, OS entropy, thread identity, pointer-value
 * casts — taint their defining function, taint flows from callee to
 * caller over the project call graph, and any non-allowlisted
 * function that both emits a decision trace and carries taint breaks
 * the byte-identical replay contract. Allowlisted files (the obs
 * layer, the CLI, bench timing) are boundaries: never sources, never
 * tainted, so sanctioned clock use cannot leak taint upward.
 */

#include "analyzer/analyzer.hpp"

#include <deque>

namespace satori_analyzer {

TaintResult
propagateNondeterminism(const SymbolIndex& index, const CallGraph& graph)
{
    const std::size_t n = index.functions.size();
    TaintResult taint;
    taint.tainted.assign(n, false);
    taint.next_toward_source.assign(n, 0);

    // Reverse edges: taint flows from callee to caller.
    std::vector<std::vector<std::size_t>> callers(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j : graph.callees[i])
            callers[j].push_back(i);

    std::deque<std::size_t> work;
    for (std::size_t i = 0; i < n; ++i) {
        if (index.functions[i].allowlisted)
            continue;
        if (!index.functions[i].nondet_what.empty()) {
            taint.tainted[i] = true;
            taint.next_toward_source[i] = i; // self: the source itself
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        const std::size_t j = work.front();
        work.pop_front();
        for (std::size_t i : callers[j]) {
            if (taint.tainted[i] || index.functions[i].allowlisted)
                continue;
            taint.tainted[i] = true;
            taint.next_toward_source[i] = j;
            work.push_back(i);
        }
    }
    return taint;
}

void
runTaintPass(const SymbolIndex& index, const CallGraph& graph,
             const TaintResult& taint, std::vector<Finding>& findings)
{
    (void)graph;
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
        const FunctionDef& root = index.functions[i];
        if (!root.emits_trace || root.allowlisted || !taint.tainted[i])
            continue;

        // Reconstruct the call chain down to the source.
        std::string chain = root.qualified;
        std::size_t at = i;
        for (int guard = 0; guard < 16; ++guard) {
            const std::size_t next = taint.next_toward_source[at];
            if (next == at)
                break;
            chain += " -> " + index.functions[next].qualified;
            at = next;
        }
        const FunctionDef& source = index.functions[at];

        Finding f;
        f.file = root.display;
        f.line = root.line;
        f.rule = "det-taint-reaches-trace";
        f.message = "trace/audit emit site `" + root.qualified +
                    "` reaches " + source.nondet_what + " in `" +
                    source.qualified + "` (" + chain +
                    "); traced decisions must replay byte-for-byte — "
                    "route the value through simulated time or a "
                    "seeded Rng";
        findings.push_back(std::move(f));
    }
}

} // namespace satori_analyzer
