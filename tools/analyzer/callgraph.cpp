/**
 * @file
 * The project call graph: edges from each indexed function to every
 * indexed function sharing an unqualified callee name. Name-based
 * resolution is deliberately conservative — overloads and same-name
 * members all receive an edge — because the cross-file passes only
 * ever propagate monotone facts (taint, lock sets) where a spurious
 * edge can at worst widen a fact that the allowlist boundaries and
 * the reporting rules then filter.
 */

#include "analyzer/analyzer.hpp"

namespace satori_analyzer {

CallGraph
buildCallGraph(const SymbolIndex& index)
{
    CallGraph graph;
    graph.callees.resize(index.functions.size());
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
        std::set<std::size_t> targets;
        for (const std::string& name :
             index.functions[i].callee_names) {
            const auto it = index.by_name.find(name);
            if (it == index.by_name.end())
                continue;
            for (std::size_t j : it->second)
                if (j != i)
                    targets.insert(j);
        }
        graph.callees[i].assign(targets.begin(), targets.end());
    }
    return graph;
}

} // namespace satori_analyzer
