/**
 * @file
 * The project call graph, with qualified edge resolution: a callee
 * name shared by several definitions (the many saveState overloads,
 * same-named methods on unrelated types) is pruned to the candidates
 * the call site's context supports before conservative fallback.
 *
 * Resolution order per call site:
 *   1. explicit `X::name(...)` — candidates owned by X;
 *   2. `recv.name(...)` / `recv->name(...)` — recv's type resolved
 *      through the caller's parameter/local table, then the caller's
 *      class field table; candidates owned by that type;
 *   3. `this->name(...)` or unqualified `name(...)` inside a member —
 *      candidates owned by the caller's class, plus free functions
 *      for the unqualified case;
 *   4. unqualified `name(...)` in a free function — free candidates.
 *
 * A step only prunes when it matches at least one candidate;
 * otherwise every candidate keeps its edge, because the cross-file
 * passes propagate monotone facts (taint, lock sets) where a missing
 * edge hides a real defect but a spurious one at worst widens a fact
 * the allowlist boundaries and reporting rules then filter.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>

namespace satori_analyzer {

namespace {

/** Indices in @p candidates whose definition is owned by @p owner. */
std::vector<std::size_t>
ownedBy(const SymbolIndex& index,
        const std::vector<std::size_t>& candidates,
        const std::string& owner)
{
    std::vector<std::size_t> out;
    for (std::size_t j : candidates)
        if (index.functions[j].owner == owner)
            out.push_back(j);
    return out;
}

/**
 * Resolve the type key of @p receiver inside @p caller: parameters
 * and locals first, then the caller's class fields. "" when unknown.
 */
std::string
receiverType(const SymbolIndex& index, const FunctionDef& caller,
             const std::string& receiver)
{
    const auto local = caller.var_types.find(receiver);
    if (local != caller.var_types.end())
        return local->second;
    if (!caller.owner.empty()) {
        const auto cls = index.class_fields.find(caller.owner);
        if (cls != index.class_fields.end()) {
            const auto field = cls->second.find(receiver);
            if (field != cls->second.end())
                return field->second;
        }
    }
    return "";
}

/** The candidate subset a single call site supports (see @file). */
std::vector<std::size_t>
resolveCallSite(const SymbolIndex& index, const FunctionDef& caller,
                const CalleeRef& ref,
                const std::vector<std::size_t>& candidates)
{
    if (candidates.size() <= 1)
        return candidates;
    if (!ref.qualifier.empty()) {
        const std::vector<std::size_t> scoped =
            ownedBy(index, candidates, ref.qualifier);
        if (!scoped.empty())
            return scoped;
        // A namespace qualifier (satori::, detail::) matches no
        // class owner; fall through conservatively.
        return candidates;
    }
    if (!ref.receiver.empty() && ref.receiver != "this") {
        const std::string type =
            receiverType(index, caller, ref.receiver);
        if (!type.empty()) {
            const std::vector<std::size_t> typed =
                ownedBy(index, candidates, type);
            if (!typed.empty())
                return typed;
        }
        return candidates;
    }
    if (ref.receiver == "this") {
        const std::vector<std::size_t> own =
            ownedBy(index, candidates, caller.owner);
        return own.empty() ? candidates : own;
    }
    // Unqualified call: the caller's own members shadow same-named
    // methods of unrelated classes; free functions stay reachable.
    std::vector<std::size_t> scoped;
    if (!caller.owner.empty())
        scoped = ownedBy(index, candidates, caller.owner);
    const std::vector<std::size_t> free_fns =
        ownedBy(index, candidates, "");
    scoped.insert(scoped.end(), free_fns.begin(), free_fns.end());
    if (scoped.empty())
        return candidates;
    std::sort(scoped.begin(), scoped.end());
    return scoped;
}

} // namespace

CallGraph
buildCallGraph(const SymbolIndex& index)
{
    CallGraph graph;
    graph.callees.resize(index.functions.size());
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
        const FunctionDef& caller = index.functions[i];
        std::set<std::size_t> targets;
        for (const CalleeRef& ref : caller.callees) {
            const auto it = index.by_name.find(ref.name);
            if (it == index.by_name.end())
                continue;
            for (std::size_t j :
                 resolveCallSite(index, caller, ref, it->second))
                if (j != i)
                    targets.insert(j);
        }
        graph.callees[i].assign(targets.begin(), targets.end());
    }
    return graph;
}

} // namespace satori_analyzer
