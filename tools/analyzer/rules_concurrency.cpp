/**
 * @file
 * Concurrency rule pack: the determinism contract survives threading
 * only while shared state is guarded and parallel work stays in the
 * slot-write idiom (each work item writes out[i]; aggregation happens
 * after the join, in index order). These passes ban the patterns that
 * historically break that: unguarded mutable statics, by-reference
 * captures handed to deferred executors, cross-slot accumulation
 * inside parallelFor bodies, raw std::thread outside the harness,
 * mutex members with no SATORI_GUARDED_BY siblings, and lock-order
 * inversions across the call graph.
 *
 * Rules: conc-global-mutable, conc-ref-capture,
 * conc-parallel-accumulate, conc-raw-thread, conc-unannotated-mutex
 * (per file) and conc-lock-order (cross-file, in runLockOrderPass).
 */

#include "analyzer/analyzer.hpp"

#include <cctype>
#include <functional>

namespace satori_analyzer {

namespace {

void
add(std::vector<Finding>& findings, const std::string& display,
    int line, const char* rule, std::string message)
{
    Finding f;
    f.file = display;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
}

/** First non-space position at or after @p pos. */
std::size_t
skipSpace(const std::string& s, std::size_t pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    return pos;
}

bool
pathMatchesAny(const std::string& display,
               const std::vector<std::string>& allow)
{
    for (const std::string& substr : allow)
        if (display.find(substr) != std::string::npos)
            return true;
    return false;
}

// --- conc-global-mutable ---------------------------------------------

/**
 * `static` variable declarations that are neither immutable
 * (const/constexpr/constinit) nor self-synchronizing (atomic, a
 * mutex/once_flag, thread_local). Function-like statics (the first
 * interesting character after the declarator is `(`) are skipped.
 */
void
scanGlobalMutable(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        if (!containsWord(code, "static"))
            continue;
        if (code.find("static_assert") != std::string::npos ||
            code.find("static_cast") != std::string::npos)
            continue;
        if (containsWord(code, "const") ||
            containsWord(code, "constexpr") ||
            containsWord(code, "constinit") ||
            containsWord(code, "thread_local") ||
            code.find("atomic") != std::string::npos ||
            code.find("once_flag") != std::string::npos ||
            code.find("Mutex") != std::string::npos ||
            code.find("mutex") != std::string::npos)
            continue;
        const std::size_t stop = code.find_first_of("=;({");
        if (stop == std::string::npos || code[stop] == '(' ||
            code[stop] == '{')
            continue; // function definition/declaration or brace-init
        add(findings, file.display, static_cast<int>(li) + 1,
            "conc-global-mutable",
            "mutable static state; make it const/constexpr/atomic, "
            "guard it with a Mutex + SATORI_GUARDED_BY, or pass the "
            "state explicitly");
    }
}

// --- conc-ref-capture ------------------------------------------------

/** Executor spellings whose work may outlive the enclosing scope. */
const char* const kDeferredExecutors[] = {
    "std::thread", "std::jthread", "std::async",
    ".submit(",    ".enqueue(",    ".post(",
    ".defer(",
};

/**
 * A `[&]` / `[&,` capture on a line that hands a callable to a
 * deferred executor. parallelFor/forEachIndex are exempt by design:
 * they join before returning, so reference captures cannot dangle.
 */
void
scanRefCapture(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        if (code.find("[&]") == std::string::npos &&
            code.find("[&,") == std::string::npos)
            continue;
        for (const char* executor : kDeferredExecutors) {
            if (code.find(executor) == std::string::npos)
                continue;
            add(findings, file.display, static_cast<int>(li) + 1,
                "conc-ref-capture",
                "by-reference capture handed to a deferred executor "
                "(`" + std::string(executor) +
                    "`); the lambda can outlive the captured frame — "
                    "capture by value or keep the work on "
                    "parallelFor, which joins before returning");
            break;
        }
    }
}

// --- conc-raw-thread -------------------------------------------------

/**
 * Raw std::thread construction or detach outside the allowlisted
 * harness paths. `std::thread::` member lookups (e.g.
 * hardware_concurrency) are not construction and pass.
 */
void
scanRawThread(const SourceFile& file, const Options& options,
              std::vector<Finding>& findings)
{
    if (pathMatchesAny(file.display, options.raw_thread_allow))
        return;
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        bool hit = false;
        for (const char* spelling : {"std::thread", "std::jthread"}) {
            const std::string word(spelling);
            std::size_t at = 0;
            while ((at = code.find(word, at)) != std::string::npos) {
                const std::size_t end = at + word.size();
                at = end;
                if (end < code.size() &&
                    (isIdentChar(code[end]) || code[end] == ':'))
                    continue; // longer name or std::thread::member
                hit = true;
                break;
            }
            if (hit)
                break;
        }
        if (!hit && code.find(".detach()") != std::string::npos)
            hit = true;
        if (hit)
            add(findings, file.display, lineno, "conc-raw-thread",
                "raw std::thread outside the pool implementation; "
                "route work through common::ThreadPool / parallelFor "
                "so joins, error capture, and slot-write determinism "
                "stay in one place");
    }
}

// --- conc-unannotated-mutex ------------------------------------------

/** Macros whose presence proves the file opted into the analysis. */
const char* const kAnnotationMacros[] = {
    "SATORI_GUARDED_BY", "SATORI_PT_GUARDED_BY", "SATORI_REQUIRES",
    "SATORI_CAPABILITY", "SATORI_ACQUIRE",       "SATORI_RELEASE",
};

/**
 * A mutex-typed member/variable declaration in a file that uses none
 * of the thread-safety annotation macros: the lock exists but nothing
 * states what it protects, so clang -Wthread-safety checks nothing.
 */
void
scanUnannotatedMutex(const SourceFile& file,
                     std::vector<Finding>& findings)
{
    bool annotated = false;
    for (const SourceLine& line : file.lines) {
        for (const char* macro : kAnnotationMacros)
            if (line.code.find(macro) != std::string::npos)
                annotated = true;
        if (annotated)
            break;
    }
    if (annotated)
        return;
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        for (const char* type :
             {"Mutex", "std::mutex", "std::recursive_mutex",
              "std::shared_mutex", "std::timed_mutex"}) {
            const std::string word(type);
            std::size_t at = 0;
            bool hit = false;
            while ((at = code.find(word, at)) != std::string::npos) {
                const std::size_t start = at;
                const std::size_t end = at + word.size();
                at = end;
                if (start > 0 && (isIdentChar(code[start - 1]) ||
                                  code[start - 1] == ':'))
                    continue;
                if (end < code.size() && isIdentChar(code[end]))
                    continue;
                // Declaration shape: `<type> name;` — template
                // arguments (lock_guard<std::mutex>) never match.
                const std::string name = nextTokenAfter(code, end);
                if (name.empty() || !isIdentChar(name[0]) ||
                    std::isdigit(static_cast<unsigned char>(
                        name[0])) != 0)
                    continue;
                const std::size_t after =
                    skipSpace(code, skipSpace(code, end) + name.size());
                if (after >= code.size() || code[after] != ';')
                    continue;
                hit = true;
                break;
            }
            if (hit) {
                add(findings, file.display, lineno,
                    "conc-unannotated-mutex",
                    "mutex member without SATORI_GUARDED_BY siblings; "
                    "annotate the state it protects (see "
                    "include/satori/common/thread_annotations.hpp) so "
                    "clang -Wthread-safety can verify lock "
                    "discipline");
                break;
            }
        }
    }
}

// --- conc-parallel-accumulate ----------------------------------------

/** Type keywords whose next identifier is a body-local declaration. */
const char* const kLocalDeclTypes[] = {
    "auto",     "int",      "long",     "short",   "unsigned",
    "double",   "float",    "bool",     "char",    "size_t",
    "uint64_t", "int64_t",  "uint32_t", "int32_t", "ptrdiff_t",
};

/** Harvest identifiers declared inside @p body into @p locals. */
void
harvestLocals(const std::string& body, std::set<std::string>& locals)
{
    for (const char* kw : kLocalDeclTypes) {
        const std::string word(kw);
        std::size_t at = 0;
        while ((at = body.find(word, at)) != std::string::npos) {
            const bool left_ok = at == 0 || !isIdentChar(body[at - 1]);
            std::size_t end = at + word.size();
            at = end;
            if (!left_ok || (end < body.size() && isIdentChar(body[end])))
                continue;
            // Skip ref/pointer declarators: `auto& x`, `double* p`.
            end = skipSpace(body, end);
            while (end < body.size() &&
                   (body[end] == '&' || body[end] == '*'))
                end = skipSpace(body, end + 1);
            const std::string name = nextTokenAfter(body, end);
            if (!name.empty() && isIdentChar(name[0]) &&
                std::isdigit(static_cast<unsigned char>(name[0])) == 0)
                locals.insert(name);
        }
    }
}

/** Last identifier of a parameter declaration (`std::size_t i` -> i). */
std::string
paramName(const std::string& param)
{
    std::size_t end = param.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(param[end - 1])) != 0)
        --end;
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(param[begin - 1]))
        --begin;
    return param.substr(begin, end - begin);
}

/** The accumulation target is sanctioned: a slot write or a local. */
bool
targetSanctioned(const std::string& target,
                 const std::set<std::string>& locals)
{
    if (target == "]")
        return true; // subscripted: out[i] slot write
    if (target.empty() || !isIdentChar(target[0]))
        return false;
    std::size_t colon = target.rfind("::");
    const std::string base =
        colon == std::string::npos ? target : target.substr(colon + 2);
    return locals.count(base) != 0;
}

const char* const kAccumulateMessage =
    "non-slot accumulation inside a parallelFor body races across "
    "work items; write to a per-index slot (out[i] = ...) and "
    "aggregate after the join, or use a std::atomic";

/**
 * Inspect one parallelFor/forEachIndex lambda body spanning
 * [@p body_open+1, @p body_close) of the joined code @p all.
 */
void
checkParallelBody(const SourceFile& file, const std::string& all,
                  std::size_t body_open, std::size_t body_close,
                  const std::set<std::string>& locals,
                  const std::function<int(std::size_t)>& lineOf,
                  std::vector<Finding>& findings)
{
    static const char* const kCompoundOps[] = {
        "+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<=", ">>=",
    };
    for (const char* op : kCompoundOps) {
        const std::string spelling(op);
        std::size_t at = body_open;
        while ((at = all.find(spelling, at)) != std::string::npos &&
               at < body_close) {
            const std::string target = prevTokenBefore(all, at);
            const std::size_t here = at;
            at += spelling.size();
            // `<<` would double-report `<<=`; the loop only searches
            // the exact spellings above, so no overlap to filter.
            if (!targetSanctioned(target, locals))
                add(findings, file.display, lineOf(here),
                    "conc-parallel-accumulate", kAccumulateMessage);
        }
    }
    for (const char* op : {"++", "--"}) {
        const std::string spelling(op);
        std::size_t at = body_open;
        while ((at = all.find(spelling, at)) != std::string::npos &&
               at < body_close) {
            const std::size_t here = at;
            at += spelling.size();
            const std::size_t after = skipSpace(all, here + 2);
            std::string target;
            if (after < all.size() && isIdentChar(all[after]) &&
                std::isdigit(static_cast<unsigned char>(all[after])) ==
                    0)
                target = nextTokenAfter(all, here + 2); // prefix
            else
                target = prevTokenBefore(all, here); // postfix
            if (!targetSanctioned(target, locals))
                add(findings, file.display, lineOf(here),
                    "conc-parallel-accumulate", kAccumulateMessage);
        }
    }
    for (const char* method : {".push_back(", ".emplace_back("}) {
        const std::string spelling(method);
        std::size_t at = body_open;
        while ((at = all.find(spelling, at)) != std::string::npos &&
               at < body_close) {
            const std::string recv = prevTokenBefore(all, at);
            const std::size_t here = at;
            at += spelling.size();
            if (!targetSanctioned(recv, locals))
                add(findings, file.display, lineOf(here),
                    "conc-parallel-accumulate", kAccumulateMessage);
        }
    }
}

/**
 * Find each parallelFor/forEachIndex call whose argument list holds a
 * lambda and check the lambda body for cross-slot accumulation.
 */
void
scanParallelAccumulate(const SourceFile& file,
                       std::vector<Finding>& findings)
{
    std::string all;
    std::vector<std::size_t> line_starts;
    for (const SourceLine& line : file.lines) {
        line_starts.push_back(all.size());
        if (!line.preproc)
            all += line.code;
        all.push_back('\n');
    }
    const auto lineOf = [&line_starts](std::size_t offset) {
        std::size_t lo = 0;
        std::size_t hi = line_starts.size();
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            (line_starts[mid] <= offset ? lo : hi) = mid;
        }
        return static_cast<int>(lo) + 1;
    };

    for (const char* entry : {"parallelFor", "forEachIndex"}) {
        const std::string word(entry);
        std::size_t at = 0;
        while ((at = all.find(word, at)) != std::string::npos) {
            const std::size_t start = at;
            at += word.size();
            if ((start > 0 && isIdentChar(all[start - 1])) ||
                (at < all.size() && isIdentChar(all[at])))
                continue;
            const std::size_t paren = skipSpace(all, at);
            if (paren >= all.size() || all[paren] != '(')
                continue;
            const std::size_t close =
                findMatching(all, paren, '(', ')');
            if (close == std::string::npos)
                continue;
            // The lambda: `[captures](params) { body }` inside the
            // argument list.
            const std::size_t capture = all.find('[', paren);
            if (capture == std::string::npos || capture > close)
                continue;
            const std::size_t capture_end =
                findMatching(all, capture, '[', ']');
            if (capture_end == std::string::npos)
                continue;
            std::set<std::string> locals;
            std::size_t cursor = skipSpace(all, capture_end + 1);
            if (cursor < all.size() && all[cursor] == '(') {
                const std::size_t params_end =
                    findMatching(all, cursor, '(', ')');
                if (params_end == std::string::npos)
                    continue;
                std::string params =
                    all.substr(cursor + 1, params_end - cursor - 1);
                std::string piece;
                int depth = 0;
                for (char c : params) {
                    if (c == '<' || c == '(')
                        ++depth;
                    else if (c == '>' || c == ')')
                        --depth;
                    if (c == ',' && depth == 0) {
                        locals.insert(paramName(piece));
                        piece.clear();
                        continue;
                    }
                    piece.push_back(c);
                }
                locals.insert(paramName(piece));
                cursor = skipSpace(all, params_end + 1);
            }
            if (cursor >= all.size() || all[cursor] != '{')
                continue;
            const std::size_t body_close =
                findMatching(all, cursor, '{', '}');
            if (body_close == std::string::npos)
                continue;
            harvestLocals(all.substr(cursor + 1, body_close - cursor - 1),
                          locals);
            checkParallelBody(file, all, cursor + 1, body_close, locals,
                              lineOf, findings);
            at = close;
        }
    }
}

} // namespace

void
runConcurrencyPack(const SourceFile& file, const Options& options,
                   std::vector<Finding>& findings)
{
    scanGlobalMutable(file, findings);
    scanRefCapture(file, findings);
    scanRawThread(file, options, findings);
    scanUnannotatedMutex(file, findings);
    scanParallelAccumulate(file, findings);
}

void
runLockOrderPass(const SymbolIndex& index, const CallGraph& graph,
                 std::vector<Finding>& findings)
{
    const std::size_t n = index.functions.size();

    // Locks acquired anywhere in each function's callee subtree
    // (memoized DFS; on a cycle the in-progress node contributes its
    // own locks, which keeps the result a sound under-approximation).
    std::vector<std::set<std::string>> below(n);
    std::vector<int> state(n, 0); // 0 new, 1 on stack, 2 done
    std::function<void(std::size_t)> visit = [&](std::size_t i) {
        state[i] = 1;
        for (std::size_t j : graph.callees[i]) {
            if (state[j] == 0)
                visit(j);
            below[i].insert(index.functions[j].locks_acquired.begin(),
                            index.functions[j].locks_acquired.end());
            if (state[j] == 2)
                below[i].insert(below[j].begin(), below[j].end());
        }
        state[i] = 2;
    };
    for (std::size_t i = 0; i < n; ++i)
        if (state[i] == 0)
            visit(i);

    // Ordered acquisition pairs, each remembering the first function
    // that establishes the order.
    std::map<std::pair<std::string, std::string>, std::size_t> origin;
    const auto record = [&origin](const std::string& a,
                                  const std::string& b, std::size_t i) {
        if (a != b)
            origin.emplace(std::make_pair(a, b), i);
    };
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<std::string>& held =
            index.functions[i].locks_acquired;
        for (std::size_t a = 0; a < held.size(); ++a)
            for (std::size_t b = a + 1; b < held.size(); ++b)
                record(held[a], held[b], i);
        for (const std::string& l : held)
            for (const std::string& m : below[i])
                record(l, m, i);
    }

    std::set<std::pair<std::string, std::string>> reported;
    for (const auto& [pair, func] : origin) {
        const auto reverse = origin.find({pair.second, pair.first});
        if (reverse == origin.end())
            continue;
        const auto key = pair.first < pair.second
                             ? pair
                             : std::make_pair(pair.second, pair.first);
        if (!reported.insert(key).second)
            continue;
        const FunctionDef& here = index.functions[func];
        const FunctionDef& there = index.functions[reverse->second];
        Finding f;
        f.file = here.display;
        f.line = here.line;
        f.rule = "conc-lock-order";
        f.message = "lock-order inversion: `" + here.qualified +
                    "` acquires `" + pair.first + "` before `" +
                    pair.second + "`, but `" + there.qualified + "` (" +
                    there.display + ":" + std::to_string(there.line) +
                    ") orders them the other way — pick one global "
                    "order and keep it";
        findings.push_back(std::move(f));
    }
}

} // namespace satori_analyzer
