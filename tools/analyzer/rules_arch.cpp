/**
 * @file
 * The arch pack: subsystem layering over the include graph.
 *
 * The repository's subsystems form a declared DAG (kSubsystemDeps
 * below, mirrored by the diagram in GUIDE.md §10). A file belongs to
 * the subsystem its path names — include/satori/<sub>/... or
 * src/<sub>/... — and may only reach, transitively through project
 * includes, subsystems in the closure of its own. Everything else
 * (tools/, tests/, bench/, examples/, the umbrella satori.hpp) is
 * unconstrained.
 *
 *   arch-forbidden-include - a constrained file reaches a subsystem
 *                            outside its allowed closure; the message
 *                            prints the shortest offending include
 *                            chain so the stray edge is obvious.
 *   arch-include-cycle     - project includes form a cycle.
 *   arch-unknown-subsystem - a directory under include/satori/ or
 *                            src/ is not in the declared DAG; extend
 *                            kSubsystemDeps deliberately instead of
 *                            letting layering decay silently.
 *   arch-simd-confined     - CPU intrinsics / vector extensions
 *                            outside the allowlisted SIMD home
 *                            (src/linalg/); everything else consumes
 *                            the dispatching linalg::simd API so the
 *                            scalar-exact-fallback contract stays in
 *                            one reviewed place.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace satori_analyzer {

namespace {

/** Display path contains any of the allowlist substrings? */
bool
pathMatchesAny(const std::string& display,
               const std::vector<std::string>& allow)
{
    for (const std::string& substr : allow)
        if (display.find(substr) != std::string::npos)
            return true;
    return false;
}

/**
 * Direct dependencies per subsystem; the transitive closure is
 * computed at startup. Order: foundations first.
 */
const std::map<std::string, std::set<std::string>>&
subsystemDeps()
{
    static const std::map<std::string, std::set<std::string>> deps = {
        {"common", {}},
        {"config", {"common"}},
        {"linalg", {"common"}},
        {"metrics", {"common"}},
        {"obs", {"common"}},
        {"perfmodel", {"common"}},
        {"analysis", {"common", "config", "linalg"}},
        {"workloads", {"common", "perfmodel"}},
        {"persist", {"common", "config", "obs"}},
        {"bo",
         {"common", "config", "linalg", "analysis", "obs", "persist"}},
        {"core",
         {"common", "config", "metrics", "linalg", "analysis", "obs",
          "persist", "bo"}},
        {"sim",
         {"common", "config", "metrics", "perfmodel", "workloads",
          "analysis", "obs", "persist"}},
        {"faults", {"common", "config", "obs", "persist", "sim"}},
        {"policies",
         {"common", "config", "metrics", "linalg", "analysis", "obs",
          "persist", "bo", "core", "sim", "perfmodel", "workloads"}},
        {"harness",
         {"common", "config", "metrics", "linalg", "analysis", "obs",
          "persist", "bo", "core", "sim", "perfmodel", "workloads",
          "policies", "faults"}},
    };
    return deps;
}

/** Transitive closure of subsystemDeps(). */
const std::map<std::string, std::set<std::string>>&
subsystemClosure()
{
    static const std::map<std::string, std::set<std::string>> closure =
        [] {
            std::map<std::string, std::set<std::string>> out =
                subsystemDeps();
            bool changed = true;
            while (changed) {
                changed = false;
                for (auto& [sub, reach] : out) {
                    const std::set<std::string> snapshot = reach;
                    for (const std::string& dep : snapshot) {
                        const auto it = out.find(dep);
                        if (it == out.end())
                            continue;
                        for (const std::string& indirect : it->second)
                            if (reach.insert(indirect).second)
                                changed = true;
                    }
                }
            }
            return out;
        }();
    return closure;
}

/**
 * The subsystem a path belongs to: the directory component after
 * include/satori/ or src/, or "" for unconstrained locations (tools,
 * tests, the umbrella header).
 */
std::string
subsystemOf(const std::string& display)
{
    const auto component = [&display](std::size_t at) -> std::string {
        const std::size_t slash = display.find('/', at);
        if (slash == std::string::npos)
            return ""; // a file, not a subsystem directory
        return display.substr(at, slash - at);
    };
    const std::size_t inc = display.find("include/satori/");
    if (inc != std::string::npos)
        return component(inc + 15);
    std::size_t src = display.find("src/");
    while (src != std::string::npos) {
        if (src == 0 || display[src - 1] == '/')
            return component(src + 4);
        src = display.find("src/", src + 1);
    }
    return "";
}

/** Subsystem named by a quoted include path "satori/<sub>/...". */
std::string
subsystemOfInclude(const std::string& quoted)
{
    if (quoted.compare(0, 7, "satori/") != 0)
        return "";
    const std::size_t slash = quoted.find('/', 7);
    if (slash == std::string::npos)
        return "";
    return quoted.substr(7, slash - 7);
}

/** A project `#include "..."` directive. */
struct Include
{
    std::string quoted;           ///< the quoted path, verbatim.
    int line = 0;                 ///< 1-based line in the includer.
    std::size_t target = kNone;   ///< index into sources, if resolved.
    static constexpr std::size_t kNone =
        static_cast<std::size_t>(-1);
};

std::vector<std::vector<Include>>
buildIncludeGraph(const std::vector<SourceFile>& sources)
{
    // Resolve a quoted path by suffix match against scanned displays.
    std::map<std::string, std::size_t> by_suffix;
    for (std::size_t i = 0; i < sources.size(); ++i)
        by_suffix[sources[i].display] = i;
    const auto resolve =
        [&sources, &by_suffix](const std::string& quoted) {
            for (std::size_t i = 0; i < sources.size(); ++i) {
                const std::string& display = sources[i].display;
                if (display.size() < quoted.size())
                    continue;
                if (display.compare(display.size() - quoted.size(),
                                    quoted.size(), quoted) != 0)
                    continue;
                if (display.size() == quoted.size() ||
                    display[display.size() - quoted.size() - 1] == '/')
                    return i;
            }
            return Include::kNone;
        };

    std::vector<std::vector<Include>> graph(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
        for (std::size_t l = 0; l < sources[i].lines.size(); ++l) {
            const std::string& raw = sources[i].lines[l].raw;
            std::size_t at = raw.find("#include");
            if (at == std::string::npos)
                continue;
            at = raw.find('"', at);
            if (at == std::string::npos)
                continue; // <system> include
            const std::size_t close = raw.find('"', at + 1);
            if (close == std::string::npos)
                continue;
            Include inc;
            inc.quoted = raw.substr(at + 1, close - at - 1);
            inc.line = static_cast<int>(l + 1);
            inc.target = resolve(inc.quoted);
            graph[i].push_back(std::move(inc));
        }
    }
    return graph;
}

bool
allowed(const std::string& from, const std::string& to)
{
    if (from == to || to.empty())
        return true;
    const auto it = subsystemClosure().find(from);
    if (it == subsystemClosure().end())
        return true; // unknown subsystems are reported separately
    return it->second.count(to) != 0;
}

void
reportForbidden(const std::vector<SourceFile>& sources,
                const std::vector<std::vector<Include>>& graph,
                std::vector<Finding>& findings)
{
    for (std::size_t start = 0; start < sources.size(); ++start) {
        const std::string from = subsystemOf(sources[start].display);
        if (from.empty() ||
            subsystemClosure().count(from) == 0)
            continue;
        // BFS over resolved includes; parent edges reconstruct the
        // shortest chain to each offending target.
        std::set<std::string> reported;
        std::vector<std::size_t> queue = {start};
        std::map<std::size_t, std::pair<std::size_t, const Include*>>
            parent; // node -> (predecessor, edge)
        std::set<std::size_t> seen = {start};
        const auto chainOf = [&](std::size_t node) {
            std::vector<std::string> chain = {sources[node].display};
            int first_line = 0;
            while (node != start) {
                const auto& [pred, edge] = parent.at(node);
                chain.push_back(sources[pred].display);
                first_line = edge->line;
                node = pred;
            }
            std::reverse(chain.begin(), chain.end());
            std::string text;
            for (const std::string& hop : chain) {
                if (!text.empty())
                    text += " -> ";
                text += hop;
            }
            return std::make_pair(text, first_line);
        };
        const auto flag = [&](const std::string& to,
                              const std::string& chain, int line) {
            if (!reported.insert(to).second)
                return;
            Finding f;
            f.file = sources[start].display;
            f.line = line;
            f.rule = "arch-forbidden-include";
            f.message = "subsystem `" + from +
                        "` must not depend on `" + to +
                        "`; include chain: " + chain;
            findings.push_back(std::move(f));
        };
        for (std::size_t qi = 0; qi < queue.size(); ++qi) {
            const std::size_t node = queue[qi];
            for (const Include& inc : graph[node]) {
                if (inc.target == Include::kNone) {
                    // Unresolved project include: judge by path.
                    const std::string to =
                        subsystemOfInclude(inc.quoted);
                    if (!to.empty() && !allowed(from, to)) {
                        auto [chain, line] = chainOf(node);
                        chain += " -> " + inc.quoted;
                        flag(to, chain,
                             node == start ? inc.line : line);
                    }
                    continue;
                }
                if (seen.insert(inc.target).second) {
                    parent[inc.target] = {node, &inc};
                    queue.push_back(inc.target);
                }
                const std::string to =
                    subsystemOf(sources[inc.target].display);
                if (!allowed(from, to)) {
                    // Anchor at this file's own include that starts
                    // the shortest chain.
                    auto [chain, line] = chainOf(inc.target);
                    flag(to, chain,
                         node == start ? inc.line : line);
                }
            }
        }
    }
}

void
reportCycles(const std::vector<SourceFile>& sources,
             const std::vector<std::vector<Include>>& graph,
             std::vector<Finding>& findings)
{
    // Iterative DFS with colors; a grey->grey edge closes a cycle.
    enum : char { kWhite, kGrey, kBlack };
    std::vector<char> color(sources.size(), kWhite);
    std::vector<std::size_t> stack;
    std::set<std::string> reported;

    struct Frame
    {
        std::size_t node;
        std::size_t edge = 0;
    };
    for (std::size_t root = 0; root < sources.size(); ++root) {
        if (color[root] != kWhite)
            continue;
        std::vector<Frame> frames = {{root}};
        color[root] = kGrey;
        stack.push_back(root);
        while (!frames.empty()) {
            Frame& frame = frames.back();
            if (frame.edge >= graph[frame.node].size()) {
                color[frame.node] = kBlack;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const Include& inc = graph[frame.node][frame.edge++];
            if (inc.target == Include::kNone)
                continue;
            if (color[inc.target] == kWhite) {
                color[inc.target] = kGrey;
                stack.push_back(inc.target);
                frames.push_back({inc.target});
                continue;
            }
            if (color[inc.target] != kGrey)
                continue;
            // Reconstruct the cycle from the grey stack.
            const auto begin = std::find(stack.begin(), stack.end(),
                                         inc.target);
            std::vector<std::size_t> cycle(begin, stack.end());
            std::vector<std::size_t> key = cycle;
            std::sort(key.begin(), key.end());
            std::string key_text;
            for (std::size_t k : key)
                key_text += std::to_string(k) + ",";
            if (!reported.insert(key_text).second)
                continue;
            std::string chain;
            for (std::size_t node : cycle)
                chain += sources[node].display + " -> ";
            chain += sources[inc.target].display;
            Finding f;
            f.file = sources[frame.node].display;
            f.line = inc.line;
            f.rule = "arch-include-cycle";
            f.message = "project includes form a cycle: " + chain;
            findings.push_back(std::move(f));
        }
    }
}

void
reportUnknown(const std::vector<SourceFile>& sources,
              std::vector<Finding>& findings)
{
    std::set<std::string> reported;
    for (const SourceFile& source : sources) {
        const std::string sub = subsystemOf(source.display);
        if (sub.empty() || subsystemDeps().count(sub) != 0)
            continue;
        if (!reported.insert(sub).second)
            continue;
        Finding f;
        f.file = source.display;
        f.line = 1;
        f.rule = "arch-unknown-subsystem";
        f.message = "directory names subsystem `" + sub +
                    "` which is not in the declared layering DAG; "
                    "add it to subsystemDeps() in tools/analyzer/"
                    "rules_arch.cpp and GUIDE.md section 10 "
                    "deliberately";
        findings.push_back(std::move(f));
    }
}

/**
 * CPU intrinsics or vector extensions outside the SIMD home. The
 * markers cover the x86 intrinsic header and prefixes, GCC/Clang
 * vector_size extensions, and runtime CPU dispatch - each one a
 * sign the file carries its own vector code path instead of calling
 * the linalg::simd API (whose scalar fallback and bit-identity
 * contract are tested in one place).
 */
void
scanSimdConfined(const SourceFile& file, const Options& options,
                 std::vector<Finding>& findings)
{
    if (pathMatchesAny(file.display, options.simd_allow))
        return;
    static const char* const kMarkers[] = {
        "immintrin.h", "_mm256_", "_mm512_", "__m256", "__m512",
        "_mm_set", "_mm_load", "_mm_store",
        "__builtin_cpu_supports", "vector_size(",
    };
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        for (const char* marker : kMarkers) {
            if (code.find(marker) == std::string::npos)
                continue;
            Finding f;
            f.file = file.display;
            f.line = static_cast<int>(li) + 1;
            f.rule = "arch-simd-confined";
            f.message =
                std::string("CPU intrinsic / vector-extension marker "
                            "`") +
                marker +
                "` outside src/linalg/; implement vector code behind "
                "the linalg::simd kernels so the runtime dispatch and "
                "scalar-exact-fallback contract stay in one place";
            findings.push_back(std::move(f));
            break; // one finding per line
        }
    }
}

} // namespace

void
runArchPack(const std::vector<SourceFile>& sources,
            const Options& options, std::vector<Finding>& findings)
{
    const std::vector<std::vector<Include>> graph =
        buildIncludeGraph(sources);
    reportForbidden(sources, graph, findings);
    reportCycles(sources, graph, findings);
    reportUnknown(sources, findings);
    for (const SourceFile& source : sources)
        scanSimdConfined(source, options, findings);
}

} // namespace satori_analyzer
