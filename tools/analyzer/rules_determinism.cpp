/**
 * @file
 * Determinism rule pack: SATORI's golden-trace guarantee (a (plan,
 * seed) pair replays byte-for-byte) dies the moment wall-clock time,
 * OS entropy, hash-iteration order, or pointer values leak into a
 * decision or a trace. These passes ban the leaks at commit time.
 *
 * Rules: det-wallclock, det-random-device, det-unordered-iter,
 * det-pointer-hash.
 */

#include "analyzer/analyzer.hpp"

#include <cctype>

namespace satori_analyzer {

namespace {

/** Wall-clock entry points banned outside the allowlisted harness. */
const char* const kClockCalls[] = {
    "time", "clock", "gettimeofday", "clock_gettime", "localtime",
    "gmtime",
};

/** Tokens that indicate a loop body feeds an output aggregate. */
const char* const kEmitTokens[] = {
    "trace", "log", "record", "emit", "print", "push_back", "append",
    "write",
};

bool
pathAllowlisted(const SourceFile& file, const Options& options)
{
    for (const std::string& allow : options.wallclock_allow)
        if (file.display.find(allow) != std::string::npos)
            return true;
    return false;
}

void
add(std::vector<Finding>& findings, const SourceFile& file, int line,
    const char* rule, std::string message)
{
    Finding f;
    f.file = file.display;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
}

/**
 * `name(` as a standalone call token at @p at in @p code. Qualified
 * calls (std::time) count: the left boundary only rejects longer
 * identifiers (timestamp, last_time).
 */
bool
isCallOf(const std::string& code, std::size_t at, const std::string& name)
{
    if (at > 0 && isIdentChar(code[at - 1]))
        return false;
    std::size_t i = at + name.size();
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])) != 0)
        ++i;
    return i < code.size() && code[i] == '(';
}

void
scanWallclock(const SourceFile& file, const Options& options,
              std::vector<Finding>& findings)
{
    if (pathAllowlisted(file, options))
        return;
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        if (code.find("::now") != std::string::npos &&
            code.find("_clock") != std::string::npos) {
            add(findings, file, lineno, "det-wallclock",
                "chrono clock read; use the simulator's virtual time "
                "so replays are reproducible");
            continue;
        }
        for (const char* call : kClockCalls) {
            const std::string name(call);
            std::size_t at = 0;
            bool hit = false;
            while ((at = code.find(name, at)) != std::string::npos) {
                if (isCallOf(code, at, name)) {
                    hit = true;
                    break;
                }
                at += name.size();
            }
            if (hit) {
                add(findings, file, lineno, "det-wallclock",
                    "wall-clock call `" + name +
                        "(`; only the allowlisted harness/CLI set may "
                        "read real time");
                break;
            }
        }
    }
}

void
scanRandomDevice(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        if (file.lines[li].code.find("random_device") !=
            std::string::npos)
            add(findings, file, static_cast<int>(li) + 1,
                "det-random-device",
                "std::random_device draws OS entropy; seed satori::Rng "
                "explicitly so the experiment replays");
    }
}

void
scanPointerHash(const SourceFile& file, std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        const std::size_t at = code.find("reinterpret_cast");
        if (at != std::string::npos) {
            const std::size_t open = code.find('<', at);
            const std::size_t close =
                open == std::string::npos
                    ? std::string::npos
                    : findMatching(code, open, '<', '>');
            if (close != std::string::npos) {
                const std::string target =
                    code.substr(open, close - open + 1);
                if (target.find("uintptr") != std::string::npos ||
                    target.find("intptr") != std::string::npos ||
                    target.find("size_t") != std::string::npos) {
                    add(findings, file, lineno, "det-pointer-hash",
                        "pointer-value cast " + target +
                            "; pointer bits vary run to run (ASLR), "
                            "key on a stable id instead");
                    continue;
                }
            }
        }
        if (code.find("hash<void") != std::string::npos ||
            code.find("hash<const void") != std::string::npos)
            add(findings, file, lineno, "det-pointer-hash",
                "hashing a raw pointer value; pointer bits vary run "
                "to run, key on a stable id instead");
    }
}

/**
 * Collect the loop body starting after the for's closing paren at
 * (line @p li, column @p col): a braced block up to the matching `}`
 * or a single statement up to `;`. Capped at 200 lines.
 */
std::string
collectLoopBody(const SourceFile& file, std::size_t li, std::size_t col)
{
    std::string body;
    int depth = 0;
    bool started = false;
    for (std::size_t l = li; l < file.lines.size() && l < li + 200;
         ++l) {
        const std::string& code = file.lines[l].code;
        for (std::size_t c = (l == li ? col : 0); c < code.size();
             ++c) {
            const char ch = code[c];
            if (!started) {
                if (std::isspace(static_cast<unsigned char>(ch)) != 0)
                    continue;
                started = true;
                if (ch != '{') {
                    // Single-statement body: scan to the first `;`.
                    const std::size_t semi = code.find(';', c);
                    if (semi != std::string::npos)
                        return code.substr(c, semi - c);
                    body += code.substr(c);
                    for (std::size_t m = l + 1;
                         m < file.lines.size() && m < l + 10; ++m) {
                        const std::size_t s =
                            file.lines[m].code.find(';');
                        if (s != std::string::npos) {
                            body += file.lines[m].code.substr(0, s);
                            return body;
                        }
                        body += file.lines[m].code;
                    }
                    return body;
                }
                depth = 1;
                continue;
            }
            if (ch == '{')
                ++depth;
            else if (ch == '}') {
                if (--depth == 0)
                    return body;
            } else {
                body.push_back(ch);
            }
        }
        if (started)
            body.push_back('\n');
    }
    return body;
}

void
scanUnorderedIteration(const SourceFile& file,
                       std::vector<Finding>& findings)
{
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        std::size_t at = 0;
        while ((at = code.find("for", at)) != std::string::npos) {
            if (!isCallOf(code, at, "for")) {
                at += 3;
                continue;
            }
            const std::size_t open = code.find('(', at);
            // The for-header may span lines; join a small window.
            std::string header = code.substr(open);
            std::size_t close = findMatching(header, 0, '(', ')');
            std::size_t extra = 0;
            while (close == std::string::npos && extra < 4 &&
                   li + 1 + extra < file.lines.size()) {
                header += file.lines[li + 1 + extra].code;
                ++extra;
                close = findMatching(header, 0, '(', ')');
            }
            if (close == std::string::npos)
                break;
            const std::string inner = header.substr(1, close - 1);

            bool over_unordered = false;
            // Range-for: a top-level `:` not part of `::`.
            std::size_t colon = std::string::npos;
            int depth = 0;
            for (std::size_t i = 0; i < inner.size(); ++i) {
                const char ch = inner[i];
                if (ch == '(' || ch == '<')
                    ++depth;
                else if (ch == ')' || ch == '>')
                    --depth;
                else if (ch == ':' && depth == 0 &&
                         (i + 1 >= inner.size() ||
                          inner[i + 1] != ':') &&
                         (i == 0 || inner[i - 1] != ':')) {
                    colon = i;
                    break;
                }
            }
            if (colon != std::string::npos) {
                const std::string range = inner.substr(colon + 1);
                if (range.find("unordered_") != std::string::npos)
                    over_unordered = true;
                for (const std::string& name : file.unordered_idents)
                    if (containsWord(range, name))
                        over_unordered = true;
            } else if (inner.find(".begin") != std::string::npos ||
                       inner.find(".cbegin") != std::string::npos) {
                for (const std::string& name : file.unordered_idents)
                    if (containsWord(inner, name))
                        over_unordered = true;
            }

            if (over_unordered) {
                // Map the body start (offset close+1 in the joined
                // header) back to a (line, column) in the file.
                std::size_t body_line = li;
                std::size_t body_col = open + close + 1;
                std::size_t offset = close + 1;
                std::size_t seg = code.size() - open;
                for (std::size_t e = 0; offset >= seg && e < extra;
                     ++e) {
                    offset -= seg;
                    body_line = li + 1 + e;
                    seg = file.lines[body_line].code.size();
                    body_col = offset;
                }
                const std::string body =
                    collectLoopBody(file, body_line, body_col);
                std::string emit_token;
                if (body.find("<<") != std::string::npos)
                    emit_token = "<<";
                for (const char* tok : kEmitTokens)
                    if (emit_token.empty() && containsWord(body, tok))
                        emit_token = tok;
                if (!emit_token.empty())
                    add(findings, file, lineno, "det-unordered-iter",
                        "loop over an unordered container feeds an "
                        "output aggregate (`" +
                            emit_token +
                            "`); hash order is not deterministic "
                            "across runs — sort keys first");
            }
            at += 3;
        }
    }
}

} // namespace

void
runDeterminismPack(const SourceFile& file, const Options& options,
                   std::vector<Finding>& findings)
{
    scanWallclock(file, options, findings);
    scanRandomDevice(file, findings);
    scanPointerHash(file, findings);
    scanUnorderedIteration(file, findings);
}

} // namespace satori_analyzer
