/**
 * @file
 * Header-hygiene rule pack: the legacy satori_lint checks folded into
 * the analyzer so one engine owns every source-level rule. Rule ids
 * keep their historical names: missing-guard, guard-mismatch,
 * guard-define-mismatch, using-namespace.
 */

#include "analyzer/analyzer.hpp"

#include <cctype>

namespace satori_analyzer {

namespace {

void
add(std::vector<Finding>& findings, const SourceFile& file, int line,
    const char* rule, std::string message)
{
    Finding f;
    f.file = file.display;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
}

/**
 * SATORI_COMMON_TYPES_HPP from "satori/common/types.hpp". Paths that
 * do not start with a satori component get the SATORI_ prefix added
 * (bench/bench_util.hpp -> SATORI_BENCH_BENCH_UTIL_HPP).
 */
std::string
expectedGuard(const std::string& relative_path)
{
    std::string guard;
    guard.reserve(relative_path.size());
    for (char c : relative_path) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0)
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    if (guard.rfind("SATORI", 0) != 0)
        guard = "SATORI_" + guard;
    return guard;
}

/** First whitespace-delimited token after @p prefix, or "". */
std::string
tokenAfter(const std::string& line, const std::string& prefix)
{
    const std::size_t at = line.find(prefix);
    if (at == std::string::npos)
        return "";
    std::size_t i = at + prefix.size();
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0)
        ++i;
    std::size_t end = i;
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end])) == 0)
        ++end;
    return line.substr(i, end - i);
}

} // namespace

void
runHeaderPack(const SourceFile& file, std::vector<Finding>& findings)
{
    if (!file.is_header)
        return;

    const std::string expected = expectedGuard(file.guard_rel);
    std::string ifndef_name;
    int ifndef_line = 0;
    std::string define_name;

    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li].code;
        const int lineno = static_cast<int>(li) + 1;
        if (ifndef_name.empty()) {
            const std::string name = tokenAfter(code, "#ifndef");
            if (!name.empty()) {
                ifndef_name = name;
                ifndef_line = lineno;
                continue;
            }
        } else if (define_name.empty()) {
            const std::string name = tokenAfter(code, "#define");
            if (!name.empty())
                define_name = name;
        }
        std::size_t at = code.find("using");
        const bool word_start =
            at != std::string::npos &&
            (at == 0 || !isIdentChar(code[at - 1]));
        if (word_start &&
            nextTokenAfter(code, at + 5) == "namespace")
            add(findings, file, lineno, "using-namespace",
                "`using namespace` directive at header scope");
    }

    if (ifndef_name.empty()) {
        add(findings, file, 1, "missing-guard",
            "no #ifndef include guard found");
        return;
    }
    if (!file.guard_rel.empty() && ifndef_name != expected)
        add(findings, file, ifndef_line, "guard-mismatch",
            "guard is " + ifndef_name + ", path wants " + expected);
    if (define_name != ifndef_name)
        add(findings, file, ifndef_line, "guard-define-mismatch",
            "#ifndef " + ifndef_name + " followed by #define " +
                (define_name.empty() ? std::string("<none>")
                                     : define_name));
}

} // namespace satori_analyzer
