/**
 * @file
 * Intra-procedural control-flow graphs over the stripped statement
 * stream of one indexed function body. The builder is a recursive
 * descent over the token text: if/else chains, while/for/do loops
 * with break/continue, switch with case fallthrough, try/catch as an
 * optional branch, and return/throw terminators. Statements keep
 * their source line so the flow rules can anchor findings; anything
 * the parser cannot shape (goto, statement-level macros hiding
 * control flow) degrades to a linear statement, which only makes the
 * flow analyses more conservative on that function.
 */

#include "analyzer/analyzer.hpp"

#include <cctype>

namespace satori_analyzer {

namespace {

/** Nodes per function cap: a runaway parse degrades, never hangs. */
constexpr std::size_t kMaxNodes = 4000;

struct LoopCtx
{
    std::vector<std::size_t>* break_sinks = nullptr;
    std::size_t continue_target = std::string::npos;
    std::size_t switch_cond = std::string::npos;
};

struct ParseResult
{
    std::size_t entry = std::string::npos; ///< First node, or npos.
    std::vector<std::size_t> exits;        ///< Dangling fallthroughs.
};

class Builder
{
  public:
    Builder(const std::string& body, int body_line)
        : s_(body), body_line_(body_line)
    {
    }

    Cfg build()
    {
        LoopCtx ctx;
        (void)parseSeq(0, s_.size(), ctx, false);
        return std::move(cfg_);
    }

  private:
    const std::string& s_;
    int body_line_;
    Cfg cfg_;

    int lineOf(std::size_t pos) const
    {
        int line = body_line_;
        for (std::size_t i = 0; i < pos && i < s_.size(); ++i)
            if (s_[i] == '\n')
                ++line;
        return line;
    }

    std::size_t skipWs(std::size_t pos, std::size_t end) const
    {
        while (pos < end &&
               std::isspace(static_cast<unsigned char>(s_[pos])) != 0)
            ++pos;
        return pos;
    }

    std::size_t newNode(const std::string& text, std::size_t at)
    {
        CfgNode node;
        node.text = text;
        node.line = lineOf(at);
        cfg_.nodes.push_back(std::move(node));
        return cfg_.nodes.size() - 1;
    }

    void link(std::size_t from, std::size_t to)
    {
        for (std::size_t succ : cfg_.nodes[from].succ)
            if (succ == to)
                return;
        cfg_.nodes[from].succ.push_back(to);
    }

    void linkAll(const std::vector<std::size_t>& from, std::size_t to)
    {
        for (std::size_t f : from)
            link(f, to);
    }

    /** Read a balanced group at the next non-space char; npos pair on
     *  mismatch. */
    std::pair<std::size_t, std::size_t>
    readGroup(std::size_t pos, std::size_t end, char open, char close)
    {
        pos = skipWs(pos, end);
        if (pos >= end || s_[pos] != open)
            return {std::string::npos, std::string::npos};
        const std::size_t match = findMatching(s_, pos, open, close);
        if (match == std::string::npos || match > end)
            return {std::string::npos, std::string::npos};
        return {pos, match};
    }

    /**
     * Read one plain statement starting at @p pos: through the `;` at
     * paren/brace depth 0 (lambda and init-list braces are swallowed
     * into the statement). Returns one past the terminator.
     */
    std::size_t statementEnd(std::size_t pos, std::size_t end) const
    {
        int paren = 0;
        int brace = 0;
        while (pos < end) {
            const char c = s_[pos];
            if (c == '(' || c == '[')
                ++paren;
            else if (c == ')' || c == ']')
                --paren;
            else if (c == '{')
                ++brace;
            else if (c == '}') {
                if (brace == 0)
                    return pos; // enclosing block closes: no `;`.
                --brace;
            } else if (c == ';' && paren == 0 && brace == 0) {
                return pos + 1;
            }
            ++pos;
        }
        return end;
    }

    /** Trimmed copy of s_[begin, end). */
    std::string slice(std::size_t begin, std::size_t end) const
    {
        while (begin < end &&
               std::isspace(static_cast<unsigned char>(s_[begin])) != 0)
            ++begin;
        while (end > begin &&
               std::isspace(static_cast<unsigned char>(s_[end - 1])) !=
                   0)
            --end;
        std::string out = s_.substr(begin, end - begin);
        for (char& c : out)
            if (c == '\n')
                c = ' ';
        return out;
    }

    /**
     * Parse a statement sequence in [pos, end). With @p single, stop
     * after the first construct (an if/loop branch without braces).
     * Returns the entry node and the dangling exits; @p next_pos
     * receives the resume position.
     */
    ParseResult parseSeq(std::size_t pos, std::size_t end, LoopCtx& ctx,
                         bool single,
                         std::size_t* next_pos = nullptr)
    {
        ParseResult result;
        std::vector<std::size_t> pending;
        bool case_label_seen = false;

        // Wire construct @p entry/@p exits into the running sequence.
        const auto attach = [&](std::size_t entry,
                                std::vector<std::size_t> exits) {
            if (entry == std::string::npos)
                return;
            if (result.entry == std::string::npos)
                result.entry = entry;
            linkAll(pending, entry);
            if (case_label_seen &&
                ctx.switch_cond != std::string::npos) {
                link(ctx.switch_cond, entry);
                case_label_seen = false;
            }
            pending = std::move(exits);
        };

        while (pos < end && cfg_.nodes.size() < kMaxNodes) {
            pos = skipWs(pos, end);
            if (pos >= end)
                break;
            const char c = s_[pos];
            if (c == '}' || c == ')') {
                ++pos;
                continue; // tolerate parser drift; never loop forever
            }
            if (c == ';') {
                ++pos;
                if (single)
                    break;
                continue;
            }
            if (c == '{') {
                const auto [open, close] =
                    readGroup(pos, end, '{', '}');
                if (open == std::string::npos)
                    break;
                const ParseResult block =
                    parseSeq(open + 1, close, ctx, false);
                if (block.entry != std::string::npos)
                    attach(block.entry, block.exits);
                pos = close + 1;
                if (single)
                    break;
                continue;
            }

            const std::string tok = nextTokenAfter(s_, pos);
            if (tok.empty()) {
                ++pos;
                continue;
            }
            const std::size_t tok_at = skipWs(pos, end);

            if (tok == "if") {
                pos = parseIf(tok_at, end, ctx, attach);
            } else if (tok == "while") {
                pos = parseWhile(tok_at, end, ctx, attach);
            } else if (tok == "for") {
                pos = parseFor(tok_at, end, ctx, attach);
            } else if (tok == "do") {
                pos = parseDo(tok_at, end, ctx, attach);
            } else if (tok == "switch") {
                pos = parseSwitch(tok_at, end, ctx, attach);
            } else if (tok == "try") {
                pos = parseTry(tok_at, end, ctx, attach);
            } else if (tok == "case" || tok == "default") {
                // Label: the next statement is a switch dispatch
                // target (and a fallthrough target from above).
                std::size_t colon = tok_at + tok.size();
                while (colon < end) {
                    if (s_[colon] == ':' &&
                        (colon + 1 >= end || s_[colon + 1] != ':') &&
                        (colon == 0 || s_[colon - 1] != ':'))
                        break;
                    ++colon;
                }
                case_label_seen = true;
                pos = colon < end ? colon + 1 : end;
                continue; // a label does not consume the construct
            } else if (tok == "return" || tok == "throw" ||
                       tok == "co_return") {
                const std::size_t stmt_end = statementEnd(tok_at, end);
                const std::size_t node =
                    newNode(slice(tok_at, stmt_end), tok_at);
                attach(node, {});
                pending.clear(); // terminator: nothing falls through
                pos = stmt_end;
            } else if (tok == "break") {
                const std::size_t stmt_end = statementEnd(tok_at, end);
                const std::size_t node =
                    newNode("break", tok_at);
                attach(node, {});
                pending.clear();
                if (ctx.break_sinks != nullptr)
                    ctx.break_sinks->push_back(node);
                pos = stmt_end;
            } else if (tok == "continue") {
                const std::size_t stmt_end = statementEnd(tok_at, end);
                const std::size_t node =
                    newNode("continue", tok_at);
                attach(node, {});
                pending.clear();
                if (ctx.continue_target != std::string::npos)
                    link(node, ctx.continue_target);
                pos = stmt_end;
            } else if (tok == "else") {
                // A stray else (its if produced no node); skip the
                // keyword and let the branch parse as a statement.
                pos = tok_at + tok.size();
                continue;
            } else {
                const std::size_t stmt_end = statementEnd(tok_at, end);
                if (stmt_end <= tok_at)
                    break;
                const std::size_t node =
                    newNode(slice(tok_at, stmt_end), tok_at);
                attach(node, {node});
                pos = stmt_end;
            }
            if (single)
                break;
        }

        result.exits = std::move(pending);
        if (next_pos != nullptr)
            *next_pos = pos;
        return result;
    }

    /** Parse a branch body: `{...}` or a single construct. */
    ParseResult parseBranch(std::size_t pos, std::size_t end,
                            LoopCtx& ctx, std::size_t* next_pos)
    {
        pos = skipWs(pos, end);
        if (pos < end && s_[pos] == '{') {
            const auto [open, close] = readGroup(pos, end, '{', '}');
            if (open == std::string::npos) {
                *next_pos = end;
                return {};
            }
            ParseResult r = parseSeq(open + 1, close, ctx, false);
            *next_pos = close + 1;
            return r;
        }
        return parseSeq(pos, end, ctx, true, next_pos);
    }

    template <typename Attach>
    std::size_t parseIf(std::size_t pos, std::size_t end, LoopCtx& ctx,
                        const Attach& attach)
    {
        std::size_t after = pos + 2; // past "if"
        after = skipWs(after, end);
        if (after < end && s_[after] == 'c') // `if constexpr`
            after += 9;
        const auto [open, close] = readGroup(after, end, '(', ')');
        if (open == std::string::npos)
            return statementEnd(pos, end);
        const std::size_t cond =
            newNode("if (" + slice(open + 1, close) + ")", pos);

        std::size_t next = close + 1;
        const ParseResult then_branch =
            parseBranch(close + 1, end, ctx, &next);
        std::vector<std::size_t> exits = then_branch.exits;
        if (then_branch.entry != std::string::npos)
            link(cond, then_branch.entry);

        const std::size_t else_at = skipWs(next, end);
        const std::string else_tok = nextTokenAfter(s_, else_at);
        if (else_at < end && else_tok == "else") {
            std::size_t else_next = else_at + 4;
            const ParseResult else_branch =
                parseBranch(else_at + 4, end, ctx, &else_next);
            if (else_branch.entry != std::string::npos) {
                link(cond, else_branch.entry);
                exits.insert(exits.end(), else_branch.exits.begin(),
                             else_branch.exits.end());
            } else {
                exits.push_back(cond);
            }
            next = else_next;
        } else {
            exits.push_back(cond); // false edge falls through
        }
        attach(cond, std::move(exits));
        return next;
    }

    template <typename Attach>
    std::size_t parseWhile(std::size_t pos, std::size_t end,
                           LoopCtx& ctx, const Attach& attach)
    {
        (void)ctx;
        const auto [open, close] = readGroup(pos + 5, end, '(', ')');
        if (open == std::string::npos)
            return statementEnd(pos, end);
        const std::size_t cond =
            newNode("while (" + slice(open + 1, close) + ")", pos);
        std::vector<std::size_t> breaks;
        LoopCtx inner;
        inner.break_sinks = &breaks;
        inner.continue_target = cond;
        inner.switch_cond = std::string::npos;
        std::size_t next = close + 1;
        const ParseResult body =
            parseBranch(close + 1, end, inner, &next);
        if (body.entry != std::string::npos) {
            link(cond, body.entry);
            linkAll(body.exits, cond);
        }
        std::vector<std::size_t> exits = {cond};
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        attach(cond, std::move(exits));
        return next;
    }

    template <typename Attach>
    std::size_t parseFor(std::size_t pos, std::size_t end, LoopCtx& ctx,
                         const Attach& attach)
    {
        (void)ctx;
        const auto [open, close] = readGroup(pos + 3, end, '(', ')');
        if (open == std::string::npos)
            return statementEnd(pos, end);
        const std::size_t head =
            newNode("for (" + slice(open + 1, close) + ")", pos);
        std::vector<std::size_t> breaks;
        LoopCtx inner;
        inner.break_sinks = &breaks;
        inner.continue_target = head;
        inner.switch_cond = std::string::npos;
        std::size_t next = close + 1;
        const ParseResult body =
            parseBranch(close + 1, end, inner, &next);
        if (body.entry != std::string::npos) {
            link(head, body.entry);
            linkAll(body.exits, head);
        }
        std::vector<std::size_t> exits = {head};
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        attach(head, std::move(exits));
        return next;
    }

    template <typename Attach>
    std::size_t parseDo(std::size_t pos, std::size_t end, LoopCtx& ctx,
                        const Attach& attach)
    {
        (void)ctx;
        // The condition node is created up front so `continue` inside
        // the body has a target; its text is filled once parsed.
        const std::size_t cond = newNode("do-while", pos);
        std::vector<std::size_t> breaks;
        LoopCtx inner;
        inner.break_sinks = &breaks;
        inner.continue_target = cond;
        inner.switch_cond = std::string::npos;
        std::size_t next = pos + 2;
        const ParseResult body =
            parseBranch(pos + 2, end, inner, &next);

        // Expect `while (cond);`.
        std::size_t after = skipWs(next, end);
        if (nextTokenAfter(s_, after) == "while") {
            const auto [open, close] =
                readGroup(after + 5, end, '(', ')');
            if (open != std::string::npos) {
                cfg_.nodes[cond].text =
                    "do-while (" + slice(open + 1, close) + ")";
                next = statementEnd(close + 1, end);
            }
        }
        if (body.entry != std::string::npos) {
            linkAll(body.exits, cond);
            link(cond, body.entry);
            std::vector<std::size_t> exits = {cond};
            exits.insert(exits.end(), breaks.begin(), breaks.end());
            attach(body.entry, std::move(exits));
        } else {
            attach(cond, {cond});
        }
        return next;
    }

    template <typename Attach>
    std::size_t parseSwitch(std::size_t pos, std::size_t end,
                            LoopCtx& ctx, const Attach& attach)
    {
        const auto [open, close] = readGroup(pos + 6, end, '(', ')');
        if (open == std::string::npos)
            return statementEnd(pos, end);
        const std::size_t cond =
            newNode("switch (" + slice(open + 1, close) + ")", pos);
        const auto [bopen, bclose] =
            readGroup(close + 1, end, '{', '}');
        if (bopen == std::string::npos) {
            attach(cond, {cond});
            return close + 1;
        }
        std::vector<std::size_t> breaks;
        LoopCtx inner;
        inner.break_sinks = &breaks;
        inner.continue_target = ctx.continue_target;
        inner.switch_cond = cond;
        const ParseResult body =
            parseSeq(bopen + 1, bclose, inner, false);
        std::vector<std::size_t> exits = {cond}; // no-default path
        exits.insert(exits.end(), body.exits.begin(),
                     body.exits.end());
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        attach(cond, std::move(exits));
        return bclose + 1;
    }

    template <typename Attach>
    std::size_t parseTry(std::size_t pos, std::size_t end, LoopCtx& ctx,
                         const Attach& attach)
    {
        std::size_t next = pos + 3;
        const ParseResult body = parseBranch(pos + 3, end, ctx, &next);
        if (body.entry == std::string::npos)
            return next;
        std::vector<std::size_t> exits = body.exits;
        // Each catch block is an optional branch out of the try body:
        // its entry is reachable, its exits rejoin the sequence.
        std::size_t after = skipWs(next, end);
        while (nextTokenAfter(s_, after) == "catch") {
            const auto [copen, cclose] =
                readGroup(after + 5, end, '(', ')');
            if (copen == std::string::npos)
                break;
            std::size_t handler_next = cclose + 1;
            const ParseResult handler =
                parseBranch(cclose + 1, end, ctx, &handler_next);
            if (handler.entry != std::string::npos) {
                link(body.entry, handler.entry);
                exits.insert(exits.end(), handler.exits.begin(),
                             handler.exits.end());
            }
            after = skipWs(handler_next, end);
        }
        attach(body.entry, std::move(exits));
        return after;
    }
};

} // namespace

Cfg
buildCfg(const FunctionDef& def)
{
    Builder builder(def.body, def.body_line);
    return builder.build();
}

} // namespace satori_analyzer
