/**
 * @file
 * The flow pack: CFG-based intra-procedural dataflow rules.
 *
 *   flow-use-after-move      - a local or parameter read on some path
 *                              after std::move(x) consumed it, with no
 *                              reassignment in between. The moved-set
 *                              is propagated to a fixpoint over the
 *                              CFG, so loop back-edges (move in the
 *                              body, use at the top) are caught.
 *   flow-discarded-nodiscard - an expression statement discarding the
 *                              result of a function declared
 *                              [[nodiscard]] in the scanned set. The
 *                              callee is matched through receiver or
 *                              owner resolution so a same-named
 *                              discardable function elsewhere does
 *                              not misfire.
 *   flow-dead-after-fatal    - a statement only reachable by falling
 *                              through SATORI_FATAL / SATORI_PANIC /
 *                              abort / exit, which never return.
 *
 * All three walk the functions indexed from one file, so findings
 * anchor to real lines of that file.
 */

#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <cctype>

namespace satori_analyzer {

namespace {

/** First position of whole-word @p word in @p s, or npos. */
std::size_t
findWord(const std::string& s, const std::string& word,
         std::size_t from = 0)
{
    std::size_t at = from;
    while ((at = s.find(word, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(s[at - 1]);
        const std::size_t end = at + word.size();
        const bool right_ok = end >= s.size() || !isIdentChar(s[end]);
        if (left_ok && right_ok)
            return at;
        at = end;
    }
    return std::string::npos;
}

/** Like findWord, but a member access `x.var` / `x->var` does not
 *  count: that is a use of `x`, not of the variable `var`. */
std::size_t
findVarUse(const std::string& s, const std::string& var,
           std::size_t from = 0)
{
    std::size_t at = from;
    while ((at = findWord(s, var, at)) != std::string::npos) {
        const bool member =
            (at >= 1 && s[at - 1] == '.') ||
            (at >= 2 && s[at - 2] == '-' && s[at - 1] == '>');
        if (!member)
            return at;
        at += var.size();
    }
    return std::string::npos;
}

/** @p stmt contains `std::move(var)` (or `move(var)`) consuming the
 *  whole variable. */
bool
movesVar(const std::string& stmt, const std::string& var)
{
    std::size_t at = 0;
    while ((at = findWord(stmt, "move", at)) != std::string::npos) {
        std::size_t pos = at + 4;
        at = pos;
        while (pos < stmt.size() &&
               std::isspace(static_cast<unsigned char>(stmt[pos])) != 0)
            ++pos;
        if (pos >= stmt.size() || stmt[pos] != '(')
            continue;
        const std::size_t close = findMatching(stmt, pos, '(', ')');
        if (close == std::string::npos)
            continue;
        std::string arg = stmt.substr(pos + 1, close - pos - 1);
        std::size_t b = arg.find_first_not_of(" \t\n");
        std::size_t e = arg.find_last_not_of(" \t\n");
        if (b == std::string::npos)
            continue;
        if (arg.substr(b, e - b + 1) == var)
            return true;
    }
    return false;
}

/**
 * @p stmt gives @p var a fresh value: assignment to it, a clearing /
 * resetting member call, std::swap, or its (re)declaration. A killed
 * variable may be used again.
 */
bool
reassignsVar(const std::string& stmt, const std::string& var)
{
    std::size_t at = 0;
    while ((at = findVarUse(stmt, var, at)) != std::string::npos) {
        std::size_t pos = at + var.size();
        at = pos;
        while (pos < stmt.size() &&
               std::isspace(static_cast<unsigned char>(stmt[pos])) != 0)
            ++pos;
        if (pos < stmt.size() && stmt[pos] == '=' &&
            (pos + 1 >= stmt.size() || stmt[pos + 1] != '='))
            return true;
        // Members that re-establish a usable state.
        if (pos < stmt.size() && stmt[pos] == '.') {
            const std::string member = nextTokenAfter(stmt, pos + 1);
            if (member == "clear" || member == "reset" ||
                member == "assign" || member == "resize" ||
                member == "emplace")
                return true;
        }
    }
    // std::swap(var, other) refills the moved-from side.
    const std::size_t swap_at = findWord(stmt, "swap");
    if (swap_at != std::string::npos &&
        findVarUse(stmt, var) != std::string::npos)
        return true;
    return false;
}

/** @p stmt declares @p var (shadow/initialization heuristics). */
bool
declaresVar(const std::string& stmt, const std::string& var)
{
    const std::size_t at = findWord(stmt, var);
    if (at == std::string::npos || at == 0)
        return false;
    // A declaration has a type token directly before the name.
    const std::string prev = prevTokenBefore(stmt, at);
    if (prev.empty())
        return false;
    if (prev == "&" || prev == "*" || prev == ">")
        return true;
    if (!isIdentChar(prev.back()))
        return false;
    static const std::set<std::string> non_types = {
        "return", "delete", "throw", "in", "out",
    };
    return non_types.count(prev) == 0 && prev != var;
}

void
runUseAfterMove(const FunctionDef& def, const Cfg& cfg,
                std::vector<Finding>& findings)
{
    // Candidate variables: parameters and locals with simple names.
    std::set<std::string> vars;
    for (const auto& [name, type] : def.var_types)
        if (!name.empty() && name != "this")
            vars.insert(name);
    for (const std::string& p : def.param_names)
        if (!p.empty())
            vars.insert(p);
    if (vars.empty() || cfg.nodes.empty())
        return;

    for (const std::string& var : vars) {
        if (!movesVar(def.body, var))
            continue;
        // Skip shadowed names: two declarations make the flat
        // name-keyed analysis lie.
        std::size_t decls = 0;
        for (const CfgNode& node : cfg.nodes)
            if (declaresVar(node.text, var))
                ++decls;
        if (decls > 1)
            continue;

        const std::size_t n = cfg.nodes.size();
        // moved_in[i]: the move reaches node i's entry on some path.
        std::vector<char> moved_in(n, 0);
        std::vector<char> moved_out(n, 0);
        int move_line = 0;
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                const CfgNode& node = cfg.nodes[i];
                char in = moved_in[i];
                char out = in;
                // A declaration re-creates the object each loop
                // iteration, so it kills like a reassignment.
                if (reassignsVar(node.text, var) ||
                    declaresVar(node.text, var))
                    out = 0;
                if (movesVar(node.text, var)) {
                    out = 1;
                    if (move_line == 0)
                        move_line = node.line;
                }
                if (out != moved_out[i]) {
                    moved_out[i] = out;
                    changed = true;
                }
                for (std::size_t s : node.succ) {
                    if (out != 0 && moved_in[s] == 0) {
                        moved_in[s] = 1;
                        changed = true;
                    }
                }
            }
        }

        for (std::size_t i = 0; i < n; ++i) {
            const CfgNode& node = cfg.nodes[i];
            if (moved_in[i] == 0)
                continue;
            if (findVarUse(node.text, var) == std::string::npos)
                continue;
            // A kill statement may touch the moved-from value
            // (clear() after move is the sanctioned reuse idiom).
            if (reassignsVar(node.text, var) ||
                declaresVar(node.text, var))
                continue;
            // The statement performing a (re)move is reported only
            // when the value already arrived moved.
            Finding f;
            f.file = def.display;
            f.line = node.line;
            f.rule = "flow-use-after-move";
            f.message = "`" + var + "` is used here after std::move" +
                        (move_line != 0 ? " (moved at line " +
                                              std::to_string(move_line) +
                                              ")"
                                        : "") +
                        " in " + def.qualified +
                        "; reassign it first or stop moving it";
            findings.push_back(std::move(f));
            break; // one report per variable per function
        }
    }
}

/** Calls that never return: a following statement is unreachable. */
bool
isFatalStatement(const std::string& text)
{
    static const char* const kFatal[] = {
        "SATORI_FATAL", "SATORI_PANIC", "throwFatal", "throwPanic",
        "abort",        "exit",         "_Exit",      "terminate",
    };
    for (const char* name : kFatal) {
        const std::size_t at = findWord(text, name);
        if (at == std::string::npos)
            continue;
        // The call must be the whole statement (a fatal inside a
        // condition or `return exitCode()` does not end control
        // flow here).
        std::size_t begin = at;
        while (begin > 0 && (isIdentChar(text[begin - 1]) ||
                             text[begin - 1] == ':'))
            --begin;
        if (begin == 0)
            return true;
    }
    return false;
}

void
runDeadAfterFatal(const FunctionDef& def, const Cfg& cfg,
                  std::vector<Finding>& findings)
{
    const std::size_t n = cfg.nodes.size();
    if (n == 0)
        return;
    std::vector<char> fatal(n, 0);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (isFatalStatement(cfg.nodes[i].text)) {
            fatal[i] = 1;
            any = true;
        }
    }
    if (!any)
        return;
    // Reachability from entry with fatal nodes as sinks.
    std::vector<char> reach(n, 0);
    std::vector<std::size_t> stack = {0};
    reach[0] = 1;
    while (!stack.empty()) {
        const std::size_t i = stack.back();
        stack.pop_back();
        if (fatal[i] != 0)
            continue;
        for (std::size_t s : cfg.nodes[i].succ) {
            if (reach[s] == 0) {
                reach[s] = 1;
                stack.push_back(s);
            }
        }
    }
    // Report each statement a fatal node would fall into that no live
    // path reaches.
    std::set<std::size_t> reported;
    for (std::size_t i = 0; i < n; ++i) {
        if (fatal[i] == 0 || reach[i] == 0)
            continue;
        for (std::size_t s : cfg.nodes[i].succ) {
            if (reach[s] != 0 || !reported.insert(s).second)
                continue;
            Finding f;
            f.file = def.display;
            f.line = cfg.nodes[s].line;
            f.rule = "flow-dead-after-fatal";
            f.message =
                "statement is unreachable: the preceding `" +
                cfg.nodes[i].text.substr(
                    0, cfg.nodes[i].text.find('(')) +
                "` call never returns (in " + def.qualified + ")";
            findings.push_back(std::move(f));
        }
    }
}

/**
 * Resolve whether a discarded call statement hits a [[nodiscard]]
 * declaration: by receiver type, by the caller's own class, or by a
 * free-function match.
 */
bool
callIsNodiscard(const SymbolIndex& index, const FunctionDef& caller,
                const std::string& name, const std::string& receiver,
                const std::string& qualifier)
{
    const auto has = [&index](const std::string& owner,
                              const std::string& fn) {
        return index.nodiscard_qualified.count(owner + "::" + fn) != 0;
    };
    if (!qualifier.empty())
        return has(qualifier, name);
    if (!receiver.empty() && receiver != "this") {
        const auto local = caller.var_types.find(receiver);
        std::string type;
        if (local != caller.var_types.end()) {
            type = local->second;
        } else if (!caller.owner.empty()) {
            const auto cls = index.class_fields.find(caller.owner);
            if (cls != index.class_fields.end()) {
                const auto field = cls->second.find(receiver);
                if (field != cls->second.end())
                    type = field->second;
            }
        }
        return !type.empty() && has(type, name);
    }
    if (!caller.owner.empty() && has(caller.owner, name))
        return true;
    return has("", name);
}

void
runDiscardedNodiscard(const FunctionDef& def, const Cfg& cfg,
                      const SymbolIndex& index,
                      std::vector<Finding>& findings)
{
    if (index.nodiscard_qualified.empty())
        return;
    for (const CfgNode& node : cfg.nodes) {
        const std::string& text = node.text;
        if (text.size() < 4 || text.back() != ';')
            continue;
        // An expression statement discarding a value is
        // `chain(args);` with the call covering the whole statement.
        if (!isIdentChar(text[0]) && text[0] != '~')
            continue;
        std::size_t pos = 0;
        while (pos < text.size() &&
               (isIdentChar(text[pos]) || text[pos] == ':' ||
                text[pos] == '.' ||
                (text[pos] == '-' && pos + 1 < text.size() &&
                 text[pos + 1] == '>') ||
                (text[pos] == '>' && pos > 0 && text[pos - 1] == '-')))
            ++pos;
        if (pos >= text.size() || text[pos] != '(')
            continue;
        const std::size_t close = findMatching(text, pos, '(', ')');
        if (close == std::string::npos || close + 1 != text.size() - 1)
            continue;
        const std::string chain = text.substr(0, pos);
        // Split receiver / qualifier / name.
        std::string name = chain;
        std::string receiver;
        std::string qualifier;
        const std::size_t dot = chain.rfind('.');
        const std::size_t arrow = chain.rfind("->");
        if (dot != std::string::npos ||
            arrow != std::string::npos) {
            const bool use_arrow =
                arrow != std::string::npos &&
                (dot == std::string::npos || arrow > dot);
            const std::size_t cut = use_arrow ? arrow : dot;
            receiver = chain.substr(0, cut);
            name = chain.substr(cut + (use_arrow ? 2 : 1));
            // Only simple receivers resolve; a().b() chain does not.
            if (!receiver.empty() &&
                receiver.find_first_not_of(
                    "abcdefghijklmnopqrstuvwxyz"
                    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") !=
                    std::string::npos)
                continue;
        } else {
            const std::size_t scope = chain.rfind("::");
            if (scope != std::string::npos) {
                qualifier = chain.substr(0, scope);
                const std::size_t inner = qualifier.rfind("::");
                if (inner != std::string::npos)
                    qualifier = qualifier.substr(inner + 2);
                name = chain.substr(scope + 2);
            }
        }
        if (name.empty() || name == def.name)
            continue;
        if (!callIsNodiscard(index, def, name, receiver, qualifier))
            continue;
        Finding f;
        f.file = def.display;
        f.line = node.line;
        f.rule = "flow-discarded-nodiscard";
        f.message = "result of [[nodiscard]] call `" + chain +
                    "(...)` is discarded (in " + def.qualified +
                    "); use the value or cast to void with a reason";
        findings.push_back(std::move(f));
    }
}

} // namespace

void
runFlowPack(const SourceFile& file, const SymbolIndex& index,
            std::vector<Finding>& findings)
{
    for (const FunctionDef& def : index.functions) {
        if (def.display != file.display)
            continue;
        const Cfg cfg = buildCfg(def);
        runUseAfterMove(def, cfg, findings);
        runDeadAfterFatal(def, cfg, findings);
        runDiscardedNodiscard(def, cfg, index, findings);
    }
}

} // namespace satori_analyzer
