/**
 * @file
 * satori_sim: the command-line driver for the SATORI co-location
 * simulator. Compose a workload mix, pick a partitioning policy,
 * run it on the (paper-shaped or custom) simulated server, and get
 * aggregate metrics - optionally with a per-interval trace for
 * offline analysis.
 *
 * Examples:
 *   satori_sim --mix canneal,streamcluster,vips --policy SATORI
 *   satori_sim --mix minife,swfft --policy PARTIES --duration 60
 *   satori_sim --suite parsec --jobs 5 --mix-index 20 \
 *              --policy SATORI --trace run.jsonl --trace-format jsonl
 *   satori_sim --list-workloads
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "satori/satori.hpp"
#include "satori/obs/http_exporter.hpp"
#include "satori/persist/checkpoint.hpp"
#include "satori/persist/io.hpp"

using namespace satori;

namespace {

struct CliArgs
{
    std::vector<std::string> mix_names;
    std::string suite;
    std::size_t jobs = 0;
    int mix_index = -1;
    std::string policy = "SATORI";
    double duration = 30.0;
    std::uint64_t seed = 42;
    double noise = 0.04;
    int cores = 10;
    int ways = 11;
    int bw = 10;
    int power = 0; ///< 0 = no power-cap resource.
    std::string workload_file;
    std::string trace_path;
    std::string trace_format = "csv";
    std::string metrics_out;
    std::string metrics_format = "prom";
    std::string trace_out;
    std::string audit_out;
    int serve_metrics = -1; ///< -1 = off; 0 = ephemeral port.
    int pace_ms = 0;        ///< Wall-clock ms slept per interval.
    std::size_t history_capacity = 4096;
    double history_age = 0.0;    ///< Seconds; 0 = unlimited.
    std::size_t history_bytes = 0; ///< 0 = unlimited.
    std::string history_out;
    std::string slo_spec_file;
    bool slo_fatal = false;
    std::size_t audit_capacity = 0; ///< 0 = keep the default.
    std::string fault_plan_file;
    std::string fault_preset;
    std::uint64_t fault_seed = 0xFA17;
    std::string checkpoint_dir;
    std::size_t checkpoint_every = 50;
    bool resume = false;
    std::size_t kill_at = persist::CheckpointOptions::kNoKill;
    bool kill_torn = false;
    bool vanilla = false;
    bool compare_oracle = false;
    bool list_workloads = false;
    bool help = false;
};

void
printUsage()
{
    std::printf(
        "satori_sim - SATORI co-location simulator\n\n"
        "workload selection (choose one):\n"
        "  --mix a,b,c           comma-separated workload names\n"
        "  --suite S --jobs K [--mix-index I]\n"
        "                        the I-th K-job mix of suite S\n"
        "                        (parsec | cloudsuite | ecp; default I=0)\n"
        "  --workload-file FILE  also load custom workload definitions\n"
        "  --list-workloads      print every available workload and exit\n\n"
        "policy and run control:\n"
        "  --policy P            Equal | Random | dCAT | CoPart | PARTIES |\n"
        "                        CLITE | SATORI | SATORI-static |\n"
        "                        Throughput-SATORI | Fairness-SATORI |\n"
        "                        Balanced-Oracle | Throughput-Oracle |\n"
        "                        Fairness-Oracle   (default SATORI)\n"
        "  --duration SECONDS    simulated time (default 30)\n"
        "  --seed N              RNG seed (default 42)\n"
        "  --noise SIGMA         measurement-noise sigma (default 0.04)\n"
        "  --compare-oracle      also run the Balanced Oracle and report %%\n\n"
        "fault injection (deterministic, seeded):\n"
        "  --fault-plan FILE     load a fault script (see GUIDE.md)\n"
        "  --fault-preset P      built-in plan: escalating\n"
        "  --fault-seed N        injector RNG seed (default 0xFA17)\n"
        "  --vanilla             disable the SATORI resilience layer\n"
        "                        (telemetry guard, retry, degraded mode)\n\n"
        "platform (default: the paper's 10 cores / 11 ways / 10 MBA):\n"
        "  --cores N --ways N --bw N [--power N]\n\n"
        "output:\n"
        "  --trace FILE          write a per-interval trace\n"
        "  --trace-format F      csv | jsonl (default csv)\n\n"
        "durability (GUIDE.md sec. 14):\n"
        "  --checkpoint-dir DIR  persist controller state: an interval\n"
        "                        WAL plus periodic snapshots in DIR\n"
        "  --checkpoint-every N  intervals between snapshots "
        "(default 50)\n"
        "  --resume              resume a killed run from DIR; the\n"
        "                        finished trace is byte-identical to an\n"
        "                        uninterrupted run's\n"
        "  --kill-at N           crash-test hook: die with exit 137\n"
        "                        right after interval N's WAL append\n"
        "  --kill-torn           with --kill-at: die mid-append,\n"
        "                        leaving a torn WAL tail\n\n"
        "observability (GUIDE.md sec. 11; needs SATORI_OBS=ON builds):\n"
        "  --metrics-out FILE    write the end-of-run metrics snapshot\n"
        "  --metrics-format F    prom | jsonl (default prom)\n"
        "  --trace-out FILE      write Chrome trace_event JSON spans\n"
        "                        (open in chrome://tracing or Perfetto)\n"
        "  --audit-out FILE      write per-decision audit records "
        "(JSONL)\n"
        "  --audit-capacity N    bound the in-memory audit ring "
        "(default 65536)\n\n"
        "live telemetry plane (GUIDE.md sec. 15):\n"
        "  --serve-metrics PORT  embedded HTTP exporter on loopback\n"
        "                        (0 = ephemeral; the bound port is\n"
        "                        printed before the run starts)\n"
        "  --history-capacity N  retained history snapshots "
        "(default 4096)\n"
        "  --history-age S       drop history older than S seconds\n"
        "  --history-bytes B     approximate history byte budget\n"
        "  --history-out FILE    dump the retained history as JSON\n"
        "  --slo-spec FILE       SLO watchdog rules, one per line:\n"
        "                        <metric> <op> <threshold> for <k>\n"
        "  --slo-fatal           exit nonzero on any SLO breach\n"
        "  --pace MS             sleep MS wall-clock ms per interval\n"
        "                        (lets scrapers observe a live run)\n");
}

std::optional<CliArgs>
parse(int argc, char** argv)
{
    CliArgs args;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const char* v = nullptr;
        if (flag == "--help" || flag == "-h") {
            args.help = true;
        } else if (flag == "--list-workloads") {
            args.list_workloads = true;
        } else if (flag == "--compare-oracle") {
            args.compare_oracle = true;
        } else if (flag == "--mix") {
            if (!(v = need_value(i)))
                return std::nullopt;
            std::stringstream ss(v);
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    args.mix_names.push_back(name);
        } else if (flag == "--suite") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.suite = v;
        } else if (flag == "--jobs") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.jobs = static_cast<std::size_t>(std::atoi(v));
        } else if (flag == "--mix-index") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.mix_index = std::atoi(v);
        } else if (flag == "--policy") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.policy = v;
        } else if (flag == "--duration") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.duration = std::atof(v);
        } else if (flag == "--seed") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (flag == "--noise") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.noise = std::atof(v);
        } else if (flag == "--cores") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.cores = std::atoi(v);
        } else if (flag == "--ways") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.ways = std::atoi(v);
        } else if (flag == "--bw") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.bw = std::atoi(v);
        } else if (flag == "--power") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.power = std::atoi(v);
        } else if (flag == "--fault-plan") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.fault_plan_file = v;
        } else if (flag == "--fault-preset") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.fault_preset = v;
        } else if (flag == "--fault-seed") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.fault_seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (flag == "--checkpoint-dir") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.checkpoint_dir = v;
        } else if (flag == "--checkpoint-every") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.checkpoint_every =
                static_cast<std::size_t>(std::atoll(v));
        } else if (flag == "--resume") {
            args.resume = true;
        } else if (flag == "--kill-at") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.kill_at = static_cast<std::size_t>(std::atoll(v));
        } else if (flag == "--kill-torn") {
            args.kill_torn = true;
        } else if (flag == "--vanilla") {
            args.vanilla = true;
        } else if (flag == "--workload-file") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.workload_file = v;
        } else if (flag == "--trace") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.trace_path = v;
        } else if (flag == "--trace-format") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.trace_format = v;
        } else if (flag == "--metrics-out") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.metrics_out = v;
        } else if (flag == "--metrics-format") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.metrics_format = v;
        } else if (flag == "--trace-out") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.trace_out = v;
        } else if (flag == "--audit-out") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.audit_out = v;
        } else if (flag == "--audit-capacity") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.audit_capacity = static_cast<std::size_t>(std::atoll(v));
        } else if (flag == "--serve-metrics") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.serve_metrics = std::atoi(v);
        } else if (flag == "--pace") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.pace_ms = std::atoi(v);
        } else if (flag == "--history-capacity") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.history_capacity =
                static_cast<std::size_t>(std::atoll(v));
        } else if (flag == "--history-age") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.history_age = std::atof(v);
        } else if (flag == "--history-bytes") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.history_bytes = static_cast<std::size_t>(std::atoll(v));
        } else if (flag == "--history-out") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.history_out = v;
        } else if (flag == "--slo-spec") {
            if (!(v = need_value(i)))
                return std::nullopt;
            args.slo_spec_file = v;
        } else if (flag == "--slo-fatal") {
            args.slo_fatal = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            return std::nullopt;
        }
    }
    return args;
}

void
listWorkloads()
{
    TablePrinter table({"name", "suite", "description"});
    for (const auto* suite : {"parsec", "cloudsuite", "ecp"})
        for (const auto& w : workloads::suiteByName(suite))
            table.addRow({w.name, w.suite, w.description});
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    const auto parsed = parse(argc, argv);
    if (!parsed) {
        printUsage();
        return 2;
    }
    const CliArgs& args = *parsed;
    if (args.help) {
        printUsage();
        return 0;
    }
    if (args.list_workloads) {
        listWorkloads();
        return 0;
    }
    if (args.checkpoint_dir.empty() &&
        (args.resume ||
         args.kill_at != persist::CheckpointOptions::kNoKill ||
         args.kill_torn)) {
        std::fprintf(stderr, "--resume/--kill-at/--kill-torn require "
                             "--checkpoint-dir\n");
        return 2;
    }
    if (args.kill_torn &&
        args.kill_at == persist::CheckpointOptions::kNoKill) {
        std::fprintf(stderr, "--kill-torn requires --kill-at\n");
        return 2;
    }
    if (args.slo_fatal && args.slo_spec_file.empty()) {
        std::fprintf(stderr, "--slo-fatal requires --slo-spec\n");
        return 2;
    }
    if (args.serve_metrics > 65535) {
        std::fprintf(stderr, "--serve-metrics: port out of range\n");
        return 2;
    }
    if (!args.checkpoint_dir.empty() && args.compare_oracle) {
        // The oracle run would re-enter the same checkpoint directory
        // with a different policy's decision stream.
        std::fprintf(stderr,
                     "--compare-oracle cannot be combined with "
                     "--checkpoint-dir\n");
        return 2;
    }

    try {
        // Fail on unusable output paths before the experiment runs,
        // not 30 simulated seconds into it.
        if (!args.trace_path.empty())
            persist::validateOutputFile("--trace", args.trace_path);
        if (!args.metrics_out.empty())
            persist::validateOutputFile("--metrics-out",
                                        args.metrics_out);
        if (!args.trace_out.empty())
            persist::validateOutputFile("--trace-out", args.trace_out);
        if (!args.audit_out.empty())
            persist::validateOutputFile("--audit-out", args.audit_out);
        if (!args.history_out.empty())
            persist::validateOutputFile("--history-out",
                                        args.history_out);
        if (!args.checkpoint_dir.empty())
            persist::validateOutputDir("--checkpoint-dir",
                                       args.checkpoint_dir);

        // --- Resolve the mix ---------------------------------------
        std::vector<workloads::WorkloadProfile> custom;
        if (!args.workload_file.empty())
            custom = workloads::loadWorkloadFile(args.workload_file);
        workloads::JobMix mix;
        if (!args.mix_names.empty()) {
            // Custom workloads shadow built-ins of the same name.
            for (const auto& name : args.mix_names) {
                bool found = false;
                for (const auto& w : custom) {
                    if (w.name == name) {
                        if (!mix.label.empty())
                            mix.label += "+";
                        mix.label += name;
                        mix.jobs.push_back(w);
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    const auto w = workloads::workloadByName(name);
                    if (!mix.label.empty())
                        mix.label += "+";
                    mix.label += name;
                    mix.jobs.push_back(w);
                }
            }
        } else if (!args.suite.empty() && args.jobs > 0) {
            const auto mixes = workloads::allMixes(
                workloads::suiteByName(args.suite), args.jobs);
            const auto idx = static_cast<std::size_t>(
                args.mix_index < 0 ? 0 : args.mix_index);
            if (idx >= mixes.size()) {
                std::fprintf(stderr,
                             "mix index %zu out of range (%zu mixes)\n",
                             idx, mixes.size());
                return 2;
            }
            mix = mixes[idx];
        } else {
            std::fprintf(stderr, "no workloads selected\n\n");
            printUsage();
            return 2;
        }

        // --- Build the platform -------------------------------------
        PlatformSpec platform;
        platform.addResource(ResourceKind::Cores, args.cores);
        platform.addResource(ResourceKind::LlcWays, args.ways);
        platform.addResource(ResourceKind::MemBandwidth, args.bw);
        if (args.power > 0)
            platform.addResource(ResourceKind::PowerCap, args.power);

        sim::SimulatedServer server = harness::makeServer(
            platform, mix, args.seed, args.noise);
        std::string policy_name = args.policy;
        if (args.vanilla && policy_name == "SATORI")
            policy_name = "SATORI-vanilla";
        auto policy = harness::makePolicy(policy_name, server);

        harness::ExperimentOptions opt;
        opt.duration = args.duration;

        std::optional<faults::FaultInjector> injector;
        if (!args.fault_plan_file.empty() || !args.fault_preset.empty()) {
            faults::FaultPlan plan;
            if (!args.fault_plan_file.empty()) {
                plan = faults::FaultPlan::loadFile(args.fault_plan_file);
            } else if (args.fault_preset == "escalating") {
                const auto horizon = static_cast<std::size_t>(
                    args.duration / opt.dt);
                plan = faults::FaultPlan::escalating(mix.jobs.size(),
                                                     horizon);
            } else {
                std::fprintf(stderr, "unknown fault preset: %s\n",
                             args.fault_preset.c_str());
                return 2;
            }
            injector.emplace(plan, args.fault_seed);
            opt.faults = &*injector;
        }

        // --- Observability (spans / metrics / decision audit / live
        // telemetry plane) --------------------------------------------
        const bool live_wanted = args.serve_metrics >= 0 ||
                                 !args.history_out.empty() ||
                                 !args.slo_spec_file.empty();
        const bool obs_wanted = !args.metrics_out.empty() ||
                                !args.trace_out.empty() ||
                                !args.audit_out.empty() || live_wanted;
        if (obs_wanted) {
#if !(defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED)
            std::fprintf(stderr,
                         "warning: built with SATORI_OBS=OFF - "
                         "observability outputs will be empty\n");
#endif
            obs::Observability& o = obs::observability();
            if (!args.trace_out.empty())
                o.tracer().setEnabled(true);
            if (!args.metrics_out.empty())
                o.setMetricsEnabled(true);
            if (!args.audit_out.empty())
                o.audit().setEnabled(true);
            if (args.audit_capacity > 0)
                o.audit().setCapacity(args.audit_capacity);
            if (live_wanted) {
                // The live plane wants real counters in its history
                // rows and decision facts for /healthz, so metrics
                // and the per-interval hook both come on.
                o.setMetricsEnabled(true);
                o.setLiveEnabled(true);
                obs::StatsHistoryOptions hopt;
                hopt.capacity = args.history_capacity;
                hopt.max_age_seconds = args.history_age;
                hopt.max_bytes = args.history_bytes;
                o.history().configure(hopt);
                o.history().setEnabled(true);
                if (!args.slo_spec_file.empty()) {
                    o.watchdog().configure(
                        obs::SloSpec::loadFile(args.slo_spec_file));
                    o.watchdog().setFatalOnBreach(args.slo_fatal);
                }
                // Scrapers expect /audit/tail to have content.
                if (args.serve_metrics >= 0)
                    o.audit().setEnabled(true);
            }
        }

        // --- Embedded HTTP exporter ----------------------------------
        std::optional<obs::HttpExporter> exporter;
        if (args.serve_metrics >= 0) {
            exporter.emplace(obs::observability());
            obs::HttpExporterOptions eopt;
            eopt.port = static_cast<std::uint16_t>(args.serve_metrics);
            exporter->start(eopt);
            // Scripts parse this line to find an ephemeral port; it
            // must land before the run starts.
            std::printf("serving metrics on http://127.0.0.1:%u\n",
                        static_cast<unsigned>(exporter->port()));
            std::fflush(stdout);
        }

        // --- Pacing (wall-clock; lets live scrapers watch the run) ---
        if (args.pace_ms > 0)
            opt.on_interval = [pace = args.pace_ms](
                                  const sim::IntervalObservation&, double,
                                  double) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(pace));
            };

        std::optional<harness::TraceWriter> trace;
        if (!args.trace_path.empty()) {
            trace.emplace(args.trace_path,
                          args.trace_format == "jsonl"
                              ? harness::TraceFormat::JsonLines
                              : harness::TraceFormat::Csv);
            opt.trace = &*trace;
        }

        // --- Durability (snapshots + WAL; GUIDE.md sec. 14) ----------
        std::optional<persist::Checkpointer> checkpointer;
        if (!args.checkpoint_dir.empty()) {
            if (!policy->supportsPersistence()) {
                std::fprintf(stderr,
                             "--checkpoint-dir: policy %s does not "
                             "support checkpointing\n",
                             policy->name().c_str());
                return 2;
            }
            // Everything that shapes the deterministic decision
            // stream - but not the duration, so a resumed run may
            // extend a shorter one.
            std::ostringstream fp;
            fp << "mix=" << mix.label << " policy=" << policy_name
               << " seed=" << args.seed << " noise=" << args.noise
               << " cores=" << args.cores << " ways=" << args.ways
               << " bw=" << args.bw << " power=" << args.power
               << " fault-plan=" << args.fault_plan_file
               << " fault-preset=" << args.fault_preset
               << " fault-seed=" << args.fault_seed
               << " vanilla=" << (args.vanilla ? 1 : 0);
            persist::CheckpointOptions copt;
            copt.dir = args.checkpoint_dir;
            copt.every = args.checkpoint_every;
            copt.resume = args.resume;
            copt.kill_at = args.kill_at;
            copt.kill_torn = args.kill_torn;
            checkpointer.emplace(copt, fp.str());
            opt.checkpoint = &*checkpointer;
        }

        const harness::ExperimentRunner runner(opt);
        const auto result = runner.run(server, *policy, mix.label);

        std::printf("mix:       %s\n", mix.label.c_str());
        std::printf("policy:    %s\n", result.policy_name.c_str());
        std::printf("simulated: %.1f s (%.0f ms intervals)\n",
                    args.duration, opt.dt * 1e3);
        std::printf("\nthroughput (normalized): %.4f\n",
                    result.mean_throughput);
        std::printf("fairness (Jain):         %.4f\n",
                    result.mean_fairness);
        std::printf("worst-job speedup:       %.4f\n",
                    result.worst_job_speedup);
        std::printf("per-job mean speedups:  ");
        for (std::size_t j = 0; j < result.job_mean_speedups.size(); ++j)
            std::printf(" %s=%.3f", mix.jobs[j].name.c_str(),
                        result.job_mean_speedups[j]);
        std::printf("\n");

        if (args.compare_oracle) {
            sim::SimulatedServer oracle_server = harness::makeServer(
                platform, mix, args.seed, args.noise);
            auto oracle =
                harness::makePolicy("Balanced-Oracle", oracle_server);
            const auto oracle_result =
                runner.run(oracle_server, *oracle, mix.label);
            std::printf("\n%% of Balanced Oracle: throughput %s, "
                        "fairness %s\n",
                        TablePrinter::pct(result.mean_throughput /
                                          oracle_result.mean_throughput)
                            .c_str(),
                        TablePrinter::pct(result.mean_fairness /
                                          oracle_result.mean_fairness)
                            .c_str());
        }
        if (injector) {
            std::printf("\nfault injection (seed %llu):\n  %s\n",
                        static_cast<unsigned long long>(args.fault_seed),
                        injector->stats().toString().c_str());
            if (auto* satori_policy =
                    dynamic_cast<core::SatoriController*>(policy.get())) {
                const auto& d = satori_policy->diagnostics();
                std::printf(
                    "  controller: %zu unusable, %zu actuation "
                    "mismatches, %zu retries, %zu degraded entries\n",
                    d.unusable_intervals, d.actuation_mismatches,
                    d.actuation_retries, d.degraded_entries);
            }
        }
        if (trace) {
            trace->close();
            std::printf("\ntrace: %zu records -> %s\n", trace->count(),
                        args.trace_path.c_str());
        }

        // --- Observability exports + end-of-run summaries ------------
        if (!args.trace_out.empty()) {
            obs::Tracer& tracer = obs::observability().tracer();
            tracer.writeChromeTrace(args.trace_out);
            std::printf("\nspans: %zu events -> %s\n",
                        tracer.events().size(), args.trace_out.c_str());
            TablePrinter spans(
                {"span", "count", "total ms", "mean us", "max us"});
            for (const auto& agg : tracer.aggregate()) {
                const double mean_us =
                    agg.count > 0 ? static_cast<double>(agg.total_ns) /
                                        static_cast<double>(agg.count) /
                                        1e3
                                  : 0.0;
                char total_ms[32], mean[32], max_us[32];
                std::snprintf(total_ms, sizeof(total_ms), "%.3f",
                              static_cast<double>(agg.total_ns) / 1e6);
                std::snprintf(mean, sizeof(mean), "%.2f", mean_us);
                std::snprintf(max_us, sizeof(max_us), "%.2f",
                              static_cast<double>(agg.max_ns) / 1e3);
                spans.addRow({agg.name, std::to_string(agg.count),
                              total_ms, mean, max_us});
            }
            spans.print();
        }
        if (!args.metrics_out.empty()) {
            const obs::MetricsSnapshot snap =
                obs::observability().metrics().snapshot();
            persist::atomicWriteFile(args.metrics_out,
                                     args.metrics_format == "jsonl"
                                         ? snap.jsonLines()
                                         : snap.prometheusText());
            std::printf("\nmetrics: %zu instruments -> %s\n",
                        snap.counters.size() + snap.gauges.size() +
                            snap.histograms.size(),
                        args.metrics_out.c_str());
            TablePrinter counters({"counter", "value"});
            for (const auto& c : snap.counters)
                if (c.value > 0)
                    counters.addRow({c.name, std::to_string(c.value)});
            counters.print();
        }
        if (!args.audit_out.empty()) {
            const obs::DecisionAuditChannel& audit =
                obs::observability().audit();
            audit.writeJsonl(args.audit_out);
            std::printf("\naudit: %zu decision records -> %s\n",
                        audit.records().size(), args.audit_out.c_str());
            if (audit.dropped() > 0)
                std::printf("audit: %llu oldest records dropped by the "
                            "ring (--audit-capacity %zu)\n",
                            static_cast<unsigned long long>(
                                audit.dropped()),
                            audit.capacity());
        }
        if (!args.history_out.empty()) {
            obs::StatsHistory& history = obs::observability().history();
            persist::atomicWriteFile(args.history_out, history.toJson());
            std::printf(
                "\nhistory: %zu snapshots (%llu evicted) -> %s\n",
                history.snapshots(),
                static_cast<unsigned long long>(history.evicted()),
                args.history_out.c_str());
        }
        if (!args.slo_spec_file.empty()) {
            obs::Watchdog& watchdog = obs::observability().watchdog();
            std::printf("\nslo: %zu rules, %llu breach events, "
                        "%zu currently in breach\n",
                        watchdog.spec().rules().size(),
                        static_cast<unsigned long long>(
                            watchdog.breachCount()),
                        watchdog.breaching());
            if (watchdog.breachCount() > 0)
                std::fputs(watchdog.eventsJsonl().c_str(), stdout);
        }
        if (exporter) {
            exporter->stop();
            std::printf("exporter: %llu http requests served\n",
                        static_cast<unsigned long long>(
                            obs::observability()
                                .lib()
                                .http_requests.value()));
        }
        return 0;
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        // Flush-on-FATAL: an SLO abort (or any other fatal) must not
        // lose the decisions leading up to it.
        try {
            if (!args.audit_out.empty() &&
                obs::observability().audit().size() > 0)
                obs::observability().audit().writeJsonl(args.audit_out);
            if (!args.history_out.empty() &&
                obs::observability().history().snapshots() > 0)
                persist::atomicWriteFile(
                    args.history_out,
                    obs::observability().history().toJson());
        } catch (...) {
            // Best effort only; the original error wins.
        }
        return 1;
    }
}
