/**
 * @file
 * satori_lint: legacy entry point for the header-hygiene checks, kept
 * as a thin alias over `satori_analyzer --packs=header` now that the
 * analyzer's rule-pass engine owns every source-level check. The
 * historical rule ids (missing-guard, guard-mismatch,
 * guard-define-mismatch, using-namespace) are unchanged; diagnostics
 * use the analyzer's `file:line: [rule-id] message` format.
 *
 * Usage: satori_lint [--root <include-root>] <dir-or-file>...
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"

int
main(int argc, char** argv)
{
    namespace sa = satori_analyzer;
    sa::Options options;
    options.packs = sa::kPackHeader;
    std::vector<std::filesystem::path> targets;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --root\n");
                return 2;
            }
            options.include_root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: satori_lint [--root <include-root>] "
                        "<dir-or-file>...\n");
            return 0;
        } else {
            targets.emplace_back(arg);
        }
    }
    if (targets.empty()) {
        std::fprintf(stderr,
                     "usage: satori_lint [--root <include-root>] "
                     "<dir-or-file>...\n");
        return 2;
    }
    for (const auto& target : targets) {
        if (!std::filesystem::exists(target)) {
            std::fprintf(stderr, "no such file or directory: %s\n",
                         target.string().c_str());
            return 2;
        }
    }
    if (options.include_root.empty())
        options.include_root = targets.front();

    const sa::AnalyzeResult result = sa::analyzePaths(targets, options);
    std::fputs(sa::renderText(result, "satori_lint").c_str(), stdout);
    return sa::countActive(result.findings) == 0 ? 0 : 1;
}
