/**
 * @file
 * satori_lint: source-level lint for the project's public headers.
 *
 * Checks (one kebab-case check name per diagnostic line):
 *   - missing-guard: header has no #ifndef/#define include guard.
 *   - guard-mismatch: the guard name does not match the header's path
 *     relative to the include root (satori/common/types.hpp must use
 *     SATORI_COMMON_TYPES_HPP).
 *   - guard-define-mismatch: the #define does not repeat the #ifndef.
 *   - using-namespace: a `using namespace` directive at header scope
 *     (comments and string literals are ignored).
 *
 * Self-containedness of every public header is verified separately by
 * the generated one-TU-per-header compile target
 * (cmake/HeaderSelfContained.cmake).
 *
 * Usage: satori_lint [--root <include-root>] <dir-or-file>...
 * Exits 1 if any violation was found; diagnostics are sorted so the
 * output is deterministic for ctest regex matching.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic
{
    std::string path;
    int line;
    std::string check;
    std::string detail;
};

/** SATORI_COMMON_TYPES_HPP from "satori/common/types.hpp". */
std::string
expectedGuard(const std::string& relative_path)
{
    std::string guard;
    guard.reserve(relative_path.size());
    for (char c : relative_path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    return guard;
}

/**
 * Strip // and (possibly multi-line) block comments plus string and
 * character literals, so the token scans below see only real code.
 * @p in_block tracks block-comment state across lines.
 */
std::string
stripCommentsAndStrings(const std::string& line, bool& in_block)
{
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block) {
            if (line[i] == '*' && i + 1 < line.size() &&
                line[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        if (line[i] == '/' && i + 1 < line.size()) {
            if (line[i + 1] == '/')
                break;
            if (line[i + 1] == '*') {
                in_block = true;
                ++i;
                continue;
            }
        }
        if (line[i] == '"' || line[i] == '\'') {
            const char quote = line[i];
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\')
                    ++i;
                else if (line[i] == quote)
                    break;
                ++i;
            }
            continue;
        }
        out.push_back(line[i]);
    }
    return out;
}

/** First whitespace-delimited token after @p prefix, or "". */
std::string
tokenAfter(const std::string& line, const std::string& prefix)
{
    const std::size_t at = line.find(prefix);
    if (at == std::string::npos)
        return "";
    std::size_t i = at + prefix.size();
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end])))
        ++end;
    return line.substr(i, end - i);
}

void
lintHeader(const fs::path& path, const fs::path& root,
           std::vector<Diagnostic>& diagnostics)
{
    std::ifstream in(path);
    if (!in) {
        diagnostics.push_back(
            {path.string(), 0, "unreadable", "cannot open file"});
        return;
    }

    const std::string rel =
        fs::relative(path, root).generic_string();
    const std::string expected = expectedGuard(rel);

    std::string ifndef_name;
    int ifndef_line = 0;
    std::string define_name;
    bool in_block = false;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string code = stripCommentsAndStrings(line, in_block);
        if (ifndef_name.empty()) {
            const std::string name = tokenAfter(code, "#ifndef");
            if (!name.empty()) {
                ifndef_name = name;
                ifndef_line = lineno;
                continue;
            }
        } else if (define_name.empty()) {
            const std::string name = tokenAfter(code, "#define");
            if (!name.empty())
                define_name = name;
        }
        const std::size_t at = code.find("using");
        const bool word_start =
            at != std::string::npos &&
            (at == 0 ||
             (!std::isalnum(static_cast<unsigned char>(code[at - 1])) &&
              code[at - 1] != '_'));
        if (word_start) {
            const std::string next = tokenAfter(code.substr(at), "using");
            if (next == "namespace")
                diagnostics.push_back(
                    {path.string(), lineno, "using-namespace",
                     "`using namespace` directive at header scope"});
        }
    }

    if (ifndef_name.empty()) {
        diagnostics.push_back({path.string(), 1, "missing-guard",
                               "no #ifndef include guard found"});
        return;
    }
    if (ifndef_name != expected)
        diagnostics.push_back(
            {path.string(), ifndef_line, "guard-mismatch",
             "guard is " + ifndef_name + ", path wants " + expected});
    if (define_name != ifndef_name)
        diagnostics.push_back(
            {path.string(), ifndef_line, "guard-define-mismatch",
             "#ifndef " + ifndef_name + " followed by #define " +
                 (define_name.empty() ? std::string("<none>")
                                      : define_name)});
}

void
collectHeaders(const fs::path& target, std::vector<fs::path>& headers)
{
    if (fs::is_directory(target)) {
        for (const auto& entry :
             fs::recursive_directory_iterator(target)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".hpp")
                headers.push_back(entry.path());
        }
    } else {
        headers.push_back(target);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    fs::path root;
    std::vector<fs::path> targets;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --root\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: satori_lint [--root <include-root>] "
                        "<dir-or-file>...\n");
            return 0;
        } else {
            targets.emplace_back(arg);
        }
    }
    if (targets.empty()) {
        std::fprintf(stderr,
                     "usage: satori_lint [--root <include-root>] "
                     "<dir-or-file>...\n");
        return 2;
    }
    if (root.empty())
        root = targets.front();

    std::vector<fs::path> headers;
    for (const auto& target : targets) {
        if (!fs::exists(target)) {
            std::fprintf(stderr, "no such file or directory: %s\n",
                         target.string().c_str());
            return 2;
        }
        collectHeaders(target, headers);
    }
    std::sort(headers.begin(), headers.end());
    headers.erase(std::unique(headers.begin(), headers.end()),
                  headers.end());

    std::vector<Diagnostic> diagnostics;
    for (const auto& header : headers)
        lintHeader(header, root, diagnostics);

    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.check < b.check;
              });
    for (const auto& d : diagnostics)
        std::printf("%s:%d: %s: %s\n", d.path.c_str(), d.line,
                    d.check.c_str(), d.detail.c_str());

    std::printf("satori_lint: %zu headers, %zu violations\n",
                headers.size(), diagnostics.size());
    return diagnostics.empty() ? 0 : 1;
}
