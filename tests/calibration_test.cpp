/**
 * @file
 * Calibration regression tests: pin down the substrate behaviours the
 * paper-reproduction benchmarks rely on, so future model edits that
 * would silently break an experiment's premise fail here instead.
 */

#include <gtest/gtest.h>

#include "satori/satori.hpp"

namespace satori {
namespace {

workloads::WorkloadProfile
byName(const char* name)
{
    return workloads::workloadByName(name);
}

TEST(CalibrationTest, CannealHasAWorkingSetCliff)
{
    // The Fig. 8 mix analysis and the ablation rely on canneal being
    // unable to profit from one extra way below its knee.
    const auto canneal = byName("canneal");
    const auto& phase = canneal.phases[0]; // anneal-hot
    const double drop_below = phase.mrc.mpki(2) - phase.mrc.mpki(3);
    const double drop_across = phase.mrc.mpki(5) - phase.mrc.mpki(8);
    EXPECT_GT(drop_across, 4.0 * std::max(drop_below, 1e-9));
}

TEST(CalibrationTest, BlackscholesPhasesDisagreeOnBandwidth)
{
    // Fig. 1's drift comes from blackscholes flipping between a
    // bandwidth-hungry sweep and a lighter repricing phase.
    const auto bs = byName("blackscholes");
    ASSERT_GE(bs.phases.size(), 2u);
    const double bw_sweep =
        bs.phases[0].mrc.floorMpki() * bs.phases[0].bytes_per_miss;
    const double bw_reprice =
        bs.phases[1].mrc.floorMpki() * bs.phases[1].bytes_per_miss;
    EXPECT_GT(bw_sweep, 1.5 * bw_reprice);
}

TEST(CalibrationTest, PhaseChangeMovesTheThroughputOptimum)
{
    // The premise of Fig. 1: the exhaustive throughput optimum is not
    // static across the canonical mix's phase signatures.
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    auto server = harness::makeServer(
        platform,
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"}),
        42);
    harness::OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig_a{0, 0, 0, 0, 0};
    const std::vector<std::size_t> sig_b{1, 0, 0, 0, 0};
    const auto& opt_a = eval.bestFor(sig_a, 1.0, 0.0);
    const auto& opt_b = eval.bestFor(sig_b, 1.0, 0.0);
    EXPECT_GT(Configuration::l1Distance(opt_a.config, opt_b.config), 4);
}

TEST(CalibrationTest, ThroughputAndFairnessOptimaConflict)
{
    // The premise of Fig. 2 / Observation 2.
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    auto server = harness::makeServer(
        platform,
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"}),
        42);
    harness::OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(5, 0);
    const auto& t_opt = eval.bestFor(sig, 1.0, 0.0);
    const auto& f_opt = eval.bestFor(sig, 0.0, 1.0);
    // Cross-goal degradation of at least ~10% each way.
    EXPECT_LT(t_opt.fairness, 0.92 * f_opt.fairness);
    EXPECT_LT(f_opt.throughput, 0.92 * t_opt.throughput);
}

TEST(CalibrationTest, ReconfigurationCostOrderingByResource)
{
    // Moving a core must cost more than moving a cache way, which
    // must cost more than reprogramming a bandwidth cap.
    const sim::ServerOptions opt;
    EXPECT_GT(opt.reconfig_cost_cores, opt.reconfig_cost_ways);
    EXPECT_GT(opt.reconfig_cost_ways, opt.reconfig_cost_bw);
    EXPECT_GT(opt.reconfig_decay, 0.0);
    EXPECT_LT(opt.reconfig_decay, 1.0);
}

TEST(CalibrationTest, EqualPartitionIsNotOptimal)
{
    // If the equal partition were optimal there would be nothing to
    // learn; every headline figure assumes a real optimization gap.
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    auto server = harness::makeServer(
        platform, workloads::mixOf({"canneal", "swaptions", "vips",
                                    "streamcluster", "freqmine"}),
        42);
    harness::OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(5, 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    const auto [t, f] = eval.metricsFor(
        Configuration::equalPartition(platform, 5), sig);
    EXPECT_GT(best.objective, (0.5 * t + 0.5 * f) + 0.02);
}

TEST(CalibrationTest, PhaseResidencySupportsSettling)
{
    // SATORI's settle/reactivate cycle assumes phases persist for
    // several seconds under co-location; verify the shortest phase of
    // every workload lasts >= 4 s at a plausible co-located IPS.
    for (const auto* suite : {"parsec", "cloudsuite", "ecp"}) {
        for (const auto& w : workloads::suiteByName(suite)) {
            for (const auto& p : w.phases) {
                const double colocated_ips = 6e9; // generous upper bound
                EXPECT_GE(p.length / colocated_ips, 4.0)
                    << w.name << "/" << p.label;
            }
        }
    }
}

TEST(CalibrationTest, NoiseLevelIsMeaningfulButBounded)
{
    // Baselines judge moves from epoch means of ~5-10 samples; the
    // default noise must neither vanish nor swamp typical move
    // effects (1-5% objective change).
    const sim::ServerOptions opt;
    EXPECT_GE(opt.noise_sigma, 0.01);
    EXPECT_LE(opt.noise_sigma, 0.10);
}

TEST(CalibrationTest, MiniFeAndSwfftBothWantTheCache)
{
    // The ECP analysis (Fig. 11) attributes the hardest mix to
    // miniFE and SWFFT's joint LLC appetite.
    const auto minife_w = byName("minife");
    const auto swfft_w = byName("swfft");
    const auto& minife = minife_w.phases[0];
    const auto& swfft = swfft_w.phases[0];
    // Both lose a lot of MPKI when given the full cache vs one way.
    EXPECT_GT(minife.mrc.mpki(1) - minife.mrc.mpki(11), 15.0);
    EXPECT_GT(swfft.mrc.mpki(1) - swfft.mrc.mpki(11), 15.0);
}

TEST(CalibrationTest, SwaptionsIsComputeBound)
{
    const auto swaptions = byName("swaptions");
    const auto& s = swaptions.phases[0];
    EXPECT_LT(s.mrc.mpki(1), 5.0);
    EXPECT_GT(s.base_ipc, 1.5);
}

} // namespace
} // namespace satori
