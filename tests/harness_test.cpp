/**
 * @file
 * Tests for the experiment harness: the runner loop, policy factory,
 * and %-of-oracle comparison reporting.
 */

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/parallel.hpp"
#include "satori/harness/repeat.hpp"
#include "satori/harness/report.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

workloads::JobMix
smallMix()
{
    return workloads::mixOf({"canneal", "streamcluster", "swaptions"});
}

TEST(ExperimentRunnerTest, AggregatesOverConfiguredDuration)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 5.0;
    opt.warmup = 1.0;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "small");
    EXPECT_EQ(result.policy_name, "Equal");
    EXPECT_EQ(result.mix_label, "small");
    // 50 intervals total, 10 in warm-up.
    EXPECT_EQ(result.throughput_stats.count(), 40u);
    EXPECT_GT(result.mean_throughput, 0.0);
    EXPECT_GT(result.mean_fairness, 0.0);
    EXPECT_LE(result.mean_fairness, 1.0);
    EXPECT_NEAR(result.mean_objective,
                0.5 * result.mean_throughput +
                    0.5 * result.mean_fairness,
                1e-12);
    EXPECT_NEAR(server.now(), 5.0, 1e-9);
}

TEST(ExperimentRunnerTest, WorstJobIsMinimumOfJobMeans)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 5.0;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "");
    ASSERT_EQ(result.job_mean_speedups.size(), 3u);
    double min = 1.0;
    for (double s : result.job_mean_speedups)
        min = std::min(min, s);
    EXPECT_DOUBLE_EQ(result.worst_job_speedup, min);
}

TEST(ExperimentRunnerTest, SeriesRecordedOnRequest)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 3.0;
    opt.warmup = 0.0;
    opt.record_series = true;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "");
    EXPECT_EQ(result.throughput_series.size(), 30u);
    EXPECT_EQ(result.fairness_series.size(), 30u);
}

TEST(ExperimentRunnerTest, OnIntervalHookSeesEveryInterval)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 2.0;
    int calls = 0;
    opt.on_interval = [&](const sim::IntervalObservation& obs, double t,
                          double f) {
        ++calls;
        EXPECT_GT(obs.time, 0.0);
        EXPECT_GE(t, 0.0);
        EXPECT_GE(f, 0.0);
    };
    (void)ExperimentRunner(opt).run(server, policy, "");
    EXPECT_EQ(calls, 20);
}

TEST(PolicyFactoryTest, AllNamesConstruct)
{
    auto server = makeServer(smallPlatform(), smallMix());
    for (const auto& name :
         {"Equal", "Random", "dCAT", "CoPart", "PARTIES", "SATORI",
          "SATORI-static", "Throughput-SATORI", "Fairness-SATORI",
          "Balanced-Oracle", "Throughput-Oracle", "Fairness-Oracle"}) {
        auto policy = makePolicy(name, server);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_THROW(makePolicy("Quantum", server), FatalError);
}

TEST(PolicyFactoryTest, ComparisonSetMatchesPaperFigure)
{
    const auto names = comparisonPolicyNames();
    EXPECT_EQ(names, (std::vector<std::string>{"Random", "dCAT",
                                               "CoPart", "PARTIES",
                                               "SATORI"}));
    EXPECT_EQ(satoriVariantNames().size(), 4u);
}

TEST(ComparePoliciesTest, NormalizesAgainstBalancedOracle)
{
    ExperimentOptions opt;
    opt.duration = 8.0;
    const MixComparison comp = comparePolicies(
        smallPlatform(), smallMix(), {"Equal", "Random"}, opt, 42);
    EXPECT_EQ(comp.scores.size(), 2u);
    EXPECT_GT(comp.oracle.mean_throughput, 0.0);
    for (const auto& s : comp.scores) {
        EXPECT_GT(s.throughput_pct, 0.0);
        EXPECT_GT(s.fairness_pct, 0.0);
        EXPECT_NEAR(s.throughput_pct,
                    s.result.mean_throughput /
                        comp.oracle.mean_throughput,
                    1e-12);
    }
    EXPECT_NO_THROW((void)comp.score("Equal"));
    EXPECT_THROW((void)comp.score("SATORI"), FatalError);
}

TEST(ComparePoliciesTest, AggregateHelpers)
{
    ExperimentOptions opt;
    opt.duration = 6.0;
    std::vector<MixComparison> comps;
    comps.push_back(comparePolicies(smallPlatform(), smallMix(),
                                    {"Equal"}, opt, 1));
    comps.push_back(comparePolicies(smallPlatform(), smallMix(),
                                    {"Equal"}, opt, 2));
    const double t = meanThroughputPct(comps, "Equal");
    const double f = meanFairnessPct(comps, "Equal");
    const double w = meanWorstJobPct(comps, "Equal");
    EXPECT_GT(t, 0.0);
    EXPECT_GT(f, 0.0);
    EXPECT_GT(w, 0.0);
    EXPECT_NEAR(t,
                (comps[0].score("Equal").throughput_pct +
                 comps[1].score("Equal").throughput_pct) /
                    2.0,
                1e-12);
}

TEST(RepeatPolicyTest, AggregatesAcrossSeeds)
{
    ExperimentOptions opt;
    opt.duration = 5.0;
    const auto rep = repeatPolicy(smallPlatform(), smallMix(), "Equal",
                                  opt, 4, 100);
    EXPECT_EQ(rep.policy, "Equal");
    EXPECT_EQ(rep.runs, 4u);
    EXPECT_GT(rep.throughput.mean, 0.0);
    EXPECT_GT(rep.objective.mean, 0.0);
    // Several noisy seeds give a non-degenerate confidence interval.
    EXPECT_GT(rep.throughput.ci95, 0.0);
    EXPECT_NE(rep.objective.toString().find("+/-"), std::string::npos);
}

TEST(RepeatPolicyTest, ClearlyBeatsIsConservative)
{
    RepeatedResult a, b;
    a.objective.mean = 0.8;
    a.objective.ci95 = 0.02;
    b.objective.mean = 0.7;
    b.objective.ci95 = 0.02;
    EXPECT_TRUE(a.clearlyBeats(b));
    EXPECT_FALSE(b.clearlyBeats(a));
    // Overlapping intervals: no clear winner either way.
    b.objective.mean = 0.79;
    EXPECT_FALSE(a.clearlyBeats(b));
    EXPECT_FALSE(b.clearlyBeats(a));
}

TEST(RepeatPolicyTest, SingleRunHasNoInterval)
{
    ExperimentOptions opt;
    opt.duration = 3.0;
    const auto rep = repeatPolicy(smallPlatform(), smallMix(), "Equal",
                                  opt, 1, 7);
    EXPECT_DOUBLE_EQ(rep.throughput.ci95, 0.0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    for (const std::size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workerCount(), workers);
        const std::size_t count = 100;
        std::vector<int> hits(count, 0);
        pool.forEachIndex(count,
                          [&](std::size_t i) { hits[i] += 1; });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i], 1) << i;
        // The pool is reusable for further batches.
        pool.forEachIndex(count,
                          [&](std::size_t i) { hits[i] += 1; });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i], 2) << i;
        pool.forEachIndex(0, [&](std::size_t) { ADD_FAILURE(); });
    }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.forEachIndex(50,
                          [](std::size_t i) {
                              if (i == 7)
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // Still usable after a failed batch.
    std::atomic<int> ran{0};
    pool.forEachIndex(10, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelForTest, SerialAndPooledAgree)
{
    std::vector<std::size_t> serial(64, 0);
    parallelFor(64, 1, [&](std::size_t i) { serial[i] = i * i; });
    std::vector<std::size_t> pooled(64, 0);
    parallelFor(64, 4, [&](std::size_t i) { pooled[i] = i * i; });
    EXPECT_EQ(serial, pooled);
}

TEST(RepeatPolicyTest, ParallelStatisticsBitIdenticalToSerial)
{
    // The determinism contract for the parallel harness: per-run seeds
    // derive from indices and folding is index-ordered, so every
    // thread count produces byte-for-byte the same aggregate.
    ExperimentOptions opt;
    opt.duration = 3.0;
    const auto serial = repeatPolicy(smallPlatform(), smallMix(),
                                     "Equal", opt, 6, 11, {}, 1);
    for (const std::size_t threads : {2u, 4u, 6u}) {
        const auto parallel = repeatPolicy(smallPlatform(), smallMix(),
                                           "Equal", opt, 6, 11, {},
                                           threads);
        EXPECT_EQ(parallel.runs, serial.runs);
        EXPECT_EQ(parallel.throughput.mean, serial.throughput.mean);
        EXPECT_EQ(parallel.throughput.ci95, serial.throughput.ci95);
        EXPECT_EQ(parallel.fairness.mean, serial.fairness.mean);
        EXPECT_EQ(parallel.fairness.ci95, serial.fairness.ci95);
        EXPECT_EQ(parallel.objective.mean, serial.objective.mean);
        EXPECT_EQ(parallel.objective.ci95, serial.objective.ci95);
    }

    // SATORI policies (GP + controller inside each worker) hold the
    // same guarantee.
    const auto s1 = repeatPolicy(smallPlatform(), smallMix(), "SATORI",
                                 opt, 3, 5, {}, 1);
    const auto s4 = repeatPolicy(smallPlatform(), smallMix(), "SATORI",
                                 opt, 3, 5, {}, 4);
    EXPECT_EQ(s1.objective.mean, s4.objective.mean);
    EXPECT_EQ(s1.objective.ci95, s4.objective.ci95);
}

TEST(RepeatPolicyTest, SharedSinksForceSerialExecution)
{
    // A trace sink is single-run state; the threaded overload must
    // not share it across workers (it serializes instead, and the
    // trace stays well-formed).
    ExperimentOptions opt;
    opt.duration = 2.0;
    int intervals = 0;
    opt.on_interval = [&](const sim::IntervalObservation&, double,
                          double) { ++intervals; };
    const auto rep = repeatPolicy(smallPlatform(), smallMix(), "Equal",
                                  opt, 3, 21, {}, 4);
    EXPECT_EQ(rep.runs, 3u);
    EXPECT_GT(intervals, 0);
}

} // namespace
} // namespace harness
} // namespace satori
