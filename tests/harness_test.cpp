/**
 * @file
 * Tests for the experiment harness: the runner loop, policy factory,
 * and %-of-oracle comparison reporting.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/repeat.hpp"
#include "satori/harness/report.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

workloads::JobMix
smallMix()
{
    return workloads::mixOf({"canneal", "streamcluster", "swaptions"});
}

TEST(ExperimentRunnerTest, AggregatesOverConfiguredDuration)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 5.0;
    opt.warmup = 1.0;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "small");
    EXPECT_EQ(result.policy_name, "Equal");
    EXPECT_EQ(result.mix_label, "small");
    // 50 intervals total, 10 in warm-up.
    EXPECT_EQ(result.throughput_stats.count(), 40u);
    EXPECT_GT(result.mean_throughput, 0.0);
    EXPECT_GT(result.mean_fairness, 0.0);
    EXPECT_LE(result.mean_fairness, 1.0);
    EXPECT_NEAR(result.mean_objective,
                0.5 * result.mean_throughput +
                    0.5 * result.mean_fairness,
                1e-12);
    EXPECT_NEAR(server.now(), 5.0, 1e-9);
}

TEST(ExperimentRunnerTest, WorstJobIsMinimumOfJobMeans)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 5.0;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "");
    ASSERT_EQ(result.job_mean_speedups.size(), 3u);
    double min = 1.0;
    for (double s : result.job_mean_speedups)
        min = std::min(min, s);
    EXPECT_DOUBLE_EQ(result.worst_job_speedup, min);
}

TEST(ExperimentRunnerTest, SeriesRecordedOnRequest)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 3.0;
    opt.warmup = 0.0;
    opt.record_series = true;
    const ExperimentRunner runner(opt);
    const auto result = runner.run(server, policy, "");
    EXPECT_EQ(result.throughput_series.size(), 30u);
    EXPECT_EQ(result.fairness_series.size(), 30u);
}

TEST(ExperimentRunnerTest, OnIntervalHookSeesEveryInterval)
{
    auto server = makeServer(smallPlatform(), smallMix());
    policies::EqualPartitionPolicy policy(server.platform(), 3);
    ExperimentOptions opt;
    opt.duration = 2.0;
    int calls = 0;
    opt.on_interval = [&](const sim::IntervalObservation& obs, double t,
                          double f) {
        ++calls;
        EXPECT_GT(obs.time, 0.0);
        EXPECT_GE(t, 0.0);
        EXPECT_GE(f, 0.0);
    };
    (void)ExperimentRunner(opt).run(server, policy, "");
    EXPECT_EQ(calls, 20);
}

TEST(PolicyFactoryTest, AllNamesConstruct)
{
    auto server = makeServer(smallPlatform(), smallMix());
    for (const auto& name :
         {"Equal", "Random", "dCAT", "CoPart", "PARTIES", "SATORI",
          "SATORI-static", "Throughput-SATORI", "Fairness-SATORI",
          "Balanced-Oracle", "Throughput-Oracle", "Fairness-Oracle"}) {
        auto policy = makePolicy(name, server);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_THROW(makePolicy("Quantum", server), FatalError);
}

TEST(PolicyFactoryTest, ComparisonSetMatchesPaperFigure)
{
    const auto names = comparisonPolicyNames();
    EXPECT_EQ(names, (std::vector<std::string>{"Random", "dCAT",
                                               "CoPart", "PARTIES",
                                               "SATORI"}));
    EXPECT_EQ(satoriVariantNames().size(), 4u);
}

TEST(ComparePoliciesTest, NormalizesAgainstBalancedOracle)
{
    ExperimentOptions opt;
    opt.duration = 8.0;
    const MixComparison comp = comparePolicies(
        smallPlatform(), smallMix(), {"Equal", "Random"}, opt, 42);
    EXPECT_EQ(comp.scores.size(), 2u);
    EXPECT_GT(comp.oracle.mean_throughput, 0.0);
    for (const auto& s : comp.scores) {
        EXPECT_GT(s.throughput_pct, 0.0);
        EXPECT_GT(s.fairness_pct, 0.0);
        EXPECT_NEAR(s.throughput_pct,
                    s.result.mean_throughput /
                        comp.oracle.mean_throughput,
                    1e-12);
    }
    EXPECT_NO_THROW((void)comp.score("Equal"));
    EXPECT_THROW((void)comp.score("SATORI"), FatalError);
}

TEST(ComparePoliciesTest, AggregateHelpers)
{
    ExperimentOptions opt;
    opt.duration = 6.0;
    std::vector<MixComparison> comps;
    comps.push_back(comparePolicies(smallPlatform(), smallMix(),
                                    {"Equal"}, opt, 1));
    comps.push_back(comparePolicies(smallPlatform(), smallMix(),
                                    {"Equal"}, opt, 2));
    const double t = meanThroughputPct(comps, "Equal");
    const double f = meanFairnessPct(comps, "Equal");
    const double w = meanWorstJobPct(comps, "Equal");
    EXPECT_GT(t, 0.0);
    EXPECT_GT(f, 0.0);
    EXPECT_GT(w, 0.0);
    EXPECT_NEAR(t,
                (comps[0].score("Equal").throughput_pct +
                 comps[1].score("Equal").throughput_pct) /
                    2.0,
                1e-12);
}

TEST(RepeatPolicyTest, AggregatesAcrossSeeds)
{
    ExperimentOptions opt;
    opt.duration = 5.0;
    const auto rep = repeatPolicy(smallPlatform(), smallMix(), "Equal",
                                  opt, 4, 100);
    EXPECT_EQ(rep.policy, "Equal");
    EXPECT_EQ(rep.runs, 4u);
    EXPECT_GT(rep.throughput.mean, 0.0);
    EXPECT_GT(rep.objective.mean, 0.0);
    // Several noisy seeds give a non-degenerate confidence interval.
    EXPECT_GT(rep.throughput.ci95, 0.0);
    EXPECT_NE(rep.objective.toString().find("+/-"), std::string::npos);
}

TEST(RepeatPolicyTest, ClearlyBeatsIsConservative)
{
    RepeatedResult a, b;
    a.objective.mean = 0.8;
    a.objective.ci95 = 0.02;
    b.objective.mean = 0.7;
    b.objective.ci95 = 0.02;
    EXPECT_TRUE(a.clearlyBeats(b));
    EXPECT_FALSE(b.clearlyBeats(a));
    // Overlapping intervals: no clear winner either way.
    b.objective.mean = 0.79;
    EXPECT_FALSE(a.clearlyBeats(b));
    EXPECT_FALSE(b.clearlyBeats(a));
}

TEST(RepeatPolicyTest, SingleRunHasNoInterval)
{
    ExperimentOptions opt;
    opt.duration = 3.0;
    const auto rep = repeatPolicy(smallPlatform(), smallMix(), "Equal",
                                  opt, 1, 7);
    EXPECT_DOUBLE_EQ(rep.throughput.ci95, 0.0);
}

} // namespace
} // namespace harness
} // namespace satori
