/**
 * @file
 * Tests for the satori::linalg::simd kernels. The load-bearing
 * property is BIT equality between the dispatched (possibly AVX2)
 * kernels and the scalar references in simd::ref - the library
 * promises that SATORI_SIMD is a pure throughput toggle, and every
 * exactness contract upstream (solve bitwise-stability, decision
 * traces) leans on it. fastExpNegInto additionally gets an accuracy
 * check against libm, since it approximates exp(-z) by design.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "satori/common/rng.hpp"
#include "satori/linalg/simd.hpp"

namespace satori {
namespace linalg {
namespace simd {
namespace {

/** Sizes straddling the 4-lane and 8-element unroll boundaries. */
const std::size_t kSizes[] = { 0, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16,
                               17, 31, 64, 257, 1000 };

std::vector<double>
randomVec(Rng& rng, std::size_t n, double lo, double hi)
{
    std::vector<double> v(n);
    for (auto& x : v)
        x = rng.uniform(lo, hi);
    return v;
}

bool
bitEqual(const std::vector<double>& a, const std::vector<double>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(SimdKernelTest, SubScaledMatchesReferenceBitwise)
{
    Rng rng(101);
    for (const std::size_t n : kSizes) {
        const auto x = randomVec(rng, n, -3.0, 3.0);
        const double a = rng.uniform(-2.0, 2.0);
        auto y1 = randomVec(rng, n, -5.0, 5.0);
        auto y2 = y1;
        subScaled(y1.data(), x.data(), a, n);
        ref::subScaled(y2.data(), x.data(), a, n);
        EXPECT_TRUE(bitEqual(y1, y2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, SubScaled4MatchesReferenceBitwise)
{
    Rng rng(111);
    for (const std::size_t n : kSizes) {
        const auto x0 = randomVec(rng, n, -3.0, 3.0);
        const auto x1 = randomVec(rng, n, -3.0, 3.0);
        const auto x2 = randomVec(rng, n, -3.0, 3.0);
        const auto x3 = randomVec(rng, n, -3.0, 3.0);
        const double a0 = rng.uniform(-2.0, 2.0);
        const double a1 = rng.uniform(-2.0, 2.0);
        const double a2 = rng.uniform(-2.0, 2.0);
        const double a3 = rng.uniform(-2.0, 2.0);
        auto y1 = randomVec(rng, n, -5.0, 5.0);
        auto y2 = y1;
        auto y3 = y1;
        subScaled4(y1.data(), x0.data(), a0, x1.data(), a1, x2.data(),
                   a2, x3.data(), a3, n);
        ref::subScaled4(y2.data(), x0.data(), a0, x1.data(), a1,
                        x2.data(), a2, x3.data(), a3, n);
        EXPECT_TRUE(bitEqual(y1, y2)) << "n=" << n;
        // The fused kernel promises the exact sequence of four
        // subScaled calls - the property the triangular solves'
        // bitwise stability rests on.
        subScaled(y3.data(), x0.data(), a0, n);
        subScaled(y3.data(), x1.data(), a1, n);
        subScaled(y3.data(), x2.data(), a2, n);
        subScaled(y3.data(), x3.data(), a3, n);
        EXPECT_TRUE(bitEqual(y1, y3)) << "n=" << n;
    }
}

TEST(SimdKernelTest, SqDistIntoMatchesReferenceBitwise)
{
    Rng rng(222);
    const std::size_t kDims[] = { 1, 2, 3, 7, 10 };
    for (const std::size_t dims : kDims) {
        for (const std::size_t n : kSizes) {
            std::vector<std::vector<double>> planes;
            std::vector<const double*> ptrs;
            for (std::size_t d = 0; d < dims; ++d) {
                planes.push_back(randomVec(rng, n, -4.0, 4.0));
                ptrs.push_back(planes.back().data());
            }
            const auto q = randomVec(rng, dims, -2.0, 2.0);
            std::vector<double> o1(n);
            std::vector<double> o2(n);
            std::vector<double> o3(n, 0.0);
            sqDistInto(o1.data(), ptrs.data(), q.data(), dims, n);
            ref::sqDistInto(o2.data(), ptrs.data(), q.data(), dims, n);
            EXPECT_TRUE(bitEqual(o1, o2)) << dims << "x" << n;
            // Contract: identical to zero-then-ascending-d
            // accumSqDiff, fused.
            for (std::size_t d = 0; d < dims; ++d)
                accumSqDiff(o3.data(), ptrs[d], q[d], n);
            EXPECT_TRUE(bitEqual(o1, o3)) << dims << "x" << n;
        }
    }
}

TEST(SimdKernelTest, DivScalarMatchesReferenceBitwise)
{
    Rng rng(202);
    for (const std::size_t n : kSizes) {
        const double d = rng.uniform(0.5, 4.0);
        auto y1 = randomVec(rng, n, -5.0, 5.0);
        auto y2 = y1;
        divScalar(y1.data(), d, n);
        ref::divScalar(y2.data(), d, n);
        EXPECT_TRUE(bitEqual(y1, y2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, AccumSqDiffMatchesReferenceBitwise)
{
    Rng rng(303);
    for (const std::size_t n : kSizes) {
        const auto xs = randomVec(rng, n, -4.0, 4.0);
        const double q = rng.uniform(-2.0, 2.0);
        auto a1 = randomVec(rng, n, 0.0, 1.0);
        auto a2 = a1;
        accumSqDiff(a1.data(), xs.data(), q, n);
        ref::accumSqDiff(a2.data(), xs.data(), q, n);
        EXPECT_TRUE(bitEqual(a1, a2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, FmaAccumMatchesReferenceBitwise)
{
    Rng rng(404);
    for (const std::size_t n : kSizes) {
        const auto xs = randomVec(rng, n, -4.0, 4.0);
        const double a = rng.uniform(-2.0, 2.0);
        auto a1 = randomVec(rng, n, -1.0, 1.0);
        auto a2 = a1;
        fmaAccum(a1.data(), xs.data(), a, n);
        ref::fmaAccum(a2.data(), xs.data(), a, n);
        EXPECT_TRUE(bitEqual(a1, a2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, AccumSquareMatchesReferenceBitwise)
{
    Rng rng(505);
    for (const std::size_t n : kSizes) {
        const auto xs = randomVec(rng, n, -4.0, 4.0);
        auto a1 = randomVec(rng, n, 0.0, 1.0);
        auto a2 = a1;
        accumSquare(a1.data(), xs.data(), n);
        ref::accumSquare(a2.data(), xs.data(), n);
        EXPECT_TRUE(bitEqual(a1, a2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, FastExpNegMatchesReferenceBitwise)
{
    Rng rng(606);
    for (const std::size_t n : kSizes) {
        // Cover the covariance range, the underflow clamp boundary,
        // and exact zero.
        auto z = randomVec(rng, n, 0.0, 60.0);
        if (n >= 4) {
            z[0] = 0.0;
            z[1] = 707.9;
            z[2] = 708.1;
            z[3] = 1e9;
        }
        std::vector<double> o1(n);
        std::vector<double> o2(n);
        fastExpNegInto(o1.data(), z.data(), n);
        ref::fastExpNegInto(o2.data(), z.data(), n);
        EXPECT_TRUE(bitEqual(o1, o2)) << "n=" << n;
    }
}

TEST(SimdKernelTest, FastExpNegIsAccurate)
{
    Rng rng(707);
    double max_rel = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double z = rng.uniform(0.0, 50.0);
        double got = 0.0;
        fastExpNegInto(&got, &z, 1);
        const double want = std::exp(-z);
        const double rel = std::fabs(got - want) / want;
        max_rel = std::max(max_rel, rel);
    }
    // The doc contract promises < 1e-9 relative over the covariance
    // range; enforced with headroom.
    EXPECT_LT(max_rel, 1e-9);

    // Clamp/edge behaviour.
    const double edges[] = { 0.0, 1e-300, 708.0, 708.5, 1e12 };
    for (const double z : edges) {
        double got = -1.0;
        fastExpNegInto(&got, &z, 1);
        if (z > 708.0) {
            EXPECT_EQ(got, 0.0) << "z=" << z;
        } else {
            EXPECT_NEAR(got, std::exp(-z), 1e-9 * std::exp(-z))
                << "z=" << z;
        }
    }
}

TEST(SimdKernelTest, Matern52FromSqDistMatchesReferenceBitwise)
{
    Rng rng(808);
    const double inv_ls = std::sqrt(5.0) / 0.7;
    for (const std::size_t n : kSizes) {
        auto d2 = randomVec(rng, n, 0.0, 9.0);
        if (n >= 2) {
            d2[0] = 0.0;     // self-covariance
            d2[1] = 1e6;     // deep in the exp underflow tail
        }
        std::vector<double> o1(n);
        std::vector<double> o2(n);
        matern52FromSqDistInto(o1.data(), d2.data(), inv_ls, 1.3, n);
        ref::matern52FromSqDistInto(o2.data(), d2.data(), inv_ls, 1.3,
                                    n);
        EXPECT_TRUE(bitEqual(o1, o2)) << "n=" << n;
        // In-place operation is part of the contract.
        auto o3 = d2;
        matern52FromSqDistInto(o3.data(), o3.data(), inv_ls, 1.3, n);
        EXPECT_TRUE(bitEqual(o1, o3)) << "n=" << n;
    }
}

TEST(SimdKernelTest, Matern52FromSqDistIsAccurate)
{
    Rng rng(909);
    const double ls = 0.7, sv = 1.3;
    const double inv_ls = std::sqrt(5.0) / ls;
    double max_rel = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double r = rng.uniform(1e-6, 4.0);
        const double d2 = r * r;
        double got = 0.0;
        matern52FromSqDistInto(&got, &d2, inv_ls, sv, 1);
        const double z = std::sqrt(5.0) * r / ls;
        const double want =
            sv * (1.0 + z + z * z / 3.0) * std::exp(-z);
        max_rel = std::max(max_rel, std::fabs(got - want) / want);
    }
    // Error comes from the exp approximation plus one reassociated
    // polynomial; well inside the approximate-GP RMSE budget.
    EXPECT_LT(max_rel, 1e-8);
}

TEST(SimdKernelTest, VectorizedReportsConsistently)
{
    // Just exercises the dispatcher; on machines without AVX2 (or a
    // build with SATORI_SIMD=OFF) this is false and every call above
    // compared scalar against scalar - still a valid contract check.
    const bool v = vectorized();
    EXPECT_TRUE(v || !v);
}

} // namespace
} // namespace simd
} // namespace linalg
} // namespace satori
