/**
 * @file
 * Tests for the dynamic goal-prioritization weights (Sec. III-C,
 * Eqs. 3-6): bounds, long-term equalization, and the prioritization
 * response.
 */

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/common/rng.hpp"
#include "satori/core/weights.hpp"

namespace satori {
namespace core {
namespace {

WeightOptions
fastOptions()
{
    WeightOptions o;
    o.prioritization_period = 1.0;
    o.equalization_period = 10.0;
    o.dt = 0.1;
    return o;
}

TEST(WeightsTest, StartsNeutral)
{
    WeightController wc(fastOptions());
    const auto w = wc.update(0.5, 0.9);
    EXPECT_NEAR(w.w_t, 0.5, 1e-9);
    EXPECT_NEAR(w.w_f, 0.5, 1e-9);
}

TEST(WeightsTest, WeightsAlwaysSumToOne)
{
    WeightController wc(fastOptions());
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto w = wc.update(rng.uniform(), rng.uniform());
        EXPECT_NEAR(w.w_t + w.w_f, 1.0, 1e-12);
    }
}

/** Property: bounds hold under arbitrary goal trajectories. */
class WeightBoundsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(WeightBoundsProperty, BoundedByQuarterAndThreeQuarters)
{
    WeightController wc(fastOptions());
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 1000; ++i) {
        const auto w = wc.update(rng.uniform(0.1, 0.9),
                                 rng.uniform(0.1, 0.9));
        EXPECT_GE(w.w_t, 0.25);
        EXPECT_LE(w.w_t, 0.75);
        EXPECT_GE(w.w_f, 0.25);
        EXPECT_LE(w.w_f, 0.75);
        EXPECT_GE(w.w_tp, 0.25 - 1e-12);
        EXPECT_LE(w.w_tp, 0.75 + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightBoundsProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(WeightsTest, MeanWeightIsHalfOverEqualizationPeriod)
{
    WeightController wc(fastOptions());
    Rng rng(9);
    // Run several full equalization periods with erratic goals and
    // verify the controller reports a ~0.5 mean each period.
    for (int period = 0; period < 5; ++period) {
        for (int i = 0; i < 100; ++i)
            wc.update(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8));
        EXPECT_NEAR(wc.lastEqualizationMeanWt(), 0.5, 0.06)
            << "period " << period;
    }
}

TEST(WeightsTest, EqualizationBoundaryFlagFires)
{
    WeightController wc(fastOptions());
    int boundaries = 0;
    for (int i = 0; i < 300; ++i)
        boundaries += wc.update(0.5, 0.5).equalization_boundary;
    EXPECT_EQ(boundaries, 3); // 300 iterations / 100 per T_E
}

TEST(WeightsTest, PrioritizationBoundaryEveryTenIterations)
{
    WeightController wc(fastOptions());
    int boundaries = 0;
    for (int i = 0; i < 100; ++i)
        boundaries += wc.update(0.5, 0.5).prioritization_boundary;
    EXPECT_EQ(boundaries, 10);
}

TEST(WeightsTest, FairnessImprovementShiftsPriorityToThroughput)
{
    // Eq. 4: if fairness improved during the last period, throughput
    // gets the next opportunity (higher W_TP).
    WeightOptions o = fastOptions();
    WeightController wc(o);
    // Fairness rises sharply within the first prioritization period;
    // throughput is flat.
    WeightComponents w;
    for (int i = 0; i < 11; ++i)
        w = wc.update(0.5, 0.5 + 0.03 * i);
    EXPECT_GT(w.w_tp, 0.5);
    EXPECT_LT(w.w_fp, 0.5);
}

TEST(WeightsTest, ThroughputImprovementShiftsPriorityToFairness)
{
    WeightController wc(fastOptions());
    WeightComponents w;
    for (int i = 0; i < 11; ++i)
        w = wc.update(0.4 + 0.03 * i, 0.9);
    EXPECT_GT(w.w_fp, 0.5);
    EXPECT_LT(w.w_tp, 0.5);
}

TEST(WeightsTest, FavorStrongerAlternativeFlipsEq4)
{
    WeightOptions o = fastOptions();
    o.favor_weaker_goal = false; // the ~5%-worse design alternative
    WeightController wc(o);
    WeightComponents w;
    for (int i = 0; i < 11; ++i)
        w = wc.update(0.5, 0.5 + 0.03 * i);
    // Fairness performed well and keeps being favored.
    EXPECT_GT(w.w_fp, 0.5);
}

TEST(WeightsTest, FlatGoalsKeepNeutralPriorities)
{
    WeightController wc(fastOptions());
    WeightComponents w;
    for (int i = 0; i < 50; ++i)
        w = wc.update(0.6, 0.8);
    EXPECT_NEAR(w.w_tp, 0.5, 1e-9);
    EXPECT_NEAR(w.w_fp, 0.5, 1e-9);
    EXPECT_NEAR(w.w_t, 0.5, 0.02);
}

TEST(WeightsTest, EqualizationComponentCountersImbalance)
{
    // Force throughput-heavy weights early in the period, then check
    // the equalization component pushes back below 0.5.
    WeightController wc(fastOptions());
    WeightComponents w;
    // Throughput keeps being prioritized because fairness improves.
    for (int i = 0; i < 60; ++i)
        w = wc.update(0.5, 0.4 + 0.005 * i);
    // Blend factor has grown; equalization fairness weight must now
    // exceed the throughput one if throughput was favored so far.
    if (w.w_t > 0.5)
        EXPECT_LT(w.w_te, 0.5);
}

TEST(WeightsTest, ResetPeriodsForgetsHistory)
{
    WeightController wc(fastOptions());
    for (int i = 0; i < 55; ++i)
        wc.update(0.3, 0.9);
    wc.resetPeriods();
    const auto w = wc.update(0.5, 0.5);
    EXPECT_NEAR(w.w_t, 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(w.blend, 0.0);
}

TEST(WeightsTest, InvalidOptionsRejected)
{
    WeightOptions bad = fastOptions();
    bad.prioritization_period = 0.01; // below dt
    EXPECT_THROW(WeightController{bad}, PanicError);
    WeightOptions bad2 = fastOptions();
    bad2.equalization_period = 0.5; // below T_P
    EXPECT_THROW(WeightController{bad2}, PanicError);
}

} // namespace
} // namespace core
} // namespace satori
