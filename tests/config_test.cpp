/**
 * @file
 * Unit and property tests for platforms, configurations, and the
 * configuration-space combinatorics (including the paper's Sec. II
 * search-space-size examples).
 */

#include <set>

#include <cmath>
#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/config/platform.hpp"

namespace satori {
namespace {

TEST(PlatformTest, PaperTestbedShape)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ASSERT_EQ(p.numResources(), 3u);
    EXPECT_EQ(p.units(0), 10); // cores
    EXPECT_EQ(p.units(1), 11); // LLC ways
    EXPECT_EQ(p.units(2), 10); // MBA steps
    EXPECT_EQ(p.indexOf(ResourceKind::Cores), 0);
    EXPECT_EQ(p.indexOf(ResourceKind::PowerCap), -1);
}

TEST(PlatformTest, DuplicateKindRejected)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    EXPECT_THROW(p.addResource(ResourceKind::Cores, 8), FatalError);
}

TEST(PlatformTest, ZeroUnitsRejected)
{
    PlatformSpec p;
    EXPECT_THROW(p.addResource(ResourceKind::Cores, 0), FatalError);
}

TEST(PlatformTest, RestrictedToSubset)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    const PlatformSpec llc_only =
        p.restrictedTo({ResourceKind::LlcWays});
    ASSERT_EQ(llc_only.numResources(), 1u);
    EXPECT_EQ(llc_only.units(0), 11);
    const PlatformSpec two = p.restrictedTo(
        {ResourceKind::LlcWays, ResourceKind::MemBandwidth});
    EXPECT_EQ(two.numResources(), 2u);
}

TEST(ConfigurationTest, EqualPartitionDistributesRemainders)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    const Configuration c = Configuration::equalPartition(p, 4);
    // 10 cores / 4 jobs: 3,3,2,2
    EXPECT_EQ(c.units(0, 0), 3);
    EXPECT_EQ(c.units(0, 1), 3);
    EXPECT_EQ(c.units(0, 2), 2);
    EXPECT_EQ(c.units(0, 3), 2);
    EXPECT_TRUE(c.isValidFor(p, 4));
}

TEST(ConfigurationTest, EqualPartitionRejectsTooManyJobs)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 3);
    EXPECT_THROW(Configuration::equalPartition(p, 4), FatalError);
}

TEST(ConfigurationTest, ValidityChecks)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    Configuration c = Configuration::equalPartition(p, 5);
    EXPECT_TRUE(c.isValidFor(p, 5));
    EXPECT_FALSE(c.isValidFor(p, 4)); // wrong job count
    c.units(0, 0) += 1;               // breaks the total
    EXPECT_FALSE(c.isValidFor(p, 5));
}

TEST(ConfigurationTest, NormalizedVectorSharesSumToOne)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    const Configuration c = Configuration::equalPartition(p, 5);
    const RealVec v = c.normalizedVector();
    ASSERT_EQ(v.size(), 15u);
    for (std::size_t r = 0; r < 3; ++r) {
        double sum = 0.0;
        for (std::size_t j = 0; j < 5; ++j)
            sum += v[r * 5 + j];
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(ConfigurationTest, TransferUnitRespectsMinimum)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    Configuration c = Configuration::equalPartition(p, 5);
    EXPECT_TRUE(c.transferUnit(0, 0, 1));
    EXPECT_EQ(c.units(0, 0), 1);
    EXPECT_EQ(c.units(0, 1), 3);
    // Job 0 is now at 1 core: further donation must be refused.
    EXPECT_FALSE(c.transferUnit(0, 0, 1));
    EXPECT_EQ(c.units(0, 0), 1);
    // Self-transfer refused.
    EXPECT_FALSE(c.transferUnit(0, 2, 2));
}

TEST(ConfigurationTest, Distances)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    const Configuration a = Configuration::equalPartition(p, 5);
    Configuration b = a;
    b.transferUnit(0, 0, 1);
    EXPECT_NEAR(Configuration::distance(a, b), std::sqrt(2.0), 1e-12);
    EXPECT_EQ(Configuration::l1Distance(a, b), 2);
    EXPECT_EQ(Configuration::l1Distance(a, a), 0);
}

TEST(ConfigurationTest, ToStringFormat)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    p.addResource(ResourceKind::LlcWays, 4);
    const Configuration c = Configuration::equalPartition(p, 2);
    EXPECT_EQ(c.toString(), "[2,2|2,2]");
}

TEST(CompositionSpaceTest, CountMatchesClosedForm)
{
    CompositionSpace s(10, 3);
    EXPECT_EQ(s.size(), binomial(9, 2));
}

TEST(CompositionSpaceTest, InvalidArgumentsRejected)
{
    EXPECT_THROW(CompositionSpace(2, 3), FatalError);
    EXPECT_THROW(CompositionSpace(3, 0), FatalError);
}

TEST(CompositionSpaceTest, EnumerationIsLexicographicAndComplete)
{
    CompositionSpace s(5, 3); // C(4,2) = 6 compositions
    ASSERT_EQ(s.size(), 6u);
    std::vector<std::vector<int>> all;
    for (std::uint64_t i = 0; i < s.size(); ++i)
        all.push_back(s.at(i));
    // Lexicographic order and all sums correct.
    for (std::size_t i = 0; i < all.size(); ++i) {
        int sum = 0;
        for (int v : all[i]) {
            EXPECT_GE(v, 1);
            sum += v;
        }
        EXPECT_EQ(sum, 5);
        if (i > 0)
            EXPECT_LT(all[i - 1], all[i]);
    }
    EXPECT_EQ(all.front(), (std::vector<int>{1, 1, 3}));
    EXPECT_EQ(all.back(), (std::vector<int>{3, 1, 1}));
}

/** Property sweep: rank/unrank are inverse bijections. */
class CompositionRoundTrip
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CompositionRoundTrip, AtThenRankIsIdentity)
{
    const auto [units, parts] = GetParam();
    CompositionSpace s(units, parts);
    std::set<std::vector<int>> seen;
    for (std::uint64_t i = 0; i < s.size(); ++i) {
        const auto comp = s.at(i);
        EXPECT_EQ(s.rank(comp), i);
        EXPECT_TRUE(seen.insert(comp).second) << "duplicate composition";
    }
    EXPECT_EQ(seen.size(), s.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompositionRoundTrip,
    ::testing::Values(std::make_pair(4, 2), std::make_pair(7, 3),
                      std::make_pair(10, 5), std::make_pair(11, 5),
                      std::make_pair(6, 6), std::make_pair(9, 1)));

TEST(CompositionSpaceTest, SamplesAreValid)
{
    CompositionSpace s(11, 5);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const auto comp = s.sample(rng);
        int sum = 0;
        for (int v : comp) {
            EXPECT_GE(v, 1);
            sum += v;
        }
        EXPECT_EQ(sum, 11);
    }
}

TEST(ConfigurationSpaceTest, PaperSearchSpaceSizes)
{
    // Sec. II: 3 jobs x 2 resources of 10 units -> 1,296.
    PlatformSpec two;
    two.addResource(ResourceKind::Cores, 10);
    two.addResource(ResourceKind::MemBandwidth, 10);
    EXPECT_EQ(ConfigurationSpace::sizeOf(two, 3), 1296u);
    // 4 jobs -> 7,056.
    EXPECT_EQ(ConfigurationSpace::sizeOf(two, 4), 7056u);
    // Adding a third 10-unit resource -> 592,704.
    PlatformSpec three = two;
    three.addResource(ResourceKind::LlcWays, 10);
    EXPECT_EQ(ConfigurationSpace::sizeOf(three, 4), 592704u);
}

TEST(ConfigurationSpaceTest, IndexBijection)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 5);
    ConfigurationSpace space(p, 3);
    ASSERT_EQ(space.size(), binomial(5, 2) * binomial(4, 2));
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        const Configuration c = space.at(i);
        EXPECT_TRUE(c.isValidFor(p, 3));
        EXPECT_EQ(space.rank(c), i);
    }
}

TEST(ConfigurationSpaceTest, SampleUniformish)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 5);
    ConfigurationSpace space(p, 2); // 4 configurations
    Rng rng(5);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 8000; ++i)
        counts[space.rank(space.sample(rng))]++;
    for (int c : counts) {
        EXPECT_GT(c, 1700);
        EXPECT_LT(c, 2300);
    }
}

TEST(ConfigurationSpaceTest, NeighborsAreValidOneUnitMoves)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    const Configuration c = Configuration::equalPartition(p, 5);
    const auto neighbors = space.neighbors(c);
    EXPECT_FALSE(neighbors.empty());
    for (const auto& n : neighbors) {
        EXPECT_TRUE(n.isValidFor(p, 5));
        EXPECT_EQ(Configuration::l1Distance(c, n), 2); // one move
    }
}

TEST(ConfigurationSpaceTest, NeighborsRespectMinimumUnits)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 2);
    ConfigurationSpace space(p, 2);
    const Configuration c = Configuration::equalPartition(p, 2);
    // Both jobs hold exactly one core: no transfers possible.
    EXPECT_TRUE(space.neighbors(c).empty());
}

} // namespace
} // namespace satori
