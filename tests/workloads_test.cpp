/**
 * @file
 * Tests for the workload suites and job-mix generation, including the
 * paper's qualitative workload facts that the analytic profiles must
 * encode.
 */

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/workloads/mixes.hpp"
#include "satori/workloads/suites.hpp"

namespace satori {
namespace workloads {
namespace {

TEST(SuitesTest, SuiteSizesMatchPaper)
{
    EXPECT_EQ(parsecSuite().size(), 7u);     // Table I + vips
    EXPECT_EQ(cloudSuite().size(), 5u);      // Table II
    EXPECT_EQ(ecpSuite().size(), 5u);        // Table III
}

TEST(SuitesTest, EveryProfileIsWellFormed)
{
    for (const auto* name : {"parsec", "cloudsuite", "ecp"}) {
        for (const auto& w : suiteByName(name)) {
            EXPECT_FALSE(w.name.empty());
            EXPECT_EQ(w.suite, name);
            EXPECT_FALSE(w.phases.empty()) << w.name;
            EXPECT_GT(w.fixed_work, 0.0) << w.name;
            for (const auto& p : w.phases) {
                EXPECT_GT(p.length, 0.0) << w.name;
                EXPECT_GT(p.base_ipc, 0.0) << w.name;
                EXPECT_GE(p.parallel_fraction, 0.0) << w.name;
                EXPECT_LE(p.parallel_fraction, 1.0) << w.name;
            }
            EXPECT_DOUBLE_EQ(
                w.cycleLength(),
                [&] {
                    Instructions t = 0;
                    for (const auto& p : w.phases)
                        t += p.length;
                    return t;
                }());
        }
    }
}

TEST(SuitesTest, LookupByName)
{
    EXPECT_EQ(workloadByName("canneal").suite, "parsec");
    EXPECT_EQ(workloadByName("web_search").suite, "cloudsuite");
    EXPECT_EQ(workloadByName("minife").suite, "ecp");
    EXPECT_THROW(workloadByName("not_a_workload"), FatalError);
    EXPECT_THROW(suiteByName("spec2017"), FatalError);
}

TEST(SuitesTest, FluidanimateIsTheMostCoreSensitiveParsec)
{
    // Sec. V attributes mix-0's low gain to fluidanimate's core
    // sensitivity; our profile must make it the most parallel.
    double fluid = 0.0, best_other = 0.0;
    for (const auto& w : parsecSuite()) {
        double p = 0.0;
        for (const auto& ph : w.phases)
            p = std::max(p, ph.parallel_fraction);
        if (w.name == "fluidanimate")
            fluid = p;
        else if (w.name != "swaptions") // swaptions is compute-bound too
            best_other = std::max(best_other, p);
    }
    EXPECT_GT(fluid, best_other);
}

TEST(SuitesTest, BlackscholesIsBandwidthBound)
{
    // High MPKI floor: cache ways cannot remove its memory traffic.
    const auto w = workloadByName("blackscholes");
    for (const auto& p : w.phases)
        EXPECT_GE(p.mrc.floorMpki(), 5.0);
}

TEST(SuitesTest, AmgAndHypreAreNearTwins)
{
    // The paper's easiest ECP mix pairs AMG and Hypre because their
    // resource requirements are similar.
    const auto amg = workloadByName("amg");
    const auto hypre = workloadByName("hypre");
    ASSERT_EQ(amg.phases.size(), hypre.phases.size());
    for (std::size_t i = 0; i < amg.phases.size(); ++i) {
        EXPECT_NEAR(amg.phases[i].base_ipc, hypre.phases[i].base_ipc,
                    0.2);
        EXPECT_NEAR(amg.phases[i].parallel_fraction,
                    hypre.phases[i].parallel_fraction, 0.05);
    }
}

TEST(MixesTest, CombinationCountsMatchPaper)
{
    EXPECT_EQ(allMixes(parsecSuite(), 5).size(), 21u); // C(7,5)
    EXPECT_EQ(allMixes(cloudSuite(), 3).size(), 10u);  // C(5,3)
    EXPECT_EQ(allMixes(ecpSuite(), 2).size(), 10u);    // C(5,2)
}

TEST(MixesTest, LabelsAndJobCounts)
{
    const auto mixes = allMixes(ecpSuite(), 2);
    for (const auto& m : mixes) {
        EXPECT_EQ(m.jobs.size(), 2u);
        EXPECT_NE(m.label.find('+'), std::string::npos);
    }
    // Lexicographic: first mix pairs the first two suite entries.
    EXPECT_EQ(mixes.front().jobs[0].name, "minife");
    EXPECT_EQ(mixes.front().jobs[1].name, "xsbench");
}

TEST(MixesTest, MixOfNamesCrossSuite)
{
    const JobMix m = mixOf({"canneal", "web_search", "amg"});
    ASSERT_EQ(m.jobs.size(), 3u);
    EXPECT_EQ(m.label, "canneal+web_search+amg");
    EXPECT_THROW(mixOf({"bogus"}), FatalError);
}

/** Property: combinations() enumerates exactly C(n,k) sorted subsets. */
class CombinationsProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(CombinationsProperty, CountAndOrder)
{
    const auto [n, k] = GetParam();
    const auto combos = combinations(n, k);
    EXPECT_EQ(combos.size(), binomial(n, k));
    for (std::size_t i = 0; i < combos.size(); ++i) {
        ASSERT_EQ(combos[i].size(), k);
        for (std::size_t j = 1; j < k; ++j)
            EXPECT_LT(combos[i][j - 1], combos[i][j]);
        if (i > 0)
            EXPECT_LT(combos[i - 1], combos[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CombinationsProperty,
    ::testing::Values(std::make_pair(5, 2), std::make_pair(7, 5),
                      std::make_pair(6, 6), std::make_pair(8, 1),
                      std::make_pair(10, 4)));

} // namespace
} // namespace workloads
} // namespace satori
