/**
 * @file
 * Tests for the offline exhaustive evaluator underpinning the Oracle:
 * correctness against brute-force metric computation, memoization,
 * and the strided-search fallback.
 */

#include <gtest/gtest.h>

#include "satori/sim/offline_eval.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {
namespace {

PlatformSpec
tinyPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    p.addResource(ResourceKind::LlcWays, 4);
    return p;
}

sim::SimulatedServer
makeTinyServer()
{
    return makeServer(tinyPlatform(),
                      workloads::mixOf({"canneal", "swaptions"}), 42);
}

TEST(OfflineEvalTest, MetricsMatchManualComputation)
{
    auto server = makeTinyServer();
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const Configuration c =
        Configuration::equalPartition(server.platform(), 2);
    const auto [t, f] = eval.metricsFor(c, sig);

    const auto ips = server.evaluateIps(c, sig);
    std::vector<Ips> iso;
    for (std::size_t j = 0; j < 2; ++j)
        iso.push_back(server.isolationIpsAt(j, 0));
    EXPECT_NEAR(t, normalizedThroughput(ThroughputMetric::SumIps, ips,
                                        iso),
                1e-12);
    EXPECT_NEAR(f, normalizedFairness(FairnessMetric::JainIndex,
                                      speedups(ips, iso)),
                1e-12);
}

TEST(OfflineEvalTest, BestForIsTrulyOptimal)
{
    auto server = makeTinyServer();
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    EXPECT_TRUE(best.exhaustive);

    // Brute-force the tiny space by hand and compare.
    const ConfigurationSpace& space = eval.space();
    double manual_best = -1.0;
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        const auto [t, f] = eval.metricsFor(space.at(i), sig);
        manual_best = std::max(manual_best, 0.5 * t + 0.5 * f);
    }
    EXPECT_NEAR(best.objective, manual_best, 1e-9);
}

TEST(OfflineEvalTest, WeightExtremesSelectTheRightCorners)
{
    auto server = makeTinyServer();
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const auto& t_opt = eval.bestFor(sig, 1.0, 0.0);
    const auto& f_opt = eval.bestFor(sig, 0.0, 1.0);
    // The throughput oracle can't have lower throughput than the
    // fairness oracle and vice versa.
    EXPECT_GE(t_opt.throughput, f_opt.throughput - 1e-12);
    EXPECT_GE(f_opt.fairness, t_opt.fairness - 1e-12);
    EXPECT_NEAR(t_opt.objective, t_opt.throughput, 1e-12);
    EXPECT_NEAR(f_opt.objective, f_opt.fairness, 1e-12);
}

TEST(OfflineEvalTest, MemoizationAvoidsRepeatSearches)
{
    auto server = makeTinyServer();
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    eval.bestFor(sig, 0.5, 0.5);
    EXPECT_EQ(eval.searchesPerformed(), 1u);
    eval.bestFor(sig, 0.5, 0.5);
    EXPECT_EQ(eval.searchesPerformed(), 1u); // memo hit
    eval.bestFor(sig, 1.0, 0.0);
    EXPECT_EQ(eval.searchesPerformed(), 2u); // new weights
    std::vector<std::size_t> other_sig(server.numJobs(), 1);
    eval.bestFor(other_sig, 0.5, 0.5);
    EXPECT_EQ(eval.searchesPerformed(), 3u); // new phase signature
}

TEST(OfflineEvalTest, StridedSearchFlagsNonExhaustive)
{
    auto server = makeTinyServer();
    OfflineEvaluator::Options opt;
    opt.max_evals = 3; // force striding on the tiny space
    OfflineEvaluator eval(server, opt);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    EXPECT_FALSE(best.exhaustive);
    EXPECT_TRUE(
        best.config.isValidFor(server.platform(), server.numJobs()));
}

TEST(OfflineEvalTest, BestConfigBeatsEqualPartition)
{
    auto server = makeTinyServer();
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    const auto [t, f] = eval.metricsFor(
        Configuration::equalPartition(server.platform(), 2), sig);
    EXPECT_GE(best.objective, 0.5 * t + 0.5 * f - 1e-12);
}

TEST(OfflineEvalTest, PaperScaleSearchCompletesQuickly)
{
    // 5 jobs on the paper platform: ~3.3M configurations. The tabled
    // search must stay well under a second.
    auto server = makeServer(
        PlatformSpec::paperTestbed(),
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"}),
        42);
    OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(server.numJobs(), 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    EXPECT_TRUE(best.exhaustive);
    EXPECT_GT(best.objective, 0.0);
}

} // namespace
} // namespace harness
} // namespace satori
