/**
 * @file
 * Tests for the SATORI controller (Algorithm 1): decision validity,
 * warm-up seeding, convergence/settling, reactivation, diagnostics,
 * and the goal-mode variants.
 */

#include <gtest/gtest.h>

#include "satori/core/controller.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/sim/monitor.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace core {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

sim::SimulatedServer
makeSmallServer(std::uint64_t seed = 42)
{
    return harness::makeServer(
        smallPlatform(),
        workloads::mixOf({"canneal", "swaptions", "vips"}), seed);
}

TEST(ControllerTest, AlwaysReturnsValidConfigurations)
{
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 150; ++i) {
        const auto obs = monitor.observe(0.1);
        const Configuration next = satori.decide(obs);
        ASSERT_TRUE(next.isValidFor(server.platform(), server.numJobs()))
            << "iteration " << i << ": " << next.toString();
        server.setConfiguration(next);
    }
}

TEST(ControllerTest, WarmupEvaluatesSeedsFirst)
{
    auto server = makeSmallServer();
    SatoriOptions o;
    o.dwell_intervals = 1;
    SatoriController satori(server.platform(), server.numJobs(), o);
    sim::PerfMonitor monitor(server);
    // The first decision after the initial observation must be the
    // first seed: the equal partition.
    const auto obs = monitor.observe(0.1);
    const Configuration first = satori.decide(obs);
    EXPECT_TRUE(first == Configuration::equalPartition(
                             server.platform(), server.numJobs()));
}

TEST(ControllerTest, SettlesOnStaticWorkload)
{
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    bool settled = false;
    for (int i = 0; i < 300 && !settled; ++i) {
        server.setConfiguration(satori.decide(monitor.observe(0.1)));
        settled = satori.diagnostics().settled;
    }
    EXPECT_TRUE(settled) << "controller never settled in 30 s";
}

TEST(ControllerTest, SettlingStopsProxyUpdates)
{
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 300; ++i)
        server.setConfiguration(satori.decide(monitor.observe(0.1)));
    if (satori.diagnostics().settled)
        EXPECT_DOUBLE_EQ(satori.diagnostics().proxy_change_pct, 0.0);
}

TEST(ControllerTest, DiagnosticsArePopulated)
{
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 30; ++i)
        server.setConfiguration(satori.decide(monitor.observe(0.1)));
    const SatoriDiagnostics& d = satori.diagnostics();
    EXPECT_GT(d.num_samples, 0u);
    EXPECT_GT(d.throughput, 0.0);
    EXPECT_GT(d.fairness, 0.0);
    EXPECT_GT(d.objective_value, 0.0);
    EXPECT_NEAR(d.weights.w_t + d.weights.w_f, 1.0, 1e-9);
}

TEST(ControllerTest, GoalModeWeights)
{
    auto server = makeSmallServer();
    sim::PerfMonitor monitor(server);
    SatoriOptions t_only;
    t_only.mode = GoalMode::ThroughputOnly;
    SatoriController tc(server.platform(), server.numJobs(), t_only);
    tc.decide(monitor.observe(0.1));
    EXPECT_DOUBLE_EQ(tc.diagnostics().weights.w_t, 1.0);
    EXPECT_DOUBLE_EQ(tc.diagnostics().weights.w_f, 0.0);

    SatoriOptions f_only;
    f_only.mode = GoalMode::FairnessOnly;
    SatoriController fc(server.platform(), server.numJobs(), f_only);
    fc.decide(monitor.observe(0.1));
    EXPECT_DOUBLE_EQ(fc.diagnostics().weights.w_f, 1.0);

    SatoriOptions stat;
    stat.mode = GoalMode::StaticEqual;
    SatoriController sc(server.platform(), server.numJobs(), stat);
    sc.decide(monitor.observe(0.1));
    EXPECT_DOUBLE_EQ(sc.diagnostics().weights.w_t, 0.5);
}

TEST(ControllerTest, VariantNames)
{
    EXPECT_EQ(goalModeName(GoalMode::Balanced), "SATORI");
    EXPECT_EQ(goalModeName(GoalMode::StaticEqual), "SATORI-static");
    EXPECT_EQ(goalModeName(GoalMode::ThroughputOnly),
              "Throughput-SATORI");
    EXPECT_EQ(goalModeName(GoalMode::FairnessOnly), "Fairness-SATORI");
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    EXPECT_EQ(satori.name(), "SATORI");
}

TEST(ControllerTest, ResetForgetsEverything)
{
    auto server = makeSmallServer();
    SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 100; ++i)
        server.setConfiguration(satori.decide(monitor.observe(0.1)));
    satori.reset();
    EXPECT_EQ(satori.diagnostics().num_samples, 0u);
    // First decision after reset is the first seed again.
    const Configuration next = satori.decide(monitor.observe(0.1));
    EXPECT_TRUE(next == Configuration::equalPartition(
                            server.platform(), server.numJobs()));
}

TEST(ControllerTest, DwellHoldsDecisions)
{
    auto server = makeSmallServer();
    SatoriOptions o;
    o.dwell_intervals = 4;
    SatoriController satori(server.platform(), server.numJobs(), o);
    sim::PerfMonitor monitor(server);
    const Configuration first = satori.decide(monitor.observe(0.1));
    // The next three decisions repeat the same configuration.
    for (int i = 0; i < 3; ++i) {
        server.setConfiguration(first);
        EXPECT_TRUE(satori.decide(monitor.observe(0.1)) == first);
    }
}

TEST(ControllerTest, WorksOnRestrictedPlatforms)
{
    // Single-resource ablation (Sec. V: SATORI-LLC-only vs dCAT).
    PlatformSpec llc_only;
    llc_only.addResource(ResourceKind::LlcWays, 8);
    auto server = harness::makeServer(
        llc_only, workloads::mixOf({"canneal", "swaptions"}), 7);
    SatoriController satori(llc_only, 2);
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 60; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(next.isValidFor(llc_only, 2));
        server.setConfiguration(next);
    }
}

TEST(ControllerTest, SingleJobDegenerateCase)
{
    auto server = harness::makeServer(smallPlatform(),
                                      workloads::mixOf({"vips"}), 3);
    SatoriController satori(server.platform(), 1);
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 30; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(next.isValidFor(server.platform(), 1));
        server.setConfiguration(next);
        // With one job, fairness is trivially 1.
        EXPECT_DOUBLE_EQ(satori.diagnostics().fairness, 1.0);
    }
}

} // namespace
} // namespace core
} // namespace satori
