/**
 * @file
 * Pins the decision-loop performance work's determinism contract:
 * the incremental GP path (rank-1 Cholesky appends + batched
 * acquisition) must produce decision traces byte-identical to the
 * full-refit path it replaced, over a real controller run that
 * exercises appends, window trims, settling, and baseline resets.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace {

std::string
runWithTrace(const std::string& path, bool incremental,
             const std::vector<std::string>& mix, double duration)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(p, workloads::mixOf(mix), 5);
    core::SatoriOptions options;
    options.engine.incremental = incremental;
    auto policy = harness::makePolicy("SATORI", server, options);

    {
        harness::TraceWriter trace(path, harness::TraceFormat::Csv);
        harness::ExperimentOptions opt;
        opt.duration = duration;
        opt.trace = &trace;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
    } // destructor flushes

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The load-bearing test for EngineOptions::incremental: every
 * per-interval decision record (time, chosen config, per-job IPS and
 * speedups, metrics) must match the full-refit path byte for byte.
 * 12 s at 100 ms intervals crosses the baseline-reset period and the
 * GP sample window, so appends, target-refreshes, and full-refit
 * fallbacks all occur.
 */
TEST(PerfPathTest, IncrementalDecisionTraceByteIdenticalToFullRefit)
{
    const std::string fast_path = "/tmp/satori_perf_fast.csv";
    const std::string full_path = "/tmp/satori_perf_full.csv";
    const std::vector<std::string> mix = {"canneal", "swaptions",
                                          "streamcluster"};
    const std::string fast = runWithTrace(fast_path, true, mix, 12.0);
    const std::string full = runWithTrace(full_path, false, mix, 12.0);
    EXPECT_FALSE(fast.empty());
    EXPECT_EQ(fast, full);
    std::remove(fast_path.c_str());
    std::remove(full_path.c_str());
}

/** Same contract on a second mix with a shorter, pre-settling run. */
TEST(PerfPathTest, IncrementalTraceMatchesOnSecondMix)
{
    const std::string fast_path = "/tmp/satori_perf_fast2.csv";
    const std::string full_path = "/tmp/satori_perf_full2.csv";
    const std::vector<std::string> mix = {"fluidanimate", "canneal"};
    const std::string fast = runWithTrace(fast_path, true, mix, 5.0);
    const std::string full = runWithTrace(full_path, false, mix, 5.0);
    EXPECT_FALSE(fast.empty());
    EXPECT_EQ(fast, full);
    std::remove(fast_path.c_str());
    std::remove(full_path.c_str());
}

} // namespace
} // namespace satori
