/**
 * @file
 * Tests for the SLO watchdog: spec parsing (round-trips, comments,
 * syntax errors with source+line), k-consecutive breach semantics,
 * recovery resets, fire-once-until-recovery, fatal mode, and the
 * JSONL event rendering.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/obs/stats_history.hpp"
#include "satori/obs/watchdog.hpp"

namespace satori {
namespace obs {
namespace {

using Facts = std::vector<std::pair<std::string, double>>;

/** Record one interval with one facts gauge. */
void
recordFact(StatsHistory& history, std::uint64_t interval, double value)
{
    history.record(static_cast<double>(interval), interval,
                   MetricsSnapshot{},
                   Facts{{"facts.throughput", value}});
}

// --- Spec parsing -----------------------------------------------------

TEST(SloSpecTest, ParsesRulesCommentsAndBlankLines)
{
    const SloSpec spec = SloSpec::parse("# comment\n"
                                        "\n"
                                        "facts.throughput < 2.0 for 5\n"
                                        "facts.fairness >= 0.25 for 1 intervals\n");
    ASSERT_EQ(spec.rules().size(), 2u);
    EXPECT_EQ(spec.rules()[0].metric, "facts.throughput");
    EXPECT_EQ(spec.rules()[0].op, SloOp::Lt);
    EXPECT_DOUBLE_EQ(spec.rules()[0].threshold, 2.0);
    EXPECT_EQ(spec.rules()[0].for_intervals, 5u);
    EXPECT_EQ(spec.rules()[1].op, SloOp::Ge);
}

TEST(SloSpecTest, ToStringRoundTrips)
{
    const SloSpec spec = SloSpec::parse("facts.objective <= 0.5 for 3\n"
                                        "satori.slo.breaches > 0 for 1\n");
    const SloSpec again = SloSpec::parse(spec.toString());
    EXPECT_EQ(again.toString(), spec.toString());
    ASSERT_EQ(again.rules().size(), 2u);
    EXPECT_EQ(again.rules()[0].op, SloOp::Le);
    EXPECT_EQ(again.rules()[1].op, SloOp::Gt);
}

TEST(SloSpecTest, SyntaxErrorsAreFatalWithSourceAndLine)
{
    // Bad operator.
    EXPECT_THROW((void)SloSpec::parse("m == 1 for 2\n", "spec.txt"),
                 FatalError);
    // Missing "for".
    EXPECT_THROW((void)SloSpec::parse("m < 1 2\n"), FatalError);
    // k = 0 is meaningless.
    EXPECT_THROW((void)SloSpec::parse("m < 1 for 0\n"), FatalError);
    // Garbage threshold.
    EXPECT_THROW((void)SloSpec::parse("m < cheese for 2\n"), FatalError);
    // Trailing junk.
    EXPECT_THROW((void)SloSpec::parse("m < 1 for 2 bananas\n"), FatalError);

    try {
        (void)SloSpec::parse("ok < 1 for 1\nbad rule here\n", "slo.txt");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("slo.txt:2"),
                  std::string::npos);
    }
}

TEST(SloSpecTest, ViolatesImplementsAllFourOps)
{
    SloRule rule;
    rule.threshold = 1.0;
    rule.op = SloOp::Lt;
    EXPECT_TRUE(rule.violates(0.5));
    EXPECT_FALSE(rule.violates(1.0));
    rule.op = SloOp::Le;
    EXPECT_TRUE(rule.violates(1.0));
    EXPECT_FALSE(rule.violates(1.1));
    rule.op = SloOp::Gt;
    EXPECT_TRUE(rule.violates(1.1));
    EXPECT_FALSE(rule.violates(1.0));
    rule.op = SloOp::Ge;
    EXPECT_TRUE(rule.violates(1.0));
    EXPECT_FALSE(rule.violates(0.9));
}

// --- Evaluation -------------------------------------------------------

TEST(WatchdogTest, BreachFiresAfterKConsecutiveViolations)
{
    StatsHistory history;
    history.setEnabled(true);
    Watchdog dog;
    dog.configure(SloSpec::parse("facts.throughput < 2.0 for 3\n"));
    EXPECT_TRUE(dog.enabled());

    // Two violating intervals: no breach yet.
    for (std::uint64_t i = 0; i < 2; ++i) {
        recordFact(history, i, 1.0);
        EXPECT_TRUE(dog.evaluate(history, static_cast<double>(i), i).empty());
    }
    EXPECT_EQ(dog.breaching(), 0u);

    // Third consecutive violation fires exactly one event.
    recordFact(history, 2, 1.0);
    const auto fired = dog.evaluate(history, 2.0, 2);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].interval, 2u);
    EXPECT_DOUBLE_EQ(fired[0].value, 1.0);
    EXPECT_EQ(fired[0].rule.metric, "facts.throughput");
    EXPECT_EQ(dog.breaching(), 1u);
    EXPECT_EQ(dog.breachCount(), 1u);

    // Staying in violation does not re-fire.
    recordFact(history, 3, 1.0);
    EXPECT_TRUE(dog.evaluate(history, 3.0, 3).empty());
    EXPECT_EQ(dog.breaching(), 1u);
    EXPECT_EQ(dog.breachCount(), 1u);
}

TEST(WatchdogTest, RecoveryResetsTheConsecutiveRun)
{
    StatsHistory history;
    history.setEnabled(true);
    Watchdog dog;
    dog.configure(SloSpec::parse("facts.throughput < 2.0 for 2\n"));

    recordFact(history, 0, 1.0);
    EXPECT_TRUE(dog.evaluate(history, 0.0, 0).empty());
    // A healthy interval resets the run.
    recordFact(history, 1, 5.0);
    EXPECT_TRUE(dog.evaluate(history, 1.0, 1).empty());
    recordFact(history, 2, 1.0);
    EXPECT_TRUE(dog.evaluate(history, 2.0, 2).empty());
    // Second consecutive violation now fires.
    recordFact(history, 3, 1.0);
    EXPECT_EQ(dog.evaluate(history, 3.0, 3).size(), 1u);

    // Recovery clears breaching state and allows a re-fire later.
    recordFact(history, 4, 5.0);
    EXPECT_TRUE(dog.evaluate(history, 4.0, 4).empty());
    EXPECT_EQ(dog.breaching(), 0u);
    recordFact(history, 5, 1.0);
    recordFact(history, 6, 1.0);
    (void)dog.evaluate(history, 5.0, 5);
    EXPECT_EQ(dog.evaluate(history, 6.0, 6).size(), 1u);
    EXPECT_EQ(dog.breachCount(), 2u);
}

TEST(WatchdogTest, AbsentMetricIsHealthy)
{
    StatsHistory history;
    history.setEnabled(true);
    Watchdog dog;
    dog.configure(SloSpec::parse("facts.nonexistent < 2.0 for 1\n"));
    recordFact(history, 0, 1.0);
    EXPECT_TRUE(dog.evaluate(history, 0.0, 0).empty());
    EXPECT_EQ(dog.breaching(), 0u);
}

TEST(WatchdogTest, FatalOnBreachThrows)
{
    StatsHistory history;
    history.setEnabled(true);
    Watchdog dog;
    dog.configure(SloSpec::parse("facts.throughput < 2.0 for 1\n"));
    dog.setFatalOnBreach(true);
    EXPECT_TRUE(dog.fatalOnBreach());
    recordFact(history, 0, 1.0);
    // The fatal path is driven by the Observability hook, not
    // evaluate() itself: evaluate() reports, the caller aborts.
    const auto fired = dog.evaluate(history, 0.0, 0);
    EXPECT_EQ(fired.size(), 1u);
}

TEST(WatchdogTest, EventsJsonlRendersOneRecordPerBreach)
{
    StatsHistory history;
    history.setEnabled(true);
    Watchdog dog;
    dog.configure(SloSpec::parse("facts.throughput < 2.0 for 1\n"));
    recordFact(history, 7, 1.5);
    (void)dog.evaluate(history, 7.0, 7);

    const std::string jsonl = dog.eventsJsonl();
    EXPECT_NE(jsonl.find("\"interval\":7"), std::string::npos);
    EXPECT_NE(jsonl.find("facts.throughput"), std::string::npos);
    EXPECT_NE(jsonl.find("\"value\":1.5"), std::string::npos);
    ASSERT_EQ(dog.events().size(), 1u);
    EXPECT_EQ(dog.events()[0].toJson() + "\n", jsonl);

    dog.clear();
    EXPECT_FALSE(dog.enabled());
    EXPECT_TRUE(dog.events().empty());
    EXPECT_EQ(dog.breachCount(), 0u);
}

} // namespace
} // namespace obs
} // namespace satori
