/**
 * @file
 * Tests for the experiment trace writer (CSV and JSON Lines) and its
 * integration with the experiment runner.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {
namespace {

TraceRecord
sampleRecord()
{
    TraceRecord rec;
    rec.time = 1.5;
    rec.policy = "TestPolicy";
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    rec.config = Configuration::equalPartition(p, 2);
    rec.ips = {1e9, 2e9};
    rec.speedups = {0.5, 0.6};
    rec.throughput = 0.55;
    rec.fairness = 0.99;
    return rec;
}

std::vector<std::string>
linesOf(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(TraceWriterTest, CsvHasHeaderAndRow)
{
    const std::string path = "/tmp/satori_trace_test.csv";
    {
        TraceWriter w(path, TraceFormat::Csv);
        w.write(sampleRecord());
        w.write(sampleRecord());
        EXPECT_EQ(w.count(), 2u);
        w.flush();
    }
    const auto lines = linesOf(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("time,policy,config"), std::string::npos);
    EXPECT_NE(lines[0].find("ips_0"), std::string::npos);
    EXPECT_NE(lines[0].find("speedup_1"), std::string::npos);
    EXPECT_NE(lines[1].find("TestPolicy"), std::string::npos);
    EXPECT_NE(lines[1].find("\"[2,2]\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceWriterTest, JsonLinesAreWellFormedObjects)
{
    const std::string path = "/tmp/satori_trace_test.jsonl";
    {
        TraceWriter w(path, TraceFormat::JsonLines);
        w.write(sampleRecord());
        w.flush();
    }
    const auto lines = linesOf(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].front(), '{');
    EXPECT_EQ(lines[0].back(), '}');
    EXPECT_NE(lines[0].find("\"policy\":\"TestPolicy\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"speedups\":[0.5,0.6]"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceWriterTest, BadPathThrows)
{
    EXPECT_THROW(TraceWriter("/nonexistent/dir/x.csv",
                             TraceFormat::Csv),
                 FatalError);
}

TEST(TraceWriterTest, RunnerIntegrationWritesOneRecordPerInterval)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 5);
    policies::EqualPartitionPolicy policy(p, 2);

    const std::string path = "/tmp/satori_trace_runner.csv";
    std::remove(path.c_str());
    TraceWriter trace(path, TraceFormat::Csv);
    ExperimentOptions opt;
    opt.duration = 2.0;
    opt.trace = &trace;
    (void)ExperimentRunner(opt).run(server, policy, "");
    // The final file only appears once the writer is closed (records
    // stream into "<path>.tmp" until then).
    trace.close();

    EXPECT_EQ(trace.count(), 20u);
    const auto lines = linesOf(path);
    EXPECT_EQ(lines.size(), 21u); // header + 20 intervals
    std::remove(path.c_str());
}

} // namespace
} // namespace harness
} // namespace satori
