/**
 * @file
 * Tests for the analytic performance model: miss-ratio curves, phase
 * sequencing, and the CPI/Amdahl/bandwidth composition.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/perfmodel/mrc.hpp"
#include "satori/perfmodel/perf.hpp"
#include "satori/perfmodel/phase.hpp"

namespace satori {
namespace perfmodel {
namespace {

TEST(MrcTest, ExponentialEndpointsAndMonotonicity)
{
    const auto mrc = MissRatioCurve::exponential(30.0, 2.0, 4.0);
    EXPECT_NEAR(mrc.mpki(1), 30.0, 1e-9);
    EXPECT_NEAR(mrc.floorMpki(), 2.0, 1e-9);
    for (int w = 1; w < 20; ++w)
        EXPECT_GE(mrc.mpki(w), mrc.mpki(w + 1));
    EXPECT_NEAR(mrc.mpki(100), 2.0, 1e-6);
}

TEST(MrcTest, TableLookupAndClamp)
{
    const auto mrc = MissRatioCurve::table({10.0, 6.0, 3.0});
    EXPECT_DOUBLE_EQ(mrc.mpki(1), 10.0);
    EXPECT_DOUBLE_EQ(mrc.mpki(3), 3.0);
    EXPECT_DOUBLE_EQ(mrc.mpki(9), 3.0); // clamp to last entry
}

TEST(MrcTest, TableRejectsIncreasingValues)
{
    EXPECT_THROW(MissRatioCurve::table({1.0, 2.0}), PanicError);
}

TEST(MrcTest, ContinuousInterpolationBetweenWays)
{
    const auto mrc = MissRatioCurve::table({10.0, 6.0, 3.0});
    EXPECT_NEAR(mrc.mpkiAt(1.5), 8.0, 1e-12);
    EXPECT_NEAR(mrc.mpkiAt(2.5), 4.5, 1e-12);
}

TEST(MrcTest, SCurveHasCliffAtKnee)
{
    const auto mrc = MissRatioCurve::sCurve(25.0, 3.0, 6.0, 0.8);
    EXPECT_NEAR(mrc.mpki(1), 25.0, 1e-9);
    // Well below the knee the curve is nearly flat...
    const double drop_before = mrc.mpki(2) - mrc.mpki(3);
    // ...and falls steeply across the knee.
    const double drop_across = mrc.mpki(5) - mrc.mpki(7);
    EXPECT_GT(drop_across, 5.0 * std::max(drop_before, 1e-9));
    // Beyond the knee it approaches the floor.
    EXPECT_NEAR(mrc.mpki(12), 3.0, 0.5);
    for (int w = 1; w < 15; ++w)
        EXPECT_GE(mrc.mpki(w), mrc.mpki(w + 1));
}

TEST(MrcTest, StackDistanceCurveMonotone)
{
    const auto mrc = MissRatioCurve::fromStackDistances(20.0, 6.0, 0.5, 12);
    EXPECT_NEAR(mrc.mpki(1), 20.0, 1e-9);
    for (int w = 1; w < 12; ++w)
        EXPECT_GE(mrc.mpki(w), mrc.mpki(w + 1));
}

TEST(PhaseSequenceTest, AdvanceWrapsCyclically)
{
    PhaseParams a, b;
    a.label = "a";
    a.length = 100;
    b.label = "b";
    b.length = 50;
    PhaseSequence seq({a, b});
    EXPECT_EQ(seq.current().label, "a");
    seq.advance(99);
    EXPECT_EQ(seq.current().label, "a");
    seq.advance(1);
    EXPECT_EQ(seq.current().label, "b");
    seq.advance(50); // wraps back to a
    EXPECT_EQ(seq.current().label, "a");
    EXPECT_EQ(seq.currentIndex(), 0u);
}

TEST(PhaseSequenceTest, LargeAdvanceCrossesMultipleBoundaries)
{
    PhaseParams a, b;
    a.length = 10;
    b.length = 10;
    PhaseSequence seq({a, b});
    seq.advance(35); // 3.5 cycles of a phase -> lands in phase b
    EXPECT_EQ(seq.currentIndex(), 1u);
    EXPECT_DOUBLE_EQ(seq.progressInPhase(), 5.0);
}

TEST(PhaseSequenceTest, EmptyOrInvalidRejected)
{
    EXPECT_THROW(PhaseSequence({}), FatalError);
    PhaseParams zero;
    zero.length = 0;
    EXPECT_THROW(PhaseSequence({zero}), FatalError);
}

TEST(AmdahlTest, KnownValues)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 8), 1.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 8), 8.0);
    EXPECT_NEAR(amdahlSpeedup(0.5, 2), 1.0 / 0.75, 1e-12);
}

PhaseParams
uncoupledPhase()
{
    PhaseParams p;
    p.base_ipc = 1.5;
    p.parallel_fraction = 0.9;
    p.mrc = MissRatioCurve::exponential(20.0, 4.0, 3.0);
    p.cache_pressure = 0.0; // disable coupling for monotonicity tests
    p.miss_penalty_cycles = 150.0;
    p.bytes_per_miss = 80.0;
    return p;
}

TEST(PerfModelTest, MoreCoresMoreIpsWithoutCoupling)
{
    const auto phase = uncoupledPhase();
    const MachineParams m = MachineParams::paperLike();
    double prev = 0.0;
    for (int c = 1; c <= 10; ++c) {
        AllocationView a{c, 11, 1.0, 1.0};
        const double ips = evaluatePhase(phase, m, a).ips;
        EXPECT_GT(ips, prev) << "cores=" << c;
        prev = ips;
    }
}

TEST(PerfModelTest, MoreWaysNeverHurt)
{
    const auto phase = uncoupledPhase();
    const MachineParams m = MachineParams::paperLike();
    double prev = 0.0;
    for (int w = 1; w <= 11; ++w) {
        AllocationView a{4, w, 1.0, 1.0};
        const double ips = evaluatePhase(phase, m, a).ips;
        EXPECT_GE(ips, prev) << "ways=" << w;
        prev = ips;
    }
}

TEST(PerfModelTest, BandwidthCapBindsStreamingPhase)
{
    PhaseParams phase = uncoupledPhase();
    phase.mrc = MissRatioCurve::exponential(25.0, 20.0, 2.0);
    phase.bytes_per_miss = 110.0;
    const MachineParams m = MachineParams::paperLike();
    const AllocationView starved{8, 4, 0.05, 1.0};
    const auto r = evaluatePhase(phase, m, starved);
    EXPECT_TRUE(r.bw_limited);
    EXPECT_NEAR(r.bw_used_gbps, 0.05 * m.peak_bw_gbps, 1e-9);
    // Doubling the bandwidth share ~doubles IPS while the cap binds.
    const AllocationView fed{8, 4, 0.1, 1.0};
    const auto r2 = evaluatePhase(phase, m, fed);
    ASSERT_TRUE(r2.bw_limited);
    EXPECT_NEAR(r2.ips / r.ips, 2.0, 0.01);
}

TEST(PerfModelTest, ComputePhaseIgnoresBandwidth)
{
    PhaseParams phase = uncoupledPhase();
    phase.mrc = MissRatioCurve::exponential(0.5, 0.2, 2.0);
    const MachineParams m = MachineParams::paperLike();
    const auto lo = evaluatePhase(phase, m, {4, 4, 0.1, 1.0});
    const auto hi = evaluatePhase(phase, m, {4, 4, 1.0, 1.0});
    EXPECT_FALSE(lo.bw_limited);
    EXPECT_NEAR(lo.ips, hi.ips, 1e-6);
}

TEST(PerfModelTest, CachePressureCouplesCoresAndWays)
{
    PhaseParams phase = uncoupledPhase();
    phase.cache_pressure = 0.4;
    const MachineParams m = MachineParams::paperLike();
    // With few ways, adding cores raises the miss rate.
    const auto few_cores = evaluatePhase(phase, m, {1, 3, 1.0, 1.0});
    const auto many_cores = evaluatePhase(phase, m, {8, 3, 1.0, 1.0});
    EXPECT_GT(many_cores.mpki, few_cores.mpki);
}

TEST(PerfModelTest, PowerCapScalesPerformance)
{
    const auto phase = uncoupledPhase();
    const MachineParams m = MachineParams::paperLike();
    const auto full = evaluatePhase(phase, m, {4, 8, 1.0, 1.0});
    AllocationView capped{4, 8, 1.0, 0.5};
    const auto half = evaluatePhase(phase, m, capped);
    EXPECT_LT(half.ips, full.ips);
    // Above the fair share there is no boost (min with 1).
    AllocationView over{4, 8, 1.0, 2.0};
    EXPECT_NEAR(evaluatePhase(phase, m, over).ips, full.ips, 1e-6);
}

/** Property: IPS is always finite and positive over the whole grid. */
class PerfGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PerfGridProperty, IpsPositiveAndFinite)
{
    const auto [c, w, b] = GetParam();
    PhaseParams phase;
    phase.base_ipc = 1.0;
    phase.mrc = MissRatioCurve::sCurve(30.0, 3.0, 5.0, 1.0);
    phase.cache_pressure = 0.3;
    const MachineParams m = MachineParams::paperLike();
    AllocationView a{c, w, b / 10.0, 1.0};
    const auto r = evaluatePhase(phase, m, a);
    EXPECT_TRUE(std::isfinite(r.ips));
    EXPECT_GT(r.ips, 0.0);
    EXPECT_GE(r.bw_demand_gbps, r.bw_used_gbps - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfGridProperty,
    ::testing::Combine(::testing::Values(1, 3, 6, 10),
                       ::testing::Values(1, 4, 8, 11),
                       ::testing::Values(1, 5, 10)));

} // namespace
} // namespace perfmodel
} // namespace satori
