/**
 * @file
 * Cross-module API tests: the workflows a downstream user composes
 * from the public headers - custom platforms (including the
 * power-cap extension), loader-defined workloads driving the
 * simulator, acquisition-function variants inside the controller,
 * and trace-backed experiment pipelines.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "satori/satori.hpp"

namespace satori {
namespace {

TEST(ApiTest, ExtendedTestbedHasFourResources)
{
    const PlatformSpec p = PlatformSpec::extendedTestbed();
    ASSERT_EQ(p.numResources(), 4u);
    EXPECT_GE(p.indexOf(ResourceKind::PowerCap), 0);
    // The 4-D space is much bigger than the 3-D one.
    EXPECT_GT(ConfigurationSpace::sizeOf(p, 5),
              ConfigurationSpace::sizeOf(PlatformSpec::paperTestbed(),
                                         5));
}

TEST(ApiTest, SatoriPartitionsFourResourcesEndToEnd)
{
    const PlatformSpec p = PlatformSpec::extendedTestbed();
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions", "vips"}), 17);
    core::SatoriController satori(p, server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 120; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(next.isValidFor(p, 3));
        server.setConfiguration(next);
    }
    EXPECT_GT(satori.diagnostics().throughput, 0.0);
}

TEST(ApiTest, PowerStarvationIsVisibleToTheOptimizer)
{
    // On the extended platform, a power-starved configuration must
    // measure worse than the equal partition, so the optimizer has a
    // gradient to follow.
    const PlatformSpec p = PlatformSpec::extendedTestbed();
    auto server = harness::makeServer(
        p, workloads::mixOf({"swaptions", "vips"}), 3, 0.0);
    const auto equal_ips = server.step(0.1);

    Configuration starved = server.configuration();
    const auto power =
        static_cast<std::size_t>(p.indexOf(ResourceKind::PowerCap));
    // Drain job 0's power budget to the minimum.
    while (starved.transferUnit(power, 0, 1)) {
    }
    server.setConfiguration(starved);
    for (int i = 0; i < 8; ++i)
        server.step(0.1); // let the transient decay
    const auto starved_ips = server.step(0.1);
    EXPECT_LT(starved_ips[0], equal_ips[0]);
}

TEST(ApiTest, LoaderWorkloadsDriveTheSimulator)
{
    const auto custom = workloads::parseWorkloadText(
        "workload stress\n"
        "  phase burn\n"
        "    base_ipc 1.2\n"
        "    parallel_fraction 0.9\n"
        "    mpki_one 18\n"
        "    mpki_floor 6\n"
        "    mrc cliff 4.0 0.8\n"
        "    length 5e9\n");
    workloads::JobMix mix;
    mix.label = "stress+vips";
    mix.jobs.push_back(custom[0]);
    mix.jobs.push_back(workloads::workloadByName("vips"));

    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(p, mix, 9);
    core::SatoriController satori(p, 2);
    harness::ExperimentOptions opt;
    opt.duration = 8.0;
    const auto result =
        harness::ExperimentRunner(opt).run(server, satori, mix.label);
    EXPECT_GT(result.mean_throughput, 0.0);
    EXPECT_GT(result.mean_fairness, 0.0);
}

TEST(ApiTest, AcquisitionVariantsRunInsideTheController)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    for (const auto kind :
         {bo::AcquisitionKind::ExpectedImprovement,
          bo::AcquisitionKind::Ucb,
          bo::AcquisitionKind::ProbabilityOfImprovement}) {
        auto server = harness::makeServer(p, mix, 23);
        core::SatoriOptions opt;
        opt.engine.acquisition = kind;
        core::SatoriController satori(p, 2, opt);
        sim::PerfMonitor monitor(server);
        for (int i = 0; i < 60; ++i) {
            const auto next = satori.decide(monitor.observe(0.1));
            ASSERT_TRUE(next.isValidFor(p, 2));
            server.setConfiguration(next);
        }
    }
}

TEST(ApiTest, RbfKernelWorksAsAlternativeProxy)
{
    bo::EngineOptions eng;
    // A controller can be built around an RBF GP by pre-seeding the
    // engine; here we check the GP-level swap directly.
    bo::GaussianProcess gp(std::make_unique<bo::RbfKernel>(0.4), 1e-4);
    gp.fit({{0.0}, {0.5}, {1.0}}, {0.0, 1.0, 0.0});
    EXPECT_GT(gp.predict({0.5}).mean, gp.predict({0.0}).mean);
    (void)eng;
}

TEST(ApiTest, TraceBackedComparisonPipeline)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    auto server = harness::makeServer(p, mix, 31);
    core::SatoriController satori(p, 2);

    const std::string path = "/tmp/satori_api_trace.jsonl";
    harness::TraceWriter trace(path, harness::TraceFormat::JsonLines);
    harness::ExperimentOptions opt;
    opt.duration = 5.0;
    opt.trace = &trace;
    const auto result =
        harness::ExperimentRunner(opt).run(server, satori, mix.label);
    trace.flush();
    EXPECT_EQ(trace.count(), 50u);
    EXPECT_GT(result.mean_objective, 0.0);
    std::remove(path.c_str());
}

TEST(ApiTest, OfflineEvaluatorHandlesFourResources)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    p.addResource(ResourceKind::LlcWays, 4);
    p.addResource(ResourceKind::MemBandwidth, 4);
    p.addResource(ResourceKind::PowerCap, 4);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 13);
    harness::OfflineEvaluator eval(server);
    const std::vector<std::size_t> sig(2, 0);
    const auto& best = eval.bestFor(sig, 0.5, 0.5);
    EXPECT_TRUE(best.exhaustive);
    EXPECT_TRUE(best.config.isValidFor(p, 2));
    EXPECT_GT(best.objective, 0.0);
}

TEST(ApiTest, MakeServerRespectsNoiseParameter)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    const auto mix = workloads::mixOf({"vips"});
    auto noiseless = harness::makeServer(p, mix, 3, 0.0);
    const auto a = noiseless.step(0.1);
    const auto b = noiseless.step(0.1);
    EXPECT_NEAR(a[0], b[0], a[0] * 1e-9);

    auto noisy = harness::makeServer(p, mix, 3, 0.10);
    const auto c = noisy.step(0.1);
    const auto d = noisy.step(0.1);
    EXPECT_GT(std::abs(c[0] - d[0]), c[0] * 1e-4);
}

} // namespace
} // namespace satori
