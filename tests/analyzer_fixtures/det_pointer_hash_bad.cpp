// Fixture: hashing a pointer value bakes ASLR into the output.
#include <cstdint>

struct Job;

std::uint64_t jobKey(const Job* job)
{
    return reinterpret_cast<std::uintptr_t>(job) * 0x9e3779b97f4a7c15ull;
}
