// Fixture: a named struct makes the call sites self-describing.
#ifndef SATORI_API_RAW_PARAMS_GOOD_HPP
#define SATORI_API_RAW_PARAMS_GOOD_HPP

namespace fixture {

struct Allocation
{
    int cores = 0;
    int ways = 0;
    double bandwidth_gbps = 0.0;
};

void allocate(const Allocation& amounts);

} // namespace fixture

#endif // SATORI_API_RAW_PARAMS_GOOD_HPP
