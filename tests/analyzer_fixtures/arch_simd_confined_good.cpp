// Fixture: vector work routed through the linalg::simd API - no
// intrinsics in the consuming subsystem, so the scalar-exact-fallback
// contract stays with the kernels.
#include <cstddef>

namespace satori {
namespace linalg {
namespace simd {
void fmaAccum(double* acc, const double* xs, double a, std::size_t n);
} // namespace simd
} // namespace linalg

void
accumulateScaled(double* acc, const double* xs, double a, std::size_t n)
{
    linalg::simd::fmaAccum(acc, xs, a, n);
}

} // namespace satori
