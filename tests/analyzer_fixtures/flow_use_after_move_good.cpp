// Clean twin: the moved-from vector is re-established (clear) before
// any further use, which is the sanctioned reuse idiom.
#include <utility>
#include <vector>

namespace fixture {

std::vector<int>
consume(std::vector<int> items)
{
    std::vector<int> sink = std::move(items);
    sink.push_back(1);
    items.clear();
    items.push_back(2);
    return items;
}

} // namespace fixture
