// Fixture: raw std::thread construction and detach outside harness/.
#include <thread>

void work();

void
launch()
{
    std::thread worker(work);
    worker.detach();
}
