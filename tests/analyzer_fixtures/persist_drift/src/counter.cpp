// Deliberate fixture: Counter's op sequence gained a putDouble but
// the checked-in manifest (schema.txt) still records the old
// sequence under the same, un-bumped format version.

namespace fixture {

constexpr unsigned kSnapshotFormatVersion = 1;

class StateWriter
{
public:
    void putU64(unsigned long long v);
    void putDouble(double v);
};

class StateReader
{
public:
    unsigned long long getU64();
    double getDouble();
};

class Counter
{
public:
    void saveState(StateWriter& w) const
    {
        w.putU64(count_);
        w.putDouble(mean_);
    }

    void restoreState(StateReader& r)
    {
        count_ = r.getU64();
        mean_ = r.getDouble();
    }

private:
    unsigned long long count_ = 0;
    double mean_ = 0.0;
};

} // namespace fixture
