// Fixture: adjacent raw resource amounts are swappable silently.
#ifndef SATORI_API_RAW_PARAMS_BAD_HPP
#define SATORI_API_RAW_PARAMS_BAD_HPP

namespace fixture {

void allocate(int cores, int ways, double bandwidth_gbps);

} // namespace fixture

#endif // SATORI_API_RAW_PARAMS_BAD_HPP
