// Deliberate fixture: src/gadgets/ names a subsystem the layering
// DAG has never heard of.

namespace fixture {

int
widget()
{
    return 2;
}

} // namespace fixture
