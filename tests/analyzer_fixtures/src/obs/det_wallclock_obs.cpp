// Fixture: identical clock reads to det_wallclock_bad.cpp, but the
// path sits under src/obs/ where the wallclock allowlist applies.
#include <chrono>
#include <ctime>

double sampleNow()
{
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return static_cast<double>(std::time(nullptr));
}
