// Fixture: identical clock reads to det_wallclock_bad.cpp at a path
// under src/obs/ that is NOT one of the named allowlist entries
// (obs/tracer, obs/http_exporter, obs/stats_history) - proving the
// allowlist covers exactly those sources, not the whole obs layer.
#include <chrono>
#include <ctime>

double sampleNow()
{
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return static_cast<double>(std::time(nullptr));
}
