// Fixture: identical clock reads to det_wallclock_bad.cpp, but the
// path matches the obs/stats_history allowlist entry (the history
// store may stamp wall-clock retention ages), so det-wallclock stays
// silent.
#include <chrono>
#include <ctime>

double sampleNow()
{
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return static_cast<double>(std::time(nullptr));
}
