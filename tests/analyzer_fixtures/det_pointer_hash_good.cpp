// Fixture: key on a stable id, not the object's address.
#include <cstdint>

struct Job
{
    std::uint64_t id;
};

std::uint64_t jobKey(const Job& job)
{
    return job.id * 0x9e3779b97f4a7c15ull;
}
