// Fixture: cross-slot accumulation inside a parallelFor body races.
#include <cstddef>
#include <vector>

struct Pool;
void parallelFor(Pool& pool, std::size_t count, void (*fn)(std::size_t));

void
tally(Pool& pool, const std::vector<double>& samples)
{
    double sum = 0.0;
    parallelFor(pool, samples.size(), [&](std::size_t i) {
        sum += samples[i];
    });
    (void)sum;
}
