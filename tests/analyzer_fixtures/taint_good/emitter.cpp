// Fixture: same emit chain as taint_bad, but the source is
// deterministic — no finding.
unsigned workerTag();
void emit(double value);

double
sampleValue()
{
    return static_cast<double>(workerTag());
}

void
recordSample()
{
    emit(sampleValue());
}
