// Fixture: the helper is deterministic, so the emit site downstream
// stays clean.
unsigned
workerTag()
{
    return 7u;
}
