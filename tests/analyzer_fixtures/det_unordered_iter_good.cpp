// Fixture: emit from a sorted snapshot, not the unordered container.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>

void dump(const std::map<std::string, int>& table)
{
    for (const auto& kv : table)
        std::cout << kv.first << "=" << kv.second << "\n";
}
