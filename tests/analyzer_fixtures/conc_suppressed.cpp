// Fixture: one violation of each per-file conc rule, every one
// silenced by an inline allow — the file must analyze clean.
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

struct Pool
{
    template <typename F> void submit(F&& f);
};

void parallelFor(Pool& pool, std::size_t count, void (*fn)(std::size_t));

// satori-analyzer: allow(conc-global-mutable)
static int g_counter = 0;

// satori-analyzer: allow(conc-unannotated-mutex)
std::mutex g_lock;

void
launch(Pool& pool, const std::vector<double>& samples)
{
    // satori-analyzer: allow(conc-ref-capture)
    pool.submit([&] { g_counter = g_counter + 1; });

    // satori-analyzer: allow(conc-raw-thread)
    std::thread worker([] {});
    worker.join();

    double sum = 0.0;
    parallelFor(pool, samples.size(), [&](std::size_t i) {
        // satori-analyzer: allow(conc-parallel-accumulate)
        sum += samples[i];
    });
    (void)sum;
}
