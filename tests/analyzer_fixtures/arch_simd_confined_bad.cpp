// Fixture: CPU intrinsics outside src/linalg/ (arch-simd-confined).
// A subsystem hand-rolling its own AVX2 path instead of calling the
// dispatching linalg::simd kernels.
#include <immintrin.h>

namespace satori {

double
sumFourLanes(const double* xs)
{
    const __m256d v = _mm256_loadu_pd(xs);
    double out[4];
    _mm256_storeu_pd(out, v);
    return out[0] + out[1] + out[2] + out[3];
}

} // namespace satori
