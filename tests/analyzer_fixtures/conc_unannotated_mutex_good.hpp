// Fixture: the mutex declares what it protects via SATORI_GUARDED_BY.
#ifndef SATORI_CONC_UNANNOTATED_MUTEX_GOOD_HPP
#define SATORI_CONC_UNANNOTATED_MUTEX_GOOD_HPP

#include "satori/common/thread_annotations.hpp"

namespace fixture {

class Ledger
{
  public:
    void record(double value);

  private:
    satori::common::Mutex mutex_;
    double total_ SATORI_GUARDED_BY(mutex_) = 0.0;
};

} // namespace fixture

#endif // SATORI_CONC_UNANNOTATED_MUTEX_GOOD_HPP
