// Call-graph resolution fixture: Alpha::refresh shares its name with
// Beta::refresh (beta.cpp); an unqualified call inside a member must
// resolve to the caller's own class, and an unqualified call in a
// free function must resolve to the free definition only.

namespace fixture {

class Alpha
{
public:
    void refresh() { marks_ = marks_ + 1; }
    void tick() { refresh(); }

private:
    int marks_ = 0;
};

void
pokeAudit()
{
    audit();
}

} // namespace fixture
