// Call-graph resolution fixture: Beta::refresh plus a typed-receiver
// call site that must prune the same-named Alpha::refresh
// (alpha.cpp), and the free audit() that alpha.cpp's free caller
// resolves to.

namespace fixture {

class Beta
{
public:
    void refresh() { beats_ = beats_ + 1; }
    void audit() { beats_ = 0; }

private:
    int beats_ = 0;
};

void
audit()
{
}

void
driveBeta(Beta& b)
{
    b.refresh();
}

} // namespace fixture
