// Fixture: seeds come from the experiment plan.
unsigned freshSeed(unsigned plan_seed)
{
    return plan_seed;
}
