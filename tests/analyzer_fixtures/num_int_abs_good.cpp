// Fixture: <cmath> included, the double overload binds.
#include <cmath>

double magnitude(double delta)
{
    return std::abs(delta);
}
