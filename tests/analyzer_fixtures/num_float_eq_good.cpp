// Fixture: tolerance compare, plus the sanctioned abs-zero idiom.
#include <cmath>

bool converged(double prev, double next)
{
    return std::abs(prev - next) < 1e-9;
}

bool isZero(double x)
{
    return std::abs(x) == 0.0;
}
