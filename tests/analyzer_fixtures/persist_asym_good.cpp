// Clean twin: the get sequence mirrors the put sequence exactly.

namespace fixture {

class StateWriter
{
public:
    void putU64(unsigned long long v);
    void putDouble(double v);
};

class StateReader
{
public:
    unsigned long long getU64();
    double getDouble();
};

class Counter
{
public:
    void saveState(StateWriter& w) const
    {
        w.putU64(count_);
        w.putDouble(mean_);
    }

    void restoreState(StateReader& r)
    {
        count_ = r.getU64();
        mean_ = r.getDouble();
    }

private:
    unsigned long long count_ = 0;
    double mean_ = 0.0;
};

} // namespace fixture
