// Fixture: a mutex member with no SATORI_GUARDED_BY siblings — the
// lock exists but nothing states what it protects.
#ifndef SATORI_CONC_UNANNOTATED_MUTEX_BAD_HPP
#define SATORI_CONC_UNANNOTATED_MUTEX_BAD_HPP

#include <mutex>

namespace fixture {

class Ledger
{
  public:
    void record(double value);

  private:
    std::mutex mutex_;
    double total_ = 0.0;
};

} // namespace fixture

#endif // SATORI_CONC_UNANNOTATED_MUTEX_BAD_HPP
