// Deliberate fixture: a common-layer file reaching up into bo, which
// the layering DAG forbids (common depends on nothing).
#include "satori/bo/engine.hpp"

namespace fixture {

int
placeholder()
{
    return 1;
}

} // namespace fixture
