// Clean twin: the fatal call is the last statement on its path.
#include <cstdlib>

namespace fixture {

int
checkedDivide(int num, int den)
{
    if (den == 0)
        std::abort();
    return num / den;
}

} // namespace fixture
