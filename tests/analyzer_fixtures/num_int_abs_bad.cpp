// Fixture: std::abs on a double without <cmath>; <cstdlib>'s integer
// overload may bind and truncate.
#include <cstdlib>

double magnitude(double delta)
{
    return std::abs(delta);
}
