#ifndef SATORI_HEADER_GUARD_GOOD_HPP
#define SATORI_HEADER_GUARD_GOOD_HPP

namespace fixture {

[[nodiscard]] int guarded();

} // namespace fixture

#endif // SATORI_HEADER_GUARD_GOOD_HPP
