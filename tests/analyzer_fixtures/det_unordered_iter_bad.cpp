// Fixture: emitting while iterating an unordered container.
#include <iostream>
#include <string>
#include <unordered_map>

void dump(const std::unordered_map<std::string, int>& table)
{
    for (const auto& kv : table)
        std::cout << kv.first << "=" << kv.second << "\n";
}
