// Fixture: member lookups on std::thread are not construction, and
// pool-routed work passes.
#include <cstddef>
#include <thread>

struct Pool;
void parallelFor(Pool& pool, std::size_t count, void (*fn)(std::size_t));

std::size_t
launch(Pool& pool)
{
    const std::size_t width = std::thread::hardware_concurrency();
    parallelFor(pool, width, [](std::size_t i) { (void)i; });
    return width;
}
