#ifndef WRONG_GUARD_NAME_HPP
#define WRONG_GUARD_NAME_HPP

namespace fixture {

using namespace std;

} // namespace fixture

#endif // WRONG_GUARD_NAME_HPP
