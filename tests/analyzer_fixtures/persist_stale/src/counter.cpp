// Deliberate fixture: the source bumped kSnapshotFormatVersion to 2
// but the manifest (schema.txt) was not regenerated and still says
// version 1.

namespace fixture {

constexpr unsigned kSnapshotFormatVersion = 2;

class StateWriter
{
public:
    void putU64(unsigned long long v);
};

class StateReader
{
public:
    unsigned long long getU64();
};

class Counter
{
public:
    void saveState(StateWriter& w) const { w.putU64(count_); }
    void restoreState(StateReader& r) { count_ = r.getU64(); }

private:
    unsigned long long count_ = 0;
};

} // namespace fixture
