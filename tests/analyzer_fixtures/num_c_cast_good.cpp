// Fixture: explicit rounding before the narrowing conversion.
#include <cmath>

int toUnits(double share)
{
    return static_cast<int>(std::lround(share));
}
