// Fixture: single-argument constructor invites implicit conversions.
#ifndef SATORI_API_EXPLICIT_BAD_HPP
#define SATORI_API_EXPLICIT_BAD_HPP

namespace fixture {

class Budget
{
  public:
    Budget(double watts);

  private:
    double watts_;
};

} // namespace fixture

#endif // SATORI_API_EXPLICIT_BAD_HPP
