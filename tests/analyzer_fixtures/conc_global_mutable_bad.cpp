// Fixture: unguarded mutable static state.
static int g_call_count = 0;

int
bump()
{
    g_call_count = g_call_count + 1;
    return g_call_count;
}
