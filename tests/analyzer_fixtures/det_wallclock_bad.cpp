// Fixture: wall-clock reads outside the allowlist.
#include <chrono>
#include <ctime>

double sampleNow()
{
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return static_cast<double>(std::time(nullptr));
}
