// Fixture: the slot-write idiom — each work item owns out[i]; the
// aggregation happens after the join, in index order.
#include <cstddef>
#include <vector>

struct Pool;
void parallelFor(Pool& pool, std::size_t count, void (*fn)(std::size_t));

double
tally(Pool& pool, const std::vector<double>& samples)
{
    std::vector<double> out(samples.size(), 0.0);
    parallelFor(pool, samples.size(), [&](std::size_t i) {
        double scaled = samples[i] * 2.0;
        scaled += 1.0;
        out[i] = scaled;
        for (std::size_t k = 0; k < 2; ++k)
            out[i] += static_cast<double>(k);
    });
    double sum = 0.0;
    for (double v : out)
        sum += v;
    return sum;
}
