// Clean fixture: correct guard, no using directives outside comments
// (satori_lint must accept this file with zero diagnostics, even
// though this comment mentions using namespace satori).

#ifndef SATORI_GOOD_HPP
#define SATORI_GOOD_HPP

namespace satori {

/* Block comments may also say using namespace std; without
 * tripping the lint. */
inline const char*
goodFixture()
{
    return "using namespace inside a string literal is fine too";
}

} // namespace satori

#endif // SATORI_GOOD_HPP
