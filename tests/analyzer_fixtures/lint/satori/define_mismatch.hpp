// Known-bad fixture: the #define does not repeat the #ifndef
// (satori_lint must report guard-define-mismatch).

#ifndef SATORI_DEFINE_MISMATCH_HPP
#define SATORI_DEFINE_MISMATCH_TYPO_HPP

namespace satori {
inline int
defineMismatchFixture()
{
    return 2;
}
} // namespace satori

#endif // SATORI_DEFINE_MISMATCH_HPP
