// Known-bad fixture: a `using namespace` directive at header scope
// (satori_lint must report using-namespace). The directive in this
// comment line must NOT be reported: using namespace std;

#ifndef SATORI_USING_NS_HPP
#define SATORI_USING_NS_HPP

#include <vector>

using namespace std;

namespace satori {
inline std::size_t
usingNsFixture()
{
    return vector<int>{4}.size();
}
} // namespace satori

#endif // SATORI_USING_NS_HPP
