// Known-bad fixture: no include guard at all (satori_lint must
// report missing-guard).

namespace satori {
inline int
noGuardFixture()
{
    return 3;
}
} // namespace satori
