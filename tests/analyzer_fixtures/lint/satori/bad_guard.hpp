// Known-bad fixture: the guard name does not match the file path
// (satori_lint must report guard-mismatch).

#ifndef SATORI_WRONG_NAME_HPP
#define SATORI_WRONG_NAME_HPP

namespace satori {
inline int
badGuardFixture()
{
    return 1;
}
} // namespace satori

#endif // SATORI_WRONG_NAME_HPP
