// Deliberate fixture: the result of a [[nodiscard]] member call is
// dropped on the floor as a whole expression statement.

namespace fixture {

class Budget
{
public:
    [[nodiscard]] int remaining() const { return left_; }
    void spend(int amount) { left_ -= amount; }

private:
    int left_ = 100;
};

int
drain(Budget& budget)
{
    budget.remaining();
    budget.spend(10);
    return budget.remaining();
}

} // namespace fixture
