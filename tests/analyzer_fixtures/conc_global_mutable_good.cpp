// Fixture: statics that are immutable or self-synchronizing pass.
#include <atomic>

static const int kLimit = 8;
static constexpr double kScale = 0.5;
static std::atomic<int> g_calls{0};

int
bump()
{
    return g_calls.fetch_add(1) + kLimit + static_cast<int>(kScale);
}
