// Clean twin: every [[nodiscard]] result is consumed.

namespace fixture {

class Budget
{
public:
    [[nodiscard]] int remaining() const { return left_; }
    void spend(int amount) { left_ -= amount; }

private:
    int left_ = 100;
};

int
drain(Budget& budget)
{
    const int before = budget.remaining();
    budget.spend(before / 2);
    return budget.remaining();
}

} // namespace fixture
