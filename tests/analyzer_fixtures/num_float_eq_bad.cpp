// Fixture: raw equality between floating expressions.
bool converged(double prev, double next)
{
    return prev == next;
}
