// Fixture: value-returning accessors without [[nodiscard]].
#ifndef SATORI_API_NODISCARD_BAD_HPP
#define SATORI_API_NODISCARD_BAD_HPP

namespace fixture {

class Meter
{
  public:
    double reading() const { return reading_; }

  private:
    double reading_ = 0.0;
};

int totalUnits();

} // namespace fixture

#endif // SATORI_API_NODISCARD_BAD_HPP
