// Deliberate fixture: a statement only reachable by falling through
// std::abort(), which never returns.
#include <cstdlib>

namespace fixture {

int
checkedDivide(int num, int den)
{
    if (den == 0) {
        std::abort();
        num = 0;
    }
    return num / den;
}

} // namespace fixture
