// Fixture: by-value capture into a deferred executor is safe, and
// parallelFor joins before returning so [&] is sanctioned there.
struct Pool
{
    template <typename F> void submit(F&& f);
};

void parallelFor(Pool& pool, int count, void (*fn)(int));

void
schedule(Pool& pool, int* out)
{
    int local = 7;
    pool.submit([local] { (void)local; });
    parallelFor(pool, 4, +[](int i) { (void)i; });
    (void)out;
}
