// Fixture: two identical violations; the inline allow silences exactly
// the first one.
bool first(double a, double b)
{
    // satori-analyzer: allow(num-float-eq)
    return a == b;
}

bool second(double a, double b)
{
    return a == b;
}
