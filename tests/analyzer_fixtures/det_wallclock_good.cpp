// Fixture: simulated time flows in as a parameter; no clock reads.
double sampleNow(double sim_now)
{
    return sim_now;
}
