// Fixture: a [&] lambda handed to a deferred executor can outlive
// the captured frame.
struct Pool
{
    template <typename F> void submit(F&& f);
};

void
schedule(Pool& pool)
{
    int local = 7;
    pool.submit([&] { local = local + 1; });
}
