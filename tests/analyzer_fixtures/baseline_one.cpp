// Fixture: two violations on distinct lines; the baseline entry
// fingerprints the first and leaves the second active.
bool grandfathered(double a, double b)
{
    return a == b;
}

bool fresh(double c, double d)
{
    return c == d;
}
