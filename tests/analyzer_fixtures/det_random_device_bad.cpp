// Fixture: nondeterministic seeding.
#include <random>

unsigned freshSeed()
{
    std::random_device rd;
    return rd();
}
