// Fixture: the inversion from lock_order_bad, silenced by an inline
// allow on the reported definition.
#include <mutex>

extern std::mutex mu_a;
extern std::mutex mu_b;
extern int state_a SATORI_GUARDED_BY(mu_a);

// satori-analyzer: allow(conc-lock-order)
void moveForward()
{
    std::lock_guard<std::mutex> a(mu_a);
    std::lock_guard<std::mutex> b(mu_b);
    state_a = state_a + 1;
}
