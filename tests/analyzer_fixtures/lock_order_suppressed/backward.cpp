// Fixture: the reverse order, as in lock_order_bad.
#include <mutex>

extern std::mutex mu_a;
extern std::mutex mu_b;
extern int state_b SATORI_GUARDED_BY(mu_b);

void
takeA()
{
    std::lock_guard<std::mutex> a(mu_a);
}

void
moveBackward()
{
    std::lock_guard<std::mutex> b(mu_b);
    state_b = state_b + 1;
    takeA();
}
