// Fixture: the emit site never touches a clock itself; the taint
// arrives through the call chain from source.cpp.
unsigned workerTag();
void emit(double value);

double
sampleValue()
{
    return static_cast<double>(workerTag());
}

void
recordSample()
{
    emit(sampleValue());
}
