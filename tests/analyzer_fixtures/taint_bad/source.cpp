// Fixture: a nondeterminism source no per-line rule flags — thread
// identity — that only the cross-file taint pass can connect to an
// emit site in the sibling file.
#include <sstream>
#include <thread>

unsigned
workerTag()
{
    std::ostringstream out;
    out << std::this_thread::get_id();
    return static_cast<unsigned>(out.str().size());
}
