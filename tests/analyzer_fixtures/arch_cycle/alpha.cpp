// Deliberate fixture: alpha and beta include each other.
#include "beta.cpp"

namespace fixture {

int
alphaValue()
{
    return 1;
}

} // namespace fixture
