// Deliberate fixture: the other half of the alpha <-> beta cycle.
#include "alpha.cpp"

namespace fixture {

int
betaValue()
{
    return 2;
}

} // namespace fixture
