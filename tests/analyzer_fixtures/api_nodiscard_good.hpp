// Fixture: the same API with results marked [[nodiscard]].
#ifndef SATORI_API_NODISCARD_GOOD_HPP
#define SATORI_API_NODISCARD_GOOD_HPP

namespace fixture {

class Meter
{
  public:
    [[nodiscard]] double reading() const { return reading_; }

  private:
    double reading_ = 0.0;
};

[[nodiscard]] int totalUnits();

} // namespace fixture

#endif // SATORI_API_NODISCARD_GOOD_HPP
