// Fixture: C-style narrowing of a floating expression.
int toUnits(double share)
{
    return (int)share;
}
