// Fixture: same global order as forward.cpp — no inversion.
#include <mutex>

extern std::mutex mu_a;
extern std::mutex mu_b;
extern int state_b SATORI_GUARDED_BY(mu_b);

void
alsoForward()
{
    std::lock_guard<std::mutex> a(mu_a);
    std::lock_guard<std::mutex> b(mu_b);
    state_b = state_b + 1;
}
