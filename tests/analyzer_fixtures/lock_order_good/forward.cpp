// Fixture: both files agree on the mu_a-before-mu_b order.
#include <mutex>

extern std::mutex mu_a;
extern std::mutex mu_b;
extern int state_a SATORI_GUARDED_BY(mu_a);

void
moveForward()
{
    std::lock_guard<std::mutex> a(mu_a);
    std::lock_guard<std::mutex> b(mu_b);
    state_a = state_a + 1;
}
