// Deliberate fixture: restoreState reads the codec ops in a
// different order than saveState wrote them.

namespace fixture {

class StateWriter
{
public:
    void putU64(unsigned long long v);
    void putDouble(double v);
};

class StateReader
{
public:
    unsigned long long getU64();
    double getDouble();
};

class Counter
{
public:
    void saveState(StateWriter& w) const
    {
        w.putU64(count_);
        w.putDouble(mean_);
    }

    void restoreState(StateReader& r)
    {
        mean_ = r.getDouble();
        count_ = r.getU64();
    }

private:
    unsigned long long count_ = 0;
    double mean_ = 0.0;
};

} // namespace fixture
