// Fixture: the taint finding lands on the emit-site definition line
// and an inline allow there silences it.
unsigned workerTag();
void emit(double value);

// satori-analyzer: allow(det-taint-reaches-trace)
void recordSample()
{
    emit(static_cast<double>(workerTag()));
}
