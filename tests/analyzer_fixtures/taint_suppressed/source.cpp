// Fixture: same source as taint_bad; the emit site carries the
// allow, so the tree analyzes clean.
#include <sstream>
#include <thread>

unsigned
workerTag()
{
    std::ostringstream out;
    out << std::this_thread::get_id();
    return static_cast<unsigned>(out.str().size());
}
