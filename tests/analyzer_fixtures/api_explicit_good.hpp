// Fixture: explicit constructor; copy ctor stays implicit-friendly.
#ifndef SATORI_API_EXPLICIT_GOOD_HPP
#define SATORI_API_EXPLICIT_GOOD_HPP

namespace fixture {

class Budget
{
  public:
    explicit Budget(double watts);
    Budget(const Budget& other);

  private:
    double watts_;
};

} // namespace fixture

#endif // SATORI_API_EXPLICIT_GOOD_HPP
