// Deliberate fixture: `items` is read after std::move consumed it.
#include <utility>
#include <vector>

namespace fixture {

std::vector<int>
consume(std::vector<int> items)
{
    std::vector<int> sink = std::move(items);
    sink.push_back(1);
    return items;
}

} // namespace fixture
