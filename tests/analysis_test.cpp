// Tests for satori::analysis: each seeded violation must trip exactly
// its check pack with the right check id, and clean inputs must pass.

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "satori/analysis/invariants.hpp"
#include "satori/core/controller.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/linalg/matrix.hpp"
#include "satori/workloads/mixes.hpp"

using namespace satori;
using analysis::Auditor;
using analysis::CheckId;

namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec platform;
    platform.addResource(ResourceKind::Cores, 4);
    platform.addResource(ResourceKind::LlcWays, 5);
    return platform;
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

} // namespace

TEST(AnalysisAuditor, CleanAllocationPasses)
{
    Auditor auditor;
    const PlatformSpec platform = smallPlatform();
    const Configuration config =
        Configuration::equalPartition(platform, 2);
    auditor.checkAllocation(platform, 2, config, __FILE__, __LINE__);
    EXPECT_EQ(auditor.checksRun(), 1u);
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(AnalysisAuditor, OverCommittedAllocationTripsSum)
{
    Auditor auditor;
    // Cores row sums to 5 > capacity 4; ways row is exact.
    const Configuration config({{3, 2}, {3, 2}});
    auditor.checkAllocation(smallPlatform(), 2, config, __FILE__,
                            __LINE__);
    const auto stats = auditor.violations(CheckId::AllocationSum);
    ASSERT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.worst_magnitude, 1.0); // one unit over
    EXPECT_NE(stats.first_detail.find("cores"), std::string::npos);
    EXPECT_EQ(auditor.violations(CheckId::AllocationMinUnit).count, 0u);
}

TEST(AnalysisAuditor, StarvedJobTripsMinUnit)
{
    Auditor auditor;
    // Job 1 gets zero cores; sums still match capacity.
    const Configuration config({{4, 0}, {3, 2}});
    auditor.checkAllocation(smallPlatform(), 2, config, __FILE__,
                            __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::AllocationMinUnit).count, 1u);
    EXPECT_EQ(auditor.violations(CheckId::AllocationSum).count, 0u);
}

TEST(AnalysisAuditor, WrongShapeTripsShape)
{
    Auditor auditor;
    const Configuration config({{2, 2}}); // one resource, platform has 2
    auditor.checkAllocation(smallPlatform(), 2, config, __FILE__,
                            __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::AllocationShape).count, 1u);
}

TEST(AnalysisAuditor, ObjectiveCleanPasses)
{
    Auditor auditor;
    auditor.checkObjective({0.8, 0.9}, {0.5, 0.5}, true, __FILE__,
                           __LINE__);
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(AnalysisAuditor, NanGoalTripsFinite)
{
    Auditor auditor;
    auditor.checkObjective({kNan, 0.9}, {0.5, 0.5}, true, __FILE__,
                           __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::ObjectiveFinite).count, 1u);
}

TEST(AnalysisAuditor, ZeroJainTripsGoalRange)
{
    Auditor auditor;
    auditor.checkObjective({0.5, 0.0}, {0.5, 0.5}, true, __FILE__,
                           __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::ObjectiveGoalRange).count, 1u);
    // The same value is legal for a non-Jain fairness metric.
    Auditor lenient;
    lenient.checkObjective({0.5, 0.0}, {0.5, 0.5}, false, __FILE__,
                           __LINE__);
    EXPECT_EQ(lenient.violationCount(), 0u);
}

TEST(AnalysisAuditor, UnnormalizedWeightsTripWeightNorm)
{
    Auditor auditor;
    auditor.checkObjective({0.5, 0.5}, {0.7, 0.6}, true, __FILE__,
                           __LINE__);
    const auto stats = auditor.violations(CheckId::ObjectiveWeightNorm);
    ASSERT_EQ(stats.count, 1u);
    EXPECT_NEAR(stats.worst_magnitude, 0.3, 1e-9); // sum 1.3 vs 1
}

TEST(AnalysisAuditor, NegativePosteriorVarianceTrips)
{
    Auditor auditor;
    auditor.checkPosteriorVariance(-1e-3, 1.0, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::BoPosteriorVariance).count, 1u);
    // Numerical dust below zero is tolerated.
    Auditor tolerant;
    tolerant.checkPosteriorVariance(-1e-9, 1.0, __FILE__, __LINE__);
    EXPECT_EQ(tolerant.violationCount(), 0u);
}

TEST(AnalysisAuditor, NonSpdKernelMatrixTrips)
{
    Auditor auditor;
    // Eigenvalues 21 and -19: indefinite beyond any jitter escalation.
    linalg::Matrix k(2, 2);
    k(0, 0) = 1.0;
    k(0, 1) = 20.0;
    k(1, 0) = 20.0;
    k(1, 1) = 1.0;
    auditor.checkKernelMatrix(k, __FILE__, __LINE__);
    const auto stats = auditor.violations(CheckId::BoKernelNotSpd);
    ASSERT_EQ(stats.count, 1u);
    EXPECT_NE(stats.first_detail.find("Gershgorin"), std::string::npos);
}

TEST(AnalysisAuditor, AsymmetricKernelMatrixTrips)
{
    Auditor auditor;
    linalg::Matrix k(2, 2);
    k(0, 0) = 1.0;
    k(0, 1) = 0.5;
    k(1, 0) = 0.2;
    k(1, 1) = 1.0;
    auditor.checkKernelMatrix(k, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::BoKernelNotSpd).count, 1u);
}

TEST(AnalysisAuditor, NearSingularKernelMatrixTripsJitter)
{
    Auditor auditor;
    // Mildly indefinite (eigenvalues 2.001 and -0.001): factorizable
    // only after the jitter escalates far beyond the 1e-6 tolerance.
    linalg::Matrix k(2, 2);
    k(0, 0) = 1.0;
    k(0, 1) = 1.001;
    k(1, 0) = 1.001;
    k(1, 1) = 1.0;
    auditor.checkKernelMatrix(k, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::BoCholeskyJitter).count, 1u);
    EXPECT_EQ(auditor.violations(CheckId::BoKernelNotSpd).count, 0u);
}

TEST(AnalysisAuditor, SpdKernelMatrixPasses)
{
    Auditor auditor;
    linalg::Matrix k = linalg::Matrix::identity(3);
    auditor.checkKernelMatrix(k, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(AnalysisAuditor, NanTargetTripsTrainingSet)
{
    Auditor auditor;
    auditor.checkTrainingSet({{0.5, 0.5}, {0.25, 0.75}}, {0.9, kNan},
                             __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::BoTrainingSet).count, 1u);
}

TEST(AnalysisAuditor, RaggedInputsTripTrainingSet)
{
    Auditor auditor;
    auditor.checkTrainingSet({{0.5, 0.5}, {0.25}}, {0.9, 0.8}, __FILE__,
                             __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::BoTrainingSet).count, 1u);
}

TEST(AnalysisAuditor, NanIpsTripsMonitorSanity)
{
    Auditor auditor;
    auditor.checkMeasuredIps({1e9, kNan}, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::MonitorIpsSane).count, 1u);
    auditor.checkMeasuredIps({-1.0, 1e9}, __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::MonitorIpsSane).count, 2u);
}

TEST(AnalysisAuditor, ObservationChecksSizesBaselineAndTime)
{
    Auditor auditor;
    // Clean observation.
    auditor.checkObservation({1e9, 2e9}, {2e9, 3e9}, 2, 0.2, 0.1,
                             __FILE__, __LINE__);
    EXPECT_EQ(auditor.violationCount(), 0u);
    // Size mismatch.
    auditor.checkObservation({1e9}, {2e9, 3e9}, 2, 0.3, 0.2, __FILE__,
                             __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::MonitorSizeMismatch).count, 1u);
    // Zero baseline.
    auditor.checkObservation({1e9, 2e9}, {0.0, 3e9}, 2, 0.4, 0.3,
                             __FILE__, __LINE__);
    EXPECT_EQ(
        auditor.violations(CheckId::MonitorBaselinePositive).count, 1u);
    // Time did not advance.
    auditor.checkObservation({1e9, 2e9}, {2e9, 3e9}, 2, 0.4, 0.4,
                             __FILE__, __LINE__);
    EXPECT_EQ(auditor.violations(CheckId::MonitorTimeOrder).count, 1u);
}

TEST(AnalysisAuditor, ReportAggregatesFirstAndWorst)
{
    Auditor auditor;
    const PlatformSpec platform = smallPlatform();
    auditor.checkAllocation(platform, 2, Configuration({{3, 2}, {3, 2}}),
                            __FILE__, __LINE__);
    auditor.checkAllocation(platform, 2, Configuration({{4, 3}, {3, 2}}),
                            __FILE__, __LINE__);
    const auto stats = auditor.violations(CheckId::AllocationSum);
    ASSERT_EQ(stats.count, 2u);
    // First was +1 over, worst is +3 over.
    EXPECT_NE(stats.first_detail.find("assigned 5"), std::string::npos);
    EXPECT_DOUBLE_EQ(stats.worst_magnitude, 3.0);
    EXPECT_NE(stats.first_site.find("analysis_test.cpp"),
              std::string::npos);

    const std::string report = auditor.renderReport();
    EXPECT_NE(report.find("allocation-sum"), std::string::npos);
    EXPECT_NE(report.find("count=2"), std::string::npos);
    EXPECT_NE(report.find("first:"), std::string::npos);
    EXPECT_NE(report.find("worst:"), std::string::npos);

    auditor.clear();
    EXPECT_EQ(auditor.checksRun(), 0u);
    EXPECT_EQ(auditor.violationCount(), 0u);
    EXPECT_EQ(auditor.violations(CheckId::AllocationSum).count, 0u);
}

TEST(AnalysisAuditor, CheckIdNamesAreUniqueKebab)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < analysis::kNumCheckIds; ++i) {
        const std::string name =
            analysis::checkIdName(static_cast<CheckId>(i));
        EXPECT_FALSE(name.empty());
        for (char c : name)
            EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '-');
        EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
    }
}

// With the audit hooks compiled in, a healthy end-to-end SATORI run
// must stream through every pack without a single violation.
TEST(AnalysisAuditorIntegration, CleanRunReportsZeroViolations)
{
#if defined(SATORI_AUDIT_ENABLED) && SATORI_AUDIT_ENABLED
    analysis::globalAuditor().clear();
    const PlatformSpec platform = PlatformSpec::smallTestbed();
    auto mix = workloads::mixOf({"canneal", "streamcluster", "vips"});
    auto server = harness::makeServer(platform, mix);
    core::SatoriController controller(platform, server.numJobs());
    harness::ExperimentOptions options;
    options.duration = 8.0;
    harness::ExperimentRunner runner(options);
    const harness::ExperimentResult result =
        runner.run(server, controller, mix.label);
    EXPECT_EQ(result.mix_label, mix.label);
    EXPECT_GT(analysis::globalAuditor().checksRun(), 0u);
    EXPECT_EQ(analysis::globalAuditor().violationCount(), 0u)
        << analysis::globalAuditor().renderReport();
#else
    GTEST_SKIP() << "library built without SATORI_AUDIT";
#endif
}
