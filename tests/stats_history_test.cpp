/**
 * @file
 * Tests for obs::StatsHistory: recording snapshots into per-series
 * rings, retention by count / age / bytes, windowed order statistics
 * against hand-computed goldens on a fake (explicit) clock,
 * delta-encoded counter rates including reset handling, and
 * concurrent record/query through harness::ThreadPool.
 */

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "satori/harness/parallel.hpp"
#include "satori/obs/stats_history.hpp"

namespace satori {
namespace obs {
namespace {

using Facts = std::vector<std::pair<std::string, double>>;

/** A minimal snapshot with one counter and one gauge. */
MetricsSnapshot
makeSnap(std::uint64_t counter_value, double gauge_value)
{
    MetricsSnapshot snap;
    snap.counters.push_back({"test.counter", "help", counter_value});
    snap.gauges.push_back({"test.gauge", "help", gauge_value});
    return snap;
}

/** Enable with the given retention options. */
StatsHistoryOptions
opts(std::size_t capacity, double max_age = 0.0, std::size_t max_bytes = 0)
{
    StatsHistoryOptions o;
    o.capacity = capacity;
    o.max_age_seconds = max_age;
    o.max_bytes = max_bytes;
    return o;
}

// --- Recording basics -------------------------------------------------

TEST(StatsHistoryTest, DisabledRecordIsNoOp)
{
    StatsHistory history;
    EXPECT_FALSE(history.enabled());
    history.record(1.0, 0, makeSnap(1, 2.0), {});
    EXPECT_EQ(history.snapshots(), 0u);
    EXPECT_TRUE(history.seriesNames().empty());
}

TEST(StatsHistoryTest, RecordsCountersGaugesAndFacts)
{
    StatsHistory history;
    history.setEnabled(true);
    history.record(0.1, 0, makeSnap(3, 1.5),
                   Facts{{"facts.throughput", 4.0}});

    const auto names = history.seriesNames();
    ASSERT_EQ(names.size(), 3u);
    // std::map ordering: facts.* < test.*.
    EXPECT_EQ(names[0], "facts.throughput");
    EXPECT_EQ(names[1], "test.counter");
    EXPECT_EQ(names[2], "test.gauge");

    EXPECT_EQ(history.seriesKind("test.counter"), SeriesKind::Counter);
    EXPECT_EQ(history.seriesKind("test.gauge"), SeriesKind::Gauge);
    EXPECT_EQ(history.seriesKind("facts.throughput"), SeriesKind::Gauge);
    EXPECT_FALSE(history.seriesKind("nope").has_value());

    ASSERT_TRUE(history.latest("test.counter").has_value());
    EXPECT_DOUBLE_EQ(*history.latest("test.counter"), 3.0);
    EXPECT_DOUBLE_EQ(*history.latest("facts.throughput"), 4.0);
    EXPECT_FALSE(history.latest("nope").has_value());
    EXPECT_EQ(history.snapshots(), 1u);
}

TEST(StatsHistoryTest, HistogramsContributeCountAndSumSeries)
{
    MetricsSnapshot snap;
    HistogramSample h;
    h.name = "test.histo";
    h.help = "help";
    h.bounds = {1.0};
    h.counts = {2, 1};
    h.count = 3;
    h.sum = 4.5;
    snap.histograms.push_back(h);

    StatsHistory history;
    history.setEnabled(true);
    history.record(1.0, 0, snap, {});

    EXPECT_EQ(history.seriesKind("test.histo.count"), SeriesKind::Counter);
    EXPECT_EQ(history.seriesKind("test.histo.sum"), SeriesKind::Counter);
    EXPECT_DOUBLE_EQ(*history.latest("test.histo.count"), 3.0);
    EXPECT_DOUBLE_EQ(*history.latest("test.histo.sum"), 4.5);
}

// --- Retention --------------------------------------------------------

TEST(StatsHistoryTest, RetentionByCapacityEvictsOldest)
{
    StatsHistory history;
    history.configure(opts(3));
    history.setEnabled(true);
    for (std::uint64_t i = 0; i < 5; ++i)
        history.record(static_cast<double>(i), i,
                       makeSnap(i, static_cast<double>(i)), {});

    EXPECT_EQ(history.snapshots(), 3u);
    EXPECT_EQ(history.evicted(), 2u);
    const auto points = history.range("test.gauge", 0.0, 100.0);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points.front().interval, 2u);
    EXPECT_EQ(points.back().interval, 4u);
}

TEST(StatsHistoryTest, RetentionByAgeDropsStalePoints)
{
    StatsHistory history;
    history.configure(opts(0, /*max_age=*/5.0));
    history.setEnabled(true);
    // Fake clock: explicit times 0, 2, 4, ..., 12.
    for (std::uint64_t i = 0; i <= 6; ++i)
        history.record(static_cast<double>(2 * i), i, makeSnap(i, 0.0), {});

    // Newest is t=12; ages within 5 s are t in [7, 12] -> t=8,10,12.
    EXPECT_EQ(history.snapshots(), 3u);
    const auto points = history.range("test.counter", 0.0, 100.0);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_DOUBLE_EQ(points.front().time, 8.0);
}

TEST(StatsHistoryTest, RetentionByBytesBoundsApproxBytes)
{
    StatsHistory history;
    history.configure(opts(0, 0.0, /*max_bytes=*/512));
    history.setEnabled(true);
    for (std::uint64_t i = 0; i < 200; ++i)
        history.record(static_cast<double>(i), i,
                       makeSnap(i, static_cast<double>(i)), {});

    EXPECT_GT(history.evicted(), 0u);
    EXPECT_LE(history.approxBytes(), 512u);
    EXPECT_GE(history.snapshots(), 1u);
}

TEST(StatsHistoryTest, RetentionNeverEvictsTheNewestSnapshot)
{
    StatsHistory history;
    // A byte budget far below one snapshot's cost still keeps one row.
    history.configure(opts(0, 0.0, /*max_bytes=*/1));
    history.setEnabled(true);
    history.record(1.0, 0, makeSnap(1, 1.0), {});
    history.record(2.0, 1, makeSnap(2, 2.0), {});
    EXPECT_EQ(history.snapshots(), 1u);
    EXPECT_DOUBLE_EQ(*history.latest("test.counter"), 2.0);
}

TEST(StatsHistoryTest, ClearDropsEverything)
{
    StatsHistory history;
    history.configure(opts(2));
    history.setEnabled(true);
    for (std::uint64_t i = 0; i < 4; ++i)
        history.record(static_cast<double>(i), i, makeSnap(i, 0.0), {});
    history.clear();
    EXPECT_EQ(history.snapshots(), 0u);
    EXPECT_EQ(history.evicted(), 0u);
    EXPECT_TRUE(history.seriesNames().empty());
    EXPECT_EQ(history.approxBytes(), 0u);
}

// --- Windowed queries -------------------------------------------------

TEST(StatsHistoryTest, RangeAndLastNSliceByTimeAndCount)
{
    StatsHistory history;
    history.setEnabled(true);
    for (std::uint64_t i = 0; i < 10; ++i)
        history.record(static_cast<double>(i), i,
                       makeSnap(i, static_cast<double>(10 * i)), {});

    const auto mid = history.range("test.gauge", 3.0, 6.0);
    ASSERT_EQ(mid.size(), 4u);
    EXPECT_DOUBLE_EQ(mid.front().value, 30.0);
    EXPECT_DOUBLE_EQ(mid.back().value, 60.0);

    const auto tail = history.lastN("test.gauge", 3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.front().interval, 7u); // Oldest-first.
    EXPECT_EQ(tail.back().interval, 9u);

    // n larger than retained -> everything; unknown series -> empty.
    EXPECT_EQ(history.lastN("test.gauge", 99).size(), 10u);
    EXPECT_TRUE(history.lastN("nope", 3).empty());
    EXPECT_TRUE(history.range("test.gauge", 20.0, 30.0).empty());
}

TEST(StatsHistoryTest, WindowStatsMatchHandComputedGoldens)
{
    StatsHistory history;
    history.setEnabled(true);
    // Fake clock 0..9 s; gauge values 1, 2, ..., 10.
    for (std::uint64_t i = 0; i < 10; ++i)
        history.record(static_cast<double>(i), i,
                       makeSnap(0, static_cast<double>(i + 1)), {});

    // Full window: values 1..10.
    const auto all = history.windowStats("test.gauge", 0.0);
    ASSERT_TRUE(all.has_value());
    EXPECT_EQ(all->count, 10u);
    EXPECT_DOUBLE_EQ(all->min, 1.0);
    EXPECT_DOUBLE_EQ(all->max, 10.0);
    EXPECT_DOUBLE_EQ(all->mean, 5.5);
    // Nearest rank: p50 -> ceil(0.50*10)=5th -> 5; p95 -> 10th -> 10.
    EXPECT_DOUBLE_EQ(all->p50, 5.0);
    EXPECT_DOUBLE_EQ(all->p95, 10.0);

    // Trailing 4 s from t=9 -> t in [5, 9] -> values 6..10.
    const auto tail = history.windowStats("test.gauge", 4.0);
    ASSERT_TRUE(tail.has_value());
    EXPECT_EQ(tail->count, 5u);
    EXPECT_DOUBLE_EQ(tail->min, 6.0);
    EXPECT_DOUBLE_EQ(tail->mean, 8.0);
    EXPECT_DOUBLE_EQ(tail->p50, 8.0);

    EXPECT_FALSE(history.windowStats("nope", 0.0).has_value());
}

TEST(StatsHistoryTest, CounterRatesAreDeltasPerSecond)
{
    StatsHistory history;
    history.setEnabled(true);
    // t: 0, 2, 4; counter: 10, 30, 35 -> rates 10/s @t=2, 2.5/s @t=4.
    history.record(0.0, 0, makeSnap(10, 0.0), {});
    history.record(2.0, 1, makeSnap(30, 0.0), {});
    history.record(4.0, 2, makeSnap(35, 0.0), {});

    const auto rates = history.counterRates("test.counter", 0.0);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0].time, 2.0);
    EXPECT_DOUBLE_EQ(rates[0].value, 10.0);
    EXPECT_DOUBLE_EQ(rates[1].time, 4.0);
    EXPECT_DOUBLE_EQ(rates[1].value, 2.5);

    // Gauges and unknown series yield no rates.
    EXPECT_TRUE(history.counterRates("test.gauge", 0.0).empty());
    EXPECT_TRUE(history.counterRates("nope", 0.0).empty());
}

TEST(StatsHistoryTest, CounterResetYieldsZeroRateNotNegative)
{
    StatsHistory history;
    history.setEnabled(true);
    history.record(0.0, 0, makeSnap(100, 0.0), {});
    history.record(1.0, 1, makeSnap(5, 0.0), {}); // Reset.
    history.record(2.0, 2, makeSnap(9, 0.0), {});

    const auto rates = history.counterRates("test.counter", 0.0);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0].value, 0.0); // Not -95.
    EXPECT_DOUBLE_EQ(rates[1].value, 4.0);
}

TEST(StatsHistoryTest, ToJsonIsDeterministic)
{
    StatsHistory history;
    history.setEnabled(true);
    history.record(1.0, 0, makeSnap(2, 0.5), Facts{{"facts.objective", 1.0}});

    const std::string json = history.toJson();
    EXPECT_NE(json.find("\"snapshots\":1"), std::string::npos);
    EXPECT_NE(json.find("\"evicted\":0"), std::string::npos);
    EXPECT_NE(json.find("\"test.counter\":{\"kind\":\"counter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"test.gauge\":{\"kind\":\"gauge\""),
              std::string::npos);
    EXPECT_EQ(json, history.toJson()); // Stable across calls.
}

// --- Concurrency ------------------------------------------------------

TEST(StatsHistoryTest, ConcurrentRecordAndQueryStaysConsistent)
{
    StatsHistory history;
    history.configure(opts(64));
    history.setEnabled(true);

    // Workers 0..1 record disjoint interval ranges; workers 2..3
    // hammer queries. The test asserts no crash/tear and that the
    // retained point count respects the ring capacity afterwards.
    harness::ThreadPool pool(4);
    std::atomic<bool> failed{false};
    pool.forEachIndex(4, [&](std::size_t worker) {
        if (worker < 2) {
            for (std::uint64_t i = 0; i < 200; ++i) {
                const std::uint64_t interval = worker * 200 + i;
                history.record(static_cast<double>(interval), interval,
                               makeSnap(interval, 1.0), {});
            }
        } else {
            for (int i = 0; i < 200; ++i) {
                const auto points = history.lastN("test.counter", 8);
                if (points.size() > 8)
                    failed = true;
                (void)history.windowStats("test.gauge", 16.0);
                (void)history.toJson();
            }
        }
    });

    EXPECT_FALSE(failed.load());
    EXPECT_LE(history.snapshots(), 64u);
    EXPECT_GE(history.snapshots(), 1u);
    EXPECT_EQ(history.snapshots() + history.evicted(), 400u);
}

} // namespace
} // namespace obs
} // namespace satori
