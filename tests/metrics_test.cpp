/**
 * @file
 * Tests for the throughput and fairness metrics of Sec. II.
 */

#include <gtest/gtest.h>

#include "satori/metrics/metrics.hpp"

namespace satori {
namespace {

TEST(SpeedupsTest, RatioOfIpsToIsolation)
{
    const auto s = speedups({5.0, 2.0}, {10.0, 4.0});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 0.5);
    EXPECT_DOUBLE_EQ(s[1], 0.5);
}

TEST(JainIndexTest, PerfectFairnessIsOne)
{
    EXPECT_DOUBLE_EQ(jainFairnessIndex({0.5, 0.5, 0.5}), 1.0);
}

TEST(JainIndexTest, KnownUnfairValue)
{
    // Speedups {1, 0}: mean 0.5, stddev 0.5 -> CoV 1 -> Jain 0.5.
    EXPECT_NEAR(jainFairnessIndex({1.0, 0.0}), 0.5, 1e-12);
}

TEST(JainIndexTest, SingleJobTriviallyFair)
{
    EXPECT_DOUBLE_EQ(jainFairnessIndex({0.37}), 1.0);
}

TEST(JainIndexTest, BoundedInUnitInterval)
{
    const std::vector<std::vector<double>> cases{
        {0.9, 0.1, 0.5}, {1.0, 1.0}, {0.01, 0.99, 0.5, 0.5}};
    for (const auto& c : cases) {
        const double f = jainFairnessIndex(c);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
}

TEST(OneMinusCovTest, CanGoNegative)
{
    // Very skewed speedups: CoV > 1 -> fairness < 0 (Sec. II).
    const double f = oneMinusCovFairness({1.0, 0.01, 0.01});
    EXPECT_LT(f, 0.0);
    EXPECT_DOUBLE_EQ(oneMinusCovFairness({0.4, 0.4}), 1.0);
}

TEST(FairnessDispatch, MetricSelector)
{
    const std::vector<double> s{0.6, 0.4};
    EXPECT_DOUBLE_EQ(fairness(FairnessMetric::JainIndex, s),
                     jainFairnessIndex(s));
    EXPECT_DOUBLE_EQ(fairness(FairnessMetric::OneMinusCov, s),
                     oneMinusCovFairness(s));
}

TEST(ThroughputTest, SumIps)
{
    EXPECT_DOUBLE_EQ(
        throughput(ThroughputMetric::SumIps, {1e9, 2e9}, {2e9, 4e9}),
        3e9);
}

TEST(ThroughputTest, SpeedupStatistics)
{
    const std::vector<Ips> ips{1.0, 4.0};
    const std::vector<Ips> iso{4.0, 4.0}; // speedups 0.25, 1.0
    EXPECT_NEAR(throughput(ThroughputMetric::GeomeanSpeedup, ips, iso),
                0.5, 1e-12);
    EXPECT_NEAR(throughput(ThroughputMetric::HarmonicSpeedup, ips, iso),
                0.4, 1e-12);
}

TEST(NormalizedThroughputTest, ScaleStretchesRange)
{
    // 2 jobs -> scale = min(1, 2/2 + 0.2) = 1.0.
    EXPECT_NEAR(colocationThroughputScale(2), 1.0, 1e-12);
    // 5 jobs -> 0.6.
    EXPECT_NEAR(colocationThroughputScale(5), 0.6, 1e-12);
    // 10 jobs -> 0.4.
    EXPECT_NEAR(colocationThroughputScale(10), 0.4, 1e-12);
}

TEST(NormalizedThroughputTest, ClampedToUnitInterval)
{
    // Sum IPS equal to isolation sum: raw ratio 1 / 0.6 scale -> clamp 1.
    const std::vector<Ips> ips{1.0, 1.0, 1.0, 1.0, 1.0};
    const std::vector<Ips> iso{1.0, 1.0, 1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(
        normalizedThroughput(ThroughputMetric::SumIps, ips, iso), 1.0);
}

TEST(NormalizedThroughputTest, SumIpsRatioScaled)
{
    // 5 jobs, measured sum = 30% of isolation sum -> 0.3/0.6 = 0.5.
    const std::vector<Ips> ips{0.3, 0.3, 0.3, 0.3, 0.3};
    const std::vector<Ips> iso{1.0, 1.0, 1.0, 1.0, 1.0};
    EXPECT_NEAR(normalizedThroughput(ThroughputMetric::SumIps, ips, iso),
                0.5, 1e-12);
}

TEST(NormalizedFairnessTest, OneMinusCovClampedAtZero)
{
    EXPECT_DOUBLE_EQ(normalizedFairness(FairnessMetric::OneMinusCov,
                                        {1.0, 0.01, 0.01}),
                     0.0);
}

/** Property: Jain's index is scale-invariant in the speedups. */
class JainScaleInvariance : public ::testing::TestWithParam<double>
{
};

TEST_P(JainScaleInvariance, ScalingAllSpeedupsPreservesIndex)
{
    const double scale = GetParam();
    const std::vector<double> base{0.2, 0.5, 0.9, 0.4};
    std::vector<double> scaled;
    for (double v : base)
        scaled.push_back(v * scale);
    EXPECT_NEAR(jainFairnessIndex(base), jainFairnessIndex(scaled),
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, JainScaleInvariance,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0));

/** Property: Jain decreases as one job's speedup diverges. */
class JainMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(JainMonotonicity, DivergingSpeedupReducesFairness)
{
    const double delta = GetParam();
    const double base = jainFairnessIndex({0.5, 0.5, 0.5});
    const double skew = jainFairnessIndex({0.5 + delta, 0.5, 0.5});
    EXPECT_LT(skew, base);
}

INSTANTIATE_TEST_SUITE_P(Deltas, JainMonotonicity,
                         ::testing::Values(0.1, 0.2, 0.4));

} // namespace
} // namespace satori
