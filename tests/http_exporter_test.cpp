/**
 * @file
 * Tests for the embedded HTTP exporter: golden /metrics body against
 * MetricsRegistry::prometheusText(), /healthz status transitions
 * (ok -> 503 under SLO breach), malformed-request status codes via
 * handleRequest (no socket needed), the real-socket lifecycle with an
 * ephemeral port + clean shutdown, and the sacred invariant that a
 * live scraper mid-run leaves the decision trace byte-identical.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"
#include "satori/obs/http_exporter.hpp"
#include "satori/obs/obs.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace obs {
namespace {

/** Build "GET <target> HTTP/1.1" request bytes. */
std::string
getRequest(const std::string& target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

/** The status code of a full HTTP response. */
int
statusOf(const std::string& response)
{
    std::istringstream in(response);
    std::string http;
    int status = 0;
    in >> http >> status;
    return status;
}

/** The body (everything after the header terminator). */
std::string
bodyOf(const std::string& response)
{
    const auto pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// --- Routing and bodies (no socket) -----------------------------------

TEST(HttpExporterTest, MetricsBodyMatchesPrometheusText)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);
    o.lib().bo_fits.inc(3);

    HttpExporter exporter(o);
    const std::string response =
        exporter.handleRequest(getRequest("/metrics"));
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_EQ(bodyOf(response), o.metrics().snapshot().prometheusText());
    EXPECT_NE(bodyOf(response).find("satori_bo_fits 3"), std::string::npos);
    o.resetAll();
}

TEST(HttpExporterTest, HealthzTransitionsFromOkTo503OnSloBreach)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);
    o.setLiveEnabled(true);
    o.history().setEnabled(true);
    HttpExporter exporter(o);

    // Healthy: no breach, no degradation.
    o.onHarnessInterval(0, 0.1, {1.0, 1.0}, 2.0, 0.9);
    std::string response = exporter.handleRequest(getRequest("/healthz"));
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_NE(bodyOf(response).find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(bodyOf(response).find("\"intervals\":1"), std::string::npos);

    // Install an always-breaching rule; the next interval flips it.
    o.watchdog().configure(
        SloSpec::parse("facts.throughput > 0.0 for 1\n"));
    o.onHarnessInterval(1, 0.2, {1.0, 1.0}, 2.0, 0.9);
    response = exporter.handleRequest(getRequest("/healthz"));
    EXPECT_EQ(statusOf(response), 503);
    EXPECT_NE(bodyOf(response).find("\"status\":\"breaching\""),
              std::string::npos);
    EXPECT_EQ(o.lib().slo_breaches.value(), 1u);
    o.resetAll();
}

TEST(HttpExporterTest, HistoryEndpointServesPointsStatsAndRates)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);
    o.setLiveEnabled(true);
    o.history().setEnabled(true);
    for (std::uint64_t i = 0; i < 4; ++i)
        o.onHarnessInterval(i, 0.1 * static_cast<double>(i + 1),
                            {1.0}, static_cast<double>(i + 1), 0.5);

    HttpExporter exporter(o);
    std::string response = exporter.handleRequest(
        getRequest("/history?metric=facts.throughput&last=2&stats=1"));
    EXPECT_EQ(statusOf(response), 200);
    const std::string body = bodyOf(response);
    EXPECT_NE(body.find("\"metric\":\"facts.throughput\""),
              std::string::npos);
    EXPECT_NE(body.find("\"kind\":\"gauge\""), std::string::npos);
    EXPECT_NE(body.find("\"stats\":{\"count\":4"), std::string::npos);

    // Counter rates work on counter series only.
    response = exporter.handleRequest(
        getRequest("/history?metric=satori.http.requests&rate=1"));
    EXPECT_EQ(statusOf(response), 200);
    response = exporter.handleRequest(
        getRequest("/history?metric=facts.throughput&rate=1"));
    EXPECT_EQ(statusOf(response), 400);
    o.resetAll();
}

TEST(HttpExporterTest, MalformedRequestsGetClientErrorCodes)
{
    Observability& o = observability();
    o.resetAll();
    HttpExporter exporter(o);

    EXPECT_EQ(statusOf(exporter.handleRequest("garbage\r\n\r\n")), 400);
    EXPECT_EQ(statusOf(exporter.handleRequest(
                  "GET noslash HTTP/1.1\r\n\r\n")),
              400);
    EXPECT_EQ(statusOf(exporter.handleRequest(
                  "POST /metrics HTTP/1.1\r\n\r\n")),
              405);
    EXPECT_EQ(statusOf(exporter.handleRequest(getRequest("/nope"))), 404);
    EXPECT_EQ(statusOf(exporter.handleRequest(getRequest("/history"))),
              400); // metric is required
    EXPECT_EQ(statusOf(exporter.handleRequest(
                  getRequest("/history?metric=unknown.series"))),
              404);
    EXPECT_EQ(statusOf(exporter.handleRequest(
                  getRequest("/audit/tail?n=bogus"))),
              400);
    // Every request above still counted.
    EXPECT_EQ(o.lib().http_requests.value(), 7u);
    o.resetAll();
}

// --- Real-socket lifecycle --------------------------------------------

TEST(HttpExporterTest, EphemeralPortServeFetchAndCleanShutdown)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);

    HttpExporter exporter(o);
    EXPECT_FALSE(exporter.running());
    EXPECT_EQ(exporter.port(), 0u);

    HttpExporterOptions options; // port 0 = ephemeral
    exporter.start(options);
    EXPECT_TRUE(exporter.running());
    const std::uint16_t port = exporter.port();
    ASSERT_GT(port, 0u);

    // Starting twice is fatal, not a silent rebind.
    EXPECT_THROW(exporter.start(options), FatalError);

    const std::string response = HttpExporter::fetch(port, "/metrics");
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_EQ(bodyOf(response), o.metrics().snapshot().prometheusText());

    exporter.stop();
    EXPECT_FALSE(exporter.running());
    EXPECT_EQ(exporter.port(), 0u);
    exporter.stop(); // Idempotent.

    // The port is gone: fetch now fails with an empty response.
    EXPECT_TRUE(HttpExporter::fetch(port, "/metrics").empty());
    o.resetAll();
}

TEST(HttpExporterTest, PeriodicScraperCollectsAndStopsPromptly)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);
    HttpExporter exporter(o);
    exporter.start(HttpExporterOptions{});

    {
        PeriodicScraper scraper(exporter.port(), "/metrics", 5);
        // The first fetch happens promptly after construction; wait a
        // bounded number of periods for it.
        for (int i = 0; i < 2000 && scraper.scrapes() == 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_GT(scraper.scrapes(), 0u);
        EXPECT_GT(scraper.bytesReceived(), 0u);
        scraper.stop();
        const std::uint64_t settled = scraper.scrapes();
        scraper.stop(); // Idempotent.
        EXPECT_EQ(scraper.scrapes(), settled);
    } // Destructor after stop() must not hang or double-join.

    exporter.stop();
    o.resetAll();
}

// --- The sacred invariant ---------------------------------------------

std::string
runTrace(const std::string& path, bool live_scraped)
{
    Observability& o = observability();
    o.resetAll();
    HttpExporter exporter(o);
    if (live_scraped) {
        o.setMetricsEnabled(true);
        o.setLiveEnabled(true);
        o.history().setEnabled(true);
        o.audit().setEnabled(true);
        o.watchdog().configure(
            SloSpec::parse("facts.throughput < 0.0 for 3\n"));
        exporter.start(HttpExporterOptions{});
    }

    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 5);
    auto policy = harness::makePolicy("SATORI", server);
    {
        std::optional<PeriodicScraper> scraper;
        if (live_scraped)
            scraper.emplace(exporter.port(), "/metrics", 3);
        harness::TraceWriter trace(path, harness::TraceFormat::Csv);
        harness::ExperimentOptions opt;
        opt.duration = 3.0;
        opt.trace = &trace;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
    }
    exporter.stop();
    o.resetAll();

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(HttpExporterTest, TraceIsByteIdenticalWithLiveScrapingMidRun)
{
    const std::string off_path = "/tmp/satori_exporter_det_off.csv";
    const std::string on_path = "/tmp/satori_exporter_det_on.csv";
    const std::string off = runTrace(off_path, false);
    const std::string on = runTrace(on_path, true);
    EXPECT_FALSE(off.empty());
    EXPECT_EQ(off, on);
    std::remove(off_path.c_str());
    std::remove(on_path.c_str());
}

#if defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED
TEST(HttpExporterTest, LiveRunPopulatesHistoryAndAuditEndpoints)
{
    Observability& o = observability();
    o.resetAll();
    o.setMetricsEnabled(true);
    o.setLiveEnabled(true);
    o.history().setEnabled(true);
    o.audit().setEnabled(true);
    HttpExporter exporter(o);
    exporter.start(HttpExporterOptions{});

    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 5);
    auto policy = harness::makePolicy("SATORI", server);
    harness::ExperimentOptions opt;
    opt.duration = 2.0;
    (void)harness::ExperimentRunner(opt).run(server, *policy, "");

    // 2 s / 100 ms = 20 intervals recorded into history.
    std::string response = HttpExporter::fetch(
        exporter.port(), "/history?metric=facts.throughput");
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_NE(bodyOf(response).find("\"points\":[["), std::string::npos);

    response = HttpExporter::fetch(exporter.port(), "/audit/tail?n=5");
    EXPECT_EQ(statusOf(response), 200);
    // Five JSONL records, each one a decision.
    std::istringstream lines(bodyOf(response));
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line))
        if (!line.empty())
            ++count;
    EXPECT_EQ(count, 5u);

    response = HttpExporter::fetch(exporter.port(), "/healthz");
    EXPECT_EQ(statusOf(response), 200);
    EXPECT_NE(bodyOf(response).find("\"history_snapshots\":20"),
              std::string::npos);

    exporter.stop();
    o.resetAll();
}
#endif

} // namespace
} // namespace obs
} // namespace satori
