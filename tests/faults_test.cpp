/**
 * @file
 * Tests for the fault-injection subsystem: plan parsing and scripting
 * errors, injector determinism (same seed + plan = byte-identical
 * traces), churn/baseline interactions, hardened-controller behavior
 * under faults, and audit cleanliness while faults are active.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>
#include <gtest/gtest.h>

#include "satori/satori.hpp"

namespace satori {
namespace faults {
namespace {

PlatformSpec
testPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

workloads::JobMix
testMix()
{
    return workloads::mixOf({"canneal", "streamcluster", "swaptions"});
}

std::string
fileContents(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// ---- FaultPlan scripting -------------------------------------------

TEST(FaultPlanTest, ParsesEveryKindWithOptions)
{
    const auto plan = FaultPlan::parse(
        "# a comment line\n"
        "drop 10..20 job=1 p=0.5\n"
        "nan 20..30\n"
        "freeze 30..40 job=*\n"
        "spike 40..50 x=8\n"
        "noact 50..60 p=0.25\n"
        "delay 60..70 k=4\n"
        "partial 70..80\n"
        "offline 80..90 job=2 x=0.5\n"
        "crash 95\n");
    ASSERT_EQ(plan.events().size(), 9u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::DropSample);
    EXPECT_EQ(plan.events()[0].job, 1);
    EXPECT_DOUBLE_EQ(plan.events()[0].probability, 0.5);
    EXPECT_EQ(plan.events()[2].job, -1);
    EXPECT_DOUBLE_EQ(plan.events()[3].magnitude, 8.0);
    EXPECT_EQ(plan.events()[5].delay_intervals, 4u);
    EXPECT_DOUBLE_EQ(plan.events()[7].magnitude, 0.5);
    // Single-interval shorthand: "crash 95" is [95, 96).
    EXPECT_EQ(plan.events()[8].start_interval, 95u);
    EXPECT_EQ(plan.events()[8].end_interval, 96u);
    EXPECT_EQ(plan.horizon(), 96u);
}

TEST(FaultPlanTest, RoundTripsThroughToString)
{
    const auto plan = FaultPlan::parse(
        "spike 5..15 job=0 p=0.35 x=0.1\n"
        "delay 20..30 k=7\n"
        "crash 40\n");
    const auto reparsed = FaultPlan::parse(plan.toString());
    ASSERT_EQ(reparsed.events().size(), plan.events().size());
    for (std::size_t i = 0; i < plan.events().size(); ++i) {
        EXPECT_EQ(reparsed.events()[i].kind, plan.events()[i].kind);
        EXPECT_EQ(reparsed.events()[i].start_interval,
                  plan.events()[i].start_interval);
        EXPECT_EQ(reparsed.events()[i].end_interval,
                  plan.events()[i].end_interval);
        EXPECT_EQ(reparsed.events()[i].job, plan.events()[i].job);
        EXPECT_DOUBLE_EQ(reparsed.events()[i].probability,
                         plan.events()[i].probability);
    }
}

TEST(FaultPlanTest, RejectsMalformedScriptsNamingTheLine)
{
    EXPECT_THROW(FaultPlan::parse("explode 1..2\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 20..10\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 5..5\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 1..2 p=1.5\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 1..2 p=0\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("delay 1..2 k=0\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 1..2 job=-3\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 1..2 bogus=1\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop 1..2 nonsense\n"), FatalError);

    // Errors name the source and the offending line.
    try {
        (void)FaultPlan::parse("drop 1..2\nexplode 3..4\n",
                               "plan.txt");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("plan.txt"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
}

TEST(FaultPlanTest, LoadFileErrorsNameThePath)
{
    EXPECT_THROW(FaultPlan::loadFile("/nonexistent/plan.txt"),
                 FatalError);

    const std::string path = "/tmp/satori_fault_plan_test.txt";
    {
        std::ofstream out(path);
        out << "spike 1..3 x=4\ncrash 5\n";
    }
    const auto plan = FaultPlan::loadFile(path);
    EXPECT_EQ(plan.events().size(), 2u);
    std::remove(path.c_str());
}

TEST(FaultPlanTest, EscalatingPresetCoversAllPhasesWithinHorizon)
{
    const auto plan = FaultPlan::escalating(3, 300);
    EXPECT_FALSE(plan.empty());
    EXPECT_LE(plan.horizon(), 300u);

    bool has_telemetry = false, has_actuation = false,
         has_platform = false;
    for (const auto& e : plan.events()) {
        switch (e.kind) {
          case FaultKind::DropSample:
          case FaultKind::NanSample:
          case FaultKind::FreezeSample:
          case FaultKind::SpikeSample:
            has_telemetry = true;
            break;
          case FaultKind::DropActuation:
          case FaultKind::DelayActuation:
          case FaultKind::PartialActuation:
            has_actuation = true;
            break;
          case FaultKind::CoreOffline:
          case FaultKind::JobCrash:
            has_platform = true;
            break;
        }
        EXPECT_LT(e.start_interval, e.end_interval);
    }
    EXPECT_TRUE(has_telemetry);
    EXPECT_TRUE(has_actuation);
    EXPECT_TRUE(has_platform);
}

// ---- FaultInjector behavior ----------------------------------------

TEST(FaultInjectorTest, TelemetryFaultsPerturbOnlyTheCopy)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);
    sim::PerfMonitor monitor(server);

    FaultInjector injector(
        FaultPlan::parse("drop 0..5 job=0\nspike 0..5 job=1 x=8\n"), 1);
    injector.beginInterval(server);
    const auto truth = monitor.observe(0.1);
    const auto seen = injector.perturbObservation(truth);

    EXPECT_DOUBLE_EQ(seen.ips[0], 0.0);          // dropped
    EXPECT_NEAR(seen.ips[1], truth.ips[1] * 8.0, // spiked
                1e-9);
    EXPECT_DOUBLE_EQ(seen.ips[2], truth.ips[2]); // untouched
    EXPECT_GT(truth.ips[0], 0.0);                // truth intact
    EXPECT_EQ(injector.stats().samples_dropped, 1u);
    EXPECT_EQ(injector.stats().samples_spiked, 1u);
    EXPECT_FALSE(injector.lastFlags().empty());
}

TEST(FaultInjectorTest, DroppedActuationLeavesConfigInForce)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);
    const Configuration before = server.configuration();

    Configuration request = before;
    request.units(0, 0) += 1;
    request.units(0, 1) -= 1;

    FaultInjector injector(FaultPlan::parse("noact 0..10\n"), 1);
    injector.beginInterval(server);
    const Configuration& applied = injector.actuate(server, request);
    EXPECT_TRUE(applied == before); // silently ignored
    EXPECT_EQ(injector.stats().actuations_dropped, 1u);
}

TEST(FaultInjectorTest, DelayedActuationLandsKIntervalsLate)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);
    const Configuration before = server.configuration();
    Configuration request = before;
    request.units(0, 0) += 1;
    request.units(0, 1) -= 1;

    // Every actuation in the window lags by 3 intervals, exactly like
    // a management daemon that fell behind.
    FaultInjector injector(FaultPlan::parse("delay 0..10 k=3\n"), 1);
    injector.beginInterval(server);
    EXPECT_TRUE(injector.actuate(server, request) == before);

    // Intervals 1 and 2: the request is still in the queue.
    for (int i = 0; i < 2; ++i) {
        injector.beginInterval(server);
        injector.actuate(server, before);
        EXPECT_TRUE(server.configuration() == before);
    }

    // Interval 3: the queued request comes due and lands (the current
    // interval's request joins the queue in turn).
    injector.beginInterval(server);
    injector.actuate(server, before);
    EXPECT_TRUE(server.configuration() == request);
    EXPECT_EQ(injector.stats().actuations_delayed, 4u);
}

TEST(FaultInjectorTest, PartialActuationStaysFeasible)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);
    Configuration request = server.configuration();
    request.units(0, 0) += 1;
    request.units(0, 1) -= 1;
    request.units(1, 1) += 1;
    request.units(1, 2) -= 1;

    FaultInjector injector(FaultPlan::parse("partial 0..50\n"), 1);
    for (int i = 0; i < 50; ++i) {
        injector.beginInterval(server);
        // Never throws: every mixed configuration row-sums to
        // capacity (setConfiguration FATALs otherwise).
        injector.actuate(server, request);
    }
    EXPECT_GT(injector.stats().actuations_partial, 0u);
}

TEST(FaultInjectorTest, CrashReplacesJobAndReportsChurn)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);
    server.job(0).retire(1e9); // progress to lose on restart

    FaultInjector injector(FaultPlan::parse("crash 0 job=0\n"), 1);
    EXPECT_TRUE(injector.beginInterval(server));
    EXPECT_DOUBLE_EQ(server.job(0).totalRetired(), 0.0);
    EXPECT_EQ(injector.stats().crashes, 1u);

    // Interval 1 is past the plan: no churn.
    injector.actuate(server, server.configuration());
    EXPECT_FALSE(injector.beginInterval(server));
}

TEST(FaultInjectorTest, OfflineThrottleIsTransient)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 7, 0.0);

    FaultInjector injector(
        FaultPlan::parse("offline 0..2 job=1 x=0.5\n"), 1);
    injector.beginInterval(server);
    ASSERT_EQ(server.externalThrottle().size(), server.numJobs());
    EXPECT_DOUBLE_EQ(server.externalThrottle()[1], 0.5);
    injector.actuate(server, server.configuration());

    injector.beginInterval(server);
    injector.actuate(server, server.configuration());

    // Past the window: full speed is restored.
    injector.beginInterval(server);
    EXPECT_DOUBLE_EQ(server.externalThrottle()[1], 1.0);
}

// ---- End-to-end determinism and resilience -------------------------

harness::ExperimentResult
runFaulted(const std::string& policy_name, std::uint64_t fault_seed,
           const std::string& trace_path = "")
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    auto policy = harness::makePolicy(policy_name, server);

    FaultInjector injector(FaultPlan::escalating(mix.jobs.size(), 100),
                           fault_seed);
    harness::ExperimentOptions opt;
    opt.duration = 10.0; // 100 intervals
    opt.faults = &injector;

    std::optional<harness::TraceWriter> trace;
    if (!trace_path.empty()) {
        trace.emplace(trace_path, harness::TraceFormat::Csv);
        opt.trace = &*trace;
    }
    const harness::ExperimentRunner runner(opt);
    auto result = runner.run(server, *policy, mix.label);
    if (trace)
        trace->flush();
    return result;
}

TEST(FaultInjectorTest, GoldenTraceIsByteIdenticalAcrossRuns)
{
    const std::string a = "/tmp/satori_faults_golden_a.csv";
    const std::string b = "/tmp/satori_faults_golden_b.csv";
    runFaulted("SATORI", 0xFA17, a);
    runFaulted("SATORI", 0xFA17, b);
    const std::string ca = fileContents(a);
    EXPECT_FALSE(ca.empty());
    EXPECT_EQ(ca, fileContents(b));
    // The trace carries the per-interval fault annotations.
    EXPECT_NE(ca.find(",faults"), std::string::npos);
    EXPECT_NE(ca.find("spike(j"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(FaultInjectorTest, DifferentSeedsChangeTheFaultPattern)
{
    // Same plan, different Bernoulli draws: the per-interval fault
    // pattern must differ between seeds (and, per the golden-trace
    // test above, be identical for equal seeds).
    const auto plan = FaultPlan::parse("drop 0..100 job=0 p=0.5\n");
    auto pattern_of = [&](std::uint64_t seed) {
        auto mix = testMix();
        sim::SimulatedServer server =
            harness::makeServer(testPlatform(), mix, 7, 0.0);
        sim::PerfMonitor monitor(server);
        FaultInjector injector(plan, seed);
        std::string pattern;
        for (int i = 0; i < 100; ++i) {
            injector.beginInterval(server);
            const auto seen =
                injector.perturbObservation(monitor.observe(0.1));
            // Fault injection writes an exact 0.0; equality is exact.
            // satori-analyzer: allow(num-float-eq)
            pattern += seen.ips[0] == 0.0 ? '1' : '0';
            injector.actuate(server, server.configuration());
        }
        return pattern;
    };
    const std::string p1 = pattern_of(1);
    EXPECT_NE(p1, pattern_of(2));
    EXPECT_EQ(p1, pattern_of(1)); // and reproducible
    EXPECT_NE(p1.find('1'), std::string::npos);
    EXPECT_NE(p1.find('0'), std::string::npos);
}

TEST(FaultResilienceTest, HardenedControllerSurvivesChurnMidBurst)
{
    // A crash in the middle of the exploration burst: baseline reset
    // ordering (churn -> resetBaseline -> observe) must keep the
    // observation consistent and the controller learning.
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    auto policy = harness::makePolicy("SATORI", server);

    FaultInjector injector(
        FaultPlan::parse("crash 8 job=0\ncrash 15 job=2\n"), 3);
    harness::ExperimentOptions opt;
    opt.duration = 6.0;
    opt.faults = &injector;
    const harness::ExperimentRunner runner(opt);
    const auto result = runner.run(server, *policy, mix.label);

    EXPECT_EQ(injector.stats().crashes, 2u);
    EXPECT_GT(result.mean_throughput, 0.0);
    EXPECT_GT(result.mean_fairness, 0.0);
}

TEST(FaultResilienceTest, HardenedSurvivesNanTelemetry)
{
    // NaN readings reach the guard, never the GP: the run completes
    // and the recorded objective history stays finite.
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    auto policy = harness::makePolicy("SATORI", server);
    auto* satori =
        dynamic_cast<core::SatoriController*>(policy.get());
    ASSERT_NE(satori, nullptr);

    FaultInjector injector(
        FaultPlan::parse("nan 10..40 job=1 p=0.8\n"), 3);
    harness::ExperimentOptions opt;
    opt.duration = 8.0;
    opt.faults = &injector;
    const harness::ExperimentRunner runner(opt);
    const auto result = runner.run(server, *policy, mix.label);

    EXPECT_GT(injector.stats().samples_nan, 0u);
    EXPECT_GT(satori->telemetryGuard().stats().non_finite, 0u);
    EXPECT_TRUE(std::isfinite(result.mean_throughput));
    EXPECT_GT(result.mean_throughput, 0.0);
}

TEST(FaultResilienceTest, DegradedModeEngagesAndRecovers)
{
    // A long unusable stretch (NaN on every job, past any budget)
    // must push the controller into the equal-partition fallback,
    // and the clean tail must bring it back out.
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    core::SatoriOptions options;
    options.resilience.guard.staleness_budget = 3;
    options.resilience.degraded_after = 5;
    options.resilience.recover_after = 3;
    auto policy = harness::makePolicy("SATORI", server, options);
    auto* satori =
        dynamic_cast<core::SatoriController*>(policy.get());
    ASSERT_NE(satori, nullptr);

    FaultInjector injector(
        FaultPlan::parse("nan 20..60 job=* p=1\n"), 3);
    harness::ExperimentOptions opt;
    opt.duration = 10.0;
    opt.faults = &injector;
    const harness::ExperimentRunner runner(opt);
    (void)runner.run(server, *policy, mix.label);

    EXPECT_GE(satori->diagnostics().degraded_entries, 1u);
    EXPECT_GT(satori->diagnostics().unusable_intervals, 0u);
    EXPECT_FALSE(satori->degraded()); // recovered in the clean tail
}

TEST(FaultResilienceTest, ActuationRetryReconverges)
{
    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    auto policy = harness::makePolicy("SATORI", server);
    auto* satori =
        dynamic_cast<core::SatoriController*>(policy.get());
    ASSERT_NE(satori, nullptr);

    FaultInjector injector(FaultPlan::parse("noact 10..30 p=0.7\n"), 3);
    harness::ExperimentOptions opt;
    opt.duration = 8.0;
    opt.faults = &injector;
    const harness::ExperimentRunner runner(opt);
    const auto result = runner.run(server, *policy, mix.label);

    EXPECT_GT(injector.stats().actuations_dropped, 0u);
    EXPECT_GT(satori->diagnostics().actuation_mismatches, 0u);
    EXPECT_GT(satori->diagnostics().actuation_retries, 0u);
    EXPECT_GT(result.mean_throughput, 0.0);
}

#ifdef SATORI_AUDIT_ENABLED
TEST(FaultAuditTest, HardenedRunUnderFaultsIsAuditClean)
{
    // The CI fault-matrix criterion: with every fault class active,
    // the hardened controller must never feed an invariant-violating
    // value downstream (non-finite GP targets, bad observations,
    // invalid allocations).
    analysis::globalAuditor().clear();
    auto plan = FaultPlan::escalating(3, 100);
    plan.add(FaultPlan::parse("nan 10..30 job=0 p=0.5\n").events()[0]);

    auto mix = testMix();
    sim::SimulatedServer server =
        harness::makeServer(testPlatform(), mix, 11);
    auto policy = harness::makePolicy("SATORI", server);
    FaultInjector injector(plan, 0xFA17);
    harness::ExperimentOptions opt;
    opt.duration = 10.0;
    opt.faults = &injector;
    const harness::ExperimentRunner runner(opt);
    (void)runner.run(server, *policy, mix.label);

    EXPECT_GT(analysis::globalAuditor().checksRun(), 0u);
    EXPECT_EQ(analysis::globalAuditor().violationCount(), 0u)
        << analysis::globalAuditor().renderReport();
    analysis::globalAuditor().clear();
}
#endif

} // namespace
} // namespace faults
} // namespace satori
