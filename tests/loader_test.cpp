/**
 * @file
 * Tests for the workload-definition loader: parsing, validation
 * errors with line numbers, file I/O, and round-tripping.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/workloads/loader.hpp"
#include "satori/workloads/suites.hpp"

namespace satori {
namespace workloads {
namespace {

const char* kValid = R"(
# a custom workload
workload mykernel
  suite custom
  description My streaming kernel
  fixed_work 3e11
  phase compute
    base_ipc 1.5
    parallel_fraction 0.9
    mpki_one 20
    mpki_floor 4
    mrc exponential 3.0
    miss_penalty 140
    bytes_per_miss 85
    cache_pressure 0.3
    length 1.2e10
  phase stream
    base_ipc 1.8
    parallel_fraction 0.95
    mpki_one 15
    mpki_floor 10
    mrc cliff 5.0 1.0
    length 8e9

workload second
  phase only
    base_ipc 1.0
    length 1e9
)";

TEST(LoaderTest, ParsesValidDefinitions)
{
    const auto profiles = parseWorkloadText(kValid);
    ASSERT_EQ(profiles.size(), 2u);

    const auto& w = profiles[0];
    EXPECT_EQ(w.name, "mykernel");
    EXPECT_EQ(w.suite, "custom");
    EXPECT_EQ(w.description, "My streaming kernel");
    EXPECT_DOUBLE_EQ(w.fixed_work, 3e11);
    ASSERT_EQ(w.phases.size(), 2u);

    const auto& compute = w.phases[0];
    EXPECT_EQ(compute.label, "compute");
    EXPECT_DOUBLE_EQ(compute.base_ipc, 1.5);
    EXPECT_DOUBLE_EQ(compute.parallel_fraction, 0.9);
    EXPECT_NEAR(compute.mrc.mpki(1), 20.0, 1e-9);
    EXPECT_NEAR(compute.mrc.floorMpki(), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(compute.miss_penalty_cycles, 140.0);
    EXPECT_DOUBLE_EQ(compute.bytes_per_miss, 85.0);
    EXPECT_DOUBLE_EQ(compute.cache_pressure, 0.3);
    EXPECT_DOUBLE_EQ(compute.length, 1.2e10);

    // The cliff MRC really has a knee.
    const auto& stream = w.phases[1];
    EXPECT_GT(stream.mrc.mpki(3) - stream.mrc.mpki(7), 1.0);

    EXPECT_EQ(profiles[1].phases.size(), 1u);
}

TEST(LoaderTest, DefaultsApplyForOmittedDirectives)
{
    const auto profiles = parseWorkloadText(
        "workload w\n phase p\n  base_ipc 2.0\n  length 1e9\n");
    const auto& p = profiles[0].phases[0];
    EXPECT_DOUBLE_EQ(p.base_ipc, 2.0);
    EXPECT_GT(p.miss_penalty_cycles, 0.0);
    EXPECT_GT(p.bytes_per_miss, 0.0);
}

TEST(LoaderTest, ErrorsCarryLineNumbers)
{
    try {
        (void)parseWorkloadText(
            "workload w\n phase p\n  bogus_key 1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(LoaderTest, RejectsMalformedInput)
{
    // Directive before any workload.
    EXPECT_THROW(parseWorkloadText("phase p\n"), FatalError);
    // Phase directive outside a phase.
    EXPECT_THROW(parseWorkloadText("workload w\nbase_ipc 1\n"),
                 FatalError);
    // Workload without phases.
    EXPECT_THROW(parseWorkloadText("workload w\n"), FatalError);
    // Bad number.
    EXPECT_THROW(
        parseWorkloadText("workload w\nphase p\nbase_ipc abc\n"),
        FatalError);
    // Invalid parallel fraction.
    EXPECT_THROW(parseWorkloadText("workload w\nphase p\n"
                                   "parallel_fraction 1.5\nlength 1\n"),
                 FatalError);
    // mpki_one below floor.
    EXPECT_THROW(parseWorkloadText("workload w\nphase p\nmpki_one 1\n"
                                   "mpki_floor 5\nlength 1\n"),
                 FatalError);
    // Unknown MRC kind.
    EXPECT_THROW(
        parseWorkloadText("workload w\nphase p\nmrc weird 1\n"),
        FatalError);
    // Empty input.
    EXPECT_THROW(parseWorkloadText("# only a comment\n"), FatalError);
}

TEST(LoaderTest, ErrorsNameTheSource)
{
    try {
        (void)parseWorkloadText(
            "workload w\nphase p\nbase_ipc abc\n", "custom.wl");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("custom.wl"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    }
}

TEST(LoaderTest, RejectsOutOfRangeValues)
{
    auto wl = [](const std::string& body) {
        return "workload w\nphase p\n" + body + "length 1\n";
    };
    // Non-positive or absurd base_ipc.
    EXPECT_THROW(parseWorkloadText(wl("base_ipc 0\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("base_ipc -1\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("base_ipc 99\n")), FatalError);
    // Non-finite numbers are rejected everywhere.
    EXPECT_THROW(parseWorkloadText(wl("base_ipc nan\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("base_ipc inf\n")), FatalError);
    // Out-of-range MPKI, penalties, traffic, pressure.
    EXPECT_THROW(parseWorkloadText(wl("mpki_one -1\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("mpki_one 5000\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("miss_penalty 0\n")), FatalError);
    EXPECT_THROW(parseWorkloadText(wl("miss_penalty 1e6\n")),
                 FatalError);
    EXPECT_THROW(parseWorkloadText(wl("bytes_per_miss 0\n")),
                 FatalError);
    EXPECT_THROW(parseWorkloadText(wl("bytes_per_miss 1e5\n")),
                 FatalError);
    EXPECT_THROW(parseWorkloadText(wl("cache_pressure 1.5\n")),
                 FatalError);
    EXPECT_THROW(parseWorkloadText(wl("cache_pressure -0.1\n")),
                 FatalError);
    // Degenerate MRC shapes.
    EXPECT_THROW(parseWorkloadText(wl("mrc exponential 0\n")),
                 FatalError);
    EXPECT_THROW(parseWorkloadText(wl("mrc cliff 0 1\n")), FatalError);
    // Truncated directives (missing the value entirely).
    EXPECT_THROW(parseWorkloadText("workload w\nphase p\nbase_ipc\n"),
                 FatalError);
    EXPECT_THROW(parseWorkloadText("workload w\nphase p\nmrc\n"),
                 FatalError);
    EXPECT_THROW(parseWorkloadText("workload\n"), FatalError);
    // Negative length / fixed_work.
    EXPECT_THROW(
        parseWorkloadText("workload w\nphase p\nlength -5\n"),
        FatalError);
    EXPECT_THROW(
        parseWorkloadText("workload w\nfixed_work 0\nphase p\n"
                          "length 1\n"),
        FatalError);
}

TEST(LoaderTest, FileErrorsNameTheFile)
{
    const std::string path = "/tmp/satori_loader_bad.wl";
    {
        std::ofstream out(path);
        out << "workload w\nphase p\nbase_ipc bogus\n";
    }
    try {
        (void)loadWorkloadFile(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}

TEST(LoaderTest, LoadsFromFile)
{
    const std::string path = "/tmp/satori_loader_test.wl";
    {
        std::ofstream out(path);
        out << kValid;
    }
    const auto profiles = loadWorkloadFile(path);
    EXPECT_EQ(profiles.size(), 2u);
    std::remove(path.c_str());
    EXPECT_THROW(loadWorkloadFile("/nonexistent/nope.wl"), FatalError);
}

TEST(LoaderTest, FormatRoundTripsStructure)
{
    const auto original = parseWorkloadText(kValid);
    const std::string text = formatWorkloads(original);
    const auto reparsed = parseWorkloadText(text);
    ASSERT_EQ(reparsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reparsed[i].name, original[i].name);
        ASSERT_EQ(reparsed[i].phases.size(), original[i].phases.size());
        for (std::size_t p = 0; p < original[i].phases.size(); ++p) {
            EXPECT_DOUBLE_EQ(reparsed[i].phases[p].base_ipc,
                             original[i].phases[p].base_ipc);
            EXPECT_DOUBLE_EQ(reparsed[i].phases[p].length,
                             original[i].phases[p].length);
        }
    }
}

TEST(LoaderTest, BuiltInSuitesExportAndReload)
{
    // The exporter must emit a loadable template for every built-in.
    const auto exported = formatWorkloads(parsecSuite());
    const auto reloaded = parseWorkloadText(exported);
    EXPECT_EQ(reloaded.size(), parsecSuite().size());
}

} // namespace
} // namespace workloads
} // namespace satori
