/**
 * @file
 * Tests for the CUSUM change detector and its use as SATORI's
 * reactivation mechanism.
 */

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/common/rng.hpp"
#include "satori/core/change_detector.hpp"
#include "satori/core/controller.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/sim/monitor.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace core {
namespace {

TEST(ChangeDetectorTest, CalibratesBeforeDetecting)
{
    ChangeDetector d;
    for (int i = 0; i < 14; ++i) {
        EXPECT_TRUE(d.calibrating());
        EXPECT_FALSE(d.update(1.0));
    }
    d.update(1.0); // final calibration sample
    EXPECT_FALSE(d.calibrating());
    EXPECT_NEAR(d.referenceMean(), 1.0, 1e-9);
}

TEST(ChangeDetectorTest, NoAlarmOnSteadyNoise)
{
    ChangeDetector d;
    Rng rng(3);
    int alarms = 0;
    for (int i = 0; i < 1000; ++i)
        alarms += d.update(rng.gaussian(10.0, 0.3));
    EXPECT_EQ(alarms, 0);
}

TEST(ChangeDetectorTest, DetectsDownwardShiftQuickly)
{
    ChangeDetector d;
    Rng rng(5);
    for (int i = 0; i < 30; ++i)
        ASSERT_FALSE(d.update(rng.gaussian(10.0, 0.2)));
    // A 10% drop (5 sigma) must trip within a handful of samples.
    int steps = 0;
    bool alarmed = false;
    for (; steps < 20 && !alarmed; ++steps)
        alarmed = d.update(rng.gaussian(9.0, 0.2));
    EXPECT_TRUE(alarmed);
    EXPECT_LE(steps, 10);
}

TEST(ChangeDetectorTest, DetectsUpwardShiftToo)
{
    ChangeDetector d;
    Rng rng(7);
    for (int i = 0; i < 30; ++i)
        ASSERT_FALSE(d.update(rng.gaussian(10.0, 0.2)));
    bool alarmed = false;
    for (int i = 0; i < 20 && !alarmed; ++i)
        alarmed = d.update(rng.gaussian(11.0, 0.2));
    EXPECT_TRUE(alarmed);
}

TEST(ChangeDetectorTest, RecalibratesAfterAlarm)
{
    ChangeDetector d;
    Rng rng(9);
    for (int i = 0; i < 30; ++i)
        d.update(rng.gaussian(10.0, 0.2));
    bool alarmed = false;
    for (int i = 0; i < 30 && !alarmed; ++i)
        alarmed = d.update(rng.gaussian(8.0, 0.2));
    ASSERT_TRUE(alarmed);
    EXPECT_TRUE(d.calibrating());
    // After re-calibration at the new level, the new level is normal.
    int alarms = 0;
    for (int i = 0; i < 200; ++i)
        alarms += d.update(rng.gaussian(8.0, 0.2));
    EXPECT_EQ(alarms, 0);
}

TEST(ChangeDetectorTest, ConstantSignalUsesSigmaFloor)
{
    ChangeDetector d;
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(d.update(5.0)); // zero variance: floor applies
    // A clear jump still alarms.
    bool alarmed = false;
    for (int i = 0; i < 10 && !alarmed; ++i)
        alarmed = d.update(4.0);
    EXPECT_TRUE(alarmed);
}

TEST(ChangeDetectorTest, InvalidOptionsRejected)
{
    ChangeDetectorOptions bad;
    bad.threshold_sigmas = 0.5; // below slack
    EXPECT_THROW(ChangeDetector{bad}, PanicError);
}

TEST(ChangeDetectorTest, CusumReactivationDrivesTheController)
{
    // SATORI with CUSUM reactivation must still work end to end and
    // keep producing valid configurations across phase changes.
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "streamcluster", "swaptions"}),
        11);
    SatoriOptions opt;
    opt.use_cusum_reactivation = true;
    SatoriController satori(p, server.numJobs(), opt);
    sim::PerfMonitor monitor(server);
    bool ever_settled = false;
    for (int i = 0; i < 400; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(next.isValidFor(p, 3));
        server.setConfiguration(next);
        ever_settled |= satori.diagnostics().settled;
        if (i % 100 == 99)
            monitor.resetBaseline();
    }
    EXPECT_TRUE(ever_settled);
}

} // namespace
} // namespace core
} // namespace satori
