/**
 * @file
 * Unit tests for the dense linear algebra used by the GP: matrix
 * operations and Cholesky factorization/solves.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "satori/common/rng.hpp"
#include "satori/linalg/cholesky.hpp"
#include "satori/linalg/matrix.hpp"

namespace satori {
namespace linalg {
namespace {

TEST(MatrixTest, IdentityAndElementAccess)
{
    Matrix m = Matrix::identity(3);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
    m(0, 1) = 5.0;
    EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, MatrixVectorProduct)
{
    Matrix m(2, 3);
    // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
    int v = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m(r, c) = v++;
    const auto out = m.multiply(std::vector<double>{1.0, 1.0, 1.0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(MatrixTest, MatrixMatrixProduct)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, Transpose)
{
    Matrix m(2, 3);
    m(0, 2) = 7.0;
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(MatrixTest, AddDiagonal)
{
    Matrix m(2, 2);
    m.addDiagonal(3.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(DotTest, KnownValue)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(CholeskyTest, FactorOfKnownSpdMatrix)
{
    // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    Cholesky chol(a);
    EXPECT_DOUBLE_EQ(chol.jitter(), 0.0);
    const Matrix& l = chol.factor();
    EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
    EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(CholeskyTest, SolveRecoversKnownSolution)
{
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    // x = [1, 2] -> b = A x = [8, 8]
    const auto x = Cholesky(a).solve({8.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(CholeskyTest, LogDetMatchesKnownValue)
{
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    // det(A) = 8
    EXPECT_NEAR(Cholesky(a).logDet(), std::log(8.0), 1e-10);
}

TEST(CholeskyTest, SingularMatrixGetsJitter)
{
    // Rank-1 matrix: [1 1; 1 1] is PSD but singular.
    Matrix a(2, 2, 1.0);
    Cholesky chol(a);
    EXPECT_GT(chol.jitter(), 0.0);
    // Still produces a usable solve (approximate).
    const auto x = chol.solve({2.0, 2.0});
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(CholeskyTest, TriangularSolvesAreConsistent)
{
    Matrix a(3, 3);
    a(0, 0) = 6;
    a(1, 1) = 5;
    a(2, 2) = 7;
    a(0, 1) = a(1, 0) = 1;
    a(0, 2) = a(2, 0) = 2;
    a(1, 2) = a(2, 1) = 1;
    Cholesky chol(a);
    const std::vector<double> b{1.0, 2.0, 3.0};
    const auto y = chol.solveLower(b);
    const auto x = chol.solveUpper(y);
    // Verify A x = b.
    const auto back = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], b[i], 1e-10);
}

/** Property sweep: random SPD systems of growing size solve exactly. */
class CholeskyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CholeskyProperty, RandomSpdSystemsSolve)
{
    const int n = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    // A = B B^T + n*I is SPD.
    Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (std::size_t r = 0; r < b.rows(); ++r)
        for (std::size_t c = 0; c < b.cols(); ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b.multiply(b.transposed());
    a.addDiagonal(static_cast<double>(n));

    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true)
        v = rng.uniform(-5.0, 5.0);
    const auto rhs = a.multiply(x_true);

    const auto x = Cholesky(a).solve(rhs);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-7) << "n=" << n << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 5, 10, 25, 60));

/** Random SPD matrix A = B B^T + ridge*I. */
Matrix
randomSpd(std::size_t n, Rng& rng, double ridge)
{
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b.multiply(b.transposed());
    a.addDiagonal(ridge);
    return a;
}

TEST(CholeskyUpdateTest, AppendMatchesFreshFactorizationBitwise)
{
    for (const std::size_t n : {1u, 3u, 8u, 20u}) {
        Rng rng(7000 + n);
        const Matrix big = randomSpd(n + 1, rng, double(n) + 1.0);
        Matrix lead(n, n);
        std::vector<double> cross(n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                lead(r, c) = big(r, c);
            cross[r] = big(r, n);
        }

        Cholesky incremental(lead);
        ASSERT_TRUE(incremental.update(cross, big(n, n)));
        const Cholesky fresh(big);

        EXPECT_EQ(incremental.jitter(), fresh.jitter());
        // Bit-identical factor, not merely close: every fast-path
        // guarantee downstream (GP, decision traces) rests on this.
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                EXPECT_EQ(incremental.factor()(r, c), fresh.factor()(r, c))
                    << "n=" << n << " (" << r << "," << c << ")";
        EXPECT_EQ(incremental.logDet(), fresh.logDet());

        std::vector<double> rhs(n + 1);
        for (auto& v : rhs)
            v = rng.uniform(-2.0, 2.0);
        const auto si = incremental.solve(rhs);
        const auto sf = fresh.solve(rhs);
        for (std::size_t i = 0; i <= n; ++i)
            EXPECT_EQ(si[i], sf[i]);
    }
}

TEST(CholeskyUpdateTest, RepeatedAppendsMatchFreshAtEveryStep)
{
    Rng rng(7777);
    const std::size_t target = 12;
    const Matrix big = randomSpd(target, rng, double(target));

    Matrix first(1, 1);
    first(0, 0) = big(0, 0);
    Cholesky incremental(first);
    for (std::size_t n = 1; n < target; ++n) {
        std::vector<double> cross(n);
        for (std::size_t r = 0; r < n; ++r)
            cross[r] = big(r, n);
        ASSERT_TRUE(incremental.update(cross, big(n, n)));

        Matrix lead(n + 1, n + 1);
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                lead(r, c) = big(r, c);
        const Cholesky fresh(lead);
        EXPECT_EQ(incremental.jitter(), fresh.jitter());
        EXPECT_EQ(incremental.logDet(), fresh.logDet());
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                EXPECT_EQ(incremental.factor()(r, c),
                          fresh.factor()(r, c));
    }
}

TEST(CholeskyUpdateTest, JitteredMatrixStillMatchesFresh)
{
    // Force the escalation ladder: a nearly rank-deficient matrix
    // (duplicate rows) needs jitter, and the append must land on the
    // same factor a fresh jittered factorization finds.
    const std::size_t n = 4;
    Matrix a(n + 1, n + 1);
    for (std::size_t r = 0; r <= n; ++r)
        for (std::size_t c = 0; c <= n; ++c)
            a(r, c) = 1.0; // rank-1: every leading block needs jitter
    Matrix lead(n, n, 1.0);
    Cholesky incremental(lead);
    ASSERT_GT(incremental.jitter(), 0.0);
    ASSERT_TRUE(incremental.update(std::vector<double>(n, 1.0), 1.0));
    const Cholesky fresh(a);
    EXPECT_EQ(incremental.jitter(), fresh.jitter());
    for (std::size_t r = 0; r <= n; ++r)
        for (std::size_t c = 0; c <= n; ++c)
            EXPECT_EQ(incremental.factor()(r, c), fresh.factor()(r, c));
}

TEST(CholeskyUpdateTest, SpdFailureLeavesFactorUntouched)
{
    Matrix a = Matrix::identity(3);
    Cholesky chol(a);
    const Matrix before = chol.factor();
    const double jitter_before = chol.jitter();

    // diag so small the new pivot 1e-18 - ||row||^2 goes negative.
    const std::vector<double> cross = {0.5, 0.5, 0.5};
    EXPECT_FALSE(chol.update(cross, 1e-18));
    EXPECT_EQ(chol.factor().rows(), 3u);
    EXPECT_EQ(chol.jitter(), jitter_before);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(chol.factor()(r, c), before(r, c));

    // The caller's documented recovery - a fresh factorization of the
    // extended matrix - succeeds (via jitter escalation).
    Matrix big(4, 4);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            big(r, c) = a(r, c);
        big(r, 3) = cross[r];
        big(3, r) = cross[r];
    }
    big(3, 3) = 1e-18;
    const Cholesky recovered(big);
    EXPECT_EQ(recovered.factor().rows(), 4u);
}

TEST(CholeskyMultiSolveTest, MatchesLoopedSolveLowerBitwise)
{
    Rng rng(9090);
    const std::size_t n = 15;
    const std::size_t m = 7;
    const Matrix a = randomSpd(n, rng, double(n));
    const Cholesky chol(a);

    Matrix b(m, n);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-3.0, 3.0);

    const Matrix multi = chol.solveLowerMulti(b);
    ASSERT_EQ(multi.rows(), m);
    ASSERT_EQ(multi.cols(), n);
    for (std::size_t r = 0; r < m; ++r) {
        std::vector<double> rhs(n);
        for (std::size_t c = 0; c < n; ++c)
            rhs[c] = b(r, c);
        const auto single = chol.solveLower(rhs);
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(multi(r, c), single[c]) << r << "," << c;
    }

    // The into-variant reuses storage and holds the same solutions
    // transposed (columns).
    Matrix out;
    chol.solveLowerMultiInto(b, out);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), m);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(out(c, r), multi(r, c));
}

} // namespace
} // namespace linalg
} // namespace satori
