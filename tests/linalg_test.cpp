/**
 * @file
 * Unit tests for the dense linear algebra used by the GP: matrix
 * operations and Cholesky factorization/solves.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "satori/common/rng.hpp"
#include "satori/linalg/cholesky.hpp"
#include "satori/linalg/matrix.hpp"

namespace satori {
namespace linalg {
namespace {

TEST(MatrixTest, IdentityAndElementAccess)
{
    Matrix m = Matrix::identity(3);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
    m(0, 1) = 5.0;
    EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, MatrixVectorProduct)
{
    Matrix m(2, 3);
    // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
    int v = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m(r, c) = v++;
    const auto out = m.multiply(std::vector<double>{1.0, 1.0, 1.0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(MatrixTest, MatrixMatrixProduct)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, Transpose)
{
    Matrix m(2, 3);
    m(0, 2) = 7.0;
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(MatrixTest, AddDiagonal)
{
    Matrix m(2, 2);
    m.addDiagonal(3.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(DotTest, KnownValue)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(CholeskyTest, FactorOfKnownSpdMatrix)
{
    // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    Cholesky chol(a);
    EXPECT_DOUBLE_EQ(chol.jitter(), 0.0);
    const Matrix& l = chol.factor();
    EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
    EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(CholeskyTest, SolveRecoversKnownSolution)
{
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    // x = [1, 2] -> b = A x = [8, 8]
    const auto x = Cholesky(a).solve({8.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(CholeskyTest, LogDetMatchesKnownValue)
{
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    // det(A) = 8
    EXPECT_NEAR(Cholesky(a).logDet(), std::log(8.0), 1e-10);
}

TEST(CholeskyTest, SingularMatrixGetsJitter)
{
    // Rank-1 matrix: [1 1; 1 1] is PSD but singular.
    Matrix a(2, 2, 1.0);
    Cholesky chol(a);
    EXPECT_GT(chol.jitter(), 0.0);
    // Still produces a usable solve (approximate).
    const auto x = chol.solve({2.0, 2.0});
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(CholeskyTest, TriangularSolvesAreConsistent)
{
    Matrix a(3, 3);
    a(0, 0) = 6;
    a(1, 1) = 5;
    a(2, 2) = 7;
    a(0, 1) = a(1, 0) = 1;
    a(0, 2) = a(2, 0) = 2;
    a(1, 2) = a(2, 1) = 1;
    Cholesky chol(a);
    const std::vector<double> b{1.0, 2.0, 3.0};
    const auto y = chol.solveLower(b);
    const auto x = chol.solveUpper(y);
    // Verify A x = b.
    const auto back = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], b[i], 1e-10);
}

/** Property sweep: random SPD systems of growing size solve exactly. */
class CholeskyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CholeskyProperty, RandomSpdSystemsSolve)
{
    const int n = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    // A = B B^T + n*I is SPD.
    Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (std::size_t r = 0; r < b.rows(); ++r)
        for (std::size_t c = 0; c < b.cols(); ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b.multiply(b.transposed());
    a.addDiagonal(static_cast<double>(n));

    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true)
        v = rng.uniform(-5.0, 5.0);
    const auto rhs = a.multiply(x_true);

    const auto x = Cholesky(a).solve(rhs);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-7) << "n=" << n << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 5, 10, 25, 60));

/** Random SPD matrix A = B B^T + ridge*I. */
Matrix
randomSpd(std::size_t n, Rng& rng, double ridge)
{
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b.multiply(b.transposed());
    a.addDiagonal(ridge);
    return a;
}

TEST(CholeskyUpdateTest, AppendMatchesFreshFactorizationBitwise)
{
    for (const std::size_t n : {1u, 3u, 8u, 20u}) {
        Rng rng(7000 + n);
        const Matrix big = randomSpd(n + 1, rng, double(n) + 1.0);
        Matrix lead(n, n);
        std::vector<double> cross(n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                lead(r, c) = big(r, c);
            cross[r] = big(r, n);
        }

        Cholesky incremental(lead);
        ASSERT_TRUE(incremental.update(cross, big(n, n)));
        const Cholesky fresh(big);

        EXPECT_EQ(incremental.jitter(), fresh.jitter());
        // Bit-identical factor, not merely close: every fast-path
        // guarantee downstream (GP, decision traces) rests on this.
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                EXPECT_EQ(incremental.factor()(r, c), fresh.factor()(r, c))
                    << "n=" << n << " (" << r << "," << c << ")";
        EXPECT_EQ(incremental.logDet(), fresh.logDet());

        std::vector<double> rhs(n + 1);
        for (auto& v : rhs)
            v = rng.uniform(-2.0, 2.0);
        const auto si = incremental.solve(rhs);
        const auto sf = fresh.solve(rhs);
        for (std::size_t i = 0; i <= n; ++i)
            EXPECT_EQ(si[i], sf[i]);
    }
}

TEST(CholeskyUpdateTest, RepeatedAppendsMatchFreshAtEveryStep)
{
    Rng rng(7777);
    const std::size_t target = 12;
    const Matrix big = randomSpd(target, rng, double(target));

    Matrix first(1, 1);
    first(0, 0) = big(0, 0);
    Cholesky incremental(first);
    for (std::size_t n = 1; n < target; ++n) {
        std::vector<double> cross(n);
        for (std::size_t r = 0; r < n; ++r)
            cross[r] = big(r, n);
        ASSERT_TRUE(incremental.update(cross, big(n, n)));

        Matrix lead(n + 1, n + 1);
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                lead(r, c) = big(r, c);
        const Cholesky fresh(lead);
        EXPECT_EQ(incremental.jitter(), fresh.jitter());
        EXPECT_EQ(incremental.logDet(), fresh.logDet());
        for (std::size_t r = 0; r <= n; ++r)
            for (std::size_t c = 0; c <= n; ++c)
                EXPECT_EQ(incremental.factor()(r, c),
                          fresh.factor()(r, c));
    }
}

TEST(CholeskyUpdateTest, JitteredMatrixStillMatchesFresh)
{
    // Force the escalation ladder: a nearly rank-deficient matrix
    // (duplicate rows) needs jitter, and the append must land on the
    // same factor a fresh jittered factorization finds.
    const std::size_t n = 4;
    Matrix a(n + 1, n + 1);
    for (std::size_t r = 0; r <= n; ++r)
        for (std::size_t c = 0; c <= n; ++c)
            a(r, c) = 1.0; // rank-1: every leading block needs jitter
    Matrix lead(n, n, 1.0);
    Cholesky incremental(lead);
    ASSERT_GT(incremental.jitter(), 0.0);
    ASSERT_TRUE(incremental.update(std::vector<double>(n, 1.0), 1.0));
    const Cholesky fresh(a);
    EXPECT_EQ(incremental.jitter(), fresh.jitter());
    for (std::size_t r = 0; r <= n; ++r)
        for (std::size_t c = 0; c <= n; ++c)
            EXPECT_EQ(incremental.factor()(r, c), fresh.factor()(r, c));
}

TEST(CholeskyUpdateTest, SpdFailureLeavesFactorUntouched)
{
    Matrix a = Matrix::identity(3);
    Cholesky chol(a);
    const Matrix before = chol.factor();
    const double jitter_before = chol.jitter();

    // diag so small the new pivot 1e-18 - ||row||^2 goes negative.
    const std::vector<double> cross = {0.5, 0.5, 0.5};
    EXPECT_FALSE(chol.update(cross, 1e-18));
    EXPECT_EQ(chol.factor().rows(), 3u);
    EXPECT_EQ(chol.jitter(), jitter_before);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(chol.factor()(r, c), before(r, c));

    // The caller's documented recovery - a fresh factorization of the
    // extended matrix - succeeds (via jitter escalation).
    Matrix big(4, 4);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            big(r, c) = a(r, c);
        big(r, 3) = cross[r];
        big(3, r) = cross[r];
    }
    big(3, 3) = 1e-18;
    const Cholesky recovered(big);
    EXPECT_EQ(recovered.factor().rows(), 4u);
}

TEST(CholeskyMultiSolveTest, MatchesLoopedSolveLowerBitwise)
{
    Rng rng(9090);
    const std::size_t n = 15;
    const std::size_t m = 7;
    const Matrix a = randomSpd(n, rng, double(n));
    const Cholesky chol(a);

    Matrix b(m, n);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-3.0, 3.0);

    const Matrix multi = chol.solveLowerMulti(b);
    ASSERT_EQ(multi.rows(), m);
    ASSERT_EQ(multi.cols(), n);
    for (std::size_t r = 0; r < m; ++r) {
        std::vector<double> rhs(n);
        for (std::size_t c = 0; c < n; ++c)
            rhs[c] = b(r, c);
        const auto single = chol.solveLower(rhs);
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(multi(r, c), single[c]) << r << "," << c;
    }

    // The into-variant reuses storage and holds the same solutions
    // transposed (columns).
    Matrix out;
    chol.solveLowerMultiInto(b, out);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), m);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(out(c, r), multi(r, c));
}

/** Trailing (n-1) x (n-1) block of a square matrix. */
Matrix
trailingBlock(const Matrix& a)
{
    const std::size_t m = a.rows() - 1;
    Matrix t(m, m);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < m; ++c)
            t(r, c) = a(r + 1, c + 1);
    return t;
}

TEST(CholeskyDowndateTest, MatchesFreshFactorizationOfTrailingBlock)
{
    for (const std::size_t n : {2u, 5u, 12u, 40u, 70u}) {
        Rng rng(4200 + n);
        const Matrix a = randomSpd(n, rng, double(n));
        Cholesky chol(a);
        ASSERT_TRUE(chol.downdate());
        ASSERT_EQ(chol.size(), n - 1);

        const Cholesky fresh(trailingBlock(a));
        // The rotation sweep is mathematically (not bitwise) equal to
        // a fresh factorization; verify to tight tolerance.
        for (std::size_t r = 0; r + 1 < n; ++r)
            for (std::size_t c = 0; c <= r; ++c)
                EXPECT_NEAR(chol.factor()(r, c), fresh.factor()(r, c),
                            1e-9 * (1.0 + std::fabs(fresh.factor()(r, c))))
                    << "n=" << n << " (" << r << "," << c << ")";
        EXPECT_NEAR(chol.logDet(), fresh.logDet(),
                    1e-9 * (1.0 + std::fabs(fresh.logDet())));
    }
}

TEST(CholeskyDowndateTest, UncorrelatedEvictionIsBitwiseFresh)
{
    // Block-diagonal case: the evicted sample is uncorrelated with the
    // rest (zero cross column), the sweep degenerates to a compaction,
    // and the result must be BIT-identical to a fresh factorization of
    // the trailing block - the anchor of the evict-then-append
    // round-trip contract.
    Rng rng(515);
    const std::size_t n = 9;
    const Matrix tail = randomSpd(n - 1, rng, double(n));
    Matrix a(n, n, 0.0);
    a(0, 0) = 3.5;
    for (std::size_t r = 0; r + 1 < n; ++r)
        for (std::size_t c = 0; c + 1 < n; ++c)
            a(r + 1, c + 1) = tail(r, c);

    Cholesky chol(a);
    ASSERT_TRUE(chol.downdate());
    const Cholesky fresh(tail);
    EXPECT_EQ(chol.jitter(), fresh.jitter());
    EXPECT_EQ(chol.logDet(), fresh.logDet());
    for (std::size_t r = 0; r + 1 < n; ++r)
        for (std::size_t c = 0; c <= r; ++c)
            EXPECT_EQ(chol.factor()(r, c), fresh.factor()(r, c));
}

TEST(CholeskyDowndateTest, EvictThenAppendRoundTripIsByteStable)
{
    // Windowed steady state: evict oldest, append newest. The sequence
    // must be deterministic byte for byte - two replays of the same
    // operation sequence produce identical factors.
    Rng rng(616);
    const std::size_t n = 24;
    const Matrix a = randomSpd(n + 1, rng, double(n));
    Matrix lead(n, n);
    std::vector<double> cross(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            lead(r, c) = a(r, c);
        cross[r] = a(r, n);
    }

    const auto replay = [&]() {
        Cholesky chol(lead);
        EXPECT_TRUE(chol.downdate());
        // cross covers the surviving rows 1..n-1 of `a`.
        std::vector<double> cr(cross.begin() + 1, cross.end());
        EXPECT_TRUE(chol.update(cr, a(n, n)));
        return chol.factor();
    };
    const Matrix one = replay();
    const Matrix two = replay();
    ASSERT_EQ(one.rows(), n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(one(r, c), two(r, c));

    // And the result tracks the fresh factorization of the shifted
    // window to tight tolerance.
    Matrix shifted(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            shifted(r, c) = a(r + 1, c + 1);
    const Cholesky fresh(shifted);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c <= r; ++c)
            EXPECT_NEAR(one(r, c), fresh.factor()(r, c),
                        1e-9 * (1.0 + std::fabs(fresh.factor()(r, c))));
}

TEST(CholeskyDowndateTest, NearSingularAfterEvictionIsDetectable)
{
    // Evicting the sample that kept the set well-conditioned leaves a
    // nearly singular trailing block (two near-duplicate rows). The
    // downdate itself is unconditionally stable - it must succeed -
    // and the damage shows up in conditionEstimate(), which is the
    // signal the GP's windowed mode uses to fall back to a fresh
    // jittered refit.
    const std::size_t n = 6;
    Rng rng(717);
    Matrix a = randomSpd(n, rng, 0.5);
    // Make trailing rows 1 and 2 of the matrix nearly identical.
    for (std::size_t c = 0; c < n; ++c) {
        a(2, c) = a(1, c) + 1e-9;
        a(c, 2) = a(2, c);
    }
    a(2, 2) = a(1, 1) + 2e-9;
    a(2, 1) = a(1, 2);
    Cholesky chol(a);
    ASSERT_TRUE(chol.downdate());
    EXPECT_GT(chol.conditionEstimate(), 1e6);
    // The factor is still usable: finite solves.
    std::vector<double> rhs(n - 1, 1.0);
    for (const double v : chol.solve(rhs))
        EXPECT_TRUE(std::isfinite(v));
}

TEST(CholeskyDowndateTest, DowndateToSingleAndEmpty)
{
    Matrix a = Matrix::identity(2);
    a(1, 0) = a(0, 1) = 0.25;
    Cholesky chol(a);
    ASSERT_TRUE(chol.downdate());
    EXPECT_EQ(chol.size(), 1u);
    EXPECT_NEAR(chol.factor()(0, 0), 1.0, 1e-12);
    ASSERT_TRUE(chol.downdate());
    EXPECT_EQ(chol.size(), 0u);
    EXPECT_EQ(chol.conditionEstimate(), 1.0);
}

TEST(CholeskyRankOneTest, UpdateMatchesFreshFactorization)
{
    for (const std::size_t n : {1u, 4u, 11u, 30u}) {
        Rng rng(8800 + n);
        Matrix a = randomSpd(n, rng, double(n));
        std::vector<double> v(n);
        for (auto& x : v)
            x = rng.uniform(-2.0, 2.0);

        Cholesky chol(a);
        ASSERT_TRUE(chol.rankOneUpdate(v));

        Matrix plus = a;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                plus(r, c) += v[r] * v[c];
        const Cholesky fresh(plus);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c <= r; ++c)
                EXPECT_NEAR(chol.factor()(r, c), fresh.factor()(r, c),
                            1e-9 * (1.0 + std::fabs(fresh.factor()(r, c))));
    }
}

TEST(CholeskyRankOneTest, UpdateThenDowndateRoundTrips)
{
    Rng rng(8899);
    const std::size_t n = 16;
    const Matrix a = randomSpd(n, rng, double(n));
    std::vector<double> v(n);
    for (auto& x : v)
        x = rng.uniform(-1.5, 1.5);

    Cholesky chol(a);
    const Matrix before = chol.factor();
    ASSERT_TRUE(chol.rankOneUpdate(v));
    ASSERT_TRUE(chol.rankOneDowndate(v));
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c <= r; ++c)
            EXPECT_NEAR(chol.factor()(r, c), before(r, c),
                        1e-8 * (1.0 + std::fabs(before(r, c))));
}

TEST(CholeskyRankOneTest, DowndateFailureLeavesFactorUntouched)
{
    // A - v v^T is indefinite for ||v|| large: the hyperbolic sweep
    // must refuse, and - mirroring update()'s SPD-failure contract -
    // the factor must be bit-untouched so the caller can fall back to
    // a fresh factorization.
    Matrix a = Matrix::identity(4);
    a(1, 0) = a(0, 1) = 0.3;
    Cholesky chol(a);
    const Matrix before = chol.factor();
    const std::vector<double> huge(4, 10.0);
    EXPECT_FALSE(chol.rankOneDowndate(huge));
    EXPECT_EQ(chol.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(chol.factor()(r, c), before(r, c));

    // Non-finite input makes the stable (update-form) sweep refuse
    // too, with the same untouched guarantee.
    std::vector<double> poisoned(4, 0.5);
    poisoned[2] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(chol.rankOneUpdate(poisoned));
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(chol.factor()(r, c), before(r, c));
}

TEST(CholeskySolveVariantsTest, InterleavedSolveLowerMatchesNaiveBitwise)
{
    // solveLower runs 8-row interleaved blocks; its contract is
    // bit-identical results to the naive forward substitution. Check
    // across sizes straddling the block boundary (n % 8 in all
    // residue classes that matter).
    for (const std::size_t n : {1u, 5u, 8u, 9u, 16u, 23u, 50u, 100u}) {
        Rng rng(3300 + n);
        const Matrix a = randomSpd(n, rng, double(n));
        const Cholesky chol(a);
        const Matrix l = chol.factor();
        std::vector<double> b(n);
        for (auto& x : b)
            x = rng.uniform(-2.0, 2.0);

        std::vector<double> naive(n);
        for (std::size_t i = 0; i < n; ++i) {
            double sum = b[i];
            for (std::size_t k = 0; k < i; ++k)
                sum -= l(i, k) * naive[k];
            naive[i] = sum / l(i, i);
        }
        const auto fast = chol.solveLower(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(fast[i], naive[i]) << "n=" << n << " i=" << i;
    }
}

TEST(CholeskySolveVariantsTest, SolveUpperBlockedMatchesSolveUpper)
{
    for (const std::size_t n : {1u, 3u, 4u, 7u, 17u, 40u, 101u}) {
        Rng rng(5500 + n);
        const Matrix a = randomSpd(n, rng, double(n));
        const Cholesky chol(a);
        std::vector<double> b(n);
        for (auto& x : b)
            x = rng.uniform(-2.0, 2.0);

        const auto exact = chol.solveUpper(b);
        const auto blocked = chol.solveUpperBlocked(b);
        // Reassociated accumulation: equal to tolerance, and
        // deterministic (two calls bit-identical).
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(blocked[i], exact[i],
                        1e-9 * (1.0 + std::fabs(exact[i])))
                << "n=" << n << " i=" << i;
        const auto again = chol.solveUpperBlocked(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(blocked[i], again[i]);

        const auto full = chol.solveBlocked(b);
        const auto ref = chol.solve(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(full[i], ref[i], 1e-9 * (1.0 + std::fabs(ref[i])));
    }
}

TEST(CholeskySolveVariantsTest, TransposedMultiSolveMatchesInto)
{
    Rng rng(6600);
    const std::size_t n = 13;
    const std::size_t m = 9;
    const Matrix a = randomSpd(n, rng, double(n));
    const Cholesky chol(a);
    Matrix b(m, n);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-3.0, 3.0);

    Matrix out_ref;
    chol.solveLowerMultiInto(b, out_ref);
    Matrix out_t;
    chol.solveLowerMultiTransposedInto(b.transposed(), out_t);
    ASSERT_EQ(out_t.rows(), n);
    ASSERT_EQ(out_t.cols(), m);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < m; ++c)
            EXPECT_EQ(out_t(r, c), out_ref(r, c));
}

} // namespace
} // namespace linalg
} // namespace satori
