/**
 * @file
 * Tests for satori::persist: the binary codec, snapshot and WAL file
 * formats (including every corruption mode), the per-class
 * saveState/restoreState round trips, and the checkpointer's
 * crash-kill resume guarantee (byte-identical decision traces).
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/common/rng.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"
#include "satori/persist/checkpoint.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/io.hpp"
#include "satori/persist/snapshot.hpp"
#include "satori/persist/wal.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace persist {
namespace {

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
dump(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

/** Expect @p fn to throw FatalError whose message contains @p want. */
template <typename Fn>
void
expectFatalContaining(Fn&& fn, const std::string& want)
{
    try {
        fn();
        FAIL() << "expected FatalError containing: " << want;
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
            << "actual message: " << e.what();
    }
}

// --- codec ---------------------------------------------------------

TEST(CodecTest, ScalarsAndVectorsRoundTrip)
{
    StateWriter w;
    w.putU8(0xAB);
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEFull);
    w.putI64(-42);
    w.putBool(true);
    w.putBool(false);
    w.putDouble(3.14159);
    w.putSize(12345);
    w.putString("hello \0 world");
    w.putDoubleVec({1.0, -2.5, 1e300});
    w.putIntVec({-1, 0, 7});

    StateReader r(w.bytes(), "test");
    EXPECT_EQ(r.getU8(), 0xAB);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getDouble(), 3.14159);
    EXPECT_EQ(r.getSize(), 12345u);
    EXPECT_EQ(r.getString(), "hello \0 world");
    EXPECT_EQ(r.getDoubleVec(), (std::vector<double>{1.0, -2.5, 1e300}));
    EXPECT_EQ(r.getIntVec(), (std::vector<int>{-1, 0, 7}));
    EXPECT_TRUE(r.atEnd());
    r.expectEnd();
}

TEST(CodecTest, DoubleBitPatternsRoundTripExactly)
{
    StateWriter w;
    w.putDouble(-0.0);
    w.putDouble(std::numeric_limits<double>::quiet_NaN());
    w.putDouble(std::numeric_limits<double>::denorm_min());
    w.putDouble(std::numeric_limits<double>::infinity());

    StateReader r(w.bytes(), "test");
    const double neg_zero = r.getDouble();
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_TRUE(std::isnan(r.getDouble()));
    EXPECT_EQ(r.getDouble(), std::numeric_limits<double>::denorm_min());
    EXPECT_TRUE(std::isinf(r.getDouble()));
}

TEST(CodecTest, TruncatedReadNamesContextAndOffset)
{
    StateWriter w;
    w.putU32(7);
    StateReader r(w.bytes(), "snap.bin[policy]");
    (void)r.getU32();
    expectFatalContaining([&] { (void)r.getU64(); },
                          "snap.bin[policy]");
    expectFatalContaining(
        [&] {
            StateReader r2(w.bytes(), "ctx");
            (void)r2.getU32();
            (void)r2.getU64();
        },
        "offset 4");
}

TEST(CodecTest, ExpectEndRejectsTrailingBytes)
{
    StateWriter w;
    w.putU32(1);
    w.putU32(2);
    StateReader r(w.bytes(), "ctx");
    (void)r.getU32();
    expectFatalContaining([&] { r.expectEnd(); }, "trailing");
}

TEST(CodecTest, Crc32MatchesKnownVectorAndChains)
{
    // The canonical CRC-32 check value (IEEE 802.3, reflected).
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32("6789", crc32("12345")), crc32("123456789"));
}

// --- snapshot ------------------------------------------------------

TEST(SnapshotTest, RoundTripsSectionsAndStep)
{
    const std::string path = "/tmp/satori_persist_snap.bin";
    SnapshotWriter w;
    w.section("alpha").putU64(11);
    w.section("beta").putString("state");
    w.writeTo(path, /*fingerprint_crc=*/77, /*step=*/120);

    SnapshotReader r(path, 77);
    EXPECT_EQ(r.step(), 120u);
    EXPECT_TRUE(r.hasSection("alpha"));
    EXPECT_FALSE(r.hasSection("gamma"));
    StateReader a = r.section("alpha");
    EXPECT_EQ(a.getU64(), 11u);
    a.expectEnd();
    StateReader b = r.section("beta");
    EXPECT_EQ(b.getString(), "state");
    std::remove(path.c_str());
}

TEST(SnapshotTest, BitFlipInSectionPayloadIsDetected)
{
    const std::string path = "/tmp/satori_persist_snap_flip.bin";
    SnapshotWriter w;
    w.section("alpha").putDoubleVec({1.0, 2.0, 3.0});
    w.writeTo(path, 77, 10);

    std::string bytes = slurp(path);
    bytes[bytes.size() - 5] ^= 0x01; // inside the payload
    dump(path, bytes);
    expectFatalContaining([&] { SnapshotReader r(path, 77); },
                          "CRC mismatch");
    std::remove(path.c_str());
}

TEST(SnapshotTest, VersionMismatchIsRejectedByName)
{
    const std::string path = "/tmp/satori_persist_snap_ver.bin";
    SnapshotWriter w;
    w.section("alpha").putU64(1);
    w.writeTo(path, 77, 10);

    // Patch the version field (offset 8) and re-stamp the header CRC
    // (offset 28, covering the 28 bytes above) so only the version
    // differs - the reader must name the version, not a CRC.
    std::string bytes = slurp(path);
    bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
    const std::uint32_t fixed =
        crc32(std::string_view(bytes).substr(0, 28));
    for (int i = 0; i < 4; ++i)
        bytes[28 + i] = static_cast<char>((fixed >> (8 * i)) & 0xFF);
    dump(path, bytes);
    expectFatalContaining([&] { SnapshotReader r(path, 77); },
                          "format version");
    std::remove(path.c_str());
}

TEST(SnapshotTest, FingerprintMismatchIsRejected)
{
    const std::string path = "/tmp/satori_persist_snap_fp.bin";
    SnapshotWriter w;
    w.section("alpha").putU64(1);
    w.writeTo(path, 77, 10);
    expectFatalContaining([&] { SnapshotReader r(path, 78); },
                          "fingerprint mismatch");
    std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileIsRejected)
{
    const std::string path = "/tmp/satori_persist_snap_trunc.bin";
    SnapshotWriter w;
    w.section("alpha").putDoubleVec({1.0, 2.0, 3.0, 4.0});
    w.writeTo(path, 77, 10);
    const std::string bytes = slurp(path);
    dump(path, bytes.substr(0, bytes.size() - 9));
    EXPECT_THROW(SnapshotReader(path, 77), FatalError);
    std::remove(path.c_str());
}

TEST(SnapshotTest, MissingSectionIsAnError)
{
    const std::string path = "/tmp/satori_persist_snap_miss.bin";
    SnapshotWriter w;
    w.section("alpha").putU64(1);
    w.writeTo(path, 77, 10);
    SnapshotReader r(path, 77);
    expectFatalContaining([&] { (void)r.section("gamma"); },
                          "missing snapshot section 'gamma'");
    std::remove(path.c_str());
}

// --- WAL -----------------------------------------------------------

IntervalRecord
sampleRecord(std::uint64_t interval)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    IntervalRecord rec;
    rec.interval = interval;
    rec.time = 0.1 * static_cast<double>(interval + 1);
    rec.config = Configuration::equalPartition(p, 2);
    rec.ips = {1e9, 2e9};
    rec.speedups = {0.5, 0.75};
    rec.throughput = 0.6;
    rec.fairness = 0.9;
    rec.faults = interval % 2 ? "noact" : "";
    rec.decision = rec.config;
    return rec;
}

TEST(WalTest, RoundTripsRecords)
{
    const std::string path = "/tmp/satori_persist_wal.bin";
    {
        WalWriter w = WalWriter::create(path, 77);
        for (std::uint64_t i = 0; i < 3; ++i)
            w.append(sampleRecord(i));
    }
    const WalReadResult res = readWal(path, 77);
    EXPECT_FALSE(res.torn_tail);
    ASSERT_EQ(res.records.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(res.records[i].interval, i);
        EXPECT_EQ(res.records[i].ips, sampleRecord(i).ips);
        EXPECT_TRUE(res.records[i].config == sampleRecord(i).config);
        EXPECT_EQ(res.records[i].faults, sampleRecord(i).faults);
    }
    std::remove(path.c_str());
}

TEST(WalTest, TornTailStopsCleanly)
{
    const std::string path = "/tmp/satori_persist_wal_torn.bin";
    {
        WalWriter w = WalWriter::create(path, 77);
        w.append(sampleRecord(0));
        w.append(sampleRecord(1));
        w.appendTorn(sampleRecord(2)); // crash mid-append
    }
    const WalReadResult res = readWal(path, 77);
    EXPECT_TRUE(res.torn_tail);
    EXPECT_EQ(res.records.size(), 2u);
    EXPECT_LT(res.valid_bytes, slurp(path).size());
    std::remove(path.c_str());
}

TEST(WalTest, BitFlipIsCorruptionNotATornTail)
{
    const std::string path = "/tmp/satori_persist_wal_flip.bin";
    {
        WalWriter w = WalWriter::create(path, 77);
        w.append(sampleRecord(0));
        w.append(sampleRecord(1));
    }
    std::string bytes = slurp(path);
    bytes[bytes.size() / 2] ^= 0x40; // inside a complete record
    dump(path, bytes);
    expectFatalContaining([&] { (void)readWal(path, 77); },
                          "WAL is corrupt, not merely torn");
    std::remove(path.c_str());
}

TEST(WalTest, ResumeTruncatesTornTailAndAppends)
{
    const std::string path = "/tmp/satori_persist_wal_resume.bin";
    {
        WalWriter w = WalWriter::create(path, 77);
        w.append(sampleRecord(0));
        w.appendTorn(sampleRecord(1));
    }
    const WalReadResult before = readWal(path, 77);
    ASSERT_TRUE(before.torn_tail);
    {
        WalWriter w = WalWriter::resume(path, before.valid_bytes);
        w.append(sampleRecord(1));
        w.append(sampleRecord(2));
    }
    const WalReadResult after = readWal(path, 77);
    EXPECT_FALSE(after.torn_tail);
    ASSERT_EQ(after.records.size(), 3u);
    EXPECT_EQ(after.records[2].interval, 2u);
    std::remove(path.c_str());
}

TEST(WalTest, FingerprintMismatchIsRejected)
{
    const std::string path = "/tmp/satori_persist_wal_fp.bin";
    {
        WalWriter w = WalWriter::create(path, 77);
        w.append(sampleRecord(0));
    }
    expectFatalContaining([&] { (void)readWal(path, 78); },
                          "fingerprint mismatch");
    std::remove(path.c_str());
}

// --- state hooks ---------------------------------------------------

TEST(StateHooksTest, RngContinuesBitIdenticallyAfterRestore)
{
    Rng a(1234);
    for (int i = 0; i < 100; ++i)
        (void)a.uniform();
    (void)a.gaussian(); // leaves a cached spare in flight
    StateWriter w;
    a.saveState(w);

    Rng b(999);
    StateReader r(w.bytes(), "rng");
    b.restoreState(r);
    r.expectEnd();
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.uniform(), b.uniform());
        EXPECT_EQ(a.gaussian(), b.gaussian());
    }
}

TEST(StateHooksTest, ServerStateRoundTripsToIdenticalBytes)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    sim::SimulatedServer a = harness::makeServer(p, mix, 5);
    for (int i = 0; i < 25; ++i)
        (void)a.step(0.1);

    StateWriter wa;
    a.saveState(wa);

    sim::SimulatedServer b = harness::makeServer(p, mix, 5);
    StateReader r(wa.bytes(), "server");
    b.restoreState(r);
    r.expectEnd();
    StateWriter wb;
    b.saveState(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());

    // And the restored server evolves identically.
    EXPECT_EQ(a.step(0.1), b.step(0.1));
}

TEST(StateHooksTest, SatoriControllerStateRoundTripsToIdenticalBytes)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    sim::SimulatedServer server = harness::makeServer(p, mix, 5);
    auto policy = harness::makePolicy("SATORI", server);
    ASSERT_TRUE(policy->supportsPersistence());

    harness::ExperimentOptions opt;
    opt.duration = 5.0;
    (void)harness::ExperimentRunner(opt).run(server, *policy, "");

    StateWriter wa;
    policy->saveState(wa);

    sim::SimulatedServer server2 = harness::makeServer(p, mix, 5);
    auto policy2 = harness::makePolicy("SATORI", server2);
    StateReader r(wa.bytes(), "policy");
    policy2->restoreState(r);
    r.expectEnd();
    StateWriter wb;
    policy2->saveState(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

// --- checkpointer --------------------------------------------------

/**
 * In-process crash/resume: because the run fingerprint excludes the
 * duration, a run that completes at interval N is indistinguishable
 * from one killed there, and a longer resume extends it. The resumed
 * trace must be byte-identical to an uninterrupted run's.
 */
TEST(CheckpointerTest, ResumedRunProducesByteIdenticalTrace)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    const std::string dir = "/tmp/satori_persist_ckpt";
    const std::string ref_path = dir + "_ref.csv";
    const std::string res_path = dir + "_res.csv";

    { // uninterrupted reference, 120 intervals
        sim::SimulatedServer server = harness::makeServer(p, mix, 5);
        auto policy = harness::makePolicy("SATORI", server);
        harness::TraceWriter trace(ref_path, harness::TraceFormat::Csv);
        harness::ExperimentOptions opt;
        opt.duration = 12.0;
        opt.trace = &trace;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
        trace.close();
    }

    CheckpointOptions copt;
    copt.dir = dir;
    copt.every = 25;

    { // first leg: "dies" after 70 intervals
        sim::SimulatedServer server = harness::makeServer(p, mix, 5);
        auto policy = harness::makePolicy("SATORI", server);
        Checkpointer ckpt(copt, "fp");
        harness::ExperimentOptions opt;
        opt.duration = 7.0;
        opt.checkpoint = &ckpt;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
    }

    { // resume to the full 120 intervals
        sim::SimulatedServer server = harness::makeServer(p, mix, 5);
        auto policy = harness::makePolicy("SATORI", server);
        copt.resume = true;
        Checkpointer ckpt(copt, "fp");
        harness::TraceWriter trace(res_path, harness::TraceFormat::Csv);
        harness::ExperimentOptions opt;
        opt.duration = 12.0;
        opt.trace = &trace;
        opt.checkpoint = &ckpt;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
        trace.close();
        EXPECT_EQ(trace.count(), 120u);
    }

    EXPECT_EQ(slurp(ref_path), slurp(res_path));
    EXPECT_NE(slurp(ref_path).find("SATORI"), std::string::npos);
    std::remove(ref_path.c_str());
    std::remove(res_path.c_str());
    std::filesystem::remove_all(dir);
}

TEST(CheckpointerTest, ResumeFromEmptyDirectoryIsFatal)
{
    const std::string dir = "/tmp/satori_persist_ckpt_empty";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    CheckpointOptions copt;
    copt.dir = dir;
    copt.resume = true;
    Checkpointer ckpt(copt, "fp");
    expectFatalContaining([&] { ckpt.prepare(); },
                          "nothing to resume");
    std::filesystem::remove_all(dir);
}

TEST(CheckpointerTest, DivergentResumeIsFatal)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    const std::string dir = "/tmp/satori_persist_ckpt_div";

    CheckpointOptions copt;
    copt.dir = dir;
    copt.every = 0; // WAL only: the resume re-executes from 0

    { // first leg at seed 5
        sim::SimulatedServer server = harness::makeServer(p, mix, 5);
        auto policy = harness::makePolicy("SATORI", server);
        Checkpointer ckpt(copt, "fp");
        harness::ExperimentOptions opt;
        opt.duration = 3.0;
        opt.checkpoint = &ckpt;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
    }

    { // "same" run resumed with a different server seed: the WAL
      // replay must catch the divergence, never fork silently.
        sim::SimulatedServer server = harness::makeServer(p, mix, 6);
        auto policy = harness::makePolicy("SATORI", server);
        copt.resume = true;
        Checkpointer ckpt(copt, "fp");
        harness::ExperimentOptions opt;
        opt.duration = 3.0;
        opt.checkpoint = &ckpt;
        expectFatalContaining(
            [&] {
                (void)harness::ExperimentRunner(opt).run(server,
                                                         *policy, "");
            },
            "resume diverged from the WAL");
    }
    std::filesystem::remove_all(dir);
}

TEST(CheckpointerTest, PolicyWithoutPersistenceIsRejected)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    const auto mix = workloads::mixOf({"canneal", "swaptions"});
    sim::SimulatedServer server = harness::makeServer(p, mix, 5);
    auto policy = harness::makePolicy("Random", server);
    ASSERT_FALSE(policy->supportsPersistence());

    const std::string dir = "/tmp/satori_persist_ckpt_nopersist";
    CheckpointOptions copt;
    copt.dir = dir;
    Checkpointer ckpt(copt, "fp");
    harness::ExperimentOptions opt;
    opt.duration = 1.0;
    opt.checkpoint = &ckpt;
    expectFatalContaining(
        [&] {
            (void)harness::ExperimentRunner(opt).run(server, *policy,
                                                     "");
        },
        "does not support checkpointing");
    std::filesystem::remove_all(dir);
}

// --- output-path validation ---------------------------------------

TEST(IoTest, ValidateOutputFileRejectsMissingDirectory)
{
    expectFatalContaining(
        [] {
            validateOutputFile("--trace", "/nonexistent/dir/out.csv");
        },
        "--trace");
}

TEST(IoTest, AtomicWriteInstallsWholeFile)
{
    const std::string path = "/tmp/satori_persist_atomic.txt";
    atomicWriteFile(path, "payload");
    EXPECT_EQ(slurp(path), "payload");
    EXPECT_FALSE(pathExists(path + ".tmp"));
    std::remove(path.c_str());
}

} // namespace
} // namespace persist
} // namespace satori
