/**
 * @file
 * Tests for the simulated server substrate: job accounting, stepping,
 * isolation measurement, reconfiguration transients, determinism, and
 * the perf monitor.
 */

#include <vector>
#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/sim/monitor.hpp"
#include "satori/sim/server.hpp"
#include "satori/workloads/suites.hpp"

namespace satori {
namespace sim {
namespace {

workloads::WorkloadProfile
tinyWorkload(double length = 1000.0)
{
    workloads::WorkloadProfile w;
    w.name = "tiny";
    w.suite = "test";
    perfmodel::PhaseParams a, b;
    a.label = "a";
    a.length = length;
    a.base_ipc = 1.0;
    b.label = "b";
    b.length = length;
    b.base_ipc = 2.0;
    w.phases = {a, b};
    w.fixed_work = 2.0 * length;
    return w;
}

SimulatedServer
makeTestServer(std::size_t jobs = 2, double noise = 0.0)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    std::vector<workloads::WorkloadProfile> mix;
    for (std::size_t j = 0; j < jobs; ++j)
        mix.push_back(workloads::parsecSuite()[j]);
    ServerOptions opt;
    opt.noise_sigma = noise;
    return SimulatedServer(p, perfmodel::MachineParams::paperLike(),
                           std::move(mix), opt);
}

TEST(JobTest, RetireAdvancesPhasesAndRuns)
{
    Job job(tinyWorkload(1000.0));
    EXPECT_EQ(job.currentPhaseIndex(), 0u);
    job.retire(1000.0);
    EXPECT_EQ(job.currentPhaseIndex(), 1u);
    EXPECT_EQ(job.completedRuns(), 0u);
    job.retire(1000.0); // completes one fixed-work run (2000 instr)
    EXPECT_EQ(job.completedRuns(), 1u);
    EXPECT_DOUBLE_EQ(job.runProgress(), 0.0);
    EXPECT_DOUBLE_EQ(job.totalRetired(), 2000.0);
    job.reset();
    EXPECT_EQ(job.completedRuns(), 0u);
    EXPECT_EQ(job.currentPhaseIndex(), 0u);
}

TEST(ServerTest, ConstructionStartsAtEqualPartition)
{
    auto server = makeTestServer(2);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 2);
    EXPECT_TRUE(server.configuration() == equal);
    EXPECT_EQ(server.numJobs(), 2u);
    EXPECT_DOUBLE_EQ(server.now(), 0.0);
}

TEST(ServerTest, StepAdvancesTimeAndRetiresWork)
{
    auto server = makeTestServer(2);
    const auto ips = server.step(0.1);
    EXPECT_NEAR(server.now(), 0.1, 1e-12);
    ASSERT_EQ(ips.size(), 2u);
    for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_GT(ips[j], 0.0);
        EXPECT_NEAR(server.job(j).totalRetired(), ips[j] * 0.1, 1e-6);
    }
}

TEST(ServerTest, InvalidConfigurationRejected)
{
    auto server = makeTestServer(2);
    Configuration bad = server.configuration();
    bad.units(0, 0) += 1; // breaks the core total
    EXPECT_THROW(server.setConfiguration(bad), FatalError);
}

TEST(ServerTest, IsolationDominatesColocation)
{
    auto server = makeTestServer(3);
    const auto iso = server.isolationIpsNow();
    const auto shared = server.step(0.1);
    for (std::size_t j = 0; j < 3; ++j)
        EXPECT_GT(iso[j], shared[j]);
}

TEST(ServerTest, DeterministicForSameSeed)
{
    auto a = makeTestServer(2, 0.05);
    auto b = makeTestServer(2, 0.05);
    for (int i = 0; i < 20; ++i) {
        const auto ia = a.step(0.1);
        const auto ib = b.step(0.1);
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(ia[j], ib[j]);
    }
}

TEST(ServerTest, EvaluateIpsMatchesNoiselessStep)
{
    auto server = makeTestServer(2, 0.0);
    const auto sig = server.phaseSignature();
    const auto predicted =
        server.evaluateIps(server.configuration(), sig);
    const auto measured = server.step(0.1);
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_NEAR(measured[j], predicted[j], predicted[j] * 1e-9);
}

TEST(ServerTest, ReconfigurationTransientDepressesIps)
{
    auto quiet = makeTestServer(2, 0.0);
    auto moved = makeTestServer(2, 0.0);

    // Same large reallocation applied to `moved` only.
    Configuration big = moved.configuration();
    big.transferUnit(0, 0, 1);
    big.transferUnit(0, 0, 1);
    big.transferUnit(1, 1, 0);
    big.transferUnit(1, 1, 0);
    moved.setConfiguration(big);

    const auto ips_moved = moved.step(0.1);
    // Compare against the *same* configuration applied without a
    // transient (a fresh server whose initial config is big).
    quiet.setConfiguration(big);
    quiet.step(0.1);              // absorb the transient
    const auto settled = quiet.step(0.1);
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_LT(ips_moved[j], settled[j]);
}

TEST(ServerTest, TransientDecaysWithinFewIntervals)
{
    auto server = makeTestServer(2, 0.0);
    Configuration big = server.configuration();
    big.transferUnit(0, 0, 1);
    big.transferUnit(1, 0, 1);
    server.setConfiguration(big);
    const auto first = server.step(0.1);
    std::vector<Ips> later;
    for (int i = 0; i < 5; ++i)
        later = server.step(0.1);
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_GT(later[j], first[j]);
}

TEST(ServerTest, NoTransientWhenConfigurationUnchanged)
{
    auto server = makeTestServer(2, 0.0);
    server.setConfiguration(server.configuration());
    const auto a = server.step(0.1);
    const auto b = server.step(0.1);
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_NEAR(a[j], b[j], a[j] * 1e-9);
}

TEST(ServerTest, ReplaceJobStartsFresh)
{
    auto server = makeTestServer(2, 0.0);
    server.step(1.0);
    EXPECT_GT(server.job(0).totalRetired(), 0.0);
    server.replaceJob(0, workloads::workloadByName("swaptions"));
    EXPECT_DOUBLE_EQ(server.job(0).totalRetired(), 0.0);
    EXPECT_EQ(server.job(0).profile().name, "swaptions");
    // Stepping continues fine.
    const auto ips = server.step(0.1);
    EXPECT_GT(ips[0], 0.0);
}

TEST(ServerTest, PhaseSignatureTracksPhases)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    std::vector<workloads::WorkloadProfile> mix{tinyWorkload(1e9)};
    SimulatedServer server(p, perfmodel::MachineParams::paperLike(),
                           std::move(mix), {});
    EXPECT_EQ(server.phaseSignature(), std::vector<std::size_t>{0});
    // Run until the first phase (1e9 instructions) completes.
    while (server.phaseSignature()[0] == 0)
        server.step(0.1);
    EXPECT_EQ(server.phaseSignature(), std::vector<std::size_t>{1});
}

TEST(ServerTest, PowerCapResourceSupported)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    p.addResource(ResourceKind::PowerCap, 4);
    std::vector<workloads::WorkloadProfile> mix{
        workloads::workloadByName("swaptions"),
        workloads::workloadByName("vips")};
    ServerOptions opt;
    opt.noise_sigma = 0.0;
    SimulatedServer server(p, perfmodel::MachineParams::paperLike(),
                           std::move(mix), opt);
    // Starving job 0 of power lowers its IPS.
    const auto equal_ips = server.step(0.1);
    Configuration starved = server.configuration();
    starved.transferUnit(1, 0, 1); // 1 power unit from job0 to job1
    server.setConfiguration(starved);
    server.step(0.1); // absorb transient
    const auto after = server.step(0.1);
    EXPECT_LT(after[0], equal_ips[0]);
}

TEST(ServerTest, OverCommittedConfigurationNamesTheResource)
{
    auto server = makeTestServer(2);
    Configuration bad = server.configuration();
    bad.units(1, 0) += 2; // over-commits the LLC ways total
    try {
        server.setConfiguration(bad);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("llc_ways"), std::string::npos) << msg;
        EXPECT_NE(msg.find("capacity"), std::string::npos) << msg;
    }
}

TEST(ServerTest, StarvedJobConfigurationNamesTheJob)
{
    auto server = makeTestServer(2);
    Configuration bad = server.configuration();
    // Keep the total right but leave job 1 without any cores.
    bad.units(0, 0) += bad.units(0, 1);
    bad.units(0, 1) = 0;
    try {
        server.setConfiguration(bad);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cores"), std::string::npos) << msg;
        EXPECT_NE(msg.find("job 1"), std::string::npos) << msg;
    }
}

TEST(ServerTest, ReplaceJobRejectsBadArguments)
{
    auto server = makeTestServer(2);
    EXPECT_THROW(
        server.replaceJob(2, workloads::workloadByName("swaptions")),
        FatalError);
    workloads::WorkloadProfile empty;
    empty.name = "empty";
    EXPECT_THROW(server.replaceJob(0, empty), FatalError);
}

TEST(ServerTest, ReplaceJobKeepsBookkeepingConsistentAcrossChurn)
{
    auto server = makeTestServer(2, 0.0);
    // A pending reconfiguration transient on job 0 must not leak into
    // its replacement: a fresh job starts with a clean slate.
    Configuration big = server.configuration();
    big.transferUnit(0, 0, 1);
    big.transferUnit(1, 0, 1);
    server.setConfiguration(big);
    server.replaceJob(0, workloads::workloadByName("swaptions"));
    const auto fresh_first = server.step(0.1);
    const auto fresh_second = server.step(0.1);
    // Job 0's transient was cleared by the replacement, so its IPS is
    // flat; job 1 still pays its transient down.
    EXPECT_NEAR(fresh_first[0], fresh_second[0], fresh_second[0] * 1e-9);
    EXPECT_LT(fresh_first[1], fresh_second[1]);
    // Churn several times in a row; configuration shape must hold.
    for (int i = 0; i < 3; ++i)
        server.replaceJob(i % 2, workloads::workloadByName("canneal"));
    EXPECT_EQ(server.configuration().numJobs(), 2u);
    EXPECT_GT(server.step(0.1)[0], 0.0);
}

TEST(ServerTest, ExternalThrottleScalesMeasuredIps)
{
    auto a = makeTestServer(2, 0.0);
    auto b = makeTestServer(2, 0.0);
    b.setExternalThrottle({0.5, 1.0});
    const auto full = a.step(0.1);
    const auto throttled = b.step(0.1);
    EXPECT_NEAR(throttled[0], 0.5 * full[0], full[0] * 1e-9);
    EXPECT_NEAR(throttled[1], full[1], full[1] * 1e-9);

    // Clearing restores full speed.
    b.setExternalThrottle({});
    const auto restored = b.step(0.1);
    const auto reference = a.step(0.1);
    EXPECT_NEAR(restored[0], reference[0], reference[0] * 1e-9);
}

TEST(ServerTest, ExternalThrottleRejectsBadFactors)
{
    auto server = makeTestServer(2);
    EXPECT_THROW(server.setExternalThrottle({0.5}), FatalError);
    EXPECT_THROW(server.setExternalThrottle({0.5, 0.0}), FatalError);
    EXPECT_THROW(server.setExternalThrottle({0.5, 1.5}), FatalError);
    EXPECT_THROW(server.setExternalThrottle({0.5, -1.0}), FatalError);
}

TEST(MonitorTest, ObservationCarriesBaselineAndConfig)
{
    auto server = makeTestServer(2, 0.0);
    PerfMonitor monitor(server);
    const auto obs = monitor.observe(0.1);
    EXPECT_EQ(obs.ips.size(), 2u);
    EXPECT_EQ(obs.isolation_ips, monitor.baseline());
    EXPECT_TRUE(obs.config == server.configuration());
    EXPECT_NEAR(obs.time, 0.1, 1e-12);
}

TEST(MonitorTest, BaselineResetTracksPhaseChange)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    std::vector<workloads::WorkloadProfile> mix{tinyWorkload(1e8)};
    ServerOptions opt;
    opt.noise_sigma = 0.0;
    SimulatedServer server(p, perfmodel::MachineParams::paperLike(),
                           std::move(mix), opt);
    PerfMonitor monitor(server);
    const auto before = monitor.baseline();
    // Advance into phase b (double the IPC) and re-record.
    while (server.phaseSignature()[0] == 0)
        monitor.observe(0.1);
    monitor.resetBaseline();
    EXPECT_NE(monitor.baseline()[0], before[0]);
}

} // namespace
} // namespace sim
} // namespace satori
