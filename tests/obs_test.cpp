/**
 * @file
 * Tests for the satori::obs subsystem: metrics-registry semantics,
 * histogram bucket edges, snapshot isolation, span nesting with an
 * injected deterministic clock, Chrome-trace / Prometheus / JSONL
 * golden outputs, the decision-audit channel, and the determinism
 * guarantee that enabling observability never changes decisions.
 */

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"
#include "satori/obs/obs.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace obs {
namespace {

// --- Metrics registry -------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeBasics)
{
    MetricsRegistry reg;
    Counter& c = reg.counter("test.counter", "a counter");
    Gauge& g = reg.gauge("test.gauge", "a gauge");
    EXPECT_EQ(reg.size(), 2u);
    c.inc();
    c.inc(4);
    g.set(2.5);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    c.reset();
    g.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, DoubleRegisterIsFatal)
{
    MetricsRegistry reg;
    (void)reg.counter("dup.name", "first");
    EXPECT_THROW((void)reg.counter("dup.name", "second"), FatalError);
    // Uniqueness holds across instrument kinds too.
    EXPECT_THROW((void)reg.gauge("dup.name", "gauge"), FatalError);
    EXPECT_THROW((void)reg.histogram("dup.name", "histo", {1.0}),
                 FatalError);
}

TEST(MetricsRegistryTest, InvalidNamesAreFatal)
{
    MetricsRegistry reg;
    EXPECT_THROW((void)reg.counter("", "empty"), FatalError);
    EXPECT_THROW((void)reg.counter("has space", "bad"), FatalError);
    EXPECT_THROW((void)reg.counter("has{brace}", "bad"), FatalError);
}

TEST(MetricsRegistryTest, HistogramBucketEdges)
{
    MetricsRegistry reg;
    Histogram& h =
        reg.histogram("test.histo", "edges", {1.0, 2.0, 4.0});
    // Prometheus `le` semantics: a value on the edge falls in that
    // bucket, strictly-above falls in the next.
    h.observe(0.5); // bucket 0
    h.observe(1.0); // bucket 0 (le)
    h.observe(1.5); // bucket 1
    h.observe(4.0); // bucket 2 (le)
    h.observe(9.0); // +Inf tail
    const auto& counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 16.0);
}

TEST(MetricsRegistryTest, BadHistogramBoundsAreFatal)
{
    MetricsRegistry reg;
    EXPECT_THROW((void)reg.histogram("h.empty", "x", {}), FatalError);
    EXPECT_THROW((void)reg.histogram("h.desc", "x", {2.0, 1.0}),
                 FatalError);
    EXPECT_THROW((void)reg.histogram("h.equal", "x", {1.0, 1.0}),
                 FatalError);
    EXPECT_THROW((void)reg.histogram(
                     "h.inf", "x",
                     {1.0, std::numeric_limits<double>::infinity()}),
                 FatalError);
}

TEST(MetricsRegistryTest, SnapshotIsIsolatedFromLaterUpdates)
{
    MetricsRegistry reg;
    Counter& c = reg.counter("iso.counter", "c");
    Histogram& h = reg.histogram("iso.histo", "h", {1.0});
    c.inc(3);
    h.observe(0.5);
    const MetricsSnapshot snap = reg.snapshot();
    c.inc(100);
    h.observe(2.0);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 3u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_EQ(snap.histograms[0].counts[0], 1u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry reg;
    Counter& c = reg.counter("r.counter", "c");
    c.inc(7);
    reg.reset();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(c.value(), 0u);
    c.inc(); // the returned reference stays valid
    EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsSnapshotTest, PrometheusGolden)
{
    MetricsRegistry reg;
    reg.counter("app.requests", "Total requests").inc(3);
    reg.gauge("app.load", "Current load").set(0.5);
    Histogram& h = reg.histogram("app.latency", "Latency", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);
    const std::string expected =
        "# HELP app_requests Total requests\n"
        "# TYPE app_requests counter\n"
        "app_requests 3\n"
        "# HELP app_load Current load\n"
        "# TYPE app_load gauge\n"
        "app_load 0.5\n"
        "# HELP app_latency Latency\n"
        "# TYPE app_latency histogram\n"
        "app_latency_bucket{le=\"1\"} 1\n"
        "app_latency_bucket{le=\"2\"} 2\n"
        "app_latency_bucket{le=\"+Inf\"} 3\n"
        "app_latency_sum 11\n"
        "app_latency_count 3\n";
    EXPECT_EQ(reg.snapshot().prometheusText(), expected);
}

TEST(MetricsSnapshotTest, JsonLinesGolden)
{
    MetricsRegistry reg;
    reg.counter("j.counter", "C").inc(2);
    reg.histogram("j.histo", "H", {1.0}).observe(0.25);
    const std::string expected =
        "{\"type\":\"counter\",\"name\":\"j.counter\",\"help\":\"C\","
        "\"value\":2}\n"
        "{\"type\":\"histogram\",\"name\":\"j.histo\",\"help\":\"H\","
        "\"bounds\":[1],\"counts\":[1,0],\"count\":1,\"sum\":0.25}\n";
    EXPECT_EQ(reg.snapshot().jsonLines(), expected);
}

// --- Tracer -----------------------------------------------------------

/** Deterministic clock: advances 10 us per read. */
std::uint64_t
fakeClock()
{
    // Single-threaded test clock; mutation is the point.
    // satori-analyzer: allow(conc-global-mutable)
    static std::uint64_t t = 0;
    return t += 10'000;
}

TEST(TracerTest, SpanNestingDepthsAndDurations)
{
    Tracer tracer(&fakeClock);
    tracer.setEnabled(true);
    tracer.beginSpan("outer");
    tracer.beginSpan("inner");
    tracer.endSpan();
    tracer.endSpan();
    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.openSpans(), 0u);
    const TraceEvent& outer = tracer.events()[0];
    const TraceEvent& inner = tracer.events()[1];
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(outer.depth, 0u);
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_EQ(inner.depth, 1u);
    // Each begin/end reads the clock once: inner spans 1 tick, the
    // outer spans 3, and the outer interval contains the inner one.
    EXPECT_EQ(inner.duration_ns, 10'000u);
    EXPECT_EQ(outer.duration_ns, 30'000u);
    EXPECT_LE(outer.start_ns, inner.start_ns);
    EXPECT_GE(outer.start_ns + outer.duration_ns,
              inner.start_ns + inner.duration_ns);
}

TEST(TracerTest, UnbalancedEndSpanPanics)
{
    Tracer tracer(&fakeClock);
    tracer.setEnabled(true);
    EXPECT_THROW(tracer.endSpan(), PanicError);
}

TEST(TracerTest, DisabledSpanGuardRecordsNothing)
{
    Tracer tracer(&fakeClock);
    ASSERT_FALSE(tracer.enabled());
    {
        SpanGuard guard(tracer, "ignored");
    }
    EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, ChromeTraceGolden)
{
    Tracer tracer(&fakeClock);
    tracer.setEnabled(true);
    {
        SpanGuard outer(tracer, "outer");
        SpanGuard inner(tracer, "inner");
    }
    const std::string json = tracer.chromeTraceJson();
    // Timestamps are rebased to the first span, so the golden is
    // stable no matter how many fakeClock ticks ran before this test.
    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"outer\",\"cat\":\"satori\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":1,\"ts\":0,\"dur\":30},"
        "{\"name\":\"inner\",\"cat\":\"satori\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":1,\"ts\":10,\"dur\":10}"
        "]}\n";
    EXPECT_EQ(json, expected);
}

TEST(TracerTest, AggregateSortsByTotalTime)
{
    Tracer tracer(&fakeClock);
    tracer.setEnabled(true);
    tracer.beginSpan("short");
    tracer.endSpan(); // 1 tick
    tracer.beginSpan("long");
    tracer.beginSpan("short");
    tracer.endSpan();
    tracer.endSpan(); // 3 ticks
    const auto rows = tracer.aggregate();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "long");
    EXPECT_EQ(rows[0].count, 1u);
    EXPECT_EQ(rows[0].total_ns, 30'000u);
    EXPECT_EQ(rows[1].name, "short");
    EXPECT_EQ(rows[1].count, 2u);
    EXPECT_EQ(rows[1].total_ns, 20'000u);
    EXPECT_EQ(rows[1].max_ns, 10'000u);
}

TEST(TracerTest, ClearDropsEverything)
{
    Tracer tracer(&fakeClock);
    tracer.setEnabled(true);
    tracer.beginSpan("open");
    tracer.clear();
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.openSpans(), 0u);
}

// --- Decision-audit channel -------------------------------------------

DecisionRecord
sampleDecision()
{
    DecisionRecord rec;
    rec.interval = 7;
    rec.time = 0.8;
    rec.policy = "SATORI";
    rec.observed_ips = {1e9, 2e9};
    rec.guard_verdict = "healthy";
    rec.throughput = 0.75;
    rec.fairness = 0.5;
    rec.w_t = 0.6;
    rec.w_f = 0.4;
    rec.objective = 0.65;
    rec.bo_samples = 12;
    rec.proxy_change_pct = 1.5;
    rec.chosen_config = "[2,3|4,5]";
    rec.outcome = "explore";
    rec.screen_kept = 9;
    rec.screen_pruned = 55;
    rec.window_evictions = 3;
    rec.approx_active = true;
    return rec;
}

TEST(DecisionAuditTest, DisabledChannelDropsRecords)
{
    DecisionAuditChannel channel;
    channel.emit(sampleDecision());
    EXPECT_TRUE(channel.records().empty());
    EXPECT_EQ(channel.jsonLines(), "");
}

TEST(DecisionAuditTest, JsonLinesGolden)
{
    DecisionAuditChannel channel;
    channel.setEnabled(true);
    channel.emit(sampleDecision());
    ASSERT_EQ(channel.records().size(), 1u);
    const std::string expected =
        "{\"interval\":7,\"time\":0.8,\"policy\":\"SATORI\","
        "\"observed_ips\":[1000000000,2000000000],"
        "\"guard_verdict\":\"healthy\",\"degraded\":false,"
        "\"settled\":false,\"throughput\":0.75,\"fairness\":0.5,"
        "\"w_t\":0.6,\"w_f\":0.4,\"objective\":0.65,\"bo_samples\":12,"
        "\"proxy_change_pct\":1.5,\"chosen_config\":\"[2,3|4,5]\","
        "\"outcome\":\"explore\",\"screen_kept\":9,"
        "\"screen_pruned\":55,\"window_evictions\":3,"
        "\"approx_active\":true}\n";
    EXPECT_EQ(channel.jsonLines(), expected);
}

TEST(DecisionAuditTest, BoundedRingEvictsOldestAndCountsDrops)
{
    DecisionAuditChannel channel;
    channel.setEnabled(true);
    EXPECT_EQ(channel.capacity(), DecisionAuditChannel::kDefaultCapacity);
    channel.setCapacity(3);
    EXPECT_EQ(channel.capacity(), 3u);

    for (std::size_t i = 0; i < 5; ++i) {
        DecisionRecord rec = sampleDecision();
        rec.interval = i;
        channel.emit(std::move(rec));
    }
    EXPECT_EQ(channel.size(), 3u);
    EXPECT_EQ(channel.dropped(), 2u);
    ASSERT_EQ(channel.records().size(), 3u);
    EXPECT_EQ(channel.records().front().interval, 2u);
    EXPECT_EQ(channel.records().back().interval, 4u);

    // Shrinking the capacity trims existing records (oldest first).
    channel.setCapacity(1);
    EXPECT_EQ(channel.size(), 1u);
    EXPECT_EQ(channel.records().front().interval, 4u);
    // Capacity 0 clamps to 1: the ring always holds something.
    channel.setCapacity(0);
    EXPECT_EQ(channel.capacity(), 1u);

    channel.clear();
    EXPECT_EQ(channel.size(), 0u);
    EXPECT_EQ(channel.dropped(), 0u);
}

TEST(DecisionAuditTest, TailJsonLinesReturnsNewestRecords)
{
    DecisionAuditChannel channel;
    channel.setEnabled(true);
    for (std::size_t i = 0; i < 4; ++i) {
        DecisionRecord rec = sampleDecision();
        rec.interval = i;
        channel.emit(std::move(rec));
    }

    const std::string tail = channel.tailJsonLines(2);
    EXPECT_EQ(tail.find("\"interval\":0"), std::string::npos);
    EXPECT_EQ(tail.find("\"interval\":1"), std::string::npos);
    EXPECT_NE(tail.find("\"interval\":2"), std::string::npos);
    EXPECT_NE(tail.find("\"interval\":3"), std::string::npos);
    // n >= size returns everything, identically to jsonLines().
    EXPECT_EQ(channel.tailJsonLines(99), channel.jsonLines());
}

TEST(DecisionAuditTest, WriteJsonlRoundTrips)
{
    DecisionAuditChannel channel;
    channel.setEnabled(true);
    channel.emit(sampleDecision());
    const std::string path = "/tmp/satori_obs_audit_test.jsonl";
    channel.writeJsonl(path);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), channel.jsonLines());
    std::remove(path.c_str());
}

// --- Observability context and macros ---------------------------------

TEST(ObservabilityTest, SingletonRegistersLibraryMetrics)
{
    Observability& o = observability();
    EXPECT_GE(o.metrics().size(), 20u);
    EXPECT_EQ(&o, &Observability::instance());
    o.resetAll();
    EXPECT_FALSE(o.tracer().enabled());
    EXPECT_FALSE(o.audit().enabled());
    EXPECT_FALSE(o.metricsEnabled());
}

#if defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED
TEST(ObservabilityTest, MacrosRecordWhenEnabled)
{
    Observability& o = observability();
    o.resetAll();
    o.tracer().setEnabled(true);
    o.setMetricsEnabled(true);
    {
        SATORI_OBS_SPAN("test.macro");
        SATORI_OBS_METRIC(bo_fits.inc());
    }
    EXPECT_EQ(o.tracer().events().size(), 1u);
    EXPECT_STREQ(o.tracer().events()[0].name, "test.macro");
    EXPECT_EQ(o.lib().bo_fits.value(), 1u);
    o.resetAll();
}

TEST(ObservabilityTest, MacrosAreNoopsWhenDisabled)
{
    Observability& o = observability();
    o.resetAll();
    {
        SATORI_OBS_SPAN("test.noop");
        SATORI_OBS_METRIC(bo_fits.inc());
    }
    EXPECT_TRUE(o.tracer().events().empty());
    EXPECT_EQ(o.lib().bo_fits.value(), 0u);
}
#endif

// --- Determinism: obs on vs off must not change decisions -------------

std::string
runWithTrace(const std::string& path, bool obs_on)
{
    Observability& o = observability();
    o.resetAll();
    if (obs_on) {
        o.tracer().setEnabled(true);
        o.setMetricsEnabled(true);
        o.audit().setEnabled(true);
    }

    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 5);
    auto policy = harness::makePolicy("SATORI", server);

    {
        harness::TraceWriter trace(path, harness::TraceFormat::Csv);
        harness::ExperimentOptions opt;
        opt.duration = 3.0;
        opt.trace = &trace;
        (void)harness::ExperimentRunner(opt).run(server, *policy, "");
    } // destructor flushes

    o.resetAll();
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ObservabilityTest, DecisionTraceIsByteIdenticalObsOnVsOff)
{
    const std::string off_path = "/tmp/satori_obs_det_off.csv";
    const std::string on_path = "/tmp/satori_obs_det_on.csv";
    const std::string off = runWithTrace(off_path, false);
    const std::string on = runWithTrace(on_path, true);
    EXPECT_FALSE(off.empty());
    EXPECT_EQ(off, on);
    std::remove(off_path.c_str());
    std::remove(on_path.c_str());
}

#if defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED
TEST(ObservabilityTest, FullRunProducesNestedSpansAndAuditRecords)
{
    const std::string path = "/tmp/satori_obs_full_run.csv";
    (void)runWithTrace(path, true);
    std::remove(path.c_str());
    // resetAll() at the end of runWithTrace cleared the state; rerun
    // with the channel left enabled to inspect what a run produces.
    Observability& o = observability();
    o.resetAll();
    o.tracer().setEnabled(true);
    o.audit().setEnabled(true);

    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    auto server = harness::makeServer(
        p, workloads::mixOf({"canneal", "swaptions"}), 5);
    auto policy = harness::makePolicy("SATORI", server);
    harness::ExperimentOptions opt;
    opt.duration = 3.0;
    (void)harness::ExperimentRunner(opt).run(server, *policy, "");

    // 3 s / 100 ms = 30 intervals, each with nested spans under
    // harness.interval and one audit record from the controller.
    EXPECT_EQ(o.audit().records().size(), 30u);
    std::size_t intervals = 0, decides = 0, fits = 0;
    bool saw_nested_decide = false;
    for (const TraceEvent& e : o.tracer().events()) {
        const std::string name = e.name;
        if (name == "harness.interval")
            ++intervals;
        if (name == "controller.decide") {
            ++decides;
            if (e.depth > 0)
                saw_nested_decide = true;
        }
        if (name == "bo.fit")
            ++fits;
    }
    EXPECT_EQ(intervals, 30u);
    EXPECT_EQ(decides, 30u);
    EXPECT_GT(fits, 0u);
    EXPECT_TRUE(saw_nested_decide);
    o.resetAll();
}
#endif

} // namespace
} // namespace obs
} // namespace satori
