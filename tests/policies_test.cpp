/**
 * @file
 * Tests for the baseline partitioning policies: validity, the
 * resources each is allowed to touch, and their characteristic
 * behaviours.
 */

#include <set>

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/policies/copart_policy.hpp"
#include "satori/policies/dcat_policy.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/policies/oracle_policy.hpp"
#include "satori/policies/parties_policy.hpp"
#include "satori/policies/random_policy.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace policies {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

sim::SimulatedServer
makeSmallServer(std::uint64_t seed = 42)
{
    return harness::makeServer(
        smallPlatform(),
        workloads::mixOf({"canneal", "streamcluster", "swaptions"}),
        seed);
}

void
runAndCheckValidity(PartitioningPolicy& policy,
                    sim::SimulatedServer& server, int steps = 150)
{
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < steps; ++i) {
        const auto obs = monitor.observe(0.1);
        const Configuration next = policy.decide(obs);
        ASSERT_TRUE(next.isValidFor(server.platform(), server.numJobs()))
            << policy.name() << " step " << i << ": " << next.toString();
        server.setConfiguration(next);
    }
}

TEST(EqualPolicyTest, NeverMoves)
{
    auto server = makeSmallServer();
    EqualPartitionPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 3);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(policy.decide(monitor.observe(0.1)) == equal);
}

TEST(RandomPolicyTest, ValidAndDiverse)
{
    auto server = makeSmallServer();
    RandomPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    std::set<std::string> seen;
    for (int i = 0; i < 50; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        seen.insert(c.toString());
    }
    EXPECT_GT(seen.size(), 30u); // overwhelmingly distinct draws
}

TEST(RandomPolicyTest, ResetRestartsStream)
{
    auto server = makeSmallServer();
    RandomPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    const auto obs = monitor.observe(0.1);
    const auto first = policy.decide(obs);
    policy.decide(obs);
    policy.reset();
    EXPECT_TRUE(policy.decide(obs) == first);
}

TEST(DCatPolicyTest, OnlyReallocatesLlcWays)
{
    auto server = makeSmallServer();
    DCatPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 3);
    const int llc = server.platform().indexOf(ResourceKind::LlcWays);
    for (int i = 0; i < 200; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        for (std::size_t r = 0; r < server.platform().numResources();
             ++r) {
            if (static_cast<int>(r) == llc)
                continue;
            // Non-LLC rows stay at the equal partition.
            EXPECT_EQ(c.resourceRow(r), equal.resourceRow(r));
        }
        server.setConfiguration(c);
    }
}

TEST(DCatPolicyTest, RequiresLlcResource)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    EXPECT_THROW(DCatPolicy(p, 2), FatalError);
}

TEST(DCatPolicyTest, EventuallyMovesWays)
{
    auto server = makeSmallServer();
    DCatPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 3);
    bool moved = false;
    for (int i = 0; i < 300 && !moved; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        moved = !(c == equal);
        server.setConfiguration(c);
    }
    EXPECT_TRUE(moved);
}

TEST(CoPartPolicyTest, OnlyTouchesLlcAndBandwidth)
{
    auto server = makeSmallServer();
    CoPartPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 3);
    const int cores = server.platform().indexOf(ResourceKind::Cores);
    for (int i = 0; i < 200; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        EXPECT_EQ(c.resourceRow(static_cast<std::size_t>(cores)),
                  equal.resourceRow(static_cast<std::size_t>(cores)));
        server.setConfiguration(c);
    }
}

TEST(CoPartPolicyTest, RequiresManagedResource)
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    EXPECT_THROW(CoPartPolicy(p, 2), FatalError);
}

TEST(PartiesPolicyTest, MovesAtMostOneUnitPerEpoch)
{
    auto server = makeSmallServer();
    PartiesPolicy policy(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    Configuration prev = server.configuration();
    for (int i = 0; i < 200; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        // One transfer changes the L1 distance by exactly 2; reverts
        // likewise. No decision may move more than one unit.
        EXPECT_LE(Configuration::l1Distance(prev, c), 2);
        prev = c;
        server.setConfiguration(c);
    }
}

TEST(PartiesPolicyTest, ImprovesOverEqualPartition)
{
    // Gradient descent on the measured objective should beat the
    // static equal partition on this heterogeneous mix.
    auto server_p = makeSmallServer(7);
    PartiesPolicy parties(server_p.platform(), 3);
    harness::ExperimentOptions opt;
    opt.duration = 30.0;
    const harness::ExperimentRunner runner(opt);
    const auto parties_result = runner.run(server_p, parties, "");

    auto server_e = makeSmallServer(7);
    EqualPartitionPolicy equal(server_e.platform(), 3);
    const auto equal_result = runner.run(server_e, equal, "");

    EXPECT_GT(parties_result.mean_objective,
              equal_result.mean_objective);
}

TEST(OraclePolicyTest, MatchesEvaluatorOptimum)
{
    auto server = makeSmallServer();
    OraclePolicy oracle(server, OracleKind::Balanced);
    sim::PerfMonitor monitor(server);
    const auto obs = monitor.observe(0.1);
    const Configuration picked = oracle.decide(obs);
    const auto& best = oracle.evaluator().bestFor(
        server.phaseSignature(), 0.5, 0.5);
    EXPECT_TRUE(picked == best.config);
}

TEST(OraclePolicyTest, KindsAndWeights)
{
    auto server = makeSmallServer();
    OraclePolicy t(server, OracleKind::Throughput);
    OraclePolicy f(server, OracleKind::Fairness);
    OraclePolicy b(server, OracleKind::Balanced);
    EXPECT_DOUBLE_EQ(t.weightThroughput(), 1.0);
    EXPECT_DOUBLE_EQ(t.weightFairness(), 0.0);
    EXPECT_DOUBLE_EQ(f.weightFairness(), 1.0);
    EXPECT_DOUBLE_EQ(b.weightThroughput(), 0.5);
    EXPECT_EQ(t.name(), "Throughput-Oracle");
    EXPECT_EQ(f.name(), "Fairness-Oracle");
    EXPECT_EQ(b.name(), "Balanced-Oracle");
}

TEST(OraclePolicyTest, ThroughputOracleBeatsOthersOnThroughput)
{
    auto server = makeSmallServer();
    harness::OfflineEvaluator eval(server);
    const auto sig = server.phaseSignature();
    const auto& t_opt = eval.bestFor(sig, 1.0, 0.0);
    const auto& f_opt = eval.bestFor(sig, 0.0, 1.0);
    EXPECT_GE(t_opt.throughput, f_opt.throughput);
    EXPECT_GE(f_opt.fairness, t_opt.fairness);
}

TEST(AllPoliciesTest, ValidOverLongRuns)
{
    const std::vector<std::string> names{"Equal",  "Random", "dCAT",
                                         "CoPart", "PARTIES"};
    for (const auto& name : names) {
        auto server = makeSmallServer(11);
        auto policy = harness::makePolicy(name, server);
        runAndCheckValidity(*policy, server);
    }
}

} // namespace
} // namespace policies
} // namespace satori
