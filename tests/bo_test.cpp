/**
 * @file
 * Tests for the Bayesian-optimization stack: kernels, the Gaussian
 * process, acquisition functions, candidate generation, and the
 * engine's suggestion behaviour.
 */

#include <cmath>
#include <cstring>

#include <algorithm>
#include <limits>
#include <set>
#include <gtest/gtest.h>

#include "satori/bo/acquisition.hpp"
#include "satori/bo/approx_gp.hpp"
#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/bo/gp.hpp"
#include "satori/bo/kernel.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace bo {
namespace {

TEST(KernelTest, SelfCovarianceIsSignalVariance)
{
    const Matern52Kernel m(0.5, 2.0);
    const RbfKernel r(0.5, 3.0);
    const RealVec x{0.1, 0.2};
    EXPECT_NEAR(m.covariance(x, x), 2.0, 1e-12);
    EXPECT_NEAR(r.covariance(x, x), 3.0, 1e-12);
}

TEST(KernelTest, SymmetricAndDecayingWithDistance)
{
    const Matern52Kernel k(0.4);
    const RealVec a{0.0, 0.0}, b{0.2, 0.1}, c{0.9, 0.9};
    EXPECT_DOUBLE_EQ(k.covariance(a, b), k.covariance(b, a));
    EXPECT_GT(k.covariance(a, b), k.covariance(a, c));
    EXPECT_GT(k.covariance(a, b), 0.0);
}

TEST(KernelTest, LengthScaleControlsReach)
{
    const RealVec a{0.0}, b{0.5};
    const Matern52Kernel narrow(0.1), wide(1.0);
    EXPECT_LT(narrow.covariance(a, b), wide.covariance(a, b));
}

TEST(KernelTest, WithLengthScaleProducesSameFamily)
{
    const Matern52Kernel k(0.3, 1.5);
    auto k2 = k.withLengthScale(0.6);
    EXPECT_DOUBLE_EQ(k2->lengthScale(), 0.6);
    EXPECT_DOUBLE_EQ(k2->variance(), 1.5);
}

TEST(GpTest, InterpolatesTrainingPointsWithLowNoise)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-8);
    const std::vector<RealVec> xs{{0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, 3.0, 2.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 1e-3);
        EXPECT_LT(p.stddev(), 0.05);
    }
}

TEST(GpTest, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.2), 1e-6);
    gp.fit({{0.0}, {0.1}}, {1.0, 1.1});
    const auto near = gp.predict({0.05});
    const auto far = gp.predict({0.9});
    EXPECT_LT(near.variance, far.variance);
}

TEST(GpTest, StandardizationHandlesLargeTargets)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1e9, 2e9});
    const auto p = gp.predict({0.0});
    EXPECT_NEAR(p.mean, 1e9, 1e7);
}

TEST(GpTest, ConstantTargetsAreSafe)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {4.0, 4.0, 4.0});
    EXPECT_NEAR(gp.predict({0.3}).mean, 4.0, 1e-6);
}

TEST(GpTest, DuplicateInputsDoNotBreakFactorization)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    // Same x with different noisy ys: jitter path must engage.
    gp.fit({{0.5}, {0.5}, {0.5}}, {1.0, 1.2, 0.8});
    const auto p = gp.predict({0.5});
    EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(GpTest, CopySemanticsPreserveFit)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1.0, 2.0});
    GaussianProcess copy(gp);
    EXPECT_NEAR(copy.predict({0.0}).mean, gp.predict({0.0}).mean, 1e-9);
    GaussianProcess assigned(std::make_unique<RbfKernel>(0.3));
    assigned = gp;
    EXPECT_NEAR(assigned.predict({1.0}).mean, 2.0, 1e-3);
}

TEST(GpTest, LengthScaleGridImprovesMarginalLikelihood)
{
    // Data drawn from a smooth function: a too-short length scale
    // should lose to a well-matched one under the LML criterion.
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.01), 1e-4);
    gp.fit(xs, ys);
    const double lml_short = gp.logMarginalLikelihood();
    gp.fitWithLengthScaleGrid(xs, ys, {0.01, 0.1, 0.3, 1.0});
    EXPECT_GE(gp.logMarginalLikelihood(), lml_short);
    EXPECT_GT(gp.kernel().lengthScale(), 0.01);
}

/** Deterministic pseudo-random d-dim input. */
RealVec
randomPoint(Rng& rng, std::size_t dims)
{
    RealVec x(dims);
    for (double& v : x)
        v = rng.uniform();
    return x;
}

TEST(GpIncrementalTest, AddObservationMatchesFullRefitBitwise)
{
    // Randomized sequences, including a duplicated input (SPD-failure
    // fallback) and a large target-scale shift (drift fallback): the
    // incremental GP must match a from-scratch fit at every step -
    // bitwise, because decision-trace stability depends on it.
    Rng rng(31337);
    const std::size_t dims = 4;
    std::vector<RealVec> xs;
    std::vector<double> ys;

    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                0.05);
    std::vector<RealVec> probes;
    for (int p = 0; p < 8; ++p)
        probes.push_back(randomPoint(rng, dims));

    for (std::size_t step = 0; step < 40; ++step) {
        RealVec x;
        if (step == 15) {
            x = xs[3]; // exact duplicate
        } else {
            x = randomPoint(rng, dims);
        }
        double y = rng.gaussian();
        if (step >= 30)
            y *= 1e6; // violent scale shift triggers the drift refresh
        xs.push_back(x);
        ys.push_back(y);

        if (step == 0) {
            incremental.fit(xs, ys);
        } else {
            incremental.addObservation(x, y);
        }

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              0.05);
        fresh.fit(xs, ys);
        ASSERT_EQ(incremental.numSamples(), fresh.numSamples());
        EXPECT_EQ(incremental.logMarginalLikelihood(),
                  fresh.logMarginalLikelihood())
            << "step " << step;
        for (const auto& probe : probes) {
            const auto pi = incremental.predict(probe);
            const auto pf = fresh.predict(probe);
            EXPECT_EQ(pi.mean, pf.mean) << "step " << step;
            EXPECT_EQ(pi.variance, pf.variance) << "step " << step;
        }
    }
}

TEST(GpIncrementalTest, NearSingularDuplicatesStillMatchFullRefit)
{
    // Vanishing noise + duplicated inputs: the rank-1 append either
    // succeeds with the same pivot arithmetic a fresh factorization
    // would run, or refuses and falls back to the jitter-escalated
    // refactorization. Both must equal the from-scratch fit bitwise.
    Rng rng(99);
    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                1e-12);
    std::vector<RealVec> xs{randomPoint(rng, 2)};
    std::vector<double> ys{rng.gaussian()};
    incremental.fit(xs, ys);
    for (int step = 0; step < 10; ++step) {
        // Every other step repeats an existing input exactly.
        const RealVec x = (step % 2 == 0)
                              ? xs[static_cast<std::size_t>(step) / 2]
                              : randomPoint(rng, 2);
        xs.push_back(x);
        ys.push_back(rng.gaussian());
        incremental.addObservation(x, ys.back());

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              1e-12);
        fresh.fit(xs, ys);
        const RealVec probe = randomPoint(rng, 2);
        EXPECT_EQ(incremental.predict(probe).mean,
                  fresh.predict(probe).mean)
            << "step " << step;
        EXPECT_EQ(incremental.predict(probe).variance,
                  fresh.predict(probe).variance)
            << "step " << step;
    }
}

TEST(GpIncrementalTest, FitIncrementalRefreshesTargetsOnSameInputs)
{
    // SATORI's hot path: identical inputs, re-weighted targets every
    // interval. The refresh must reuse the factor yet agree with a
    // full fit exactly.
    Rng rng(4242);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 25; ++i) {
        xs.push_back(randomPoint(rng, 3));
        ys.push_back(rng.gaussian());
    }
    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                0.05);
    incremental.fitIncremental(xs, ys);

    for (int round = 0; round < 5; ++round) {
        for (double& y : ys)
            y = rng.gaussian(0.0, 1.0 + round);
        incremental.fitIncremental(xs, ys); // same inputs, new targets

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              0.05);
        fresh.fit(xs, ys);
        for (int p = 0; p < 6; ++p) {
            const RealVec probe = randomPoint(rng, 3);
            const auto pi = incremental.predict(probe);
            const auto pf = fresh.predict(probe);
            EXPECT_EQ(pi.mean, pf.mean);
            EXPECT_EQ(pi.variance, pf.variance);
        }
    }

    // Appended input: the prefix+1 detection takes the rank-1 path.
    xs.push_back(randomPoint(rng, 3));
    ys.push_back(rng.gaussian());
    incremental.fitIncremental(xs, ys);
    GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh.fit(xs, ys);
    EXPECT_EQ(incremental.logMarginalLikelihood(),
              fresh.logMarginalLikelihood());

    // A trimmed window (different inputs) silently takes the full
    // refit and still agrees.
    std::vector<RealVec> trimmed(xs.begin() + 5, xs.end());
    std::vector<double> trimmed_y(ys.begin() + 5, ys.end());
    incremental.fitIncremental(trimmed, trimmed_y);
    GaussianProcess fresh2(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh2.fit(trimmed, trimmed_y);
    const RealVec probe = randomPoint(rng, 3);
    EXPECT_EQ(incremental.predict(probe).mean,
              fresh2.predict(probe).mean);
}

TEST(GpIncrementalTest, PredictBatchMatchesLoopedPredict)
{
    Rng rng(555);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(randomPoint(rng, 5));
        ys.push_back(rng.gaussian());
    }
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.5), 0.05);
    gp.fit(xs, ys);

    std::vector<RealVec> queries;
    for (int q = 0; q < 33; ++q)
        queries.push_back(randomPoint(rng, 5));

    const auto batch = gp.predictBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto single = gp.predict(queries[q]);
        EXPECT_EQ(batch[q].mean, single.mean) << q;
        EXPECT_EQ(batch[q].variance, single.variance) << q;
    }

    // The into-variant reuses scratch across calls without cross-talk.
    std::vector<GpPrediction> out;
    gp.predictBatchInto(queries, out);
    gp.predictBatchInto(queries, out);
    ASSERT_EQ(out.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q)
        EXPECT_EQ(out[q].mean, batch[q].mean);
}

TEST(GpIncrementalTest, GridFitCachingMatchesDirectBestFit)
{
    // fitWithLengthScaleGrid now restores the best candidate's cached
    // state instead of re-fitting; the result must equal a direct fit
    // at the winning length scale exactly.
    Rng rng(808);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 12; ++i) {
        const double x = i / 12.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x) + 0.01 * rng.gaussian());
    }
    GaussianProcess grid_gp(std::make_unique<Matern52Kernel>(0.05),
                            1e-4);
    grid_gp.fitWithLengthScaleGrid(xs, ys, {0.05, 0.2, 0.5, 1.0});
    const double winner = grid_gp.kernel().lengthScale();

    GaussianProcess direct(std::make_unique<Matern52Kernel>(winner),
                           1e-4);
    direct.fit(xs, ys);
    EXPECT_EQ(grid_gp.logMarginalLikelihood(),
              direct.logMarginalLikelihood());
    for (int p = 0; p < 5; ++p) {
        const RealVec probe = randomPoint(rng, 1);
        EXPECT_EQ(grid_gp.predict(probe).mean,
                  direct.predict(probe).mean);
        EXPECT_EQ(grid_gp.predict(probe).variance,
                  direct.predict(probe).variance);
    }

    // Copies of a grid-fitted GP keep the fit without re-fitting.
    GaussianProcess copy(grid_gp);
    const RealVec probe{0.4};
    EXPECT_EQ(copy.predict(probe).mean, grid_gp.predict(probe).mean);

    // The grid GP remains incrementally updatable afterwards.
    grid_gp.addObservation({1.1}, 0.5);
    GaussianProcess extended(std::make_unique<Matern52Kernel>(winner),
                             1e-4);
    auto xs2 = xs;
    auto ys2 = ys;
    xs2.push_back({1.1});
    ys2.push_back(0.5);
    extended.fit(xs2, ys2);
    EXPECT_EQ(grid_gp.predict(probe).mean,
              extended.predict(probe).mean);
}

TEST(EngineIncrementalTest, IncrementalToggleDoesNotChangeSuggestions)
{
    // The engine-level pin: same samples, same candidates, identical
    // suggestions and predictions with the fast paths on and off.
    Rng rng(2718);
    bo::EngineOptions fast_opt;
    fast_opt.incremental = true;
    bo::EngineOptions slow_opt = fast_opt;
    slow_opt.incremental = false;
    BoEngine fast(fast_opt);
    BoEngine slow(slow_opt);

    std::vector<RealVec> candidates;
    for (int c = 0; c < 24; ++c)
        candidates.push_back(randomPoint(rng, 3));

    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        xs.push_back(randomPoint(rng, 3));
        ys.push_back(rng.gaussian());
        if (i % 3 == 0) {
            // Exercise the setSamples reconstruction path too.
            fast.setSamples(xs, ys);
            slow.setSamples(xs, ys);
        } else {
            fast.addSample(xs.back(), ys.back());
            slow.addSample(xs.back(), ys.back());
        }
        EXPECT_EQ(fast.suggestIndex(candidates),
                  slow.suggestIndex(candidates));
        const auto pf = fast.predict(candidates[0]);
        const auto ps = slow.predict(candidates[0]);
        EXPECT_EQ(pf.mean, ps.mean);
        EXPECT_EQ(pf.variance, ps.variance);
    }

    // And the penalty overload agrees with the zero-penalty overload.
    const std::vector<double> zero(candidates.size(), 0.0);
    EXPECT_EQ(fast.suggestIndex(candidates),
              fast.suggestIndex(candidates, zero));
}

TEST(AcquisitionTest, EiZeroWhenNoImprovementPossible)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(expectedImprovement(p, 1.0), 0.0);
}

TEST(AcquisitionTest, EiPositiveWithUncertainty)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 1.0;
    EXPECT_GT(expectedImprovement(p, 0.5), 0.0);
}

TEST(AcquisitionTest, EiPrefersHigherMeanAtEqualUncertainty)
{
    GpPrediction lo, hi;
    lo.mean = 0.2;
    hi.mean = 0.8;
    lo.variance = hi.variance = 0.04;
    EXPECT_GT(expectedImprovement(hi, 0.5),
              expectedImprovement(lo, 0.5));
}

TEST(AcquisitionTest, ProbabilityOfImprovementBounds)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 0.04;
    // Far above the incumbent: PI near 1; far below: near 0.
    EXPECT_GT(probabilityOfImprovement(p, 0.0), 0.99);
    EXPECT_LT(probabilityOfImprovement(p, 2.0), 0.01);
    // Deterministic prediction collapses to an indicator.
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 1.5), 0.0);
    p.variance = 1.0;
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::ProbabilityOfImprovement, p, 1.0,
                    0.0, 2.0),
        0.5);
}

TEST(AcquisitionTest, UcbCombinesMeanAndSpread)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 4.0;
    EXPECT_DOUBLE_EQ(upperConfidenceBound(p, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::Ucb, p, 0.0, 0.01, 2.0), 5.0);
}

TEST(EngineTest, SuggestsNearMaximumOfSimpleFunction)
{
    // f(x) = -(x - 0.7)^2: after a handful of samples the engine
    // should point near 0.7 rather than the far corner.
    BoEngine engine;
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        const double x = rng.uniform();
        engine.addSample({x}, -(x - 0.7) * (x - 0.7));
    }
    std::vector<RealVec> candidates;
    for (int i = 0; i <= 50; ++i)
        candidates.push_back({i / 50.0});
    const std::size_t pick = engine.suggestIndex(candidates);
    EXPECT_NEAR(candidates[pick][0], 0.7, 0.25);
}

TEST(EngineTest, BestObservedTracksMaximum)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {0.5}, {1.0}}, {1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 5.0);
    EXPECT_EQ(engine.bestIndex(), 1u);
    EXPECT_EQ(engine.numSamples(), 3u);
}

TEST(EngineTest, PenaltiesShiftSelection)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {1.0}}, {0.0, 0.0});
    const std::vector<RealVec> candidates{{0.4}, {0.6}};
    // Symmetric situation; a huge penalty on one candidate must force
    // the other to win regardless of acquisition values.
    const std::size_t pick =
        engine.suggestIndex(candidates, {1e9, 0.0});
    EXPECT_EQ(pick, 1u);
}

TEST(EngineTest, SetSamplesReplacesHistory)
{
    BoEngine engine;
    engine.setSamples({{0.0}}, {1.0});
    engine.setSamples({{0.2}, {0.4}}, {2.0, 3.0});
    EXPECT_EQ(engine.numSamples(), 2u);
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 3.0);
}

TEST(CandidatesTest, SeedsIncludeEqualPartitionAndAreValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto seeds = gen.seedConfigurations();
    ASSERT_FALSE(seeds.empty());
    EXPECT_TRUE(seeds.front() ==
                Configuration::equalPartition(p, 5));
    for (const auto& s : seeds)
        EXPECT_TRUE(s.isValidFor(p, 5));
}

TEST(CandidatesTest, GenerateIsDeduplicatedAndValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    CandidateGenerator gen(space, opt);
    Rng rng(3);
    const Configuration incumbent = Configuration::equalPartition(p, 5);
    const auto cands = gen.generate(incumbent, rng);
    ASSERT_FALSE(cands.empty());
    std::set<std::uint64_t> ranks;
    for (const auto& c : cands) {
        EXPECT_TRUE(c.isValidFor(p, 5));
        EXPECT_TRUE(ranks.insert(space.rank(c)).second)
            << "duplicate candidate";
    }
}

TEST(CandidatesTest, GenerateReplaysExactlyAcrossInstances)
{
    // The emitted candidate order must depend only on (incumbent, rng
    // state), never on unordered_set bucket layout: two independent
    // generators with identically seeded Rngs produce identical lists.
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    const Configuration incumbent = Configuration::equalPartition(p, 5);

    CandidateGenerator gen_a(space, opt);
    CandidateGenerator gen_b(space, opt);
    Rng rng_a(17);
    Rng rng_b(17);
    const auto cands_a = gen_a.generate(incumbent, rng_a);
    const auto cands_b = gen_b.generate(incumbent, rng_b);

    ASSERT_EQ(cands_a.size(), cands_b.size());
    for (std::size_t i = 0; i < cands_a.size(); ++i)
        EXPECT_TRUE(cands_a[i] == cands_b[i]) << "divergence at " << i;
}

// --- sliding-window GP -----------------------------------------------

namespace {

/** n pseudo-random inputs in [0,1)^dims with a smooth target. */
void
makeDataset(std::size_t n, std::size_t dims, std::uint64_t seed,
            std::vector<RealVec>& xs, std::vector<double>& ys)
{
    Rng rng(seed);
    xs.clear();
    ys.clear();
    for (std::size_t i = 0; i < n; ++i) {
        RealVec x(dims);
        for (std::size_t d = 0; d < dims; ++d)
            x[d] = rng.uniform();
        double y = std::sin(3.0 * x[0]);
        for (std::size_t d = 1; d < dims; ++d)
            y += 0.3 * std::cos(4.0 * x[d]);
        xs.push_back(std::move(x));
        ys.push_back(y);
    }
}

/** Bitwise equality of two predictions. */
bool
samePrediction(const GpPrediction& a, const GpPrediction& b)
{
    return std::memcmp(&a.mean, &b.mean, sizeof(double)) == 0 &&
           std::memcmp(&a.variance, &b.variance, sizeof(double)) == 0;
}

} // namespace

TEST(GpWindowTest, EvictAppendReplaysByteStably)
{
    // The windowed contract: the same operation sequence replays
    // byte-identically on a fresh instance.
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(60, 3, 11, xs, ys);
    std::vector<RealVec> queries;
    std::vector<double> qys;
    makeDataset(10, 3, 99, queries, qys);

    const auto run = [&](GaussianProcess& gp) {
        gp.setMaxHistory(24);
        gp.fit({xs.begin(), xs.begin() + 30},
               {ys.begin(), ys.begin() + 30});
        for (std::size_t i = 30; i < xs.size(); ++i)
            gp.addObservation(xs[i], ys[i]);
        std::vector<GpPrediction> preds;
        for (const RealVec& q : queries)
            preds.push_back(gp.predict(q));
        return preds;
    };
    GaussianProcess a(std::make_unique<Matern52Kernel>(0.5), 0.05);
    GaussianProcess b(std::make_unique<Matern52Kernel>(0.5), 0.05);
    const auto pa = run(a);
    const auto pb = run(b);
    ASSERT_EQ(a.numSamples(), 24u);
    EXPECT_GT(a.windowEvictions(), 0u);
    EXPECT_EQ(a.windowEvictions(), b.windowEvictions());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(samePrediction(pa[i], pb[i])) << "query " << i;
}

TEST(GpWindowTest, WindowedFitTracksFreshFitOfSuffix)
{
    // Downdated factors are tolerance-equal (not bit-equal) to a
    // fresh factorization of the surviving window.
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(50, 2, 21, xs, ys);

    GaussianProcess windowed(std::make_unique<Matern52Kernel>(0.5),
                             0.05);
    windowed.setMaxHistory(20);
    windowed.fit({xs.begin(), xs.begin() + 25},
                 {ys.begin(), ys.begin() + 25});
    for (std::size_t i = 25; i < xs.size(); ++i)
        windowed.addObservation(xs[i], ys[i]);

    GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh.fit({xs.end() - 20, xs.end()}, {ys.end() - 20, ys.end()});

    ASSERT_EQ(windowed.numSamples(), 20u);
    std::vector<RealVec> queries;
    std::vector<double> qys;
    makeDataset(12, 2, 77, queries, qys);
    for (const RealVec& q : queries) {
        const GpPrediction w = windowed.predict(q);
        const GpPrediction f = fresh.predict(q);
        EXPECT_NEAR(w.mean, f.mean, 1e-8);
        EXPECT_NEAR(w.variance, f.variance, 1e-8);
    }
}

TEST(GpWindowTest, FitTrimsToWindowSuffix)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(30, 2, 31, xs, ys);
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.5), 0.05);
    gp.setMaxHistory(8);
    gp.fit(xs, ys);
    EXPECT_EQ(gp.numSamples(), 8u);
    GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh.fit({xs.end() - 8, xs.end()}, {ys.end() - 8, ys.end()});
    // A windowed full fit factorizes the suffix directly: identical
    // kernel matrix, identical arithmetic, so means agree to
    // round-off of the different solve blocking.
    const GpPrediction a = gp.predict(xs[0]);
    const GpPrediction b = fresh.predict(xs[0]);
    EXPECT_NEAR(a.mean, b.mean, 1e-10);
    EXPECT_NEAR(a.variance, b.variance, 1e-10);
}

// --- batched/threaded prediction -------------------------------------

TEST(GpBatchTest, PredictRangeChunksMatchFullSweepBitwise)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(40, 3, 41, xs, ys);
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.5), 0.05);
    gp.fit(xs, ys);

    std::vector<RealVec> queries;
    std::vector<double> qys;
    makeDataset(700, 3, 42, queries, qys);

    std::vector<GpPrediction> full(queries.size());
    GaussianProcess::BatchScratch scratch;
    gp.predictRangeInto(queries, 0, queries.size(), full.data(),
                        scratch, true);
    // Any chunking produces the same bytes: results are lane-parallel
    // per candidate.
    std::vector<GpPrediction> chunked(queries.size());
    GaussianProcess::BatchScratch scratch2;
    for (std::size_t lo = 0; lo < queries.size(); lo += 111) {
        const std::size_t hi = std::min(queries.size(), lo + 111);
        gp.predictRangeInto(queries, lo, hi, chunked.data() + lo,
                            scratch2, true);
    }
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_TRUE(samePrediction(full[i], chunked[i])) << i;
    // And the means-only pass produces bit-identical means.
    std::vector<double> means;
    gp.predictMeansInto(queries, means);
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(means[i], full[i].mean) << i;
}

TEST(EngineParallelTest, ThreadedScoringMatchesSerialBitwise)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(30, 3, 51, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(600, 3, 52, candidates, cys);

    EngineOptions serial;
    serial.length_scale_grid.clear();
    EngineOptions threaded = serial;
    threaded.acq_threads = 4;
    for (const bool screen : {false, true}) {
        EngineOptions a = serial;
        EngineOptions b = threaded;
        a.screen = screen;
        b.screen = screen;
        BoEngine ea(a);
        BoEngine eb(b);
        ea.setSamples(xs, ys);
        eb.setSamples(xs, ys);
        EXPECT_EQ(ea.suggestIndex(candidates),
                  eb.suggestIndex(candidates))
            << "screen=" << screen;
    }
}

// --- candidate screening ---------------------------------------------

TEST(ScreeningTest, UpperBoundDominatesExactScore)
{
    Rng rng(61);
    for (const AcquisitionKind kind :
         {AcquisitionKind::ExpectedImprovement, AcquisitionKind::Ucb,
          AcquisitionKind::ProbabilityOfImprovement}) {
        for (int trial = 0; trial < 2000; ++trial) {
            const double sigma_max = rng.uniform(0.0, 2.0);
            GpPrediction pred;
            pred.mean = rng.uniform(-3.0, 3.0);
            const double sigma = rng.uniform(0.0, sigma_max);
            pred.variance = sigma * sigma;
            const double best = rng.uniform(-3.0, 3.0);
            const double score =
                acquisition(kind, pred, best, 0.01, 2.0);
            const double bound = acquisitionUpperBound(
                kind, pred.mean, sigma_max, best, 0.01, 2.0);
            EXPECT_GE(bound, score)
                << "kind=" << static_cast<int>(kind)
                << " mean=" << pred.mean << " sigma=" << sigma
                << " sigma_max=" << sigma_max << " best=" << best;
        }
    }
}

TEST(ScreeningTest, ScreenedArgmaxMatchesUnscreenedExactly)
{
    // The decision contract: screening never changes the suggestion,
    // tie-breaks included, for every acquisition kind, with and
    // without penalties.
    for (const AcquisitionKind kind :
         {AcquisitionKind::ExpectedImprovement, AcquisitionKind::Ucb,
          AcquisitionKind::ProbabilityOfImprovement}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            std::vector<RealVec> xs;
            std::vector<double> ys;
            makeDataset(40, 3, seed, xs, ys);
            std::vector<RealVec> candidates;
            std::vector<double> cys;
            makeDataset(300, 3, seed + 1000, candidates, cys);
            Rng rng(seed + 2000);
            std::vector<double> penalties;
            for (std::size_t i = 0; i < candidates.size(); ++i)
                penalties.push_back(rng.uniform(0.0, 0.2));

            EngineOptions on;
            on.acquisition = kind;
            on.length_scale_grid.clear();
            EngineOptions off = on;
            off.screen = false;
            on.screen = true;
            BoEngine screened(on);
            BoEngine dense(off);
            screened.setSamples(xs, ys);
            dense.setSamples(xs, ys);

            EXPECT_EQ(screened.suggestIndex(candidates),
                      dense.suggestIndex(candidates))
                << "kind=" << static_cast<int>(kind)
                << " seed=" << seed;
            EXPECT_EQ(screened.suggestIndex(candidates, penalties),
                      dense.suggestIndex(candidates, penalties))
                << "kind=" << static_cast<int>(kind)
                << " seed=" << seed << " (penalized)";
            const auto& stats = screened.suggestStats();
            EXPECT_EQ(stats.screen_kept + stats.screen_pruned,
                      candidates.size());
        }
    }
}

TEST(ScreeningTest, ScreeningPrunesOnSettledLandscapes)
{
    // Once the posterior is confident, most candidates fall below
    // the incumbent's exact score - the win the prefilter exists
    // for. Pin that it actually prunes here so the exactness test
    // above is not vacuously passing on all-survivor sets. UCB is
    // the pruning workhorse: its bound is per-candidate mean plus a
    // constant, so mean spread wider than beta * maxStddev() prunes.
    // (EI's bound carries a constant phi(0) * sigma_max term that a
    // settled landscape's tiny exact scores rarely clear, so EI
    // screening degrades to keep-everything - still exact, just not
    // faster; the bench reports the measured pruning fraction.)
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(120, 2, 71, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(400, 2, 72, candidates, cys);
    EngineOptions options;
    options.acquisition = AcquisitionKind::Ucb;
    options.length_scale_grid.clear();
    BoEngine engine(options);
    engine.setSamples(xs, ys);
    (void)engine.suggestIndex(candidates);
    const auto& stats = engine.suggestStats();
    EXPECT_GT(stats.screen_pruned, 0u);
    EXPECT_GT(stats.screen_kept, 0u);
}

// --- approximate GP --------------------------------------------------

TEST(ApproxGpTest, TracksExactGpOnSmoothData)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(300, 3, 81, xs, ys);
    GaussianProcess exact(std::make_unique<Matern52Kernel>(0.5), 0.05);
    exact.fit(xs, ys);
    ApproxGp approx(std::make_unique<Matern52Kernel>(0.5), 0.05, 32);
    approx.fit(xs, ys);

    std::vector<RealVec> queries;
    std::vector<double> qys;
    makeDataset(100, 3, 82, queries, qys);
    double se_mean = 0.0;
    double se_std = 0.0;
    for (const RealVec& q : queries) {
        const GpPrediction pe = exact.predict(q);
        const GpPrediction pa = approx.predict(q);
        se_mean += (pe.mean - pa.mean) * (pe.mean - pa.mean);
        const double ds = pe.stddev() - pa.stddev();
        se_std += ds * ds;
    }
    // Loose sanity bounds on a ~[-1.6, 1.6] target range; the bench
    // gates the measured RMSE tightly against the checked-in
    // baseline.
    EXPECT_LT(std::sqrt(se_mean / queries.size()), 0.15);
    EXPECT_LT(std::sqrt(se_std / queries.size()), 0.15);
}

TEST(ApproxGpTest, IncrementalReplaysByteStably)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(80, 3, 91, xs, ys);
    std::vector<RealVec> queries;
    std::vector<double> qys;
    makeDataset(10, 3, 92, queries, qys);
    const auto run = [&](ApproxGp& gp) {
        gp.setMaxHistory(40);
        gp.fit({xs.begin(), xs.begin() + 50},
               {ys.begin(), ys.begin() + 50});
        for (std::size_t i = 50; i < xs.size(); ++i)
            gp.addObservation(xs[i], ys[i]);
        std::vector<GpPrediction> preds;
        for (const RealVec& q : queries)
            preds.push_back(gp.predict(q));
        return preds;
    };
    ApproxGp a(std::make_unique<Matern52Kernel>(0.5), 0.05, 16);
    ApproxGp b(std::make_unique<Matern52Kernel>(0.5), 0.05, 16);
    const auto pa = run(a);
    const auto pb = run(b);
    ASSERT_EQ(a.numSamples(), 40u);
    EXPECT_GT(a.windowEvictions(), 0u);
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(samePrediction(pa[i], pb[i])) << i;
}

TEST(ApproxGpTest, EngineEntersApproxRegimeAndStaysDecisive)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(64, 3, 93, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(50, 3, 94, candidates, cys);

    EngineOptions options;
    options.length_scale_grid.clear();
    options.approx = true;
    options.approx_min_samples = 32;
    options.approx_inducing = 16;
    BoEngine engine(options);
    engine.setSamples({xs.begin(), xs.begin() + 16},
                      {ys.begin(), ys.begin() + 16});
    (void)engine.suggestIndex(candidates);
    EXPECT_FALSE(engine.suggestStats().approx_active);
    for (std::size_t i = 16; i < xs.size(); ++i)
        engine.addSample(xs[i], ys[i]);
    const std::size_t pick = engine.suggestIndex(candidates);
    EXPECT_LT(pick, candidates.size());
    EXPECT_TRUE(engine.suggestStats().approx_active);
    const GpPrediction pred = engine.predict(candidates[pick]);
    EXPECT_TRUE(std::isfinite(pred.mean));
    EXPECT_TRUE(std::isfinite(pred.variance));
    const std::vector<double> means = engine.probeMeans(candidates);
    EXPECT_EQ(means.size(), candidates.size());
}

TEST(ApproxGpTest, CachedMissMatchesBatchBitwise)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(100, 4, 96, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(300, 4, 97, candidates, cys);
    ApproxGp gp(std::make_unique<Matern52Kernel>(0.6), 0.05, 16);
    gp.fit(xs, ys);
    std::vector<GpPrediction> direct;
    gp.predictBatchInto(candidates, direct);
    std::vector<GpPrediction> cached;
    gp.predictBatchCachedInto(candidates, cached);
    EXPECT_EQ(gp.cacheMisses(), 1u);
    EXPECT_EQ(gp.cacheHits(), 0u);
    ASSERT_EQ(cached.size(), direct.size());
    // A miss computes exactly what predictBatchInto computes.
    for (std::size_t i = 0; i < cached.size(); ++i)
        EXPECT_TRUE(samePrediction(cached[i], direct[i])) << i;
}

TEST(ApproxGpTest, CachedHitTracksDirectSolveAfterMutations)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(86, 4, 98, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(300, 4, 99, candidates, cys);
    ApproxGp gp(std::make_unique<Matern52Kernel>(0.6), 0.05, 16);
    gp.setMaxHistory(80);
    gp.fit({xs.begin(), xs.begin() + 80}, {ys.begin(), ys.begin() + 80});
    std::vector<GpPrediction> cached;
    gp.predictBatchCachedInto(candidates, cached); // prime (miss)
    // Six appends + six evictions journal twelve Sherman-Morrison
    // corrections - within the journal cap, so the next scoring is a
    // hit that applies them all.
    for (std::size_t i = 80; i < xs.size(); ++i)
        gp.addObservation(xs[i], ys[i]);
    EXPECT_GT(gp.windowEvictions(), 0u);
    gp.predictBatchCachedInto(candidates, cached);
    EXPECT_EQ(gp.cacheMisses(), 1u);
    EXPECT_EQ(gp.cacheHits(), 1u);
    std::vector<GpPrediction> direct;
    gp.predictBatchInto(candidates, direct);
    for (std::size_t i = 0; i < cached.size(); ++i) {
        // Means come from the live weights, so they stay exact; the
        // corrected variances track the direct solve to rounding.
        EXPECT_EQ(cached[i].mean, direct[i].mean) << i;
        EXPECT_NEAR(cached[i].variance, direct[i].variance, 1e-8) << i;
    }
}

TEST(ApproxGpTest, CachedDetectsCandidateContentChange)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(60, 3, 100, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(50, 3, 101, candidates, cys);
    ApproxGp gp(std::make_unique<Matern52Kernel>(0.6), 0.05, 8);
    gp.fit(xs, ys);
    std::vector<GpPrediction> preds;
    gp.predictBatchCachedInto(candidates, preds);
    gp.predictBatchCachedInto(candidates, preds);
    EXPECT_EQ(gp.cacheMisses(), 1u);
    EXPECT_EQ(gp.cacheHits(), 1u);
    candidates[17][1] = std::nextafter(
        candidates[17][1], std::numeric_limits<double>::infinity());
    gp.predictBatchCachedInto(candidates, preds);
    EXPECT_EQ(gp.cacheMisses(), 2u);
    std::vector<GpPrediction> direct;
    gp.predictBatchInto(candidates, direct);
    for (std::size_t i = 0; i < preds.size(); ++i)
        EXPECT_TRUE(samePrediction(preds[i], direct[i])) << i;
}

TEST(ApproxGpTest, CachedScoringReplaysByteStably)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(90, 3, 102, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(80, 3, 103, candidates, cys);
    const auto run = [&](ApproxGp& gp) {
        gp.setMaxHistory(50);
        gp.fit({xs.begin(), xs.begin() + 60},
               {ys.begin(), ys.begin() + 60});
        std::vector<GpPrediction> preds;
        gp.predictBatchCachedInto(candidates, preds);
        for (std::size_t i = 60; i < xs.size(); ++i) {
            gp.addObservation(xs[i], ys[i]);
            gp.predictBatchCachedInto(candidates, preds);
        }
        return preds;
    };
    ApproxGp a(std::make_unique<Matern52Kernel>(0.5), 0.05, 16);
    ApproxGp b(std::make_unique<Matern52Kernel>(0.5), 0.05, 16);
    const auto pa = run(a);
    const auto pb = run(b);
    EXPECT_EQ(a.cacheHits(), b.cacheHits());
    EXPECT_GT(a.cacheHits(), 0u);
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(samePrediction(pa[i], pb[i])) << i;
}

// --- windowed engine + persist round-trip ----------------------------

TEST(EngineWindowTest, WindowBoundsEngineHistory)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(40, 2, 95, xs, ys);
    EngineOptions options;
    options.length_scale_grid.clear();
    options.max_history = 12;
    BoEngine engine(options);
    engine.setSamples({xs.begin(), xs.begin() + 10},
                      {ys.begin(), ys.begin() + 10});
    for (std::size_t i = 10; i < xs.size(); ++i)
        engine.addSample(xs[i], ys[i]);
    EXPECT_EQ(engine.numSamples(), 12u);
    // bestObserved covers the window only - the engine's history and
    // the GP's training set stay the same bounded suffix.
    const double best_window =
        *std::max_element(ys.end() - 12, ys.end());
    EXPECT_DOUBLE_EQ(engine.bestObserved(), best_window);
    (void)engine.suggestIndex({xs.begin(), xs.begin() + 5});
    EXPECT_GT(engine.suggestStats().window_evictions, 0u);
}

TEST(EngineWindowTest, StateRoundTripsThroughPersistV2)
{
    std::vector<RealVec> xs;
    std::vector<double> ys;
    makeDataset(30, 2, 96, xs, ys);
    std::vector<RealVec> candidates;
    std::vector<double> cys;
    makeDataset(60, 2, 97, candidates, cys);

    EngineOptions options;
    options.length_scale_grid.clear();
    options.max_history = 16;
    BoEngine engine(options);
    engine.setSamples({xs.begin(), xs.begin() + 20},
                      {ys.begin(), ys.begin() + 20});
    for (std::size_t i = 20; i < xs.size(); ++i)
        engine.addSample(xs[i], ys[i]);

    persist::StateWriter w;
    engine.saveState(w);
    persist::StateReader r(w.bytes(), "engine-roundtrip");
    BoEngine restored(options);
    restored.restoreState(r);
    EXPECT_EQ(restored.numSamples(), engine.numSamples());
    EXPECT_DOUBLE_EQ(restored.bestObserved(), engine.bestObserved());
    EXPECT_EQ(restored.suggestIndex(candidates),
              engine.suggestIndex(candidates));
}

TEST(CandidatesTest, ConcentratedConfigurationsCoverEveryJob)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto conc = gen.concentratedConfigurations();
    ASSERT_FALSE(conc.empty());
    for (const auto& c : conc)
        EXPECT_TRUE(c.isValidFor(p, 5));
    // Some configuration hands one job a large share of the LLC.
    bool found_heavy = false;
    for (const auto& c : conc)
        for (std::size_t j = 0; j < 5; ++j)
            found_heavy |= (c.units(1, j) >= 7);
    EXPECT_TRUE(found_heavy);
}

} // namespace
} // namespace bo
} // namespace satori
