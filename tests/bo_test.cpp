/**
 * @file
 * Tests for the Bayesian-optimization stack: kernels, the Gaussian
 * process, acquisition functions, candidate generation, and the
 * engine's suggestion behaviour.
 */

#include <cmath>

#include <set>
#include <gtest/gtest.h>

#include "satori/bo/acquisition.hpp"
#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/bo/gp.hpp"
#include "satori/bo/kernel.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"

namespace satori {
namespace bo {
namespace {

TEST(KernelTest, SelfCovarianceIsSignalVariance)
{
    const Matern52Kernel m(0.5, 2.0);
    const RbfKernel r(0.5, 3.0);
    const RealVec x{0.1, 0.2};
    EXPECT_NEAR(m.covariance(x, x), 2.0, 1e-12);
    EXPECT_NEAR(r.covariance(x, x), 3.0, 1e-12);
}

TEST(KernelTest, SymmetricAndDecayingWithDistance)
{
    const Matern52Kernel k(0.4);
    const RealVec a{0.0, 0.0}, b{0.2, 0.1}, c{0.9, 0.9};
    EXPECT_DOUBLE_EQ(k.covariance(a, b), k.covariance(b, a));
    EXPECT_GT(k.covariance(a, b), k.covariance(a, c));
    EXPECT_GT(k.covariance(a, b), 0.0);
}

TEST(KernelTest, LengthScaleControlsReach)
{
    const RealVec a{0.0}, b{0.5};
    const Matern52Kernel narrow(0.1), wide(1.0);
    EXPECT_LT(narrow.covariance(a, b), wide.covariance(a, b));
}

TEST(KernelTest, WithLengthScaleProducesSameFamily)
{
    const Matern52Kernel k(0.3, 1.5);
    auto k2 = k.withLengthScale(0.6);
    EXPECT_DOUBLE_EQ(k2->lengthScale(), 0.6);
    EXPECT_DOUBLE_EQ(k2->variance(), 1.5);
}

TEST(GpTest, InterpolatesTrainingPointsWithLowNoise)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-8);
    const std::vector<RealVec> xs{{0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, 3.0, 2.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 1e-3);
        EXPECT_LT(p.stddev(), 0.05);
    }
}

TEST(GpTest, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.2), 1e-6);
    gp.fit({{0.0}, {0.1}}, {1.0, 1.1});
    const auto near = gp.predict({0.05});
    const auto far = gp.predict({0.9});
    EXPECT_LT(near.variance, far.variance);
}

TEST(GpTest, StandardizationHandlesLargeTargets)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1e9, 2e9});
    const auto p = gp.predict({0.0});
    EXPECT_NEAR(p.mean, 1e9, 1e7);
}

TEST(GpTest, ConstantTargetsAreSafe)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {4.0, 4.0, 4.0});
    EXPECT_NEAR(gp.predict({0.3}).mean, 4.0, 1e-6);
}

TEST(GpTest, DuplicateInputsDoNotBreakFactorization)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    // Same x with different noisy ys: jitter path must engage.
    gp.fit({{0.5}, {0.5}, {0.5}}, {1.0, 1.2, 0.8});
    const auto p = gp.predict({0.5});
    EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(GpTest, CopySemanticsPreserveFit)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1.0, 2.0});
    GaussianProcess copy(gp);
    EXPECT_NEAR(copy.predict({0.0}).mean, gp.predict({0.0}).mean, 1e-9);
    GaussianProcess assigned(std::make_unique<RbfKernel>(0.3));
    assigned = gp;
    EXPECT_NEAR(assigned.predict({1.0}).mean, 2.0, 1e-3);
}

TEST(GpTest, LengthScaleGridImprovesMarginalLikelihood)
{
    // Data drawn from a smooth function: a too-short length scale
    // should lose to a well-matched one under the LML criterion.
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.01), 1e-4);
    gp.fit(xs, ys);
    const double lml_short = gp.logMarginalLikelihood();
    gp.fitWithLengthScaleGrid(xs, ys, {0.01, 0.1, 0.3, 1.0});
    EXPECT_GE(gp.logMarginalLikelihood(), lml_short);
    EXPECT_GT(gp.kernel().lengthScale(), 0.01);
}

TEST(AcquisitionTest, EiZeroWhenNoImprovementPossible)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(expectedImprovement(p, 1.0), 0.0);
}

TEST(AcquisitionTest, EiPositiveWithUncertainty)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 1.0;
    EXPECT_GT(expectedImprovement(p, 0.5), 0.0);
}

TEST(AcquisitionTest, EiPrefersHigherMeanAtEqualUncertainty)
{
    GpPrediction lo, hi;
    lo.mean = 0.2;
    hi.mean = 0.8;
    lo.variance = hi.variance = 0.04;
    EXPECT_GT(expectedImprovement(hi, 0.5),
              expectedImprovement(lo, 0.5));
}

TEST(AcquisitionTest, ProbabilityOfImprovementBounds)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 0.04;
    // Far above the incumbent: PI near 1; far below: near 0.
    EXPECT_GT(probabilityOfImprovement(p, 0.0), 0.99);
    EXPECT_LT(probabilityOfImprovement(p, 2.0), 0.01);
    // Deterministic prediction collapses to an indicator.
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 1.5), 0.0);
    p.variance = 1.0;
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::ProbabilityOfImprovement, p, 1.0,
                    0.0, 2.0),
        0.5);
}

TEST(AcquisitionTest, UcbCombinesMeanAndSpread)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 4.0;
    EXPECT_DOUBLE_EQ(upperConfidenceBound(p, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::Ucb, p, 0.0, 0.01, 2.0), 5.0);
}

TEST(EngineTest, SuggestsNearMaximumOfSimpleFunction)
{
    // f(x) = -(x - 0.7)^2: after a handful of samples the engine
    // should point near 0.7 rather than the far corner.
    BoEngine engine;
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        const double x = rng.uniform();
        engine.addSample({x}, -(x - 0.7) * (x - 0.7));
    }
    std::vector<RealVec> candidates;
    for (int i = 0; i <= 50; ++i)
        candidates.push_back({i / 50.0});
    const std::size_t pick = engine.suggestIndex(candidates);
    EXPECT_NEAR(candidates[pick][0], 0.7, 0.25);
}

TEST(EngineTest, BestObservedTracksMaximum)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {0.5}, {1.0}}, {1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 5.0);
    EXPECT_EQ(engine.bestIndex(), 1u);
    EXPECT_EQ(engine.numSamples(), 3u);
}

TEST(EngineTest, PenaltiesShiftSelection)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {1.0}}, {0.0, 0.0});
    const std::vector<RealVec> candidates{{0.4}, {0.6}};
    // Symmetric situation; a huge penalty on one candidate must force
    // the other to win regardless of acquisition values.
    const std::size_t pick =
        engine.suggestIndex(candidates, {1e9, 0.0});
    EXPECT_EQ(pick, 1u);
}

TEST(EngineTest, SetSamplesReplacesHistory)
{
    BoEngine engine;
    engine.setSamples({{0.0}}, {1.0});
    engine.setSamples({{0.2}, {0.4}}, {2.0, 3.0});
    EXPECT_EQ(engine.numSamples(), 2u);
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 3.0);
}

TEST(CandidatesTest, SeedsIncludeEqualPartitionAndAreValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto seeds = gen.seedConfigurations();
    ASSERT_FALSE(seeds.empty());
    EXPECT_TRUE(seeds.front() ==
                Configuration::equalPartition(p, 5));
    for (const auto& s : seeds)
        EXPECT_TRUE(s.isValidFor(p, 5));
}

TEST(CandidatesTest, GenerateIsDeduplicatedAndValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    CandidateGenerator gen(space, opt);
    Rng rng(3);
    const Configuration incumbent = Configuration::equalPartition(p, 5);
    const auto cands = gen.generate(incumbent, rng);
    ASSERT_FALSE(cands.empty());
    std::set<std::uint64_t> ranks;
    for (const auto& c : cands) {
        EXPECT_TRUE(c.isValidFor(p, 5));
        EXPECT_TRUE(ranks.insert(space.rank(c)).second)
            << "duplicate candidate";
    }
}

TEST(CandidatesTest, GenerateReplaysExactlyAcrossInstances)
{
    // The emitted candidate order must depend only on (incumbent, rng
    // state), never on unordered_set bucket layout: two independent
    // generators with identically seeded Rngs produce identical lists.
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    const Configuration incumbent = Configuration::equalPartition(p, 5);

    CandidateGenerator gen_a(space, opt);
    CandidateGenerator gen_b(space, opt);
    Rng rng_a(17);
    Rng rng_b(17);
    const auto cands_a = gen_a.generate(incumbent, rng_a);
    const auto cands_b = gen_b.generate(incumbent, rng_b);

    ASSERT_EQ(cands_a.size(), cands_b.size());
    for (std::size_t i = 0; i < cands_a.size(); ++i)
        EXPECT_TRUE(cands_a[i] == cands_b[i]) << "divergence at " << i;
}

TEST(CandidatesTest, ConcentratedConfigurationsCoverEveryJob)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto conc = gen.concentratedConfigurations();
    ASSERT_FALSE(conc.empty());
    for (const auto& c : conc)
        EXPECT_TRUE(c.isValidFor(p, 5));
    // Some configuration hands one job a large share of the LLC.
    bool found_heavy = false;
    for (const auto& c : conc)
        for (std::size_t j = 0; j < 5; ++j)
            found_heavy |= (c.units(1, j) >= 7);
    EXPECT_TRUE(found_heavy);
}

} // namespace
} // namespace bo
} // namespace satori
