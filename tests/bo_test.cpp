/**
 * @file
 * Tests for the Bayesian-optimization stack: kernels, the Gaussian
 * process, acquisition functions, candidate generation, and the
 * engine's suggestion behaviour.
 */

#include <cmath>

#include <set>
#include <gtest/gtest.h>

#include "satori/bo/acquisition.hpp"
#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/bo/gp.hpp"
#include "satori/bo/kernel.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"

namespace satori {
namespace bo {
namespace {

TEST(KernelTest, SelfCovarianceIsSignalVariance)
{
    const Matern52Kernel m(0.5, 2.0);
    const RbfKernel r(0.5, 3.0);
    const RealVec x{0.1, 0.2};
    EXPECT_NEAR(m.covariance(x, x), 2.0, 1e-12);
    EXPECT_NEAR(r.covariance(x, x), 3.0, 1e-12);
}

TEST(KernelTest, SymmetricAndDecayingWithDistance)
{
    const Matern52Kernel k(0.4);
    const RealVec a{0.0, 0.0}, b{0.2, 0.1}, c{0.9, 0.9};
    EXPECT_DOUBLE_EQ(k.covariance(a, b), k.covariance(b, a));
    EXPECT_GT(k.covariance(a, b), k.covariance(a, c));
    EXPECT_GT(k.covariance(a, b), 0.0);
}

TEST(KernelTest, LengthScaleControlsReach)
{
    const RealVec a{0.0}, b{0.5};
    const Matern52Kernel narrow(0.1), wide(1.0);
    EXPECT_LT(narrow.covariance(a, b), wide.covariance(a, b));
}

TEST(KernelTest, WithLengthScaleProducesSameFamily)
{
    const Matern52Kernel k(0.3, 1.5);
    auto k2 = k.withLengthScale(0.6);
    EXPECT_DOUBLE_EQ(k2->lengthScale(), 0.6);
    EXPECT_DOUBLE_EQ(k2->variance(), 1.5);
}

TEST(GpTest, InterpolatesTrainingPointsWithLowNoise)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-8);
    const std::vector<RealVec> xs{{0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, 3.0, 2.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 1e-3);
        EXPECT_LT(p.stddev(), 0.05);
    }
}

TEST(GpTest, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.2), 1e-6);
    gp.fit({{0.0}, {0.1}}, {1.0, 1.1});
    const auto near = gp.predict({0.05});
    const auto far = gp.predict({0.9});
    EXPECT_LT(near.variance, far.variance);
}

TEST(GpTest, StandardizationHandlesLargeTargets)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1e9, 2e9});
    const auto p = gp.predict({0.0});
    EXPECT_NEAR(p.mean, 1e9, 1e7);
}

TEST(GpTest, ConstantTargetsAreSafe)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {4.0, 4.0, 4.0});
    EXPECT_NEAR(gp.predict({0.3}).mean, 4.0, 1e-6);
}

TEST(GpTest, DuplicateInputsDoNotBreakFactorization)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    // Same x with different noisy ys: jitter path must engage.
    gp.fit({{0.5}, {0.5}, {0.5}}, {1.0, 1.2, 0.8});
    const auto p = gp.predict({0.5});
    EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(GpTest, CopySemanticsPreserveFit)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.3), 1e-6);
    gp.fit({{0.0}, {1.0}}, {1.0, 2.0});
    GaussianProcess copy(gp);
    EXPECT_NEAR(copy.predict({0.0}).mean, gp.predict({0.0}).mean, 1e-9);
    GaussianProcess assigned(std::make_unique<RbfKernel>(0.3));
    assigned = gp;
    EXPECT_NEAR(assigned.predict({1.0}).mean, 2.0, 1e-3);
}

TEST(GpTest, LengthScaleGridImprovesMarginalLikelihood)
{
    // Data drawn from a smooth function: a too-short length scale
    // should lose to a well-matched one under the LML criterion.
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.01), 1e-4);
    gp.fit(xs, ys);
    const double lml_short = gp.logMarginalLikelihood();
    gp.fitWithLengthScaleGrid(xs, ys, {0.01, 0.1, 0.3, 1.0});
    EXPECT_GE(gp.logMarginalLikelihood(), lml_short);
    EXPECT_GT(gp.kernel().lengthScale(), 0.01);
}

/** Deterministic pseudo-random d-dim input. */
RealVec
randomPoint(Rng& rng, std::size_t dims)
{
    RealVec x(dims);
    for (double& v : x)
        v = rng.uniform();
    return x;
}

TEST(GpIncrementalTest, AddObservationMatchesFullRefitBitwise)
{
    // Randomized sequences, including a duplicated input (SPD-failure
    // fallback) and a large target-scale shift (drift fallback): the
    // incremental GP must match a from-scratch fit at every step -
    // bitwise, because decision-trace stability depends on it.
    Rng rng(31337);
    const std::size_t dims = 4;
    std::vector<RealVec> xs;
    std::vector<double> ys;

    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                0.05);
    std::vector<RealVec> probes;
    for (int p = 0; p < 8; ++p)
        probes.push_back(randomPoint(rng, dims));

    for (std::size_t step = 0; step < 40; ++step) {
        RealVec x;
        if (step == 15) {
            x = xs[3]; // exact duplicate
        } else {
            x = randomPoint(rng, dims);
        }
        double y = rng.gaussian();
        if (step >= 30)
            y *= 1e6; // violent scale shift triggers the drift refresh
        xs.push_back(x);
        ys.push_back(y);

        if (step == 0) {
            incremental.fit(xs, ys);
        } else {
            incremental.addObservation(x, y);
        }

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              0.05);
        fresh.fit(xs, ys);
        ASSERT_EQ(incremental.numSamples(), fresh.numSamples());
        EXPECT_EQ(incremental.logMarginalLikelihood(),
                  fresh.logMarginalLikelihood())
            << "step " << step;
        for (const auto& probe : probes) {
            const auto pi = incremental.predict(probe);
            const auto pf = fresh.predict(probe);
            EXPECT_EQ(pi.mean, pf.mean) << "step " << step;
            EXPECT_EQ(pi.variance, pf.variance) << "step " << step;
        }
    }
}

TEST(GpIncrementalTest, NearSingularDuplicatesStillMatchFullRefit)
{
    // Vanishing noise + duplicated inputs: the rank-1 append either
    // succeeds with the same pivot arithmetic a fresh factorization
    // would run, or refuses and falls back to the jitter-escalated
    // refactorization. Both must equal the from-scratch fit bitwise.
    Rng rng(99);
    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                1e-12);
    std::vector<RealVec> xs{randomPoint(rng, 2)};
    std::vector<double> ys{rng.gaussian()};
    incremental.fit(xs, ys);
    for (int step = 0; step < 10; ++step) {
        // Every other step repeats an existing input exactly.
        const RealVec x = (step % 2 == 0)
                              ? xs[static_cast<std::size_t>(step) / 2]
                              : randomPoint(rng, 2);
        xs.push_back(x);
        ys.push_back(rng.gaussian());
        incremental.addObservation(x, ys.back());

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              1e-12);
        fresh.fit(xs, ys);
        const RealVec probe = randomPoint(rng, 2);
        EXPECT_EQ(incremental.predict(probe).mean,
                  fresh.predict(probe).mean)
            << "step " << step;
        EXPECT_EQ(incremental.predict(probe).variance,
                  fresh.predict(probe).variance)
            << "step " << step;
    }
}

TEST(GpIncrementalTest, FitIncrementalRefreshesTargetsOnSameInputs)
{
    // SATORI's hot path: identical inputs, re-weighted targets every
    // interval. The refresh must reuse the factor yet agree with a
    // full fit exactly.
    Rng rng(4242);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 25; ++i) {
        xs.push_back(randomPoint(rng, 3));
        ys.push_back(rng.gaussian());
    }
    GaussianProcess incremental(std::make_unique<Matern52Kernel>(0.5),
                                0.05);
    incremental.fitIncremental(xs, ys);

    for (int round = 0; round < 5; ++round) {
        for (double& y : ys)
            y = rng.gaussian(0.0, 1.0 + round);
        incremental.fitIncremental(xs, ys); // same inputs, new targets

        GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5),
                              0.05);
        fresh.fit(xs, ys);
        for (int p = 0; p < 6; ++p) {
            const RealVec probe = randomPoint(rng, 3);
            const auto pi = incremental.predict(probe);
            const auto pf = fresh.predict(probe);
            EXPECT_EQ(pi.mean, pf.mean);
            EXPECT_EQ(pi.variance, pf.variance);
        }
    }

    // Appended input: the prefix+1 detection takes the rank-1 path.
    xs.push_back(randomPoint(rng, 3));
    ys.push_back(rng.gaussian());
    incremental.fitIncremental(xs, ys);
    GaussianProcess fresh(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh.fit(xs, ys);
    EXPECT_EQ(incremental.logMarginalLikelihood(),
              fresh.logMarginalLikelihood());

    // A trimmed window (different inputs) silently takes the full
    // refit and still agrees.
    std::vector<RealVec> trimmed(xs.begin() + 5, xs.end());
    std::vector<double> trimmed_y(ys.begin() + 5, ys.end());
    incremental.fitIncremental(trimmed, trimmed_y);
    GaussianProcess fresh2(std::make_unique<Matern52Kernel>(0.5), 0.05);
    fresh2.fit(trimmed, trimmed_y);
    const RealVec probe = randomPoint(rng, 3);
    EXPECT_EQ(incremental.predict(probe).mean,
              fresh2.predict(probe).mean);
}

TEST(GpIncrementalTest, PredictBatchMatchesLoopedPredict)
{
    Rng rng(555);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(randomPoint(rng, 5));
        ys.push_back(rng.gaussian());
    }
    GaussianProcess gp(std::make_unique<Matern52Kernel>(0.5), 0.05);
    gp.fit(xs, ys);

    std::vector<RealVec> queries;
    for (int q = 0; q < 33; ++q)
        queries.push_back(randomPoint(rng, 5));

    const auto batch = gp.predictBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto single = gp.predict(queries[q]);
        EXPECT_EQ(batch[q].mean, single.mean) << q;
        EXPECT_EQ(batch[q].variance, single.variance) << q;
    }

    // The into-variant reuses scratch across calls without cross-talk.
    std::vector<GpPrediction> out;
    gp.predictBatchInto(queries, out);
    gp.predictBatchInto(queries, out);
    ASSERT_EQ(out.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q)
        EXPECT_EQ(out[q].mean, batch[q].mean);
}

TEST(GpIncrementalTest, GridFitCachingMatchesDirectBestFit)
{
    // fitWithLengthScaleGrid now restores the best candidate's cached
    // state instead of re-fitting; the result must equal a direct fit
    // at the winning length scale exactly.
    Rng rng(808);
    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 12; ++i) {
        const double x = i / 12.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x) + 0.01 * rng.gaussian());
    }
    GaussianProcess grid_gp(std::make_unique<Matern52Kernel>(0.05),
                            1e-4);
    grid_gp.fitWithLengthScaleGrid(xs, ys, {0.05, 0.2, 0.5, 1.0});
    const double winner = grid_gp.kernel().lengthScale();

    GaussianProcess direct(std::make_unique<Matern52Kernel>(winner),
                           1e-4);
    direct.fit(xs, ys);
    EXPECT_EQ(grid_gp.logMarginalLikelihood(),
              direct.logMarginalLikelihood());
    for (int p = 0; p < 5; ++p) {
        const RealVec probe = randomPoint(rng, 1);
        EXPECT_EQ(grid_gp.predict(probe).mean,
                  direct.predict(probe).mean);
        EXPECT_EQ(grid_gp.predict(probe).variance,
                  direct.predict(probe).variance);
    }

    // Copies of a grid-fitted GP keep the fit without re-fitting.
    GaussianProcess copy(grid_gp);
    const RealVec probe{0.4};
    EXPECT_EQ(copy.predict(probe).mean, grid_gp.predict(probe).mean);

    // The grid GP remains incrementally updatable afterwards.
    grid_gp.addObservation({1.1}, 0.5);
    GaussianProcess extended(std::make_unique<Matern52Kernel>(winner),
                             1e-4);
    auto xs2 = xs;
    auto ys2 = ys;
    xs2.push_back({1.1});
    ys2.push_back(0.5);
    extended.fit(xs2, ys2);
    EXPECT_EQ(grid_gp.predict(probe).mean,
              extended.predict(probe).mean);
}

TEST(EngineIncrementalTest, IncrementalToggleDoesNotChangeSuggestions)
{
    // The engine-level pin: same samples, same candidates, identical
    // suggestions and predictions with the fast paths on and off.
    Rng rng(2718);
    bo::EngineOptions fast_opt;
    fast_opt.incremental = true;
    bo::EngineOptions slow_opt = fast_opt;
    slow_opt.incremental = false;
    BoEngine fast(fast_opt);
    BoEngine slow(slow_opt);

    std::vector<RealVec> candidates;
    for (int c = 0; c < 24; ++c)
        candidates.push_back(randomPoint(rng, 3));

    std::vector<RealVec> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        xs.push_back(randomPoint(rng, 3));
        ys.push_back(rng.gaussian());
        if (i % 3 == 0) {
            // Exercise the setSamples reconstruction path too.
            fast.setSamples(xs, ys);
            slow.setSamples(xs, ys);
        } else {
            fast.addSample(xs.back(), ys.back());
            slow.addSample(xs.back(), ys.back());
        }
        EXPECT_EQ(fast.suggestIndex(candidates),
                  slow.suggestIndex(candidates));
        const auto pf = fast.predict(candidates[0]);
        const auto ps = slow.predict(candidates[0]);
        EXPECT_EQ(pf.mean, ps.mean);
        EXPECT_EQ(pf.variance, ps.variance);
    }

    // And the penalty overload agrees with the zero-penalty overload.
    const std::vector<double> zero(candidates.size(), 0.0);
    EXPECT_EQ(fast.suggestIndex(candidates),
              fast.suggestIndex(candidates, zero));
}

TEST(AcquisitionTest, EiZeroWhenNoImprovementPossible)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(expectedImprovement(p, 1.0), 0.0);
}

TEST(AcquisitionTest, EiPositiveWithUncertainty)
{
    GpPrediction p;
    p.mean = 0.0;
    p.variance = 1.0;
    EXPECT_GT(expectedImprovement(p, 0.5), 0.0);
}

TEST(AcquisitionTest, EiPrefersHigherMeanAtEqualUncertainty)
{
    GpPrediction lo, hi;
    lo.mean = 0.2;
    hi.mean = 0.8;
    lo.variance = hi.variance = 0.04;
    EXPECT_GT(expectedImprovement(hi, 0.5),
              expectedImprovement(lo, 0.5));
}

TEST(AcquisitionTest, ProbabilityOfImprovementBounds)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 0.04;
    // Far above the incumbent: PI near 1; far below: near 0.
    EXPECT_GT(probabilityOfImprovement(p, 0.0), 0.99);
    EXPECT_LT(probabilityOfImprovement(p, 2.0), 0.01);
    // Deterministic prediction collapses to an indicator.
    p.variance = 0.0;
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(probabilityOfImprovement(p, 1.5), 0.0);
    p.variance = 1.0;
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::ProbabilityOfImprovement, p, 1.0,
                    0.0, 2.0),
        0.5);
}

TEST(AcquisitionTest, UcbCombinesMeanAndSpread)
{
    GpPrediction p;
    p.mean = 1.0;
    p.variance = 4.0;
    EXPECT_DOUBLE_EQ(upperConfidenceBound(p, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(
        acquisition(AcquisitionKind::Ucb, p, 0.0, 0.01, 2.0), 5.0);
}

TEST(EngineTest, SuggestsNearMaximumOfSimpleFunction)
{
    // f(x) = -(x - 0.7)^2: after a handful of samples the engine
    // should point near 0.7 rather than the far corner.
    BoEngine engine;
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        const double x = rng.uniform();
        engine.addSample({x}, -(x - 0.7) * (x - 0.7));
    }
    std::vector<RealVec> candidates;
    for (int i = 0; i <= 50; ++i)
        candidates.push_back({i / 50.0});
    const std::size_t pick = engine.suggestIndex(candidates);
    EXPECT_NEAR(candidates[pick][0], 0.7, 0.25);
}

TEST(EngineTest, BestObservedTracksMaximum)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {0.5}, {1.0}}, {1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 5.0);
    EXPECT_EQ(engine.bestIndex(), 1u);
    EXPECT_EQ(engine.numSamples(), 3u);
}

TEST(EngineTest, PenaltiesShiftSelection)
{
    BoEngine engine;
    engine.setSamples({{0.0}, {1.0}}, {0.0, 0.0});
    const std::vector<RealVec> candidates{{0.4}, {0.6}};
    // Symmetric situation; a huge penalty on one candidate must force
    // the other to win regardless of acquisition values.
    const std::size_t pick =
        engine.suggestIndex(candidates, {1e9, 0.0});
    EXPECT_EQ(pick, 1u);
}

TEST(EngineTest, SetSamplesReplacesHistory)
{
    BoEngine engine;
    engine.setSamples({{0.0}}, {1.0});
    engine.setSamples({{0.2}, {0.4}}, {2.0, 3.0});
    EXPECT_EQ(engine.numSamples(), 2u);
    EXPECT_DOUBLE_EQ(engine.bestObserved(), 3.0);
}

TEST(CandidatesTest, SeedsIncludeEqualPartitionAndAreValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto seeds = gen.seedConfigurations();
    ASSERT_FALSE(seeds.empty());
    EXPECT_TRUE(seeds.front() ==
                Configuration::equalPartition(p, 5));
    for (const auto& s : seeds)
        EXPECT_TRUE(s.isValidFor(p, 5));
}

TEST(CandidatesTest, GenerateIsDeduplicatedAndValid)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    CandidateGenerator gen(space, opt);
    Rng rng(3);
    const Configuration incumbent = Configuration::equalPartition(p, 5);
    const auto cands = gen.generate(incumbent, rng);
    ASSERT_FALSE(cands.empty());
    std::set<std::uint64_t> ranks;
    for (const auto& c : cands) {
        EXPECT_TRUE(c.isValidFor(p, 5));
        EXPECT_TRUE(ranks.insert(space.rank(c)).second)
            << "duplicate candidate";
    }
}

TEST(CandidatesTest, GenerateReplaysExactlyAcrossInstances)
{
    // The emitted candidate order must depend only on (incumbent, rng
    // state), never on unordered_set bucket layout: two independent
    // generators with identically seeded Rngs produce identical lists.
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateOptions opt;
    opt.num_random = 64;
    const Configuration incumbent = Configuration::equalPartition(p, 5);

    CandidateGenerator gen_a(space, opt);
    CandidateGenerator gen_b(space, opt);
    Rng rng_a(17);
    Rng rng_b(17);
    const auto cands_a = gen_a.generate(incumbent, rng_a);
    const auto cands_b = gen_b.generate(incumbent, rng_b);

    ASSERT_EQ(cands_a.size(), cands_b.size());
    for (std::size_t i = 0; i < cands_a.size(); ++i)
        EXPECT_TRUE(cands_a[i] == cands_b[i]) << "divergence at " << i;
}

TEST(CandidatesTest, ConcentratedConfigurationsCoverEveryJob)
{
    const PlatformSpec p = PlatformSpec::paperTestbed();
    ConfigurationSpace space(p, 5);
    CandidateGenerator gen(space);
    const auto conc = gen.concentratedConfigurations();
    ASSERT_FALSE(conc.empty());
    for (const auto& c : conc)
        EXPECT_TRUE(c.isValidFor(p, 5));
    // Some configuration hands one job a large share of the LLC.
    bool found_heavy = false;
    for (const auto& c : conc)
        for (std::size_t j = 0; j < 5; ++j)
            found_heavy |= (c.units(1, j) >= 7);
    EXPECT_TRUE(found_heavy);
}

} // namespace
} // namespace bo
} // namespace satori
