/**
 * @file
 * Unit tests for the common module: RNG, math helpers, streaming
 * statistics, and table/CSV output.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "satori/common/math.hpp"
#include "satori/common/rng.hpp"
#include "satori/common/stats.hpp"
#include "satori/common/table.hpp"

namespace satori {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        counts[rng.uniformInt(10)]++;
    for (int c : counts) {
        EXPECT_GT(c, 4500);
        EXPECT_LT(c, 5500);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == child.next());
    EXPECT_LT(same, 3);
}

TEST(MathHelpers, Clamp)
{
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathHelpers, MeanAndStddev)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(MathHelpers, GeomeanAndHarmonic)
{
    const std::vector<double> v{1.0, 4.0};
    EXPECT_NEAR(geomean(v), 2.0, 1e-12);
    EXPECT_NEAR(harmonicMean(v), 1.6, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(MathHelpers, CoefficientOfVariation)
{
    EXPECT_DOUBLE_EQ(coefficientOfVariation({2.0, 2.0, 2.0}), 0.0);
    const std::vector<double> v{1.0, 3.0};
    EXPECT_NEAR(coefficientOfVariation(v), 0.5, 1e-12);
}

TEST(MathHelpers, Distances)
{
    const std::vector<double> a{0.0, 0.0}, b{3.0, 4.0};
    EXPECT_DOUBLE_EQ(squaredDistance(a, b), 25.0);
    EXPECT_DOUBLE_EQ(euclideanDistance(a, b), 5.0);
}

TEST(MathHelpers, BinomialKnownValues)
{
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(10, 3), 120u);
    EXPECT_EQ(binomial(9, 2), 36u);
    EXPECT_EQ(binomial(5, 7), 0u);
    EXPECT_EQ(binomial(52, 5), 2598960u);
}

/** Property sweep: binomial symmetry and Pascal's rule. */
class BinomialProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BinomialProperty, SymmetryAndPascal)
{
    const auto n = static_cast<std::uint64_t>(GetParam());
    for (std::uint64_t k = 0; k <= n; ++k) {
        EXPECT_EQ(binomial(n, k), binomial(n, n - k));
        if (k >= 1 && n >= 1) {
            EXPECT_EQ(binomial(n, k),
                      binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SmallN, BinomialProperty,
                         ::testing::Values(1, 2, 5, 10, 20, 30));

TEST(MathHelpers, NormalCdfPdf)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804, 1e-9);
    EXPECT_GT(normalPdf(0.0), normalPdf(1.0));
}

TEST(OnlineStats, MatchesDirectComputation)
{
    OnlineStats s;
    const std::vector<double> v{1.0, 5.0, 2.0, 8.0, 4.0};
    for (double x : v)
        s.add(x);
    EXPECT_EQ(s.count(), v.size());
    EXPECT_NEAR(s.mean(), mean(v), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev(v), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(OnlineStats, EmptyIsSafe)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(TimeSeriesTest, MeanOverWindow)
{
    TimeSeries ts;
    for (int i = 0; i < 10; ++i)
        ts.add(static_cast<double>(i), static_cast<double>(i * 2));
    EXPECT_EQ(ts.size(), 10u);
    EXPECT_NEAR(ts.mean(), 9.0, 1e-12);
    EXPECT_NEAR(ts.meanOver(0.0, 4.0), 4.0, 1e-12); // values 0,2,4,6,8
    EXPECT_DOUBLE_EQ(ts.meanOver(100.0, 200.0), 0.0);
}

TEST(Percentile, LinearInterpolation)
{
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_NEAR(percentile(v, 0.0), 10.0, 1e-12);
    EXPECT_NEAR(percentile(v, 100.0), 40.0, 1e-12);
    EXPECT_NEAR(percentile(v, 50.0), 25.0, 1e-12);
}

TEST(TablePrinterTest, RendersAlignedRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.921, 1), "92.1%");
}

TEST(CsvWriterTest, WritesHeaderAndRows)
{
    const std::string path = "/tmp/satori_csv_test.csv";
    {
        CsvWriter w(path, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.addRow({"1", "2"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

} // namespace
} // namespace satori
