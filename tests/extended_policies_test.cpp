/**
 * @file
 * Tests for the extended policies: the CLITE baseline and the
 * resource-restricted adapter.
 */

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/core/controller.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/policies/clite_policy.hpp"
#include "satori/policies/dcat_policy.hpp"
#include "satori/policies/restricted_policy.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace policies {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

sim::SimulatedServer
makeSmallServer(std::uint64_t seed = 42)
{
    return harness::makeServer(
        smallPlatform(),
        workloads::mixOf({"canneal", "streamcluster", "swaptions"}),
        seed);
}

TEST(ClitePolicyTest, AlwaysValidDecisions)
{
    auto server = makeSmallServer();
    ClitePolicy clite(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 200; ++i) {
        const auto c = clite.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3)) << i;
        server.setConfiguration(c);
    }
}

TEST(ClitePolicyTest, ConvergesAndHolds)
{
    auto server = makeSmallServer();
    ClitePolicy clite(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    bool converged = false;
    for (int i = 0; i < 300 && !converged; ++i) {
        server.setConfiguration(clite.decide(monitor.observe(0.1)));
        converged = clite.converged();
    }
    EXPECT_TRUE(converged);
}

TEST(ClitePolicyTest, BeatsRandomButNotSatori)
{
    // Sec. VI: CLITE lands near PARTIES level - clearly above Random,
    // not above SATORI - when applied to this problem.
    harness::ExperimentOptions opt;
    opt.duration = 30.0;
    const harness::ExperimentRunner runner(opt);

    auto run = [&](const std::string& name) {
        auto server = makeSmallServer(7);
        auto policy = harness::makePolicy(name, server);
        return runner.run(server, *policy, "");
    };
    const auto clite = run("CLITE");
    const auto random = run("Random");
    const auto satori = run("SATORI");
    EXPECT_GT(clite.mean_objective, random.mean_objective);
    // On a single short scenario CLITE and SATORI are statistically
    // close (Sec. VI says they differ mainly on dynamic mixes); only
    // guard against a gross inversion here.
    EXPECT_GE(satori.mean_objective, clite.mean_objective * 0.95);
}

TEST(ClitePolicyTest, ResetRestoresInitialState)
{
    auto server = makeSmallServer();
    ClitePolicy clite(server.platform(), 3);
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 120; ++i)
        server.setConfiguration(clite.decide(monitor.observe(0.1)));
    clite.reset();
    EXPECT_FALSE(clite.converged());
}

TEST(RestrictedPolicyTest, OnlyManagedRowsDeviateFromEqual)
{
    auto server = makeSmallServer();
    RestrictedPolicy policy(
        server.platform(), 3, {ResourceKind::LlcWays},
        [](const PlatformSpec& restricted, std::size_t jobs) {
            return std::make_unique<core::SatoriController>(restricted,
                                                            jobs);
        });
    sim::PerfMonitor monitor(server);
    const Configuration equal =
        Configuration::equalPartition(server.platform(), 3);
    for (int i = 0; i < 120; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        // Cores and bandwidth must stay equal.
        EXPECT_EQ(c.resourceRow(0), equal.resourceRow(0));
        EXPECT_EQ(c.resourceRow(2), equal.resourceRow(2));
        server.setConfiguration(c);
    }
}

TEST(RestrictedPolicyTest, NameCarriesResourceSuffix)
{
    auto server = makeSmallServer();
    RestrictedPolicy policy(
        server.platform(), 3,
        {ResourceKind::LlcWays, ResourceKind::MemBandwidth},
        [](const PlatformSpec& restricted, std::size_t jobs) {
            return std::make_unique<core::SatoriController>(restricted,
                                                            jobs);
        });
    EXPECT_EQ(policy.name(), "SATORI[llc_ways+mem_bw]");
}

TEST(RestrictedPolicyTest, WrapsArbitraryInnerPolicies)
{
    auto server = makeSmallServer();
    RestrictedPolicy policy(
        server.platform(), 3, {ResourceKind::LlcWays},
        [](const PlatformSpec& restricted, std::size_t jobs) {
            return std::make_unique<DCatPolicy>(restricted, jobs);
        });
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 60; ++i) {
        const auto c = policy.decide(monitor.observe(0.1));
        ASSERT_TRUE(c.isValidFor(server.platform(), 3));
        server.setConfiguration(c);
    }
    policy.reset();
}

TEST(RestrictedPolicyTest, RejectsEmptyResourceSet)
{
    auto server = makeSmallServer();
    EXPECT_THROW(
        RestrictedPolicy(
            server.platform(), 3, {ResourceKind::PowerCap},
            [](const PlatformSpec& restricted, std::size_t jobs) {
                return std::make_unique<core::SatoriController>(
                    restricted, jobs);
            }),
        FatalError);
}

} // namespace
} // namespace policies
} // namespace satori
