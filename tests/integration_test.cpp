/**
 * @file
 * End-to-end integration tests: the paper's qualitative results must
 * hold on small scenarios (SATORI beats Random, the Oracle dominates,
 * single-goal variants specialize correctly), plus fixed-work
 * completion and job-churn robustness.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "satori/satori.hpp"

namespace satori {
namespace {

PlatformSpec
smallPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 6);
    p.addResource(ResourceKind::LlcWays, 6);
    p.addResource(ResourceKind::MemBandwidth, 6);
    return p;
}

workloads::JobMix
heterogeneousMix()
{
    return workloads::mixOf({"canneal", "streamcluster", "swaptions"});
}

harness::ExperimentResult
runPolicy(const std::string& name, Seconds duration = 25.0,
          std::uint64_t seed = 42)
{
    auto server =
        harness::makeServer(smallPlatform(), heterogeneousMix(), seed);
    auto policy = harness::makePolicy(name, server);
    harness::ExperimentOptions opt;
    opt.duration = duration;
    return harness::ExperimentRunner(opt).run(server, *policy, "mix");
}

TEST(IntegrationTest, SatoriBeatsRandomOnBothGoals)
{
    const auto satori = runPolicy("SATORI");
    const auto random = runPolicy("Random");
    EXPECT_GT(satori.mean_throughput, random.mean_throughput);
    EXPECT_GT(satori.mean_fairness, random.mean_fairness);
}

TEST(IntegrationTest, SatoriBeatsStaticEqualPartitioning)
{
    const auto satori = runPolicy("SATORI");
    const auto equal = runPolicy("Equal");
    EXPECT_GT(satori.mean_objective, equal.mean_objective);
}

TEST(IntegrationTest, BalancedOracleDominatesOnTheObjective)
{
    const auto oracle = runPolicy("Balanced-Oracle");
    for (const auto* name : {"SATORI", "PARTIES", "dCAT", "Random"}) {
        const auto r = runPolicy(name);
        EXPECT_GT(oracle.mean_objective, r.mean_objective * 0.98)
            << name << " implausibly beat the balanced oracle";
    }
}

TEST(IntegrationTest, SingleGoalVariantsSpecialize)
{
    const auto t_satori = runPolicy("Throughput-SATORI", 30.0);
    const auto f_satori = runPolicy("Fairness-SATORI", 30.0);
    EXPECT_GT(t_satori.mean_throughput, f_satori.mean_throughput);
    EXPECT_GT(f_satori.mean_fairness, t_satori.mean_fairness);
}

TEST(IntegrationTest, OracleVariantsSpecialize)
{
    const auto t_oracle = runPolicy("Throughput-Oracle");
    const auto f_oracle = runPolicy("Fairness-Oracle");
    EXPECT_GT(t_oracle.mean_throughput, f_oracle.mean_throughput);
    EXPECT_GT(f_oracle.mean_fairness, t_oracle.mean_fairness);
}

TEST(IntegrationTest, FixedWorkRunsComplete)
{
    // A tiny fixed-work budget completes several runs in simulation.
    auto mix = heterogeneousMix();
    for (auto& job : mix.jobs)
        job.fixed_work = 2e8;
    auto server = harness::makeServer(smallPlatform(), mix, 7);
    for (int i = 0; i < 100; ++i)
        server.step(0.1);
    for (std::size_t j = 0; j < server.numJobs(); ++j)
        EXPECT_GT(server.job(j).completedRuns(), 0u) << "job " << j;
}

TEST(IntegrationTest, JobChurnDoesNotBreakTheController)
{
    auto server =
        harness::makeServer(smallPlatform(), heterogeneousMix(), 21);
    core::SatoriController satori(server.platform(), server.numJobs());
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 80; ++i)
        server.setConfiguration(satori.decide(monitor.observe(0.1)));
    // A job departs and is replaced (Algorithm 1 line 12 path):
    // re-record baselines; the controller keeps producing valid
    // configurations and adapts.
    server.replaceJob(1, workloads::workloadByName("graph_analytics"));
    monitor.resetBaseline();
    for (int i = 0; i < 120; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(
            next.isValidFor(server.platform(), server.numJobs()));
        server.setConfiguration(next);
    }
    EXPECT_GT(satori.diagnostics().fairness, 0.0);
}

TEST(IntegrationTest, MinimalResourcesDegenerateCase)
{
    // units == jobs: the only valid configuration is all-ones; every
    // policy must cope.
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 3);
    p.addResource(ResourceKind::LlcWays, 3);
    auto server = harness::makeServer(p, heterogeneousMix(), 3);
    for (const auto* name : {"SATORI", "PARTIES", "Random", "CoPart"}) {
        auto policy = harness::makePolicy(name, server);
        sim::PerfMonitor monitor(server);
        for (int i = 0; i < 30; ++i) {
            const auto next = policy->decide(monitor.observe(0.1));
            ASSERT_TRUE(next.isValidFor(p, 3)) << name;
            server.setConfiguration(next);
        }
    }
}

TEST(IntegrationTest, MetricChoiceDoesNotFlipTheWinner)
{
    // Sec. IV claims SATORI's benefit is not metric-dependent: the
    // SATORI > Random ordering must also hold under geomean-speedup
    // throughput and 1-CoV fairness.
    harness::ExperimentOptions opt;
    opt.duration = 25.0;
    opt.tmetric = ThroughputMetric::GeomeanSpeedup;
    opt.fmetric = FairnessMetric::OneMinusCov;
    const harness::ExperimentRunner runner(opt);

    core::SatoriOptions sopt;
    sopt.objective = core::ObjectiveSpec(ThroughputMetric::GeomeanSpeedup,
                                         FairnessMetric::OneMinusCov);

    auto server_s =
        harness::makeServer(smallPlatform(), heterogeneousMix(), 5);
    core::SatoriController satori(server_s.platform(),
                                  server_s.numJobs(), sopt);
    const auto s = runner.run(server_s, satori, "");

    auto server_r =
        harness::makeServer(smallPlatform(), heterogeneousMix(), 5);
    policies::RandomPolicy random(server_r.platform(),
                                  server_r.numJobs());
    const auto r = runner.run(server_r, random, "");

    EXPECT_GT(s.mean_throughput, r.mean_throughput);
    EXPECT_GT(s.mean_fairness, r.mean_fairness);
}

TEST(IntegrationTest, ExtensibleObjectiveAcceptsThirdGoal)
{
    // The Sec. III-B extensibility claim: add an energy-style goal
    // that prefers concentrated core allocations, and verify SATORI
    // still runs and optimizes sensibly.
    core::ExtraGoal energy;
    energy.name = "energy";
    energy.weight_share = 0.2;
    energy.evaluator = [](const sim::IntervalObservation& obs) {
        // Reward allocations that leave cores in deeper sleep: fewer
        // active cores -> higher "efficiency" score.
        double active = 0.0, total = 0.0;
        for (std::size_t j = 0; j < obs.config.numJobs(); ++j)
            active += obs.config.units(0, j);
        total = active; // all units assigned; normalize by machine.
        return 1.0 - active / std::max(total, 1.0) * 0.5;
    };
    core::SatoriOptions opt;
    opt.objective = core::ObjectiveSpec(
        ThroughputMetric::SumIps, FairnessMetric::JainIndex, {energy});

    auto server =
        harness::makeServer(smallPlatform(), heterogeneousMix(), 9);
    core::SatoriController satori(server.platform(), server.numJobs(),
                                  opt);
    sim::PerfMonitor monitor(server);
    for (int i = 0; i < 60; ++i) {
        const auto next = satori.decide(monitor.observe(0.1));
        ASSERT_TRUE(
            next.isValidFor(server.platform(), server.numJobs()));
        server.setConfiguration(next);
    }
}

} // namespace
} // namespace satori
