#!/usr/bin/env bash
# Crash-kill / resume drill for satori_sim's durability layer.
#
# Runs an uninterrupted reference, then checkpointed runs killed at a
# seeded interval (exit 137, like kill -9) - once cleanly after a WAL
# append and once mid-append (torn tail) - resumes each with --resume,
# and requires the finished traces to be byte-identical (cmp) to the
# reference. Also drills the CLI validation error paths.
#
# Usage: crash_recovery_test.sh <path-to-satori_sim>
set -u

SIM=${1:?usage: crash_recovery_test.sh <satori_sim>}
WORK=$(mktemp -d /tmp/satori_crashrec.XXXXXX)
trap 'rm -rf "$WORK"' EXIT

RUN_ARGS=(--mix canneal,streamcluster,vips --policy SATORI
          --duration 20 --cores 6 --ways 6 --bw 6)
FAIL=0

fail() {
    echo "FAIL: $*" >&2
    FAIL=1
}

# --- reference: uninterrupted run --------------------------------------
"$SIM" "${RUN_ARGS[@]}" --trace "$WORK/ref.csv" > /dev/null \
    || fail "reference run exited $?"

# --- scenario 1: clean kill after interval 130's WAL append ------------
"$SIM" "${RUN_ARGS[@]}" --trace "$WORK/dead1.csv" \
    --checkpoint-dir "$WORK/ck1" --checkpoint-every 40 \
    --kill-at 130 > /dev/null 2>&1
[ $? -eq 137 ] || fail "clean kill: expected exit 137"
[ -f "$WORK/dead1.csv" ] && fail "killed run must not install its trace"

"$SIM" "${RUN_ARGS[@]}" --trace "$WORK/res1.csv" \
    --checkpoint-dir "$WORK/ck1" --checkpoint-every 40 \
    --resume > /dev/null 2>&1 || fail "resume 1 exited $?"
cmp "$WORK/ref.csv" "$WORK/res1.csv" \
    || fail "resumed trace differs from the uninterrupted reference"

# --- scenario 2: kill mid-append (torn WAL tail) -----------------------
"$SIM" "${RUN_ARGS[@]}" --trace "$WORK/dead2.csv" \
    --checkpoint-dir "$WORK/ck2" --checkpoint-every 40 \
    --kill-at 95 --kill-torn > /dev/null 2>&1
[ $? -eq 137 ] || fail "torn kill: expected exit 137"

"$SIM" "${RUN_ARGS[@]}" --trace "$WORK/res2.csv" \
    --checkpoint-dir "$WORK/ck2" --checkpoint-every 40 \
    --resume > /dev/null 2> "$WORK/res2.err" || fail "resume 2 exited $?"
grep -q "torn tail" "$WORK/res2.err" \
    || fail "torn-tail resume should report the truncation"
cmp "$WORK/ref.csv" "$WORK/res2.csv" \
    || fail "torn-tail resume trace differs from the reference"

# --- corruption: a bit flip is a hard error, never silent --------------
SNAP=$(ls "$WORK/ck2"/snap.*.bin | tail -1)
printf '\x01' | dd of="$SNAP" bs=1 seek=200 conv=notrunc 2> /dev/null
"$SIM" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/ck2" --resume \
    > /dev/null 2> "$WORK/corrupt.err"
[ $? -eq 1 ] || fail "corrupted snapshot: expected exit 1"
grep -q "CRC mismatch" "$WORK/corrupt.err" \
    || fail "corrupted snapshot should name the CRC mismatch"

# --- CLI validation paths ----------------------------------------------
"$SIM" "${RUN_ARGS[@]}" --resume > /dev/null 2>&1
[ $? -eq 2 ] || fail "--resume without --checkpoint-dir: expected exit 2"

"$SIM" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/ck3" --compare-oracle \
    > /dev/null 2>&1
[ $? -eq 2 ] || fail "--compare-oracle with checkpointing: expected exit 2"

"$SIM" "${RUN_ARGS[@]}" --trace /nonexistent/dir/out.csv > /dev/null 2>&1
[ $? -eq 1 ] || fail "unwritable --trace path: expected exit 1"

"$SIM" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/ck4" --resume \
    > /dev/null 2> "$WORK/empty.err"
[ $? -eq 1 ] || fail "--resume with empty dir: expected exit 1"
grep -q "nothing to resume" "$WORK/empty.err" \
    || fail "empty-dir resume should say there is nothing to resume"

if [ "$FAIL" -eq 0 ]; then
    echo "crash recovery drill: all scenarios byte-identical"
fi
exit "$FAIL"
