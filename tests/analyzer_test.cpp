/**
 * @file
 * Fixture tests for satori_analyzer: every rule id fires on its bad
 * fixture and stays silent on the good one, inline suppressions and
 * baseline entries each silence exactly one finding, and the engine's
 * rendering/pack plumbing behaves.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/analyzer.hpp"

namespace {

namespace fs = std::filesystem;
using namespace satori_analyzer;

fs::path
fixture(const std::string& name)
{
    return fs::path(SATORI_ANALYZER_FIXTURES) / name;
}

/** Analyze one fixture with every pack enabled. */
std::vector<Finding>
analyzeFixture(const std::string& name)
{
    Options options;
    const fs::path path = fixture(name);
    return analyzeFile(path, options, path);
}

/** Active rule ids (suppressed/baselined excluded), deduplicated. */
std::set<std::string>
activeRules(const std::vector<Finding>& findings)
{
    std::set<std::string> rules;
    for (const Finding& f : findings)
        if (!f.suppressed && !f.baselined)
            rules.insert(f.rule);
    return rules;
}

struct RuleFixture
{
    const char* rule;
    const char* bad;
    const char* good;
};

const RuleFixture kRuleFixtures[] = {
    {"det-wallclock", "det_wallclock_bad.cpp", "det_wallclock_good.cpp"},
    {"det-random-device", "det_random_device_bad.cpp",
     "det_random_device_good.cpp"},
    {"det-unordered-iter", "det_unordered_iter_bad.cpp",
     "det_unordered_iter_good.cpp"},
    {"det-pointer-hash", "det_pointer_hash_bad.cpp",
     "det_pointer_hash_good.cpp"},
    {"num-float-eq", "num_float_eq_bad.cpp", "num_float_eq_good.cpp"},
    {"num-c-cast", "num_c_cast_bad.cpp", "num_c_cast_good.cpp"},
    {"num-int-abs", "num_int_abs_bad.cpp", "num_int_abs_good.cpp"},
    {"api-nodiscard", "api_nodiscard_bad.hpp", "api_nodiscard_good.hpp"},
    {"api-explicit", "api_explicit_bad.hpp", "api_explicit_good.hpp"},
    {"api-raw-params", "api_raw_params_bad.hpp",
     "api_raw_params_good.hpp"},
    {"conc-global-mutable", "conc_global_mutable_bad.cpp",
     "conc_global_mutable_good.cpp"},
    {"conc-ref-capture", "conc_ref_capture_bad.cpp",
     "conc_ref_capture_good.cpp"},
    {"conc-parallel-accumulate", "conc_parallel_accumulate_bad.cpp",
     "conc_parallel_accumulate_good.cpp"},
    {"conc-raw-thread", "conc_raw_thread_bad.cpp",
     "conc_raw_thread_good.cpp"},
    {"conc-unannotated-mutex", "conc_unannotated_mutex_bad.hpp",
     "conc_unannotated_mutex_good.hpp"},
    {"flow-use-after-move", "flow_use_after_move_bad.cpp",
     "flow_use_after_move_good.cpp"},
    {"flow-discarded-nodiscard", "flow_nodiscard_bad.cpp",
     "flow_nodiscard_good.cpp"},
    {"flow-dead-after-fatal", "flow_dead_fatal_bad.cpp",
     "flow_dead_fatal_good.cpp"},
    {"persist-asymmetric-state", "persist_asym_bad.cpp",
     "persist_asym_good.cpp"},
    {"arch-simd-confined", "arch_simd_confined_bad.cpp",
     "arch_simd_confined_good.cpp"},
};

TEST(AnalyzerRules, BadFixturesFireExactlyTheirRule)
{
    for (const RuleFixture& rf : kRuleFixtures) {
        const auto findings = analyzeFixture(rf.bad);
        const auto rules = activeRules(findings);
        EXPECT_EQ(rules, std::set<std::string>{rf.rule})
            << rf.bad << " should fire only " << rf.rule;
    }
}

TEST(AnalyzerRules, GoodFixturesAreClean)
{
    for (const RuleFixture& rf : kRuleFixtures) {
        const auto findings = analyzeFixture(rf.good);
        EXPECT_EQ(countActive(findings), 0u)
            << rf.good << " should be clean; first finding: "
            << (findings.empty() ? std::string("none")
                                 : findings.front().rule + ": " +
                                       findings.front().message);
    }
}

TEST(AnalyzerRules, WallclockAllowlistCoversNamedObsSourcesOnly)
{
    // The same clock-reading code analyzed three ways. The allowlist
    // names exactly the obs sources with a wall-clock surface
    // (obs/tracer, obs/http_exporter, obs/stats_history): a path
    // matching one of them is exempt ...
    const auto allowed =
        analyzeFixture("src/obs/stats_history_clock.cpp");
    EXPECT_EQ(countActive(allowed), 0u)
        << "obs/stats_history fixture should be allowlisted; first "
           "finding: "
        << (allowed.empty() ? std::string("none")
                            : allowed.front().rule + ": " +
                                  allowed.front().message);
    // ... while merely living under src/obs/ is no longer enough -
    // the registry/audit/watchdog side of the layer runs on
    // simulated time and det-wallclock still fires there ...
    const auto inside_obs =
        activeRules(analyzeFixture("src/obs/det_wallclock_obs.cpp"));
    EXPECT_EQ(inside_obs, std::set<std::string>{"det-wallclock"})
        << "non-allowlisted src/obs/ sources must not be exempt";
    // ... and any other path fires as before.
    const auto outside =
        activeRules(analyzeFixture("det_wallclock_bad.cpp"));
    EXPECT_EQ(outside, std::set<std::string>{"det-wallclock"});
}

TEST(AnalyzerRules, HeaderPackFlagsGuardMismatchAndUsingNamespace)
{
    const auto bad = activeRules(analyzeFixture("header_guard_bad.hpp"));
    EXPECT_EQ(bad, (std::set<std::string>{"guard-mismatch",
                                          "using-namespace"}));
    EXPECT_EQ(countActive(analyzeFixture("header_guard_good.hpp")), 0u);
}

TEST(AnalyzerEngine, InlineAllowSilencesExactlyOneFinding)
{
    const auto findings = analyzeFixture("suppress_one.cpp");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(countActive(findings), 1u);
    const auto suppressed =
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding& f) { return f.suppressed; });
    EXPECT_EQ(suppressed, 1);
    for (const Finding& f : findings)
        EXPECT_EQ(f.rule, "num-float-eq");
}

TEST(AnalyzerEngine, BaselineEntrySilencesExactlyOneFinding)
{
    auto findings = analyzeFixture("baseline_one.cpp");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(countActive(findings), 2u);

    std::vector<BaselineEntry> entries;
    std::string error;
    ASSERT_TRUE(loadBaseline(fixture("baseline_one.txt"), entries, error))
        << error;
    ASSERT_EQ(entries.size(), 1u);
    applyBaseline(entries, findings);

    EXPECT_EQ(countActive(findings), 1u);
    EXPECT_TRUE(entries[0].used);
    // The grandfathered line is the first one; the fresh one stays.
    const auto baselined =
        std::find_if(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.baselined; });
    ASSERT_NE(baselined, findings.end());
    EXPECT_EQ(baselined->fingerprint, "return a == b;");
}

TEST(AnalyzerEngine, MissingOrMalformedBaselineIsAnError)
{
    std::vector<BaselineEntry> entries;
    std::string error;
    EXPECT_FALSE(
        loadBaseline(fixture("does_not_exist.txt"), entries, error));
    EXPECT_FALSE(error.empty());
}

TEST(AnalyzerEngine, PackListParsesNamesAndAliases)
{
    EXPECT_EQ(parsePackList("all"), kPackAll);
    EXPECT_EQ(parsePackList("det"), kPackDeterminism);
    EXPECT_EQ(parsePackList("num,api"), kPackNumeric | kPackApi);
    EXPECT_EQ(parsePackList("header"), kPackHeader);
    EXPECT_EQ(parsePackList("conc"), kPackConcurrency);
    EXPECT_EQ(parsePackList("concurrency"), kPackConcurrency);
    EXPECT_EQ(parsePackList("persist"), kPackPersist);
    EXPECT_EQ(parsePackList("arch"), kPackArch);
    EXPECT_EQ(parsePackList("flow"), kPackFlow);
    EXPECT_EQ(parsePackList("persist,arch,flow"),
              kPackPersist | kPackArch | kPackFlow);
    EXPECT_EQ(parsePackList("bogus"), 0u);
}

TEST(AnalyzerEngine, ConcSuppressionsSilenceEveryPerFileRule)
{
    const auto findings = analyzeFixture("conc_suppressed.cpp");
    EXPECT_GE(findings.size(), 5u);
    EXPECT_EQ(countActive(findings), 0u)
        << "first active: "
        << (findings.empty() ? std::string("none")
                             : findings.front().rule);
    std::set<std::string> suppressed;
    for (const Finding& f : findings)
        if (f.suppressed)
            suppressed.insert(f.rule);
    EXPECT_EQ(suppressed,
              (std::set<std::string>{
                  "conc-global-mutable", "conc-ref-capture",
                  "conc-parallel-accumulate", "conc-raw-thread",
                  "conc-unannotated-mutex"}));
}

// --- cross-file passes: taint and lock order -------------------------

/** Analyze a fixture directory with every pack enabled. */
AnalyzeResult
analyzeFixtureDir(const std::string& name)
{
    Options options;
    return analyzePaths({fixture(name)}, options);
}

TEST(AnalyzerCrossFile, TaintFlowsFromSourceToEmitSite)
{
    const AnalyzeResult result = analyzeFixtureDir("taint_bad");
    EXPECT_EQ(result.files_scanned, 2u);
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"det-taint-reaches-trace"});
    const auto hit =
        std::find_if(result.findings.begin(), result.findings.end(),
                     [](const Finding& f) {
                         return f.rule == "det-taint-reaches-trace";
                     });
    ASSERT_NE(hit, result.findings.end());
    // The finding lands on the emit site and names the full chain
    // down to the source.
    EXPECT_NE(hit->file.find("emitter.cpp"), std::string::npos);
    EXPECT_NE(hit->message.find("recordSample"), std::string::npos);
    EXPECT_NE(hit->message.find("sampleValue"), std::string::npos);
    EXPECT_NE(hit->message.find("workerTag"), std::string::npos);
    EXPECT_NE(hit->message.find("thread identity"), std::string::npos);
}

TEST(AnalyzerCrossFile, DeterministicChainStaysClean)
{
    const AnalyzeResult result = analyzeFixtureDir("taint_good");
    EXPECT_EQ(countActive(result.findings), 0u)
        << "first finding: "
        << (result.findings.empty() ? std::string("none")
                                    : result.findings.front().message);
}

TEST(AnalyzerCrossFile, TaintFindingHonorsInlineAllow)
{
    const AnalyzeResult result = analyzeFixtureDir("taint_suppressed");
    EXPECT_EQ(countActive(result.findings), 0u);
    const auto suppressed = std::count_if(
        result.findings.begin(), result.findings.end(),
        [](const Finding& f) {
            return f.suppressed && f.rule == "det-taint-reaches-trace";
        });
    EXPECT_EQ(suppressed, 1);
}

TEST(AnalyzerCrossFile, LockOrderInversionDetectedThroughCallGraph)
{
    const AnalyzeResult result = analyzeFixtureDir("lock_order_bad");
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"conc-lock-order"});
    const auto hit =
        std::find_if(result.findings.begin(), result.findings.end(),
                     [](const Finding& f) {
                         return f.rule == "conc-lock-order";
                     });
    ASSERT_NE(hit, result.findings.end());
    EXPECT_NE(hit->message.find("mu_a"), std::string::npos);
    EXPECT_NE(hit->message.find("mu_b"), std::string::npos);
}

TEST(AnalyzerCrossFile, AgreedLockOrderStaysClean)
{
    const AnalyzeResult result = analyzeFixtureDir("lock_order_good");
    EXPECT_EQ(countActive(result.findings), 0u)
        << "first finding: "
        << (result.findings.empty() ? std::string("none")
                                    : result.findings.front().message);
}

TEST(AnalyzerCrossFile, LockOrderFindingHonorsInlineAllow)
{
    const AnalyzeResult result =
        analyzeFixtureDir("lock_order_suppressed");
    EXPECT_EQ(countActive(result.findings), 0u);
    const auto suppressed = std::count_if(
        result.findings.begin(), result.findings.end(),
        [](const Finding& f) {
            return f.suppressed && f.rule == "conc-lock-order";
        });
    EXPECT_EQ(suppressed, 1);
}

// --- persist pack: manifest drift and staleness ----------------------

TEST(AnalyzerPersist, UnbumpedSchemaChangeIsDrift)
{
    Options options;
    options.persist_schema = fixture("persist_drift") / "schema.txt";
    const AnalyzeResult result =
        analyzePaths({fixture("persist_drift")}, options);
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"persist-schema-drift"});
    const auto hit =
        std::find_if(result.findings.begin(), result.findings.end(),
                     [](const Finding& f) {
                         return f.rule == "persist-schema-drift";
                     });
    ASSERT_NE(hit, result.findings.end());
    // Anchored at the drifted saveState, naming both sequences.
    EXPECT_NE(hit->file.find("counter.cpp"), std::string::npos);
    EXPECT_NE(hit->message.find("[u64 double]"), std::string::npos);
    EXPECT_NE(hit->message.find("[u64]"), std::string::npos);
    EXPECT_NE(hit->message.find("kSnapshotFormatVersion"),
              std::string::npos);
}

TEST(AnalyzerPersist, VersionSkewIsStaleManifest)
{
    Options options;
    options.persist_schema = fixture("persist_stale") / "schema.txt";
    const AnalyzeResult result =
        analyzePaths({fixture("persist_stale")}, options);
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"persist-manifest-stale"});
    const auto hit =
        std::find_if(result.findings.begin(), result.findings.end(),
                     [](const Finding& f) {
                         return f.rule == "persist-manifest-stale";
                     });
    ASSERT_NE(hit, result.findings.end());
    // Anchored at the manifest's version line, with the fix spelled.
    EXPECT_NE(hit->file.find("schema.txt"), std::string::npos);
    EXPECT_NE(hit->message.find("--write-persist-schema"),
              std::string::npos);
}

TEST(AnalyzerPersist, MatchingManifestIsClean)
{
    // The drift fixture's true schema, rendered by the engine, must
    // round-trip: diffing sources against their own rendered manifest
    // yields nothing.
    Options options;
    const std::vector<SourceFile> sources =
        loadSourceTree({fixture("persist_drift")}, options);
    const SymbolIndex index = buildSymbolIndex(sources, options);
    const std::string manifest = renderPersistSchema(sources, index);
    EXPECT_NE(manifest.find("version 1"), std::string::npos);
    EXPECT_NE(manifest.find("Counter: u64 double"), std::string::npos);

    const fs::path path = fs::temp_directory_path() /
                          "satori_analyzer_schema_roundtrip.txt";
    {
        std::ofstream out(path);
        out << manifest;
    }
    options.persist_schema = path;
    const AnalyzeResult result =
        analyzePaths({fixture("persist_drift")}, options);
    EXPECT_EQ(countActive(result.findings), 0u)
        << "first finding: "
        << (result.findings.empty() ? std::string("none")
                                    : result.findings.front().message);
    fs::remove(path);
}

// --- arch pack: layering over the include graph ----------------------

TEST(AnalyzerArch, ForbiddenEdgeReportsShortestChain)
{
    const AnalyzeResult result = analyzeFixtureDir("arch_forbidden");
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"arch-forbidden-include"});
    const auto hit =
        std::find_if(result.findings.begin(), result.findings.end(),
                     [](const Finding& f) {
                         return f.rule == "arch-forbidden-include";
                     });
    ASSERT_NE(hit, result.findings.end());
    EXPECT_NE(hit->message.find("`common`"), std::string::npos);
    EXPECT_NE(hit->message.find("`bo`"), std::string::npos);
    EXPECT_NE(hit->message.find("include chain: "), std::string::npos);
    EXPECT_NE(hit->message.find(" -> satori/bo/engine.hpp"),
              std::string::npos);
}

TEST(AnalyzerArch, IncludeCycleIsReportedOnce)
{
    const AnalyzeResult result = analyzeFixtureDir("arch_cycle");
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"arch-include-cycle"});
    const auto cycles = std::count_if(
        result.findings.begin(), result.findings.end(),
        [](const Finding& f) { return f.rule == "arch-include-cycle"; });
    EXPECT_EQ(cycles, 1) << "each cycle should be reported exactly once";
}

TEST(AnalyzerArch, UnknownSubsystemDirectoryIsFlagged)
{
    const AnalyzeResult result = analyzeFixtureDir("arch_unknown");
    EXPECT_EQ(activeRules(result.findings),
              std::set<std::string>{"arch-unknown-subsystem"});
    EXPECT_NE(result.findings.front().message.find("gadgets"),
              std::string::npos);
}

// --- call graph: qualified resolution of same-named callees ----------

TEST(AnalyzerCallGraph, ReceiverAndOwnerPruneSameNamedMethods)
{
    Options options;
    const std::vector<SourceFile> sources =
        loadSourceTree({fixture("callgraph")}, options);
    const SymbolIndex index = buildSymbolIndex(sources, options);
    const CallGraph graph = buildCallGraph(index);

    const auto find = [&index](const std::string& owner,
                               const std::string& name) {
        for (std::size_t i = 0; i < index.functions.size(); ++i)
            if (index.functions[i].owner == owner &&
                index.functions[i].name == name)
                return i;
        return index.functions.size();
    };
    const auto calls = [&graph](std::size_t caller,
                                std::size_t callee) {
        const auto& out = graph.callees[caller];
        return std::find(out.begin(), out.end(), callee) != out.end();
    };

    const std::size_t tick = find("Alpha", "tick");
    const std::size_t alpha_refresh = find("Alpha", "refresh");
    const std::size_t beta_refresh = find("Beta", "refresh");
    const std::size_t drive = find("", "driveBeta");
    ASSERT_LT(tick, index.functions.size());
    ASSERT_LT(alpha_refresh, index.functions.size());
    ASSERT_LT(beta_refresh, index.functions.size());
    ASSERT_LT(drive, index.functions.size());

    // Unqualified call inside a member: the caller's own class wins
    // over the same-named method on an unrelated class.
    EXPECT_TRUE(calls(tick, alpha_refresh));
    EXPECT_FALSE(calls(tick, beta_refresh));

    // Typed receiver: b.refresh() goes to Beta only.
    EXPECT_TRUE(calls(drive, beta_refresh));
    EXPECT_FALSE(calls(drive, alpha_refresh));

    // Unqualified call in a free function resolves to the free
    // definition, not the same-named member.
    const std::size_t poke = find("", "pokeAudit");
    const std::size_t free_audit = find("", "audit");
    const std::size_t beta_audit = find("Beta", "audit");
    ASSERT_LT(poke, index.functions.size());
    ASSERT_LT(free_audit, index.functions.size());
    ASSERT_LT(beta_audit, index.functions.size());
    EXPECT_TRUE(calls(poke, free_audit));
    EXPECT_FALSE(calls(poke, beta_audit));
}

// --- parallel scan and SARIF rendering -------------------------------

TEST(AnalyzerEngine, ParallelScanMatchesSerialByteForByte)
{
    Options serial;
    serial.jobs = 1;
    Options parallel;
    parallel.jobs = 4;
    const AnalyzeResult a = analyzePaths({fixture("")}, serial);
    const AnalyzeResult b = analyzePaths({fixture("")}, parallel);
    EXPECT_EQ(a.files_scanned, b.files_scanned);
    EXPECT_EQ(renderText(a, "x"), renderText(b, "x"));
    EXPECT_EQ(renderJson(a), renderJson(b));
}

TEST(AnalyzerEngine, RenderSarifEmitsCatalogRulesAndActiveResults)
{
    Options options;
    const AnalyzeResult result =
        analyzePaths({fixture("num_float_eq_bad.cpp")}, options);
    const std::string sarif = renderSarif(result, "satori_analyzer");
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"satori_analyzer\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"num-float-eq\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": "), std::string::npos);
    // Rule metadata for every catalog rule rides along.
    for (const RuleInfo& info : ruleCatalog())
        EXPECT_NE(sarif.find("\"id\": \"" + info.id + "\""),
                  std::string::npos)
            << info.id;
}

TEST(AnalyzerCrossFile, SymbolIndexFindsDefinitionsAndAttributes)
{
    Options options;
    const SourceFile source = loadSourceFile(fixture("taint_bad") /
                                             "emitter.cpp");
    const SymbolIndex index = buildSymbolIndex({source}, options);
    ASSERT_EQ(index.functions.size(), 2u);
    EXPECT_EQ(index.functions[0].name, "sampleValue");
    EXPECT_EQ(index.functions[1].name, "recordSample");
    EXPECT_TRUE(index.functions[1].emits_trace);
    EXPECT_FALSE(index.functions[0].emits_trace);
    EXPECT_TRUE(index.functions[0].nondet_what.empty());
    // Declarations (workerTag, emit) must not index as definitions.
    EXPECT_EQ(index.by_name.count("workerTag"), 0u);
    EXPECT_EQ(index.by_name.count("emit"), 0u);
}

TEST(AnalyzerEngine, ExplainKnowsEveryCatalogRuleAndRejectsUnknown)
{
    for (const RuleInfo& info : ruleCatalog()) {
        std::string text;
        EXPECT_TRUE(explainRule(info.id, text)) << info.id;
        EXPECT_NE(text.find(info.id), std::string::npos);
        EXPECT_NE(text.find("allow("), std::string::npos);
    }
    std::string text;
    EXPECT_FALSE(explainRule("not-a-rule", text));
    EXPECT_NE(text.find("unknown rule id"), std::string::npos);
}

TEST(AnalyzerEngine, CatalogCoversEveryRuleTheFixturesFire)
{
    std::set<std::string> known;
    for (const RuleInfo& info : ruleCatalog())
        known.insert(info.id);
    for (const RuleFixture& rf : kRuleFixtures)
        EXPECT_EQ(known.count(rf.rule), 1u)
            << rf.rule << " missing from ruleCatalog()";
    EXPECT_EQ(known.count("det-taint-reaches-trace"), 1u);
    EXPECT_EQ(known.count("conc-lock-order"), 1u);
    EXPECT_EQ(known.count("persist-schema-drift"), 1u);
    EXPECT_EQ(known.count("persist-manifest-stale"), 1u);
    EXPECT_EQ(known.count("arch-forbidden-include"), 1u);
    EXPECT_EQ(known.count("arch-include-cycle"), 1u);
    EXPECT_EQ(known.count("arch-unknown-subsystem"), 1u);
}

// --- token-helper edge cases (satellite coverage) --------------------

TEST(AnalyzerTokens, RawStringsStripWithoutTerminatingOnQuotes)
{
    bool in_block = false;
    // The embedded quote and backslash must not end the literal.
    EXPECT_EQ(stripCommentsAndStrings(
                  R"x(emit(R"(a " b \ c)") + 1;)x", in_block),
              "emit(R) + 1;");
    EXPECT_FALSE(in_block);
    // Custom delimiter.
    EXPECT_EQ(stripCommentsAndStrings(
                  R"x(f(R"eos(x)" y)eos");)x", in_block),
              "f(R);");
    // An identifier ending in R is not a raw-string prefix.
    EXPECT_EQ(stripCommentsAndStrings("VAR\"text\" + 1", in_block),
              "VAR + 1");
    // Unterminated raw literal strips to end of line.
    EXPECT_EQ(stripCommentsAndStrings("auto s = R\"(open", in_block),
              "auto s = R");
    EXPECT_FALSE(in_block);
}

TEST(AnalyzerTokens, DigitSeparatorsAreNotCharLiterals)
{
    bool in_block = false;
    EXPECT_EQ(stripCommentsAndStrings("int n = 1'000'000;", in_block),
              "int n = 1'000'000;");
    // A real char literal still strips.
    EXPECT_EQ(stripCommentsAndStrings("char c = 'x'; int m = 2'000;",
                                      in_block),
              "char c = ; int m = 2'000;");
}

TEST(AnalyzerTokens, FindMatchingHandlesNestedTemplates)
{
    const std::string s = "foo<bar<int>> v;";
    //                     0123456789012345
    EXPECT_EQ(findMatching(s, 3, '<', '>'), 12u);
    EXPECT_EQ(findMatching(s, 7, '<', '>'), 11u);
    EXPECT_EQ(findMatching("map<K, vec<pair<A,B>>>", 3, '<', '>'), 21u);
    EXPECT_EQ(findMatching("unbalanced<int", 10, '<', '>'),
              std::string::npos);
    EXPECT_EQ(findMatching("x", 5, '<', '>'), std::string::npos);
}

TEST(AnalyzerTokens, PrevAndNextTokenReadQualifiedChainsAndNumbers)
{
    const std::string s = "satori::obs::Tracer tracer(clock);";
    EXPECT_EQ(prevTokenBefore(s, 19), "satori::obs::Tracer");
    EXPECT_EQ(nextTokenAfter(s, 19), "tracer");
    EXPECT_EQ(prevTokenBefore(s, 0), "");
    EXPECT_EQ(nextTokenAfter("  1.5e-3 rest", 0), "1.5e-3");
    EXPECT_EQ(nextTokenAfter("foo<bar<int>>", 3), "<");
    EXPECT_EQ(prevTokenBefore("a + b", 3), "+");
}

TEST(AnalyzerTokens, PreprocessorContinuationsStayPreproc)
{
    // Continuation lines of a #define carry the preproc flag, so a
    // macro body spelling a violation does not index or fire.
    const fs::path dir = fs::temp_directory_path();
    const fs::path path = dir / "satori_analyzer_preproc_test.cpp";
    {
        std::ofstream out(path);
        out << "#define EMIT_TIME(x) \\\n"
            << "    record(time(nullptr), (x))\n"
            << "int keep(int v) { return v; }\n";
    }
    const SourceFile source = loadSourceFile(path);
    ASSERT_EQ(source.lines.size(), 3u);
    EXPECT_TRUE(source.lines[0].preproc);
    EXPECT_TRUE(source.lines[1].preproc);
    EXPECT_FALSE(source.lines[2].preproc);
    Options options;
    const SymbolIndex index = buildSymbolIndex({source}, options);
    ASSERT_EQ(index.functions.size(), 1u);
    EXPECT_EQ(index.functions[0].name, "keep");
    fs::remove(path);
}

TEST(AnalyzerEngine, PackMaskRestrictsRules)
{
    Options options;
    options.packs = kPackHeader;
    const fs::path path = fixture("num_float_eq_bad.cpp");
    const auto findings = analyzeFile(path, options, path);
    EXPECT_EQ(countActive(findings), 0u)
        << "numeric rule fired with only the header pack enabled";
}

TEST(AnalyzerEngine, RenderTextReportsFileLineAndRule)
{
    Options options;
    AnalyzeResult result =
        analyzePaths({fixture("num_float_eq_bad.cpp")}, options);
    EXPECT_EQ(result.files_scanned, 1u);
    const std::string text = renderText(result, "satori_analyzer");
    EXPECT_NE(text.find("num_float_eq_bad.cpp:"), std::string::npos);
    EXPECT_NE(text.find("[num-float-eq]"), std::string::npos);
    const std::string json = renderJson(result);
    EXPECT_NE(json.find("\"rule\": \"num-float-eq\""),
              std::string::npos);
}

} // namespace
