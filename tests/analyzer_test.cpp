/**
 * @file
 * Fixture tests for satori_analyzer: every rule id fires on its bad
 * fixture and stays silent on the good one, inline suppressions and
 * baseline entries each silence exactly one finding, and the engine's
 * rendering/pack plumbing behaves.
 */

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/analyzer.hpp"

namespace {

namespace fs = std::filesystem;
using namespace satori_analyzer;

fs::path
fixture(const std::string& name)
{
    return fs::path(SATORI_ANALYZER_FIXTURES) / name;
}

/** Analyze one fixture with every pack enabled. */
std::vector<Finding>
analyzeFixture(const std::string& name)
{
    Options options;
    const fs::path path = fixture(name);
    return analyzeFile(path, options, path);
}

/** Active rule ids (suppressed/baselined excluded), deduplicated. */
std::set<std::string>
activeRules(const std::vector<Finding>& findings)
{
    std::set<std::string> rules;
    for (const Finding& f : findings)
        if (!f.suppressed && !f.baselined)
            rules.insert(f.rule);
    return rules;
}

struct RuleFixture
{
    const char* rule;
    const char* bad;
    const char* good;
};

const RuleFixture kRuleFixtures[] = {
    {"det-wallclock", "det_wallclock_bad.cpp", "det_wallclock_good.cpp"},
    {"det-random-device", "det_random_device_bad.cpp",
     "det_random_device_good.cpp"},
    {"det-unordered-iter", "det_unordered_iter_bad.cpp",
     "det_unordered_iter_good.cpp"},
    {"det-pointer-hash", "det_pointer_hash_bad.cpp",
     "det_pointer_hash_good.cpp"},
    {"num-float-eq", "num_float_eq_bad.cpp", "num_float_eq_good.cpp"},
    {"num-c-cast", "num_c_cast_bad.cpp", "num_c_cast_good.cpp"},
    {"num-int-abs", "num_int_abs_bad.cpp", "num_int_abs_good.cpp"},
    {"api-nodiscard", "api_nodiscard_bad.hpp", "api_nodiscard_good.hpp"},
    {"api-explicit", "api_explicit_bad.hpp", "api_explicit_good.hpp"},
    {"api-raw-params", "api_raw_params_bad.hpp",
     "api_raw_params_good.hpp"},
};

TEST(AnalyzerRules, BadFixturesFireExactlyTheirRule)
{
    for (const RuleFixture& rf : kRuleFixtures) {
        const auto findings = analyzeFixture(rf.bad);
        const auto rules = activeRules(findings);
        EXPECT_EQ(rules, std::set<std::string>{rf.rule})
            << rf.bad << " should fire only " << rf.rule;
    }
}

TEST(AnalyzerRules, GoodFixturesAreClean)
{
    for (const RuleFixture& rf : kRuleFixtures) {
        const auto findings = analyzeFixture(rf.good);
        EXPECT_EQ(countActive(findings), 0u)
            << rf.good << " should be clean; first finding: "
            << (findings.empty() ? std::string("none")
                                 : findings.front().rule + ": " +
                                       findings.front().message);
    }
}

TEST(AnalyzerRules, WallclockAllowlistCoversObsLayerOnly)
{
    // The same clock-reading code analyzed twice: under src/obs/ the
    // det-wallclock allowlist applies (span timing lives there); at
    // any other path the rule still fires.
    const auto inside = analyzeFixture("src/obs/det_wallclock_obs.cpp");
    EXPECT_EQ(countActive(inside), 0u)
        << "src/obs/ fixture should be allowlisted; first finding: "
        << (inside.empty() ? std::string("none")
                           : inside.front().rule + ": " +
                                 inside.front().message);
    const auto outside =
        activeRules(analyzeFixture("det_wallclock_bad.cpp"));
    EXPECT_EQ(outside, std::set<std::string>{"det-wallclock"});
}

TEST(AnalyzerRules, HeaderPackFlagsGuardMismatchAndUsingNamespace)
{
    const auto bad = activeRules(analyzeFixture("header_guard_bad.hpp"));
    EXPECT_EQ(bad, (std::set<std::string>{"guard-mismatch",
                                          "using-namespace"}));
    EXPECT_EQ(countActive(analyzeFixture("header_guard_good.hpp")), 0u);
}

TEST(AnalyzerEngine, InlineAllowSilencesExactlyOneFinding)
{
    const auto findings = analyzeFixture("suppress_one.cpp");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(countActive(findings), 1u);
    const auto suppressed =
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding& f) { return f.suppressed; });
    EXPECT_EQ(suppressed, 1);
    for (const Finding& f : findings)
        EXPECT_EQ(f.rule, "num-float-eq");
}

TEST(AnalyzerEngine, BaselineEntrySilencesExactlyOneFinding)
{
    auto findings = analyzeFixture("baseline_one.cpp");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(countActive(findings), 2u);

    std::vector<BaselineEntry> entries;
    std::string error;
    ASSERT_TRUE(loadBaseline(fixture("baseline_one.txt"), entries, error))
        << error;
    ASSERT_EQ(entries.size(), 1u);
    applyBaseline(entries, findings);

    EXPECT_EQ(countActive(findings), 1u);
    EXPECT_TRUE(entries[0].used);
    // The grandfathered line is the first one; the fresh one stays.
    const auto baselined =
        std::find_if(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.baselined; });
    ASSERT_NE(baselined, findings.end());
    EXPECT_EQ(baselined->fingerprint, "return a == b;");
}

TEST(AnalyzerEngine, MissingOrMalformedBaselineIsAnError)
{
    std::vector<BaselineEntry> entries;
    std::string error;
    EXPECT_FALSE(
        loadBaseline(fixture("does_not_exist.txt"), entries, error));
    EXPECT_FALSE(error.empty());
}

TEST(AnalyzerEngine, PackListParsesNamesAndAliases)
{
    EXPECT_EQ(parsePackList("all"), kPackAll);
    EXPECT_EQ(parsePackList("det"), kPackDeterminism);
    EXPECT_EQ(parsePackList("num,api"), kPackNumeric | kPackApi);
    EXPECT_EQ(parsePackList("header"), kPackHeader);
    EXPECT_EQ(parsePackList("bogus"), 0u);
}

TEST(AnalyzerEngine, PackMaskRestrictsRules)
{
    Options options;
    options.packs = kPackHeader;
    const fs::path path = fixture("num_float_eq_bad.cpp");
    const auto findings = analyzeFile(path, options, path);
    EXPECT_EQ(countActive(findings), 0u)
        << "numeric rule fired with only the header pack enabled";
}

TEST(AnalyzerEngine, RenderTextReportsFileLineAndRule)
{
    Options options;
    AnalyzeResult result =
        analyzePaths({fixture("num_float_eq_bad.cpp")}, options);
    EXPECT_EQ(result.files_scanned, 1u);
    const std::string text = renderText(result, "satori_analyzer");
    EXPECT_NE(text.find("num_float_eq_bad.cpp:"), std::string::npos);
    EXPECT_NE(text.find("[num-float-eq]"), std::string::npos);
    const std::string json = renderJson(result);
    EXPECT_NE(json.find("\"rule\": \"num-float-eq\""),
              std::string::npos);
}

} // namespace
