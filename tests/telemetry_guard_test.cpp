/**
 * @file
 * Tests for the telemetry guard: outlier gating, stale-counter
 * detection, non-finite rejection, size-mismatch handling, the
 * staleness budget / regime-shift acceptance, and the vanilla
 * (disabled) passthrough.
 */

#include <cmath>
#include <limits>
#include <vector>
#include <gtest/gtest.h>

#include "satori/config/configuration.hpp"
#include "satori/config/platform.hpp"
#include "satori/core/telemetry_guard.hpp"

namespace satori {
namespace core {
namespace {

PlatformSpec
tinyPlatform()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    p.addResource(ResourceKind::LlcWays, 4);
    return p;
}

/** An observation for 2 jobs under the equal partition. */
sim::IntervalObservation
makeObs(double ips0, double ips1, Seconds time)
{
    sim::IntervalObservation obs;
    obs.time = time;
    obs.config = Configuration::equalPartition(tinyPlatform(), 2);
    obs.ips = {ips0, ips1};
    obs.isolation_ips = {2.0, 2.0};
    return obs;
}

/**
 * Feed @p n clean samples around 1.0 with a small deterministic
 * wobble (bit-identical repeats would look like a frozen counter).
 */
void
warmUp(TelemetryGuard& guard, std::size_t n, Seconds& t)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double wobble = 0.01 * static_cast<double>(i % 3);
        auto obs = makeObs(1.0 + wobble, 1.0 - wobble, t);
        EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
        t += 0.1;
    }
}

TEST(TelemetryGuardTest, CleanSamplesPassThroughUntouched)
{
    TelemetryGuard guard(2);
    auto obs = makeObs(1.5, 0.8, 0.1);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
    EXPECT_DOUBLE_EQ(obs.ips[0], 1.5);
    EXPECT_DOUBLE_EQ(obs.ips[1], 0.8);
    EXPECT_EQ(guard.stats().repaired_values, 0u);
}

TEST(TelemetryGuardTest, DisabledGuardIsAPassthrough)
{
    TelemetryGuardOptions options;
    options.enabled = false;
    TelemetryGuard guard(2, options);
    auto obs = makeObs(std::numeric_limits<double>::quiet_NaN(), 0.8,
                       0.1);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
    EXPECT_TRUE(std::isnan(obs.ips[0])); // untouched
    EXPECT_EQ(guard.stats().intervals, 0u);
}

TEST(TelemetryGuardTest, NonFiniteValuesAreSubstituted)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 6, t);

    auto obs = makeObs(std::numeric_limits<double>::quiet_NaN(), 1.0, t);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Repaired);
    EXPECT_TRUE(std::isfinite(obs.ips[0]));
    EXPECT_NEAR(obs.ips[0], 1.0, 0.05); // last good level
    EXPECT_GE(guard.stats().non_finite, 1u);
    EXPECT_GE(guard.stats().repaired_values, 1u);
}

TEST(TelemetryGuardTest, DroppedZeroSamplesAreSubstituted)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 6, t);
    auto obs = makeObs(0.0, 1.0, t);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Repaired);
    EXPECT_GT(obs.ips[0], 0.0);
}

TEST(TelemetryGuardTest, SpikeGatedUnderStableConfiguration)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 10, t);

    auto obs = makeObs(8.0, 1.0, t); // 8x spike on job 0
    EXPECT_EQ(guard.filter(obs), SampleHealth::Repaired);
    EXPECT_LT(obs.ips[0], 2.0); // substituted, not 8.0
    EXPECT_GE(guard.stats().outliers_gated, 1u);
}

TEST(TelemetryGuardTest, ReconfigurationJumpIsNotGated)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 10, t);

    // A new allocation legitimately moves the level by a lot; the
    // Hampel gate must stand down for the first sample under it.
    auto obs = makeObs(8.0, 1.0, t);
    obs.config = Configuration::equalPartition(tinyPlatform(), 2);
    obs.config.units(0, 0) += 1;
    obs.config.units(0, 1) -= 1;
    EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
    EXPECT_DOUBLE_EQ(obs.ips[0], 8.0);
    EXPECT_EQ(guard.stats().outliers_gated, 0u);
}

TEST(TelemetryGuardTest, FrozenCounterDetectedAfterRun)
{
    TelemetryGuardOptions options; // freeze_run = 3
    TelemetryGuard guard(2, options);
    Seconds t = 0.1;
    warmUp(guard, 6, t);

    // Deliver the bit-identical value repeatedly; by the freeze_run-th
    // repeat the stream must be marked stale and substituted.
    bool frozen_seen = false;
    for (int i = 0; i < 5; ++i) {
        auto obs = makeObs(1.2345678, 1.0, t);
        guard.filter(obs);
        t += 0.1;
    }
    frozen_seen = guard.stats().frozen_detected > 0;
    EXPECT_TRUE(frozen_seen);
}

TEST(TelemetryGuardTest, SizeMismatchIsUnusableButKeepsShape)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 3, t);

    sim::IntervalObservation obs = makeObs(1.0, 1.0, t);
    obs.ips = {1.0, 1.0, 1.0}; // three jobs reported, two exist
    EXPECT_EQ(guard.filter(obs), SampleHealth::Unusable);
    ASSERT_EQ(obs.ips.size(), 2u); // repaired to the expected shape
    ASSERT_EQ(obs.isolation_ips.size(), 2u);
    for (const double v : obs.ips)
        EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(guard.stats().size_mismatches, 1u);
}

TEST(TelemetryGuardTest, PersistentShiftAcceptedAfterBudget)
{
    TelemetryGuardOptions options;
    options.staleness_budget = 3;
    TelemetryGuard guard(2, options);
    Seconds t = 0.1;
    warmUp(guard, 10, t);

    // A genuine regime shift: the level really moved to ~5.0. The
    // guard substitutes for `staleness_budget` intervals, then must
    // accept the new level instead of filtering it forever.
    double delivered = 0.0;
    for (int i = 0; i < 6; ++i) {
        // Both jobs keep wobbling (a bit-identical repeat would look
        // like a frozen counter, which is a different code path).
        const double wobble = 0.01 * static_cast<double>(i % 3);
        auto obs = makeObs(5.0 + wobble, 1.0 - wobble, t);
        guard.filter(obs);
        delivered = obs.ips[0];
        t += 0.1;
    }
    EXPECT_NEAR(delivered, 5.0, 0.1);
    EXPECT_GE(guard.stats().regime_accepts, 1u);

    // And the window follows: the next 5.0-level sample is healthy.
    auto obs = makeObs(5.05, 0.97, t);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
}

TEST(TelemetryGuardTest, NonFinitePastBudgetIsUnusable)
{
    TelemetryGuardOptions options;
    options.staleness_budget = 2;
    TelemetryGuard guard(2, options);
    Seconds t = 0.1;
    warmUp(guard, 6, t);

    SampleHealth last = SampleHealth::Healthy;
    for (int i = 0; i < 4; ++i) {
        auto obs =
            makeObs(std::numeric_limits<double>::quiet_NaN(), 1.0, t);
        last = guard.filter(obs);
        // Whatever the verdict, the delivered vector stays finite.
        EXPECT_TRUE(std::isfinite(obs.ips[0]));
        t += 0.1;
    }
    EXPECT_EQ(last, SampleHealth::Unusable);
    EXPECT_GE(guard.stats().unusable_intervals, 1u);
}

TEST(TelemetryGuardTest, ResetForgetsHistory)
{
    TelemetryGuard guard(2);
    Seconds t = 0.1;
    warmUp(guard, 8, t);
    guard.reset();
    EXPECT_EQ(guard.stats().intervals, 0u);

    // After reset the window is empty, so a level far from the old
    // one is accepted without gating.
    auto obs = makeObs(42.0, 1.0, t);
    EXPECT_EQ(guard.filter(obs), SampleHealth::Healthy);
    EXPECT_DOUBLE_EQ(obs.ips[0], 42.0);
}

} // namespace
} // namespace core
} // namespace satori
