/**
 * @file
 * Tests for the configurable multi-goal objective (Sec. III-B, Eq. 2)
 * and the per-goal record keeping that supports dynamic reweighting.
 */

#include <gtest/gtest.h>

#include "satori/common/logging.hpp"
#include "satori/core/goal_record.hpp"
#include "satori/core/objective.hpp"

namespace satori {
namespace core {
namespace {

sim::IntervalObservation
observation()
{
    sim::IntervalObservation obs;
    obs.ips = {2.0, 1.0};
    obs.isolation_ips = {4.0, 4.0};
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 4);
    obs.config = Configuration::equalPartition(p, 2);
    return obs;
}

TEST(ObjectiveTest, GoalValuesAreNormalized)
{
    const ObjectiveSpec spec;
    const auto goals = spec.goalValues(observation());
    ASSERT_EQ(goals.size(), 2u);
    for (double g : goals) {
        EXPECT_GE(g, 0.0);
        EXPECT_LE(g, 1.0);
    }
    // Speedups 0.5 and 0.25: throughput = 0.75/2 / iso... = 3/8 scaled.
    EXPECT_GT(goals[0], 0.0);
    // Jain of {0.5, 0.25}.
    EXPECT_NEAR(goals[1], jainFairnessIndex({0.5, 0.25}), 1e-12);
}

TEST(ObjectiveTest, WeightVectorSumsToOne)
{
    const ObjectiveSpec spec;
    const auto w = spec.weightVector(0.7, 0.3);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
    EXPECT_NEAR(w[0], 0.7, 1e-12);
}

TEST(ObjectiveTest, CombineIsDotProduct)
{
    EXPECT_DOUBLE_EQ(ObjectiveSpec::combine({0.5, 0.5}, {0.4, 0.8}),
                     0.6);
}

TEST(ObjectiveTest, ExtraGoalGetsFixedShare)
{
    ExtraGoal energy;
    energy.name = "energy";
    energy.weight_share = 0.2;
    energy.evaluator = [](const sim::IntervalObservation&) {
        return 0.9;
    };
    const ObjectiveSpec spec(ThroughputMetric::SumIps,
                             FairnessMetric::JainIndex, {energy});
    EXPECT_EQ(spec.numGoals(), 3u);
    const auto goals = spec.goalValues(observation());
    ASSERT_EQ(goals.size(), 3u);
    EXPECT_DOUBLE_EQ(goals[2], 0.9);
    const auto w = spec.weightVector(0.5, 0.5);
    EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(w[2], 0.2);
    EXPECT_DOUBLE_EQ(w[0], 0.4); // 0.5 * (1 - 0.2)
}

TEST(ObjectiveTest, ExtraGoalValueIsClamped)
{
    ExtraGoal weird;
    weird.name = "weird";
    weird.weight_share = 0.1;
    weird.evaluator = [](const sim::IntervalObservation&) {
        return 3.7; // out of range
    };
    const ObjectiveSpec spec(ThroughputMetric::SumIps,
                             FairnessMetric::JainIndex, {weird});
    EXPECT_DOUBLE_EQ(spec.goalValues(observation())[2], 1.0);
}

TEST(ObjectiveTest, InvalidExtraGoalsRejected)
{
    ExtraGoal no_eval;
    no_eval.name = "broken";
    no_eval.weight_share = 0.2;
    EXPECT_THROW(ObjectiveSpec(ThroughputMetric::SumIps,
                               FairnessMetric::JainIndex, {no_eval}),
                 FatalError);

    ExtraGoal too_heavy;
    too_heavy.name = "heavy";
    too_heavy.weight_share = 1.5;
    too_heavy.evaluator = [](const sim::IntervalObservation&) {
        return 0.5;
    };
    EXPECT_THROW(ObjectiveSpec(ThroughputMetric::SumIps,
                               FairnessMetric::JainIndex, {too_heavy}),
                 FatalError);
}

Configuration
configOf(int a, int b)
{
    return Configuration({{a, b}});
}

TEST(GoalRecorderTest, StoresAndCombines)
{
    GoalRecorder rec(2, 10);
    rec.add(configOf(2, 2), {0.4, 0.8});
    rec.add(configOf(3, 1), {0.6, 0.2});
    ASSERT_EQ(rec.size(), 2u);
    const auto y = rec.combined({0.5, 0.5});
    EXPECT_NEAR(y[0], 0.6, 1e-12);
    EXPECT_NEAR(y[1], 0.4, 1e-12);
    // Re-weighting without re-sampling (the Sec. III-B mechanism).
    const auto y2 = rec.combined({1.0, 0.0});
    EXPECT_NEAR(y2[0], 0.4, 1e-12);
    EXPECT_NEAR(y2[1], 0.6, 1e-12);
}

TEST(GoalRecorderTest, WindowEvictsOldest)
{
    GoalRecorder rec(1, 3);
    for (int i = 0; i < 5; ++i)
        rec.add(configOf(1 + i % 2, 3 - i % 2), {0.1 * i});
    EXPECT_EQ(rec.size(), 3u);
    // Oldest remaining sample is i = 2.
    EXPECT_NEAR(rec.sample(0).goals[0], 0.2, 1e-12);
}

TEST(GoalRecorderTest, InputsMatchNormalizedVectors)
{
    GoalRecorder rec(1, 10);
    const Configuration c = configOf(3, 1);
    rec.add(c, {0.5});
    EXPECT_EQ(rec.inputs().front(), c.normalizedVector());
}

TEST(GoalRecorderTest, BestByAverageSmoothsNoise)
{
    GoalRecorder rec(1, 50);
    // Config A: consistently good (0.8). Config B: one lucky 0.95
    // among poor samples.
    for (int i = 0; i < 5; ++i)
        rec.add(configOf(2, 2), {0.8});
    rec.add(configOf(3, 1), {0.95});
    for (int i = 0; i < 4; ++i)
        rec.add(configOf(3, 1), {0.3});
    const std::size_t idx = rec.bestSampleByAveragedObjective({1.0});
    EXPECT_TRUE(rec.sample(idx).config == configOf(2, 2));
}

TEST(GoalRecorderTest, UncertaintyKappaPenalizesSingleSamples)
{
    GoalRecorder rec(1, 50);
    for (int i = 0; i < 8; ++i)
        rec.add(configOf(2, 2), {0.80});
    rec.add(configOf(3, 1), {0.82}); // single, slightly higher
    // Without the discount the single sample wins...
    EXPECT_TRUE(rec.sample(rec.bestSampleByAveragedObjective({1.0}))
                    .config == configOf(3, 1));
    // ...with it, the well-attested config wins.
    EXPECT_TRUE(
        rec.sample(rec.bestSampleByAveragedObjective({1.0}, 0.05))
            .config == configOf(2, 2));
}

TEST(GoalRecorderTest, ClearEmpties)
{
    GoalRecorder rec(2, 10);
    rec.add(configOf(2, 2), {0.5, 0.5});
    rec.clear();
    EXPECT_TRUE(rec.empty());
}

} // namespace
} // namespace core
} // namespace satori
