#include "satori/obs/obs.hpp"

namespace satori {
namespace obs {

LibraryMetrics::LibraryMetrics(MetricsRegistry& registry)
    : controller_decisions(registry.counter(
          "satori.controller.decisions",
          "Total controller decide() invocations")),
      controller_degraded(registry.counter(
          "satori.controller.degraded_intervals",
          "Intervals spent in the equal-partition degraded fallback")),
      controller_holds(registry.counter(
          "satori.controller.holds",
          "Decisions held because the telemetry sample was unusable")),
      controller_retries(registry.counter(
          "satori.controller.actuation_retries",
          "Decisions that re-issued a config after an actuation "
          "mismatch")),
      controller_settles(registry.counter(
          "satori.controller.settles",
          "Transitions from exploration into the settled state")),
      bo_fits(registry.counter("satori.bo.fits",
                               "Proxy-model refits over the sample set")),
      bo_grid_refits(registry.counter(
          "satori.bo.grid_refits",
          "Proxy-model refits that re-ran the hyperparameter grid")),
      bo_suggests(registry.counter(
          "satori.bo.suggests",
          "Acquisition maximizations over a candidate set")),
      gp_fits(registry.counter(
          "satori.gp.fits",
          "Gaussian-process Cholesky factorizations")),
      gp_incremental_updates(registry.counter(
          "satori.gp.incremental_updates",
          "Rank-1 Cholesky appends that skipped the full refit")),
      gp_refresh_solves(registry.counter(
          "satori.gp.refresh_solves",
          "Target-only refreshes that reused the cached factor")),
      guard_healthy(registry.counter(
          "satori.guard.healthy",
          "Telemetry samples the guard passed through unchanged")),
      guard_repaired(registry.counter(
          "satori.guard.repaired",
          "Telemetry samples the guard repaired before use")),
      guard_unusable(registry.counter(
          "satori.guard.unusable",
          "Telemetry samples the guard rejected as unusable")),
      faults_injected(registry.counter(
          "satori.faults.injected",
          "Fault-injector activations flagged during runs")),
      sim_steps(registry.counter(
          "satori.sim.steps",
          "Simulated-server interval advances")),
      harness_intervals(registry.counter(
          "satori.harness.intervals",
          "Control intervals executed by the experiment harness")),
      persist_wal_records(registry.counter(
          "satori.persist.wal_records",
          "Interval records appended to the write-ahead log")),
      persist_snapshots(registry.counter(
          "satori.persist.snapshots",
          "Controller-state snapshots installed")),
      persist_snapshot_bytes(registry.counter(
          "satori.persist.snapshot_bytes",
          "Total snapshot payload bytes written")),
      bo_samples(registry.gauge(
          "satori.bo.samples",
          "Proxy-model training-set size after the last update")),
      controller_w_t(registry.gauge(
          "satori.controller.w_t",
          "Dynamic throughput weight used by the last decision")),
      controller_w_f(registry.gauge(
          "satori.controller.w_f",
          "Dynamic fairness weight used by the last decision")),
      controller_objective(registry.gauge(
          "satori.controller.objective",
          "Combined objective value of the last scored interval")),
      bo_candidates(registry.histogram(
          "satori.bo.candidates",
          "Candidate configurations evaluated per suggest call",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})),
      gp_training_size(registry.histogram(
          "satori.gp.training_size",
          "Training-set size at each GP fit",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}))
{
}

Observability::Observability() : lib_(metrics_)
{
}

Observability&
Observability::instance()
{
    // Meyers singleton; members guard their own state (see
    // include/satori/obs/registry.hpp).
    // satori-analyzer: allow(conc-global-mutable)
    static Observability ctx;
    return ctx;
}

void
Observability::resetAll()
{
    metrics_.reset();
    tracer_.clear();
    tracer_.setEnabled(false);
    audit_.clear();
    audit_.setEnabled(false);
    metrics_enabled_ = false;
}

Observability&
observability()
{
    return Observability::instance();
}

} // namespace obs
} // namespace satori
