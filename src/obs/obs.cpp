#include "satori/obs/obs.hpp"

#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace obs {

namespace {

/** Deterministic double formatting (matches registry exports). */
std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

/** Numeric encoding of a guard verdict for the facts.guard series. */
double
guardVerdictValue(const std::string& verdict)
{
    if (verdict == "healthy")
        return 1.0;
    if (verdict == "repaired")
        return 2.0;
    if (verdict == "unusable")
        return 3.0;
    return 0.0; // "off" or not yet reported.
}

} // namespace

LibraryMetrics::LibraryMetrics(MetricsRegistry& registry)
    : controller_decisions(registry.counter(
          "satori.controller.decisions",
          "Total controller decide() invocations")),
      controller_degraded(registry.counter(
          "satori.controller.degraded_intervals",
          "Intervals spent in the equal-partition degraded fallback")),
      controller_holds(registry.counter(
          "satori.controller.holds",
          "Decisions held because the telemetry sample was unusable")),
      controller_retries(registry.counter(
          "satori.controller.actuation_retries",
          "Decisions that re-issued a config after an actuation "
          "mismatch")),
      controller_settles(registry.counter(
          "satori.controller.settles",
          "Transitions from exploration into the settled state")),
      bo_fits(registry.counter("satori.bo.fits",
                               "Proxy-model refits over the sample set")),
      bo_grid_refits(registry.counter(
          "satori.bo.grid_refits",
          "Proxy-model refits that re-ran the hyperparameter grid")),
      bo_suggests(registry.counter(
          "satori.bo.suggests",
          "Acquisition maximizations over a candidate set")),
      bo_window_evictions(registry.counter(
          "satori.bo.window_evictions",
          "Oldest-sample Cholesky downdates in sliding-window mode")),
      bo_screen_kept(registry.counter(
          "satori.bo.screen_kept",
          "Candidates fully scored after the acquisition prefilter")),
      bo_screen_pruned(registry.counter(
          "satori.bo.screen_pruned",
          "Candidates the acquisition prefilter proved non-optimal")),
      bo_approx_fallbacks(registry.counter(
          "satori.bo.approx_fallbacks",
          "Approximate-GP incremental failures that rebuilt the Gram "
          "factor")),
      bo_approx_cache_hits(registry.counter(
          "satori.bo.approx_cache_hits",
          "Candidate scorings served from the cached cross-covariance "
          "block")),
      bo_approx_cache_misses(registry.counter(
          "satori.bo.approx_cache_misses",
          "Candidate scorings that rebuilt the cross-covariance "
          "cache")),
      gp_fits(registry.counter(
          "satori.gp.fits",
          "Gaussian-process Cholesky factorizations")),
      gp_incremental_updates(registry.counter(
          "satori.gp.incremental_updates",
          "Rank-1 Cholesky appends that skipped the full refit")),
      gp_refresh_solves(registry.counter(
          "satori.gp.refresh_solves",
          "Target-only refreshes that reused the cached factor")),
      guard_healthy(registry.counter(
          "satori.guard.healthy",
          "Telemetry samples the guard passed through unchanged")),
      guard_repaired(registry.counter(
          "satori.guard.repaired",
          "Telemetry samples the guard repaired before use")),
      guard_unusable(registry.counter(
          "satori.guard.unusable",
          "Telemetry samples the guard rejected as unusable")),
      faults_injected(registry.counter(
          "satori.faults.injected",
          "Fault-injector activations flagged during runs")),
      sim_steps(registry.counter(
          "satori.sim.steps",
          "Simulated-server interval advances")),
      harness_intervals(registry.counter(
          "satori.harness.intervals",
          "Control intervals executed by the experiment harness")),
      persist_wal_records(registry.counter(
          "satori.persist.wal_records",
          "Interval records appended to the write-ahead log")),
      persist_snapshots(registry.counter(
          "satori.persist.snapshots",
          "Controller-state snapshots installed")),
      persist_snapshot_bytes(registry.counter(
          "satori.persist.snapshot_bytes",
          "Total snapshot payload bytes written")),
      slo_breaches(registry.counter(
          "satori.slo.breaches",
          "SLO watchdog rules that entered breach")),
      http_requests(registry.counter(
          "satori.http.requests",
          "HTTP requests served by the embedded exporter")),
      bo_samples(registry.gauge(
          "satori.bo.samples",
          "Proxy-model training-set size after the last update")),
      controller_w_t(registry.gauge(
          "satori.controller.w_t",
          "Dynamic throughput weight used by the last decision")),
      controller_w_f(registry.gauge(
          "satori.controller.w_f",
          "Dynamic fairness weight used by the last decision")),
      controller_objective(registry.gauge(
          "satori.controller.objective",
          "Combined objective value of the last scored interval")),
      bo_candidates(registry.histogram(
          "satori.bo.candidates",
          "Candidate configurations evaluated per suggest call",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})),
      gp_training_size(registry.histogram(
          "satori.gp.training_size",
          "Training-set size at each GP fit",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}))
{
}

Observability::Observability() : lib_(metrics_)
{
}

Observability&
Observability::instance()
{
    // Meyers singleton; members guard their own state (see
    // include/satori/obs/registry.hpp).
    // satori-analyzer: allow(conc-global-mutable)
    static Observability ctx;
    return ctx;
}

const char*
HealthView::status() const
{
    if (slo_breaching > 0)
        return "breaching";
    if (degraded)
        return "degraded";
    return "ok";
}

bool
HealthView::ok() const
{
    return slo_breaching == 0 && !degraded;
}

std::string
HealthView::toJson() const
{
    std::ostringstream out;
    out << "{\"status\":\"" << status() << "\""
        << ",\"intervals\":" << intervals
        << ",\"last_interval\":" << last_interval
        << ",\"time\":" << formatNumber(time)
        << ",\"have_decision\":" << (have_decision ? "true" : "false")
        << ",\"guard_verdict\":\"" << guard_verdict << "\""
        << ",\"degraded\":" << (degraded ? "true" : "false")
        << ",\"settled\":" << (settled ? "true" : "false")
        << ",\"objective\":" << formatNumber(objective)
        << ",\"slo_rules\":" << slo_rules
        << ",\"slo_breaching\":" << slo_breaching
        << ",\"slo_breaches\":" << slo_breaches
        << ",\"history_enabled\":" << (history_enabled ? "true" : "false")
        << ",\"history_snapshots\":" << history_snapshots
        << ",\"history_evicted\":" << history_evicted << "}";
    return out.str();
}

void
Observability::noteDecision(const DecisionRecord& record)
{
    common::MutexLock lock(live_mutex_);
    last_decision_ = record;
    have_decision_ = true;
}

void
Observability::onHarnessInterval(std::uint64_t interval, double time,
                                 const std::vector<double>& ips,
                                 double throughput, double fairness)
{
    if (!live_enabled_)
        return;

    // Per-interval facts: the harness-side goal values plus the
    // controller's last reported decision state.
    std::vector<std::pair<std::string, double>> facts;
    facts.reserve(12);
    double ips_sum = 0.0;
    for (double v : ips)
        ips_sum += v;
    facts.emplace_back("facts.throughput", throughput);
    facts.emplace_back("facts.fairness", fairness);
    facts.emplace_back("facts.ips_mean",
                       ips.empty()
                           ? 0.0
                           : ips_sum / static_cast<double>(ips.size()));
    {
        common::MutexLock lock(live_mutex_);
        ++live_intervals_;
        live_last_interval_ = interval;
        live_time_ = time;
        if (have_decision_) {
            facts.emplace_back("facts.objective", last_decision_.objective);
            facts.emplace_back("facts.w_t", last_decision_.w_t);
            facts.emplace_back("facts.w_f", last_decision_.w_f);
            facts.emplace_back("facts.degraded",
                               last_decision_.degraded ? 1.0 : 0.0);
            facts.emplace_back("facts.settled",
                               last_decision_.settled ? 1.0 : 0.0);
            facts.emplace_back(
                "facts.guard",
                guardVerdictValue(last_decision_.guard_verdict));
            facts.emplace_back(
                "facts.bo_samples",
                static_cast<double>(last_decision_.bo_samples));
        }
    }

    if (history_.enabled())
        history_.record(time, interval, metrics_.snapshot(), facts);

    if (watchdog_.enabled()) {
        const std::vector<SloEvent> fired =
            watchdog_.evaluate(history_, time, interval);
        if (!fired.empty())
            lib_.slo_breaches.inc(fired.size());
        if (!fired.empty() && watchdog_.fatalOnBreach())
            SATORI_FATAL("SLO breach: " + fired.front().rule.toString() +
                         " (value " + formatNumber(fired.front().value) +
                         " at interval " +
                         std::to_string(fired.front().interval) + ")");
    }
}

HealthView
Observability::healthView() const
{
    HealthView view;
    {
        common::MutexLock lock(live_mutex_);
        view.intervals = live_intervals_;
        view.last_interval = live_last_interval_;
        view.time = live_time_;
        view.have_decision = have_decision_;
        if (have_decision_) {
            view.guard_verdict = last_decision_.guard_verdict;
            view.degraded = last_decision_.degraded;
            view.settled = last_decision_.settled;
            view.objective = last_decision_.objective;
        }
    }
    view.slo_rules = watchdog_.spec().rules().size();
    view.slo_breaching = watchdog_.breaching();
    view.slo_breaches = watchdog_.breachCount();
    view.history_enabled = history_.enabled();
    view.history_snapshots = history_.snapshots();
    view.history_evicted = history_.evicted();
    return view;
}

void
Observability::resetAll()
{
    metrics_.reset();
    tracer_.clear();
    tracer_.setEnabled(false);
    audit_.clear();
    audit_.setEnabled(false);
    audit_.setCapacity(DecisionAuditChannel::kDefaultCapacity);
    history_.clear();
    history_.setEnabled(false);
    history_.configure(StatsHistoryOptions{});
    watchdog_.clear();
    metrics_enabled_ = false;
    live_enabled_ = false;
    {
        common::MutexLock lock(live_mutex_);
        live_intervals_ = 0;
        live_last_interval_ = 0;
        live_time_ = 0.0;
        have_decision_ = false;
        last_decision_ = DecisionRecord{};
    }
}

Observability&
observability()
{
    return Observability::instance();
}

} // namespace obs
} // namespace satori
