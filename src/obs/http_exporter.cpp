/**
 * @file
 * Embedded HTTP/1.1 exporter: POSIX sockets, a poll()-driven accept
 * loop with self-pipe shutdown, and the four read-only endpoints.
 * See include/satori/obs/http_exporter.hpp for the contract.
 */

#include "satori/obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace obs {

namespace {

/** Hard cap on one request's bytes; more than enough for any GET. */
constexpr std::size_t kMaxRequestBytes = 16384;

/** Per-connection read budget (ms) before giving up on a client. */
constexpr int kReadTimeoutMs = 2000;

/** Maximum pending connections on the listen socket. */
constexpr int kListenBacklog = 16;

std::string
makeResponse(int status, const std::string& reason,
             const std::string& content_type, const std::string& body)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << " " << reason << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << body;
    return out.str();
}

std::string
errorResponse(int status, const std::string& reason,
              const std::string& detail)
{
    return makeResponse(status, reason, "text/plain; charset=utf-8",
                        detail + "\n");
}

/** Parse "k1=v1&k2=v2" (no URL decoding: every value the endpoints
 *  accept is [a-zA-Z0-9_.-]). Later duplicates win. */
std::map<std::string, std::string>
parseQuery(const std::string& query)
{
    std::map<std::string, std::string> params;
    std::istringstream pairs(query);
    std::string pair;
    while (std::getline(pairs, pair, '&')) {
        if (pair.empty())
            continue;
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            params[pair] = "";
        else
            params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    return params;
}

/** Parse a non-negative number; false on garbage or trailing junk. */
bool
parseDouble(const std::string& text, double& out)
{
    std::istringstream in(text);
    if (!(in >> out) || out < 0.0)
        return false;
    std::string rest;
    return !(in >> rest);
}

bool
parseCount(const std::string& text, std::size_t& out)
{
    std::istringstream in(text);
    long long value = 0;
    if (!(in >> value) || value < 0)
        return false;
    std::string rest;
    if (in >> rest)
        return false;
    out = static_cast<std::size_t>(value);
    return true;
}

/** Append points as a JSON array of [time, interval, value]. */
void
appendPoints(std::ostringstream& out, const std::vector<HistoryPoint>& points)
{
    out << "[";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            out << ",";
        std::ostringstream num;
        num.precision(10);
        num << points[i].time;
        out << "[" << num.str() << "," << points[i].interval << ",";
        num.str("");
        num << points[i].value;
        out << num.str() << "]";
    }
    out << "]";
}

/** Send all of @p data on @p fd (MSG_NOSIGNAL: a dead client must
 *  not SIGPIPE the process). */
void
sendAll(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0)
            return; // Client went away; nothing to clean up.
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

HttpExporter::~HttpExporter()
{
    stop();
}

void
HttpExporter::start(const HttpExporterOptions& options)
{
    int listen_fd = -1;
    int pipe_fds[2] = {-1, -1};
    {
        common::MutexLock lock(lifecycle_mutex_);
        if (running_)
            SATORI_FATAL("HttpExporter already running on port " +
                         std::to_string(bound_port_));

        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd < 0)
            SATORI_FATAL("HttpExporter: socket() failed: " +
                         std::string(std::strerror(errno)));
        const int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options.port);
        if (::inet_pton(AF_INET, options.bind_address.c_str(),
                        &addr.sin_addr) != 1) {
            ::close(listen_fd);
            SATORI_FATAL("HttpExporter: bad bind address: " +
                         options.bind_address);
        }
        if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd);
            SATORI_FATAL("HttpExporter: bind(" + options.bind_address +
                         ":" + std::to_string(options.port) +
                         ") failed: " + why);
        }
        if (::listen(listen_fd, kListenBacklog) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd);
            SATORI_FATAL("HttpExporter: listen() failed: " + why);
        }

        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                          &len) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd);
            SATORI_FATAL("HttpExporter: getsockname() failed: " + why);
        }

        if (::pipe(pipe_fds) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd);
            SATORI_FATAL("HttpExporter: pipe() failed: " + why);
        }

        listen_fd_ = listen_fd;
        stop_pipe_rd_ = pipe_fds[0];
        stop_pipe_wr_ = pipe_fds[1];
        bound_port_ = ntohs(bound.sin_port);
        running_ = true;
    }
    // The thread works on fd copies, so it never touches guarded
    // members; stop() owns their teardown after the join.
    const int stop_fd = pipe_fds[0];
    thread_ = std::thread([this, listen_fd, stop_fd] {
        // satori-analyzer: allow(conc-raw-thread)
        serveLoopOn(listen_fd, stop_fd);
    });
}

void
HttpExporter::stop()
{
    {
        common::MutexLock lock(lifecycle_mutex_);
        if (!running_)
            return;
        running_ = false;
        // Self-pipe: one byte wakes the accept loop's poll().
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stop_pipe_wr_, &byte, 1);
    }
    if (thread_.joinable())
        thread_.join();
    common::MutexLock lock(lifecycle_mutex_);
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    if (stop_pipe_rd_ >= 0)
        ::close(stop_pipe_rd_);
    if (stop_pipe_wr_ >= 0)
        ::close(stop_pipe_wr_);
    listen_fd_ = -1;
    stop_pipe_rd_ = -1;
    stop_pipe_wr_ = -1;
    bound_port_ = 0;
}

bool
HttpExporter::running() const
{
    common::MutexLock lock(lifecycle_mutex_);
    return running_;
}

std::uint16_t
HttpExporter::port() const
{
    common::MutexLock lock(lifecycle_mutex_);
    return bound_port_;
}

void
HttpExporter::serveLoopOn(int listen_fd, int stop_fd) const
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = listen_fd;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = stop_fd;
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
            return; // stop() wrote the self-pipe byte.
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        serveConnection(conn);
    }
}

void
HttpExporter::serveConnection(int fd) const
{
    // Read one request: until the header terminator, the size cap, or
    // the read budget runs out. GETs carry no body, so headers are
    // the whole request.
    std::string request;
    int budget_ms = kReadTimeoutMs;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < kMaxRequestBytes && budget_ms > 0) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int slice_ms = 50;
        const int ready = ::poll(&pfd, 1, slice_ms);
        budget_ms -= slice_ms;
        if (ready < 0 && errno != EINTR) {
            ::close(fd);
            return;
        }
        if (ready <= 0)
            continue;
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    if (!request.empty())
        sendAll(fd, handleRequest(request));
    ::close(fd);
}

std::string
HttpExporter::handleRequest(const std::string& request) const
{
    obs_.lib().http_requests.inc();

    // Request line: METHOD SP target SP HTTP/x.y CRLF.
    const auto line_end = request.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);
    std::istringstream parts(line);
    std::string method;
    std::string target;
    std::string version;
    if (!(parts >> method >> target >> version) ||
        version.rfind("HTTP/", 0) != 0 || target.empty() ||
        target[0] != '/')
        return errorResponse(400, "Bad Request", "malformed request line");
    if (method != "GET")
        return errorResponse(405, "Method Not Allowed", "GET only");

    std::string path = target;
    std::string query;
    const auto qmark = target.find('?');
    if (qmark != std::string::npos) {
        path = target.substr(0, qmark);
        query = target.substr(qmark + 1);
    }
    const std::map<std::string, std::string> params = parseQuery(query);

    if (path == "/metrics")
        return makeResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            obs_.metrics().snapshot().prometheusText());

    if (path == "/healthz") {
        const HealthView view = obs_.healthView();
        if (view.ok())
            return makeResponse(200, "OK", "application/json",
                                view.toJson() + "\n");
        return makeResponse(503, "Service Unavailable", "application/json",
                            view.toJson() + "\n");
    }

    if (path == "/history")
        return handleHistory(params);

    if (path == "/audit/tail") {
        std::size_t n = 32;
        const auto it = params.find("n");
        if (it != params.end() && !parseCount(it->second, n))
            return errorResponse(400, "Bad Request",
                                 "bad n: " + it->second);
        return makeResponse(200, "OK", "application/x-ndjson",
                            obs_.audit().tailJsonLines(n));
    }

    return errorResponse(404, "Not Found", "no such endpoint: " + path);
}

std::string
HttpExporter::handleHistory(
    const std::map<std::string, std::string>& params) const
{
    const auto metric_it = params.find("metric");
    if (metric_it == params.end() || metric_it->second.empty())
        return errorResponse(400, "Bad Request",
                             "missing required parameter: metric");
    const std::string& metric = metric_it->second;

    double window = 0.0;
    if (const auto it = params.find("window"); it != params.end())
        if (!parseDouble(it->second, window))
            return errorResponse(400, "Bad Request",
                                 "bad window: " + it->second);
    std::size_t last = 0;
    if (const auto it = params.find("last"); it != params.end())
        if (!parseCount(it->second, last))
            return errorResponse(400, "Bad Request",
                                 "bad last: " + it->second);
    const bool want_stats = params.count("stats") > 0;
    const bool want_rate = params.count("rate") > 0;

    StatsHistory& history = obs_.history();
    const std::optional<SeriesKind> kind = history.seriesKind(metric);
    if (!kind)
        return errorResponse(404, "Not Found", "no such metric: " + metric);
    if (want_rate && *kind != SeriesKind::Counter)
        return errorResponse(400, "Bad Request",
                             "rate requires a counter series: " + metric);

    std::vector<HistoryPoint> points;
    if (want_rate)
        points = history.counterRates(metric, window);
    else if (last > 0)
        points = history.lastN(metric, last);
    else if (window > 0.0) {
        const std::vector<HistoryPoint> newest = history.lastN(metric, 1);
        const double t_end = newest.empty() ? 0.0 : newest[0].time;
        points = history.range(metric, t_end - window, t_end);
    } else
        points = history.lastN(metric,
                               std::numeric_limits<std::size_t>::max());

    std::ostringstream body;
    body << "{\"metric\":\"" << metric << "\",\"kind\":\""
         << (*kind == SeriesKind::Counter ? "counter" : "gauge")
         << "\",\"points\":";
    appendPoints(body, points);
    if (want_stats) {
        const std::optional<WindowStats> stats =
            history.windowStats(metric, window);
        body << ",\"stats\":";
        if (!stats)
            body << "null";
        else {
            std::ostringstream num;
            num.precision(10);
            num << "{\"count\":" << stats->count << ",\"min\":"
                << stats->min << ",\"max\":" << stats->max << ",\"mean\":"
                << stats->mean << ",\"p50\":" << stats->p50 << ",\"p95\":"
                << stats->p95 << "}";
            body << num.str();
        }
    }
    body << "}\n";
    return makeResponse(200, "OK", "application/json", body.str());
}

std::string
HttpExporter::fetch(std::uint16_t port, const std::string& target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return "";
    }
    sendAll(fd, "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                "Connection: close\r\n\r\n");
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

PeriodicScraper::PeriodicScraper(std::uint16_t port, std::string target,
                                 int period_ms)
    : port_(port), target_(std::move(target)),
      period_ms_(period_ms > 0 ? period_ms : 1)
{
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        SATORI_FATAL("PeriodicScraper: pipe() failed: " +
                     std::string(std::strerror(errno)));
    const int stop_fd = pipe_fds[0];
    {
        common::MutexLock lock(lifecycle_mutex_);
        stop_pipe_rd_ = pipe_fds[0];
        stop_pipe_wr_ = pipe_fds[1];
        running_ = true;
    }
    thread_ = std::thread([this, stop_fd] {
        // satori-analyzer: allow(conc-raw-thread)
        scrapeLoopOn(stop_fd);
    });
}

PeriodicScraper::~PeriodicScraper()
{
    stop();
}

void
PeriodicScraper::stop()
{
    {
        common::MutexLock lock(lifecycle_mutex_);
        if (!running_)
            return;
        running_ = false;
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stop_pipe_wr_, &byte, 1);
    }
    if (thread_.joinable())
        thread_.join();
    common::MutexLock lock(lifecycle_mutex_);
    if (stop_pipe_rd_ >= 0)
        ::close(stop_pipe_rd_);
    if (stop_pipe_wr_ >= 0)
        ::close(stop_pipe_wr_);
    stop_pipe_rd_ = -1;
    stop_pipe_wr_ = -1;
}

std::uint64_t
PeriodicScraper::scrapes() const
{
    common::MutexLock lock(lifecycle_mutex_);
    return scrapes_;
}

std::uint64_t
PeriodicScraper::bytesReceived() const
{
    common::MutexLock lock(lifecycle_mutex_);
    return bytes_;
}

void
PeriodicScraper::scrapeLoopOn(int stop_fd)
{
    for (;;) {
        const std::string response = HttpExporter::fetch(port_, target_);
        {
            common::MutexLock lock(lifecycle_mutex_);
            if (!response.empty()) {
                ++scrapes_;
                bytes_ += response.size();
            }
        }
        // Period timing via the stop pipe's poll() timeout: stopping
        // never has to wait a period out.
        pollfd pfd;
        pfd.fd = stop_fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, period_ms_);
        if (ready < 0 && errno != EINTR)
            return;
        if (ready > 0 &&
            (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
            return;
    }
}

} // namespace obs
} // namespace satori
