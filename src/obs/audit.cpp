#include "satori/obs/audit.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"
#include "satori/common/io.hpp"

namespace satori {
namespace obs {

namespace {

/** Deterministic double formatting (matches registry exports). */
std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

/** Escape a free-text string for a JSON string value. */
std::string
escapeText(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** One record as a single JSON object (no trailing newline). */
std::string
recordJson(const DecisionRecord& r)
{
    std::string out;
    out += "{\"interval\":" + std::to_string(r.interval);
    out += ",\"time\":" + formatNumber(r.time);
    out += ",\"policy\":\"" + escapeText(r.policy) + "\"";
    out += ",\"observed_ips\":[";
    for (std::size_t i = 0; i < r.observed_ips.size(); ++i) {
        if (i > 0)
            out += ",";
        out += formatNumber(r.observed_ips[i]);
    }
    out += "]";
    out += ",\"guard_verdict\":\"" + escapeText(r.guard_verdict) + "\"";
    out += ",\"degraded\":" + std::string(r.degraded ? "true" : "false");
    out += ",\"settled\":" + std::string(r.settled ? "true" : "false");
    out += ",\"throughput\":" + formatNumber(r.throughput);
    out += ",\"fairness\":" + formatNumber(r.fairness);
    out += ",\"w_t\":" + formatNumber(r.w_t);
    out += ",\"w_f\":" + formatNumber(r.w_f);
    out += ",\"objective\":" + formatNumber(r.objective);
    out += ",\"bo_samples\":" + std::to_string(r.bo_samples);
    out += ",\"proxy_change_pct\":" + formatNumber(r.proxy_change_pct);
    out += ",\"chosen_config\":\"" + escapeText(r.chosen_config) + "\"";
    out += ",\"outcome\":\"" + escapeText(r.outcome) + "\"";
    out += ",\"screen_kept\":" + std::to_string(r.screen_kept);
    out += ",\"screen_pruned\":" + std::to_string(r.screen_pruned);
    out += ",\"window_evictions\":" + std::to_string(r.window_evictions);
    out += ",\"approx_active\":" +
           std::string(r.approx_active ? "true" : "false");
    out += "}";
    return out;
}

} // namespace

void
DecisionAuditChannel::setCapacity(std::size_t capacity)
{
    common::MutexLock lock(mutex_);
    capacity_ = capacity > 0 ? capacity : 1;
    while (records_.size() > capacity_) {
        records_.pop_front();
        ++dropped_;
    }
}

std::size_t
DecisionAuditChannel::capacity() const
{
    common::MutexLock lock(mutex_);
    return capacity_;
}

void
DecisionAuditChannel::emit(DecisionRecord record)
{
    if (!enabled_)
        return;
    common::MutexLock lock(mutex_);
    records_.push_back(std::move(record));
    while (records_.size() > capacity_) {
        records_.pop_front();
        ++dropped_;
    }
}

std::size_t
DecisionAuditChannel::size() const
{
    common::MutexLock lock(mutex_);
    return records_.size();
}

std::uint64_t
DecisionAuditChannel::dropped() const
{
    common::MutexLock lock(mutex_);
    return dropped_;
}

void
DecisionAuditChannel::clear()
{
    common::MutexLock lock(mutex_);
    records_.clear();
    dropped_ = 0;
}

std::string
DecisionAuditChannel::jsonLines() const
{
    common::MutexLock lock(mutex_);
    std::string out;
    for (const DecisionRecord& r : records_)
        out += recordJson(r) + "\n";
    return out;
}

std::string
DecisionAuditChannel::tailJsonLines(std::size_t n) const
{
    common::MutexLock lock(mutex_);
    std::string out;
    const std::size_t take = n < records_.size() ? n : records_.size();
    for (std::size_t i = records_.size() - take; i < records_.size(); ++i)
        out += recordJson(records_[i]) + "\n";
    return out;
}

void
DecisionAuditChannel::writeJsonl(const std::string& path) const
{
    // Atomic install: readers never observe a partially written log.
    satori::atomicWriteFile(path, jsonLines());
}

} // namespace obs
} // namespace satori
