#include "satori/obs/audit.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"
#include "satori/common/io.hpp"

namespace satori {
namespace obs {

namespace {

/** Deterministic double formatting (matches registry exports). */
std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

/** Escape a free-text string for a JSON string value. */
std::string
escapeText(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

void
DecisionAuditChannel::emit(DecisionRecord record)
{
    if (!enabled_)
        return;
    common::MutexLock lock(mutex_);
    records_.push_back(std::move(record));
}

void
DecisionAuditChannel::clear()
{
    common::MutexLock lock(mutex_);
    records_.clear();
}

std::string
DecisionAuditChannel::jsonLines() const
{
    common::MutexLock lock(mutex_);
    std::string out;
    for (const DecisionRecord& r : records_) {
        out += "{\"interval\":" + std::to_string(r.interval);
        out += ",\"time\":" + formatNumber(r.time);
        out += ",\"policy\":\"" + escapeText(r.policy) + "\"";
        out += ",\"observed_ips\":[";
        for (std::size_t i = 0; i < r.observed_ips.size(); ++i) {
            if (i > 0)
                out += ",";
            out += formatNumber(r.observed_ips[i]);
        }
        out += "]";
        out += ",\"guard_verdict\":\"" + escapeText(r.guard_verdict) + "\"";
        out += ",\"degraded\":" + std::string(r.degraded ? "true" : "false");
        out += ",\"settled\":" + std::string(r.settled ? "true" : "false");
        out += ",\"throughput\":" + formatNumber(r.throughput);
        out += ",\"fairness\":" + formatNumber(r.fairness);
        out += ",\"w_t\":" + formatNumber(r.w_t);
        out += ",\"w_f\":" + formatNumber(r.w_f);
        out += ",\"objective\":" + formatNumber(r.objective);
        out += ",\"bo_samples\":" + std::to_string(r.bo_samples);
        out += ",\"proxy_change_pct\":" + formatNumber(r.proxy_change_pct);
        out += ",\"chosen_config\":\"" + escapeText(r.chosen_config) + "\"";
        out += ",\"outcome\":\"" + escapeText(r.outcome) + "\"";
        out += "}\n";
    }
    return out;
}

void
DecisionAuditChannel::writeJsonl(const std::string& path) const
{
    // Atomic install: readers never observe a partially written log.
    satori::atomicWriteFile(path, jsonLines());
}

} // namespace obs
} // namespace satori
