/**
 * @file
 * SLO spec parsing and per-interval rule evaluation. See
 * include/satori/obs/watchdog.hpp for the contract.
 */

#include "satori/obs/watchdog.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace obs {

namespace {

std::string formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

} // namespace

const char* sloOpName(SloOp op)
{
    switch (op)
    {
    case SloOp::Lt:
        return "<";
    case SloOp::Le:
        return "<=";
    case SloOp::Gt:
        return ">";
    case SloOp::Ge:
        return ">=";
    }
    return "?";
}

bool SloRule::violates(double value) const
{
    switch (op)
    {
    case SloOp::Lt:
        return value < threshold;
    case SloOp::Le:
        return value <= threshold;
    case SloOp::Gt:
        return value > threshold;
    case SloOp::Ge:
        return value >= threshold;
    }
    return false;
}

std::string SloRule::toString() const
{
    std::ostringstream out;
    out << metric << " " << sloOpName(op) << " " << formatNumber(threshold)
        << " for " << for_intervals << " intervals";
    return out.str();
}

SloSpec::SloSpec(std::vector<SloRule> rules) : rules_(std::move(rules)) {}

SloSpec SloSpec::parse(const std::string& text, const std::string& source)
{
    std::vector<SloRule> rules;
    std::istringstream lines(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(lines, line))
    {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string metric;
        if (!(fields >> metric))
            continue; // Blank or comment-only line.

        const auto fail = [&](const std::string& what) {
            SATORI_FATAL(source + ":" + std::to_string(line_no) +
                         ": bad SLO rule: " + what);
        };

        SloRule rule;
        rule.metric = metric;
        std::string op;
        if (!(fields >> op))
            fail("missing operator");
        if (op == "<")
            rule.op = SloOp::Lt;
        else if (op == "<=")
            rule.op = SloOp::Le;
        else if (op == ">")
            rule.op = SloOp::Gt;
        else if (op == ">=")
            rule.op = SloOp::Ge;
        else
            fail("unknown operator '" + op + "' (want <, <=, >, >=)");
        if (!(fields >> rule.threshold))
            fail("missing or non-numeric threshold");
        std::string keyword;
        if (!(fields >> keyword) || keyword != "for")
            fail("expected 'for <k>' after the threshold");
        long long k = 0;
        if (!(fields >> k) || k < 1)
            fail("persistence must be an integer >= 1");
        rule.for_intervals = static_cast<std::size_t>(k);
        std::string trailing;
        if (fields >> trailing && trailing != "intervals")
            fail("unexpected trailing token '" + trailing + "'");
        if (fields >> trailing)
            fail("unexpected trailing token '" + trailing + "'");
        rules.push_back(std::move(rule));
    }
    return SloSpec(std::move(rules));
}

SloSpec SloSpec::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        SATORI_FATAL("cannot open SLO spec: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path);
}

std::string SloSpec::toString() const
{
    std::ostringstream out;
    for (const SloRule& rule : rules_)
        out << rule.toString() << "\n";
    return out.str();
}

std::string SloEvent::toJson() const
{
    std::ostringstream out;
    out << "{\"type\":\"slo_breach\",\"interval\":" << interval
        << ",\"time\":" << formatNumber(time) << ",\"metric\":\""
        << rule.metric << "\",\"op\":\"" << sloOpName(rule.op)
        << "\",\"threshold\":" << formatNumber(rule.threshold)
        << ",\"for_intervals\":" << rule.for_intervals
        << ",\"value\":" << formatNumber(value) << "}";
    return out.str();
}

void Watchdog::configure(SloSpec spec)
{
    common::MutexLock lock(mutex_);
    spec_ = std::move(spec);
    states_.assign(spec_.rules().size(), RuleState{});
    events_.clear();
    breach_count_ = 0;
}

bool Watchdog::enabled() const
{
    common::MutexLock lock(mutex_);
    return !spec_.empty();
}

SloSpec Watchdog::spec() const
{
    common::MutexLock lock(mutex_);
    return spec_;
}

void Watchdog::setFatalOnBreach(bool fatal)
{
    common::MutexLock lock(mutex_);
    fatal_on_breach_ = fatal;
}

bool Watchdog::fatalOnBreach() const
{
    common::MutexLock lock(mutex_);
    return fatal_on_breach_;
}

std::vector<SloEvent> Watchdog::evaluate(const StatsHistory& history,
                                         double time, std::uint64_t interval)
{
    std::vector<SloEvent> fired;
    common::MutexLock lock(mutex_);
    const std::vector<SloRule>& rules = spec_.rules();
    for (std::size_t i = 0; i < rules.size(); ++i)
    {
        const SloRule& rule = rules[i];
        RuleState& state = states_[i];
        const std::optional<double> value = history.latest(rule.metric);
        // An absent metric is healthy, not breaching: rules may name
        // series (e.g. facts.*) that only appear once the controller
        // has produced a decision.
        if (!value || !rule.violates(*value))
        {
            state.consecutive = 0;
            state.breaching = false;
            continue;
        }
        ++state.consecutive;
        if (state.consecutive < rule.for_intervals || state.breaching)
            continue;
        state.breaching = true;
        ++breach_count_;
        SloEvent event;
        event.interval = interval;
        event.time = time;
        event.rule = rule;
        event.value = *value;
        events_.push_back(event);
        while (events_.size() > kMaxEvents)
            events_.pop_front();
        fired.push_back(std::move(event));
    }
    return fired;
}

std::size_t Watchdog::breaching() const
{
    common::MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const RuleState& state : states_)
        if (state.breaching)
            ++n;
    return n;
}

std::uint64_t Watchdog::breachCount() const
{
    common::MutexLock lock(mutex_);
    return breach_count_;
}

std::vector<SloEvent> Watchdog::events() const
{
    common::MutexLock lock(mutex_);
    return {events_.begin(), events_.end()};
}

std::string Watchdog::eventsJsonl() const
{
    common::MutexLock lock(mutex_);
    std::ostringstream out;
    for (const SloEvent& event : events_)
        out << event.toJson() << "\n";
    return out.str();
}

void Watchdog::clear()
{
    common::MutexLock lock(mutex_);
    spec_ = SloSpec();
    states_.clear();
    events_.clear();
    breach_count_ = 0;
    fatal_on_breach_ = false;
}

} // namespace obs
} // namespace satori
