/**
 * @file
 * StatsHistory implementation: per-series deque rings with snapshot
 * stamps, retention by count/age/bytes, and windowed order-statistic
 * queries. See include/satori/obs/stats_history.hpp for the contract.
 */

#include "satori/obs/stats_history.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace satori {
namespace obs {

namespace {

/** Same numeric rendering as the registry exports (10 significant
 *  digits, no trailing-zero noise), so goldens line up. */
std::string formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

/** Rough per-point footprint for the byte-retention estimate. */
constexpr std::size_t kPointBytes = sizeof(HistoryPoint);

/** Nearest-rank percentile over a sorted vector (p in [0,1]). */
double nearestRank(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = std::ceil(p * static_cast<double>(sorted.size()));
    std::size_t index = 0;
    if (rank >= 1.0)
        index = static_cast<std::size_t>(rank) - 1;
    if (index >= sorted.size())
        index = sorted.size() - 1;
    return sorted[index];
}

} // namespace

void StatsHistory::configure(const StatsHistoryOptions& options)
{
    common::MutexLock lock(mutex_);
    options_ = options;
    enforceRetention();
}

StatsHistoryOptions StatsHistory::options() const
{
    common::MutexLock lock(mutex_);
    return options_;
}

void StatsHistory::setEnabled(bool enabled)
{
    common::MutexLock lock(mutex_);
    enabled_ = enabled;
}

bool StatsHistory::enabled() const
{
    common::MutexLock lock(mutex_);
    return enabled_;
}

void StatsHistory::record(
    double time, std::uint64_t interval, const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, double>>& facts)
{
    common::MutexLock lock(mutex_);
    if (!enabled_)
        return;
    stamps_.emplace_back(time, interval);
    for (const CounterSample& c : snap.counters)
        append(c.name, SeriesKind::Counter, time, interval,
               static_cast<double>(c.value));
    for (const GaugeSample& g : snap.gauges)
        append(g.name, SeriesKind::Gauge, time, interval, g.value);
    for (const HistogramSample& h : snap.histograms)
    {
        append(h.name + ".count", SeriesKind::Counter, time, interval,
               static_cast<double>(h.count));
        append(h.name + ".sum", SeriesKind::Counter, time, interval, h.sum);
    }
    for (const auto& [name, value] : facts)
        append(name, SeriesKind::Gauge, time, interval, value);
    enforceRetention();
}

std::size_t StatsHistory::snapshots() const
{
    common::MutexLock lock(mutex_);
    return stamps_.size();
}

std::uint64_t StatsHistory::evicted() const
{
    common::MutexLock lock(mutex_);
    return evicted_;
}

std::size_t StatsHistory::approxBytes() const
{
    common::MutexLock lock(mutex_);
    return bytes_;
}

std::vector<std::string> StatsHistory::seriesNames() const
{
    common::MutexLock lock(mutex_);
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto& [name, series] : series_)
        names.push_back(name);
    return names;
}

std::optional<SeriesKind>
StatsHistory::seriesKind(const std::string& series) const
{
    common::MutexLock lock(mutex_);
    const auto it = series_.find(series);
    if (it == series_.end())
        return std::nullopt;
    return it->second.kind;
}

std::vector<HistoryPoint> StatsHistory::range(const std::string& series,
                                              double t_begin,
                                              double t_end) const
{
    common::MutexLock lock(mutex_);
    std::vector<HistoryPoint> out;
    const auto it = series_.find(series);
    if (it == series_.end())
        return out;
    for (const HistoryPoint& p : it->second.points)
        if (p.time >= t_begin && p.time <= t_end)
            out.push_back(p);
    return out;
}

std::vector<HistoryPoint> StatsHistory::lastN(const std::string& series,
                                              std::size_t n) const
{
    common::MutexLock lock(mutex_);
    std::vector<HistoryPoint> out;
    const auto it = series_.find(series);
    if (it == series_.end())
        return out;
    const std::deque<HistoryPoint>& points = it->second.points;
    const std::size_t take = std::min(n, points.size());
    out.assign(points.end() - static_cast<std::ptrdiff_t>(take),
               points.end());
    return out;
}

std::optional<double> StatsHistory::latest(const std::string& series) const
{
    common::MutexLock lock(mutex_);
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.points.empty())
        return std::nullopt;
    return it->second.points.back().value;
}

std::optional<WindowStats>
StatsHistory::windowStats(const std::string& series,
                          double window_seconds) const
{
    common::MutexLock lock(mutex_);
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.points.empty())
        return std::nullopt;
    const std::deque<HistoryPoint>& points = it->second.points;
    const double t_end = points.back().time;
    const double t_begin =
        window_seconds > 0.0 ? t_end - window_seconds : points.front().time;

    std::vector<double> values;
    values.reserve(points.size());
    double sum = 0.0;
    WindowStats stats;
    for (const HistoryPoint& p : points)
    {
        if (p.time < t_begin)
            continue;
        if (values.empty())
        {
            stats.min = p.value;
            stats.max = p.value;
        }
        stats.min = std::min(stats.min, p.value);
        stats.max = std::max(stats.max, p.value);
        sum += p.value;
        values.push_back(p.value);
    }
    if (values.empty())
        return std::nullopt;
    stats.count = values.size();
    stats.mean = sum / static_cast<double>(values.size());
    std::sort(values.begin(), values.end());
    stats.p50 = nearestRank(values, 0.5);
    stats.p95 = nearestRank(values, 0.95);
    return stats;
}

std::vector<HistoryPoint>
StatsHistory::counterRates(const std::string& series,
                           double window_seconds) const
{
    common::MutexLock lock(mutex_);
    std::vector<HistoryPoint> out;
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.kind != SeriesKind::Counter)
        return out;
    const std::deque<HistoryPoint>& points = it->second.points;
    if (points.size() < 2)
        return out;
    const double t_end = points.back().time;
    const double t_begin =
        window_seconds > 0.0 ? t_end - window_seconds : points.front().time;
    for (std::size_t i = 1; i < points.size(); ++i)
    {
        const HistoryPoint& prev = points[i - 1];
        const HistoryPoint& cur = points[i];
        if (cur.time < t_begin)
            continue;
        const double dt = cur.time - prev.time;
        double rate = 0.0;
        // A counter that went down was reset; report 0, not a
        // negative rate artifact. dt <= 0 (duplicate stamp) also
        // yields 0 rather than a division blow-up.
        if (cur.value >= prev.value && dt > 0.0)
            rate = (cur.value - prev.value) / dt;
        out.push_back(HistoryPoint{cur.time, cur.interval, rate});
    }
    return out;
}

std::string StatsHistory::toJson() const
{
    common::MutexLock lock(mutex_);
    std::ostringstream out;
    out << "{\"snapshots\":" << stamps_.size()
        << ",\"evicted\":" << evicted_ << ",\"series\":{";
    bool first_series = true;
    for (const auto& [name, series] : series_)
    {
        if (!first_series)
            out << ",";
        first_series = false;
        out << "\"" << name << "\":{\"kind\":\""
            << (series.kind == SeriesKind::Counter ? "counter" : "gauge")
            << "\",\"points\":[";
        bool first_point = true;
        for (const HistoryPoint& p : series.points)
        {
            if (!first_point)
                out << ",";
            first_point = false;
            out << "[" << formatNumber(p.time) << "," << p.interval << ","
                << formatNumber(p.value) << "]";
        }
        out << "]}";
    }
    out << "}}";
    return out.str();
}

void StatsHistory::clear()
{
    common::MutexLock lock(mutex_);
    series_.clear();
    stamps_.clear();
    bytes_ = 0;
    evicted_ = 0;
}

void StatsHistory::append(const std::string& name, SeriesKind kind,
                          double time, std::uint64_t interval, double value)
{
    Series& series = series_[name];
    if (series.points.empty())
        series.kind = kind;
    series.points.push_back(HistoryPoint{time, interval, value});
    bytes_ += kPointBytes;
}

void StatsHistory::enforceRetention()
{
    // Never evict the only remaining snapshot: a live /history or
    // watchdog probe always has the newest row to look at.
    while (stamps_.size() > 1)
    {
        const bool over_capacity =
            options_.capacity > 0 && stamps_.size() > options_.capacity;
        const bool over_age =
            options_.max_age_seconds > 0.0 &&
            stamps_.back().first - stamps_.front().first >
                options_.max_age_seconds;
        const bool over_bytes =
            options_.max_bytes > 0 && bytes_ > options_.max_bytes;
        if (!over_capacity && !over_age && !over_bytes)
            break;
        evictOldest();
    }
}

void StatsHistory::evictOldest()
{
    const std::uint64_t interval = stamps_.front().second;
    stamps_.pop_front();
    ++evicted_;
    for (auto& [name, series] : series_)
    {
        std::deque<HistoryPoint>& points = series.points;
        while (!points.empty() && points.front().interval <= interval &&
               (stamps_.empty() ||
                points.front().interval < stamps_.front().second))
        {
            points.pop_front();
            bytes_ -= std::min(bytes_, kPointBytes);
        }
    }
}

} // namespace obs
} // namespace satori
