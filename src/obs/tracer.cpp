#include "satori/obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "satori/common/logging.hpp"
#include "satori/common/io.hpp"

namespace satori {
namespace obs {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Tracer::Tracer(ClockFn clock) : clock_(clock)
{
    SATORI_ASSERT(clock_ != nullptr);
    events_.reserve(4096);
    open_.reserve(32);
}

void
Tracer::beginSpan(const char* name)
{
    TraceEvent event;
    event.name = name;
    event.depth = static_cast<std::uint32_t>(open_.size());
    event.start_ns = clock_();
    events_.push_back(event);
    open_.push_back({events_.size() - 1});
}

void
Tracer::endSpan()
{
    if (open_.empty())
        SATORI_PANIC("endSpan() without a matching beginSpan()");
    TraceEvent& event = events_[open_.back().event_index];
    const std::uint64_t now = clock_();
    event.duration_ns = now >= event.start_ns ? now - event.start_ns : 0;
    open_.pop_back();
}

std::string
Tracer::chromeTraceJson() const
{
    // Rebase to the first span so timestamps are small and the viewer
    // opens at t=0. Timestamps are microseconds (the format's unit).
    std::uint64_t base_ns = 0;
    if (!events_.empty())
        base_ns = events_.front().start_ns;

    std::vector<bool> is_open(events_.size(), false);
    for (const OpenSpan& o : open_)
        is_open[o.event_index] = true;

    std::ostringstream out;
    out << std::setprecision(15);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent& e = events_[i];
        if (is_open[i])
            continue; // unclosed spans have no duration yet
        if (!first)
            out << ",";
        first = false;
        out << "{\"name\":\"" << e.name
            << "\",\"cat\":\"satori\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
            << "\"ts\":"
            << static_cast<double>(e.start_ns - base_ns) / 1e3
            << ",\"dur\":" << static_cast<double>(e.duration_ns) / 1e3
            << "}";
    }
    out << "]}\n";
    return out.str();
}

void
Tracer::writeChromeTrace(const std::string& path) const
{
    // Atomic install: a crash or full disk never leaves a truncated
    // file that a trace viewer half-parses.
    satori::atomicWriteFile(path, chromeTraceJson());
}

std::vector<SpanAggregate>
Tracer::aggregate() const
{
    std::map<std::string, SpanAggregate> by_name;
    for (const TraceEvent& e : events_) {
        SpanAggregate& agg = by_name[e.name];
        if (agg.name.empty())
            agg.name = e.name;
        ++agg.count;
        agg.total_ns += e.duration_ns;
        agg.max_ns = std::max(agg.max_ns, e.duration_ns);
    }
    std::vector<SpanAggregate> rows;
    rows.reserve(by_name.size());
    for (const auto& [name, agg] : by_name)
        rows.push_back(agg);
    std::sort(rows.begin(), rows.end(),
              [](const SpanAggregate& a, const SpanAggregate& b) {
                  if (a.total_ns != b.total_ns)
                      return a.total_ns > b.total_ns;
                  return a.name < b.name;
              });
    return rows;
}

void
Tracer::clear()
{
    events_.clear();
    open_.clear();
}

} // namespace obs
} // namespace satori
