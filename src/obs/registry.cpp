#include "satori/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace obs {

namespace {

bool
validMetricName(const std::string& name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

/** Metric name in Prometheus form: '.' separators become '_'. */
std::string
prometheusName(const std::string& name)
{
    std::string out = name;
    std::replace(out.begin(), out.end(), '.', '_');
    return out;
}

/** Deterministic number formatting shared by both export formats. */
std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << std::setprecision(10) << value;
    return out.str();
}

/** Escape a free-text string for JSON / Prometheus HELP lines. */
std::string
escapeText(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        SATORI_FATAL("histogram needs at least one bucket bound");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!std::isfinite(bounds_[i]))
            SATORI_FATAL("histogram bucket bound must be finite");
        if (i > 0 && bounds_[i] <= bounds_[i - 1])
            SATORI_FATAL("histogram bucket bounds must be strictly "
                         "ascending");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double value)
{
    std::size_t bucket = bounds_.size(); // +Inf tail by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    ++counts_[bucket];
    ++count_;
    sum_ += value;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

void
MetricsRegistry::claimName(const std::string& name)
{
    if (!validMetricName(name))
        SATORI_FATAL("invalid metric name '" + name +
                     "' (use [a-zA-Z0-9_.])");
    const auto at =
        std::lower_bound(names_.begin(), names_.end(), name);
    if (at != names_.end() && *at == name)
        SATORI_FATAL("metric '" + name + "' registered twice");
    names_.insert(at, name);
}

Counter&
MetricsRegistry::counter(const std::string& name, const std::string& help)
{
    common::MutexLock lock(mutex_);
    claimName(name);
    counters_.push_back({name, help, std::make_unique<Counter>()});
    return *counters_.back().instrument;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const std::string& help)
{
    common::MutexLock lock(mutex_);
    claimName(name);
    gauges_.push_back({name, help, std::make_unique<Gauge>()});
    return *gauges_.back().instrument;
}

Histogram&
MetricsRegistry::histogram(const std::string& name, const std::string& help,
                           std::vector<double> bounds)
{
    common::MutexLock lock(mutex_);
    claimName(name);
    histograms_.push_back(
        {name, help, std::make_unique<Histogram>(std::move(bounds))});
    return *histograms_.back().instrument;
}

std::size_t
MetricsRegistry::size() const
{
    common::MutexLock lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    common::MutexLock lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& e : counters_)
        snap.counters.push_back({e.name, e.help, e.instrument->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& e : gauges_)
        snap.gauges.push_back({e.name, e.help, e.instrument->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& e : histograms_) {
        HistogramSample h;
        h.name = e.name;
        h.help = e.help;
        h.bounds = e.instrument->bounds();
        h.counts = e.instrument->bucketCounts();
        h.count = e.instrument->count();
        h.sum = e.instrument->sum();
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    common::MutexLock lock(mutex_);
    for (auto& e : counters_)
        e.instrument->reset();
    for (auto& e : gauges_)
        e.instrument->reset();
    for (auto& e : histograms_)
        e.instrument->reset();
}

std::string
MetricsSnapshot::prometheusText() const
{
    std::string out;
    for (const auto& c : counters) {
        const std::string name = prometheusName(c.name);
        out += "# HELP " + name + " " + escapeText(c.help) + "\n";
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(c.value) + "\n";
    }
    for (const auto& g : gauges) {
        const std::string name = prometheusName(g.name);
        out += "# HELP " + name + " " + escapeText(g.help) + "\n";
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + formatNumber(g.value) + "\n";
    }
    for (const auto& h : histograms) {
        const std::string name = prometheusName(h.name);
        out += "# HELP " + name + " " + escapeText(h.help) + "\n";
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            cumulative += h.counts[i];
            out += name + "_bucket{le=\"" + formatNumber(h.bounds[i]) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count) + "\n";
        out += name + "_sum " + formatNumber(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

std::string
MetricsSnapshot::jsonLines() const
{
    std::string out;
    for (const auto& c : counters)
        out += "{\"type\":\"counter\",\"name\":\"" + c.name +
               "\",\"help\":\"" + escapeText(c.help) +
               "\",\"value\":" + std::to_string(c.value) + "}\n";
    for (const auto& g : gauges)
        out += "{\"type\":\"gauge\",\"name\":\"" + g.name +
               "\",\"help\":\"" + escapeText(g.help) +
               "\",\"value\":" + formatNumber(g.value) + "}\n";
    for (const auto& h : histograms) {
        out += "{\"type\":\"histogram\",\"name\":\"" + h.name +
               "\",\"help\":\"" + escapeText(h.help) + "\",\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ",";
            out += formatNumber(h.bounds[i]);
        }
        out += "],\"counts\":[";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ",";
            out += std::to_string(h.counts[i]);
        }
        out += "],\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + formatNumber(h.sum) + "}\n";
    }
    return out;
}

} // namespace obs
} // namespace satori
