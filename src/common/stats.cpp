#include "satori/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "satori/common/logging.hpp"
#include "satori/persist/codec.hpp"

namespace satori {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::saveState(persist::StateWriter& w) const
{
    w.putSize(n_);
    w.putDouble(mean_);
    w.putDouble(m2_);
    // min_/max_ are uninitialized until the first add(); write zeros
    // so an empty accumulator still has a fixed encoding.
    w.putDouble(n_ > 0 ? min_ : 0.0);
    w.putDouble(n_ > 0 ? max_ : 0.0);
}

void
OnlineStats::restoreState(persist::StateReader& r)
{
    n_ = r.getSize();
    mean_ = r.getDouble();
    m2_ = r.getDouble();
    const double mn = r.getDouble();
    const double mx = r.getDouble();
    if (n_ > 0) {
        min_ = mn;
        max_ = mx;
    }
}

void
TimeSeries::add(double t, double v)
{
    times_.push_back(t);
    values_.push_back(v);
}

void
TimeSeries::saveState(persist::StateWriter& w) const
{
    w.putDoubleVec(times_);
    w.putDoubleVec(values_);
}

void
TimeSeries::restoreState(persist::StateReader& r)
{
    times_ = r.getDoubleVec();
    values_ = r.getDoubleVec();
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
TimeSeries::meanOver(double t0, double t1) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] >= t0 && times_[i] <= t1) {
            sum += values_[i];
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
percentile(std::vector<double> v, double pct)
{
    SATORI_ASSERT(!v.empty());
    SATORI_ASSERT(pct >= 0.0 && pct <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    const double rank = pct / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

} // namespace satori
