#include "satori/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "satori/common/logging.hpp"

namespace satori {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
TimeSeries::add(double t, double v)
{
    times_.push_back(t);
    values_.push_back(v);
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
TimeSeries::meanOver(double t0, double t1) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] >= t0 && times_[i] <= t1) {
            sum += values_[i];
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
percentile(std::vector<double> v, double pct)
{
    SATORI_ASSERT(!v.empty());
    SATORI_ASSERT(pct >= 0.0 && pct <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    const double rank = pct / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

} // namespace satori
