#include "satori/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SATORI_ASSERT(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    SATORI_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path), columns_(headers.size())
{
    for (std::size_t c = 0; c < headers.size(); ++c) {
        if (c)
            out_ << ",";
        out_ << headers[c];
    }
    out_ << "\n";
}

void
CsvWriter::addRow(const std::vector<std::string>& cells)
{
    SATORI_ASSERT(cells.size() == columns_);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c)
            out_ << ",";
        out_ << cells[c];
    }
    out_ << "\n";
}

} // namespace satori
