#include "satori/common/rng.hpp"

#include <cmath>

#include "satori/common/logging.hpp"

namespace satori {
namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed so that nearby seeds give unrelated streams.
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    SATORI_ASSERT(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t x = next();
    while (x >= limit)
        x = next();
    return x % n;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) // guard the log
        u1 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ull);
}

} // namespace satori
