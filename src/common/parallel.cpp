#include "satori/common/parallel.hpp"

#include <cstdlib>
#include <string>

#include "satori/common/logging.hpp"

namespace satori {
namespace common {

std::size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("SATORI_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    SATORI_ASSERT(workers >= 1);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    MutexLock lock(mutex_);
    for (;;) {
        while (!stopping_ && generation_ == seen_generation)
            work_cv_.wait(lock);
        if (stopping_)
            return;
        seen_generation = generation_;
        while (next_ < count_ && !first_error_) {
            const std::size_t index = next_++;
            ++in_flight_;
            // The batch function is stable while the batch runs;
            // snapshot it under the lock, then run the item unlocked.
            const std::function<void(std::size_t)>* fn = fn_;
            lock.unlock();
            std::exception_ptr error;
            try {
                (*fn)(index);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            --in_flight_;
            if (error && !first_error_)
                first_error_ = error;
        }
        if (next_ >= count_ || first_error_)
            done_cv_.notify_all();
    }
}

void
ThreadPool::forEachIndex(std::size_t count,
                         const std::function<void(std::size_t)>& fn)
{
    if (count == 0)
        return;
    std::exception_ptr error;
    {
        MutexLock lock(mutex_);
        SATORI_ASSERT(fn_ == nullptr); // one batch at a time
        fn_ = &fn;
        count_ = count;
        next_ = 0;
        in_flight_ = 0;
        first_error_ = nullptr;
        ++generation_;
        work_cv_.notify_all();
        while (in_flight_ != 0 || (next_ < count_ && !first_error_))
            done_cv_.wait(lock);
        fn_ = nullptr;
        count_ = 0;
        next_ = 0;
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(std::size_t count, std::size_t threads,
            const std::function<void(std::size_t)>& fn)
{
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads > count)
        threads = count;
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(threads);
    pool.forEachIndex(count, fn);
}

} // namespace common
} // namespace satori
