#include "satori/common/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "satori/common/logging.hpp"

namespace satori {

namespace {

[[nodiscard]] std::string
errnoText()
{
    return std::strerror(errno);
}

/** Flush @p path's data to stable storage (no-op off POSIX). */
void
fsyncPath(const std::string& path)
{
#if defined(__unix__) || defined(__APPLE__)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        SATORI_FATAL("cannot reopen for fsync: " + path + ": " +
                     errnoText());
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        SATORI_FATAL("fsync failed: " + path + ": " + errnoText());
#else
    (void)path;
#endif
}

[[nodiscard]] std::string
parentDir(const std::string& path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

[[nodiscard]] bool
dirWritable(const std::string& dir)
{
#if defined(__unix__) || defined(__APPLE__)
    return ::access(dir.c_str(), W_OK | X_OK) == 0;
#else
    return true;
#endif
}

} // namespace

void
atomicWriteFile(const std::string& path, std::string_view content,
                bool sync)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            SATORI_FATAL("cannot create file: " + tmp + ": " +
                         errnoText());
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out.good())
            SATORI_FATAL("write failed: " + tmp + ": " + errnoText());
    }
    if (sync)
        fsyncPath(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        SATORI_FATAL("cannot install " + path + " (rename from " + tmp +
                     "): " + errnoText());
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        SATORI_FATAL("cannot open file: " + path + ": " + errnoText());
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad())
        SATORI_FATAL("read failed: " + path + ": " + errnoText());
    return contents.str();
}

bool
pathExists(const std::string& path)
{
    std::error_code ec;
    return std::filesystem::exists(path, ec);
}

void
validateOutputFile(const std::string& flag, const std::string& path)
{
    if (path.empty())
        return;
    const std::string dir = parentDir(path);
    std::error_code ec;
    if (!std::filesystem::exists(dir, ec))
        SATORI_FATAL(flag + ": directory '" + dir + "' does not exist");
    if (!std::filesystem::is_directory(dir, ec))
        SATORI_FATAL(flag + ": '" + dir + "' is not a directory");
    if (!dirWritable(dir))
        SATORI_FATAL(flag + ": directory '" + dir + "' is not writable");
    if (std::filesystem::is_directory(path, ec))
        SATORI_FATAL(flag + ": '" + path + "' is a directory, not a file");
}

void
validateOutputDir(const std::string& flag, const std::string& path)
{
    if (path.empty())
        return;
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        if (!std::filesystem::is_directory(path, ec))
            SATORI_FATAL(flag + ": '" + path + "' exists and is not a "
                         "directory");
    } else if (!std::filesystem::create_directories(path, ec) || ec) {
        SATORI_FATAL(flag + ": cannot create directory '" + path +
                     "': " + ec.message());
    }
    if (!dirWritable(path))
        SATORI_FATAL(flag + ": directory '" + path + "' is not writable");
}

} // namespace satori
